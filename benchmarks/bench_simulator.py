"""Bench: bit-packed fault-simulation engine vs. the uint8 reference.

Measures, on one generated default-scale benchmark with 256 two-pattern
tests:

* good-machine two-pattern simulation throughput (patterns/s), and
* steady-state ``FaultMachine.propagate`` throughput (faults/s) over the
  full TDF fault list (stems + branches, both polarities),

for the packed engine and for ``CompiledSimulator(nl, packed=False)``.
Detection maps of every fault are verified bitwise identical between the
engines before anything is timed, and the measured numbers are snapshotted
to ``BENCH_simulator.json`` at the repo root.

At ``REPRO_SCALE=default`` the packed propagate throughput must be at least
10x the uint8 reference; ``REPRO_SCALE=tiny`` runs the same flow on a small
design as a smoke test without the speedup floor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.atpg import enumerate_faults
from repro.netlist import GeneratorSpec, generate
from repro.sim import CompiledSimulator, FaultMachine

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_simulator.json"

#: Default scale mirrors the AES-like point of the experiment suite's
#: design matrix (700 gates); tiny is a smoke-sized stand-in.
SPECS = {
    "default": GeneratorSpec("bench_sim", "aes_like", 700, 80, 32, 32, seed=3),
    "tiny": GeneratorSpec("bench_sim", "aes_like", 120, 12, 8, 8, seed=3),
}
N_PATTERNS = {"default": 256, "tiny": 64}


def _setup(scale):
    spec = SPECS.get(scale, SPECS["tiny"])
    n_patterns = N_PATTERNS.get(scale, 64)
    nl = generate(spec)
    faults = enumerate_faults(nl)
    rng = np.random.default_rng(7)
    n_in = len(nl.comb_inputs)
    v1 = rng.integers(0, 2, size=(n_in, n_patterns), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(n_in, n_patterns), dtype=np.uint8)
    return nl, faults, v1, v2


def _sweep(machine, faults, good):
    for fault in faults:
        machine.propagate(fault, good)


def _bench_engines(scale):
    nl, faults, v1, v2 = _setup(scale)
    sim_p = CompiledSimulator(nl, packed=True)
    sim_u = CompiledSimulator(nl, packed=False)
    fm_p, fm_u = FaultMachine(sim_p), FaultMachine(sim_u)

    # Good-machine simulation throughput (median of a few repeats).
    n_patterns = v1.shape[1]
    sim_times = {}
    for name, sim in (("packed", sim_p), ("uint8", sim_u)):
        times = []
        for _ in range(15):
            t0 = time.perf_counter()
            sim.simulate_pair(v1, v2)
            times.append(time.perf_counter() - t0)
        sim_times[name] = float(np.median(times))
    good_p = sim_p.simulate_pair(v1, v2)
    good_u = sim_u.simulate_pair(v1, v2)

    # Correctness gate: bitwise-identical detection maps, every fault.
    mismatches = 0
    for fault in faults:
        d_p = fm_p.propagate(fault, good_p)
        d_u = fm_u.propagate(fault, good_u)
        if set(d_p) != set(d_u) or any(
            not np.array_equal(d_p[k], d_u[k]) for k in d_p
        ):
            mismatches += 1
    assert mismatches == 0, f"{mismatches} faults with non-identical detection maps"

    # Steady-state propagate throughput: the verification pass above warmed
    # every cone plan / generated function, so this measures the cached
    # regime the ATPG and diagnosis loops live in.
    prop = {}
    for name, fm, good in (("packed", fm_p, good_p), ("uint8", fm_u, good_u)):
        t0 = time.perf_counter()
        _sweep(fm, faults, good)
        dt = time.perf_counter() - t0
        prop[name] = {"seconds": dt, "faults_per_s": len(faults) / dt}

    return {
        "scale": scale,
        "design": {
            "name": SPECS.get(scale, SPECS["tiny"]).name,
            "n_gates": nl.n_gates,
            "n_nets": nl.n_nets,
            "n_faults": len(faults),
            "n_patterns": n_patterns,
        },
        "good_machine": {
            name: {
                "seconds": t,
                "patterns_per_s": n_patterns / t,
            }
            for name, t in sim_times.items()
        },
        "propagate": prop,
        "speedup": {
            "good_machine": sim_times["uint8"] / sim_times["packed"],
            "propagate": prop["packed"]["faults_per_s"] / prop["uint8"]["faults_per_s"],
        },
        "detection_maps_identical": True,
    }


def test_simulator_throughput(benchmark, scale):
    result = run_once(benchmark, _bench_engines, scale)
    d = result["design"]
    print(
        f"\n[{scale}] {d['n_gates']} gates, {d['n_faults']} faults, "
        f"{d['n_patterns']} patterns"
    )
    for section in ("good_machine", "propagate"):
        for engine, row in result[section].items():
            rate_key = "patterns_per_s" if section == "good_machine" else "faults_per_s"
            print(
                f"  {section:12s} {engine:6s}: {row[rate_key]:10.1f} "
                f"{rate_key.replace('_per_s', '/s')}  ({row['seconds']:.3f}s)"
            )
    print(
        f"  speedup: good-machine {result['speedup']['good_machine']:.2f}x, "
        f"propagate {result['speedup']['propagate']:.2f}x"
    )
    assert result["detection_maps_identical"]
    if scale == "default":
        # Only the paper-shaped run refreshes the committed snapshot; smoke
        # scales would clobber it with non-representative numbers.
        SNAPSHOT.write_text(json.dumps(result, indent=2) + "\n")
        assert result["speedup"]["propagate"] >= 10.0
