"""Bench: regenerate Table IX (runtime of the framework on Syn-2 test sets)."""

from conftest import run_once

from repro.experiments import format_runtime, runtime_table


def test_table9_runtime(benchmark, scale, n_samples):
    rows = run_once(benchmark, runtime_table, n_samples=n_samples, scale=scale)
    print("\n" + format_runtime(rows))
    assert len(rows) == 4
    for r in rows:
        # The paper's deployment shape: GNN inference is much faster than
        # ATPG diagnosis, and the report update is cheap next to T_ATPG.
        assert r.t_gnn_s < r.t_atpg_s
        assert r.t_update_s < r.t_atpg_s
