"""Bench: regenerate Table III (design matrix of M3D benchmarks)."""

from conftest import run_once

from repro.experiments import design_matrix, format_design_matrix


def test_table3_design_matrix(benchmark, scale):
    rows = run_once(benchmark, design_matrix, scale=scale)
    print("\n" + format_design_matrix(rows))
    assert len(rows) == 4
    gates = [r.gates for r in rows]
    assert gates == sorted(gates), "size ordering AES < Tate < netcard < leon3mp"
    for r in rows:
        assert r.fault_coverage >= 0.80
        assert r.mivs > 0
