"""Bench: regenerate Table II's feature-significance column."""

from conftest import run_once

from repro.experiments import feature_significance, format_significance


def test_table2_feature_significance(benchmark, scale, n_samples):
    rows = run_once(
        benchmark, feature_significance, "Tate", n_samples=n_samples, scale=scale
    )
    print("\n" + format_significance(rows))
    assert len(rows) == 13
    top = [r.significance for r in rows if r.is_top_level]
    ckt = [r.significance for r in rows if not r.is_top_level]
    # The paper's point: top-level features matter about as much as
    # circuit-level ones (scores of the same order).
    assert sum(top) / len(top) > 0.5 * (sum(ckt) / len(ckt))
