"""Bench: regenerate Table VII (ATPG report quality with response compaction)."""

from conftest import run_once

from repro.experiments import atpg_quality, format_quality


def test_table7_atpg_quality_compacted(benchmark, scale, n_samples):
    rows = run_once(
        benchmark, atpg_quality, "compacted", n_samples=n_samples, scale=scale
    )
    print("\n" + format_quality(rows, "Table VII: ATPG report quality (compacted)"))
    assert len(rows) == 16
    for r in rows:
        assert r.quality.accuracy >= 0.75
