"""Benchmark-harness configuration.

Every bench regenerates one table/figure of the paper and prints it, while
pytest-benchmark records the wall-clock of the (cached-pipeline) run.

Environment knobs:

* ``REPRO_SCALE``   — benchmark suite scale, ``default`` (paper-shaped) or
  ``tiny`` (smoke).  Default: ``default``.
* ``REPRO_SAMPLES`` — test-set size per (design, config) point.  Default: 50.

The heavy pipeline state (prepared designs, trained frameworks, diagnosis
reports) is memoized in :mod:`repro.experiments.common`, so one pytest
session pays each cost once no matter how many benches touch it.
"""

from __future__ import annotations

import os

import pytest

SCALE = os.environ.get("REPRO_SCALE", "default")
N_SAMPLES = int(os.environ.get("REPRO_SAMPLES", "30"))


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def n_samples() -> int:
    return N_SAMPLES


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
