"""Bench: regenerate Table VIII (effectiveness with response compaction)."""

from conftest import run_once

from repro.experiments import effectiveness, format_effectiveness


def test_table8_effectiveness_compacted(benchmark, scale, n_samples):
    rows = run_once(
        benchmark, effectiveness, "compacted", n_samples=n_samples, scale=scale
    )
    print("\n" + format_effectiveness(rows, "Table VIII: effectiveness (compacted)"))
    assert len(rows) == 16
    for r in rows:
        assert r.gnn.quality.mean_resolution <= r.atpg.quality.mean_resolution + 1e-9
    mean_loss = sum(
        r.atpg.quality.accuracy - r.gnn.quality.accuracy for r in rows
    ) / len(rows)
    assert mean_loss <= 0.18  # compaction makes transfer harder (EXPERIMENTS.md)
