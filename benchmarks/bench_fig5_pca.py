"""Bench: regenerate Fig. 5 (PCA feature-space overlap across configurations)."""

from conftest import run_once

from repro.experiments import format_pca_study, pca_study


def test_fig5_pca_overlap(benchmark, scale, n_samples):
    study = run_once(benchmark, pca_study, "Tate", n_samples=n_samples, scale=scale)
    print("\n" + format_pca_study(study))
    assert set(study.points) == {"Syn-1", "TPI", "Syn-2", "Par"}
    # The paper's conclusion: configuration clouds overlap — centroid
    # separation stays within the within-cloud spread.
    assert study.overlap_ratio < 2.0
