"""Bench (beyond the paper): PR-derived Tp vs fixed pruning thresholds."""

from conftest import run_once

from repro.experiments import format_threshold_sweep, threshold_sweep


def test_ablation_threshold_sweep(benchmark, scale, n_samples):
    rows = run_once(
        benchmark, threshold_sweep, "AES", n_samples=n_samples, scale=scale
    )
    print("\n" + format_threshold_sweep(rows))
    qualities = dict(rows)
    # Monotonicity in the threshold: a lower Tp prunes at least as much
    # (resolution no larger) and is at most as accurate as a higher Tp.
    loose, strict = qualities["Tp=0.55"], qualities["Tp=0.95"]
    assert loose.mean_resolution <= strict.mean_resolution + 1e-9
    assert strict.accuracy >= loose.accuracy - 1e-9
