"""Bench (beyond the paper): dummy-buffer oversampling on vs off."""

from conftest import run_once

from repro.experiments.ablation import oversample_ablation


def test_ablation_oversampling(benchmark, scale, n_samples):
    rows = run_once(
        benchmark, oversample_ablation, "AES", n_samples=n_samples, scale=scale
    )
    print("\nAblation: Classifier dummy-buffer oversampling")
    for label, fp_recall, tp_recall in rows:
        print(f"  {label:22s} FP recall={fp_recall:.1%} TP recall={tp_recall:.1%}")
    by = {label: (fp, tp) for label, fp, tp in rows}
    # Balancing the minority class must not hurt its recall.
    assert by["with oversampling"][0] >= by["without oversampling"][0] - 1e-9
