"""Bench: GNN training/inference throughput per tensor backend.

Measures, on a pool of paper-shaped back-trace sub-graphs, graphs/second
for GraphClassifier training and inference on every available backend
(numpy always; torch when installed) at batch sizes 1/16/64.  The
``batch_size=1`` numpy row is the seed per-graph training regime and serves
as the baseline every other (backend, batch) point is compared against.

Before anything is timed, every non-oracle backend's forward logits are
verified against the numpy oracle (the differential gate — same idiom as
the packed-vs-uint8 simulator bench).  At ``REPRO_SCALE=default`` the
measured numbers are snapshotted to ``BENCH_gnn.json`` at the repo root and
the best batched-training point must be at least 2x the per-graph baseline;
``REPRO_SCALE=tiny`` runs the same flow as a smoke test without the floor.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.core.features import N_FEATURES
from repro.core.training import train_graph_classifier
from repro.nn import GraphClassifier, GraphData, available_backends, build_batch

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_gnn.json"

#: Pool sizes / epochs per scale.  Default mirrors one fit stage of the
#: experiment suite (a few hundred sub-graphs, tens of nodes each).
POOL = {"default": 240, "tiny": 24}
EPOCHS = {"default": 3, "tiny": 1}
BATCH_SIZES = (1, 16, 64)
HIDDEN = (32, 32)
SPEEDUP_FLOOR = 2.0


def _make_graphs(scale):
    rng = np.random.default_rng(5)
    graphs = []
    for i in range(POOL.get(scale, POOL["tiny"])):
        k = int(rng.integers(12, 49))
        n_edges = int(rng.integers(k, 3 * k))
        edges = (rng.integers(0, k, size=n_edges), rng.integers(0, k, size=n_edges))
        x = rng.normal(size=(k, N_FEATURES))
        x[:, 0] += 1.5 * (i % 2)
        graphs.append(GraphData(x=x, edges=edges, y=int(i % 2)))
    return graphs


def _differential_gate(graphs):
    """Every backend's forward must match the numpy oracle before timing."""
    batch = build_batch(graphs[:16])
    ref = GraphClassifier(N_FEATURES, 2, hidden=HIDDEN, seed=0, backend="numpy")
    oracle = ref.forward(batch)
    for backend in available_backends():
        if backend == "numpy":
            continue
        alt = GraphClassifier(N_FEATURES, 2, hidden=HIDDEN, seed=0, backend=backend)
        got = alt.backend.to_numpy(alt.forward(batch))
        np.testing.assert_allclose(got, oracle, atol=1e-9, rtol=0)


def _time_train(graphs, backend, batch_size, epochs):
    model = GraphClassifier(N_FEATURES, 2, hidden=HIDDEN, seed=0, backend=backend)
    t0 = time.perf_counter()
    train_graph_classifier(
        model, graphs, epochs=epochs, batch_size=batch_size, seed=0
    )
    dt = time.perf_counter() - t0
    return {
        "seconds": dt,
        "graphs_per_s": epochs * len(graphs) / dt,
    }, model


def _time_inference(model, graphs, batch_size, repeats=5):
    chunks = [
        build_batch(graphs[i : i + batch_size])
        for i in range(0, len(graphs), batch_size)
    ]
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for chunk in chunks:
            model.predict_proba(chunk)
        times.append(time.perf_counter() - t0)
    dt = float(np.median(times))
    return {"seconds": dt, "graphs_per_s": len(graphs) / dt}


def _bench_backends(scale):
    graphs = _make_graphs(scale)
    epochs = EPOCHS.get(scale, EPOCHS["tiny"])
    _differential_gate(graphs)

    per_backend = {}
    for backend in available_backends():
        rows = {"train": {}, "inference": {}}
        for bs in BATCH_SIZES:
            rows["train"][str(bs)], model = _time_train(graphs, backend, bs, epochs)
            rows["inference"][str(bs)] = _time_inference(model, graphs, bs)
        per_backend[backend] = rows

    baseline = per_backend["numpy"]["train"]["1"]["graphs_per_s"]
    best = max(
        (
            (rows["train"][str(bs)]["graphs_per_s"], backend, bs)
            for backend, rows in per_backend.items()
            for bs in BATCH_SIZES
            if bs > 1
        ),
    )
    return {
        "scale": scale,
        "workload": {
            "n_graphs": len(graphs),
            "n_features": N_FEATURES,
            "hidden": list(HIDDEN),
            "epochs": epochs,
            "batch_sizes": list(BATCH_SIZES),
        },
        "host": {
            "cpu_logical": os.cpu_count(),
            "backends": available_backends(),
        },
        "baseline": {
            "backend": "numpy",
            "batch_size": 1,
            "train_graphs_per_s": baseline,
        },
        "backends": per_backend,
        "speedup": {
            "best_batched_train_vs_pergraph": best[0] / baseline,
            "best_backend": best[1],
            "best_batch_size": best[2],
        },
        "oracle_differential_ok": True,
    }


def test_gnn_throughput(benchmark, scale):
    result = run_once(benchmark, _bench_backends, scale)
    w = result["workload"]
    print(
        f"\n[{scale}] {w['n_graphs']} graphs x {w['epochs']} epochs, "
        f"backends: {', '.join(result['host']['backends'])}"
    )
    for backend, rows in result["backends"].items():
        for section in ("train", "inference"):
            line = "  ".join(
                f"bs={bs}: {rows[section][str(bs)]['graphs_per_s']:8.1f} g/s"
                for bs in w["batch_sizes"]
            )
            print(f"  {backend:10s} {section:9s} {line}")
    s = result["speedup"]
    print(
        f"  best batched train: {s['best_backend']} bs={s['best_batch_size']} "
        f"-> {s['best_batched_train_vs_pergraph']:.2f}x the per-graph baseline"
    )
    assert result["oracle_differential_ok"]
    if scale == "default":
        # Only the paper-shaped run refreshes the committed snapshot; smoke
        # scales would clobber it with non-representative numbers.
        SNAPSHOT.write_text(json.dumps(result, indent=2) + "\n")
        assert s["best_batched_train_vs_pergraph"] >= SPEEDUP_FLOOR
