"""Bench: regenerate Table X (tier-systematic multiple-fault diagnosis)."""

from conftest import run_once

from repro.experiments import format_multifault, multifault_study


def test_table10_multifault(benchmark, scale, n_samples):
    rows = run_once(benchmark, multifault_study, n_test=n_samples, scale=scale)
    print("\n" + format_multifault(rows))
    assert len(rows) == 4
    for r in rows:
        # Multi-fault chips are much harder: strict all-faults-found report
        # accuracy collapses at this scale (stronger than the paper's netcard
        # collapse; see EXPERIMENTS.md) while the framework still shrinks
        # reports and keeps FHI.  Tier localization is asserted in aggregate.
        assert r.framework.mean_resolution <= r.atpg.mean_resolution + 1e-9
        assert r.framework.accuracy >= r.atpg.accuracy - 0.08
    mean_local = sum(r.tier_localization for r in rows) / len(rows)
    assert mean_local >= 1 / 3
