"""Bench: parallel, cached dataset generation vs. the serial build.

Measures, on one prepared default-scale benchmark:

* serial (``workers=1``) injected-dataset build wall-clock,
* the same build fanned out over a 4-worker pool,
* a cold-cache build that also populates the artifact cache, and
* a warm-cache rerun that must reload every chunk without simulating.

All four datasets are verified byte-identical via their canonical SHA-256
fingerprints before anything is reported, and the measured numbers are
snapshotted to ``BENCH_datagen.json`` at the repo root.

At ``REPRO_SCALE=default`` the 4-worker build must be at least 2x faster
than serial — enforced only when the host exposes >= 2 CPU cores, since a
process pool cannot beat wall-clock on a single core (the snapshot records
``cores`` so the numbers stay interpretable) — and the warm rerun must
reload every chunk without building any; ``REPRO_SCALE=tiny`` runs the same
flow as a smoke test without the speedup floors.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import run_once

from repro.data import DesignConfig
from repro.netlist import GeneratorSpec
from repro.runtime import DatasetRuntime, RuntimeStats, sample_set_fingerprint

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_datagen.json"

#: Default scale mirrors the AES-like point of the experiment suite's
#: design matrix (700 gates); tiny is a smoke-sized stand-in.
SPECS = {
    "default": GeneratorSpec("bench_datagen", "aes_like", 700, 80, 32, 32, seed=3),
    "tiny": GeneratorSpec("bench_datagen", "aes_like", 120, 12, 8, 8, seed=3),
}
PREPARE = {
    "default": dict(n_chains=8, chains_per_channel=4, max_patterns=192),
    "tiny": dict(n_chains=4, chains_per_channel=2, max_patterns=48),
}
N_SAMPLES = {"default": 256, "tiny": 48}
WORKERS = 4
SEED = 31337


def _timed_build(rt, design, n_samples):
    t0 = time.perf_counter()
    ds = rt.build_dataset(design, "bypass", n_samples, SEED)
    return ds, time.perf_counter() - t0


def _bench_datagen(scale):
    spec = SPECS.get(scale, SPECS["tiny"])
    kwargs = PREPARE.get(scale, PREPARE["tiny"])
    n_samples = N_SAMPLES.get(scale, 48)

    with tempfile.TemporaryDirectory(prefix="repro_bench_cache_") as cache_dir:
        cold_stats = RuntimeStats()
        rt_cold = DatasetRuntime(workers=WORKERS, cache_dir=cache_dir, stats=cold_stats)
        t0 = time.perf_counter()
        design = rt_cold.prepare(spec, DesignConfig.standard("Syn-1"), **kwargs)
        t_prepare = time.perf_counter() - t0

        ds_serial, t_serial = _timed_build(DatasetRuntime(workers=1), design, n_samples)
        ds_par, t_par = _timed_build(DatasetRuntime(workers=WORKERS), design, n_samples)
        _ds_cold, t_cold = _timed_build(rt_cold, design, n_samples)

        warm_stats = RuntimeStats()
        rt_warm = DatasetRuntime(workers=1, cache_dir=cache_dir, stats=warm_stats)
        t0 = time.perf_counter()
        design_warm = rt_warm.prepare(spec, DesignConfig.standard("Syn-1"), **kwargs)
        ds_warm, t_warm = _timed_build(rt_warm, design_warm, n_samples)

        # Correctness gate: all builds byte-identical before timing means much.
        digest = sample_set_fingerprint(ds_serial)
        assert sample_set_fingerprint(ds_par) == digest
        assert sample_set_fingerprint(_ds_cold) == digest
        assert sample_set_fingerprint(ds_warm) == digest

        warm_skipped_simulation = (
            warm_stats.counters.get("dataset.chunks_built", 0) == 0
            and warm_stats.counters.get("prepare.designs_built", 0) == 0
            and "dataset.inject" not in warm_stats.stage_seconds
        )
        return {
            "scale": scale,
            "workers": WORKERS,
            "cores": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "design": {
                "name": spec.name,
                "n_gates": design.nl.n_gates,
                "n_patterns": design.patterns.n_patterns,
                "n_samples": n_samples,
            },
            "prepare_seconds": t_prepare,
            "build": {
                "serial": {"seconds": t_serial, "samples_per_s": n_samples / t_serial},
                "parallel": {"seconds": t_par, "samples_per_s": n_samples / t_par},
                "cold_cache": {"seconds": t_cold, "samples_per_s": n_samples / t_cold},
                "warm_cache": {"seconds": t_warm, "samples_per_s": n_samples / t_warm},
            },
            "speedup": {
                "parallel_vs_serial": t_serial / t_par,
                "warm_cache_vs_serial": t_serial / t_warm,
            },
            "warm_cache": {
                "chunk_hits": warm_stats.counters.get("cache.sample_chunk.hit", 0),
                "design_hits": warm_stats.counters.get("cache.design.hit", 0),
                "chunks_built": warm_stats.counters.get("dataset.chunks_built", 0),
                "skipped_simulation": warm_skipped_simulation,
            },
            "fingerprints_identical": True,
            "fingerprint": digest,
        }


def test_datagen_throughput(benchmark, scale):
    result = run_once(benchmark, _bench_datagen, scale)
    d = result["design"]
    print(
        f"\n[{scale}] {d['n_gates']} gates, {d['n_patterns']} patterns, "
        f"{d['n_samples']} samples, {result['workers']} workers "
        f"(prepare {result['prepare_seconds']:.1f}s)"
    )
    for name, row in result["build"].items():
        print(
            f"  build {name:10s}: {row['samples_per_s']:8.1f} samples/s "
            f"({row['seconds']:.2f}s)"
        )
    print(
        f"  speedup: parallel {result['speedup']['parallel_vs_serial']:.2f}x, "
        f"warm cache {result['speedup']['warm_cache_vs_serial']:.2f}x "
        f"({result['warm_cache']['chunk_hits']} chunk hits, "
        f"{result['cores']} core(s))"
    )
    assert result["fingerprints_identical"]
    assert result["warm_cache"]["skipped_simulation"]
    if scale == "default":
        # Only the paper-shaped run refreshes the committed snapshot; smoke
        # scales would clobber it with non-representative numbers.
        SNAPSHOT.write_text(json.dumps(result, indent=2) + "\n")
        assert result["speedup"]["warm_cache_vs_serial"] >= 2.0
        if result["cores"] >= 2:
            assert result["speedup"]["parallel_vs_serial"] >= 2.0
        else:
            print("  (single-core host: parallel speedup floor not enforced)")
