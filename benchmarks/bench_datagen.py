"""Bench: persistent-pool dataset generation — scaling sweep vs. serial.

Measures, on one prepared default-scale benchmark:

* serial (``workers=1``) injected-dataset build wall-clock,
* the same build over persistent pools of 1/2/4/8 workers (the scaling
  curve),
* a cold-cache build that also populates the artifact cache,
* a warm-cache rerun that must reload every chunk without simulating, and
* generation wall-clock of the ≥100K-gate ``large`` tier (linear-time
  generator path).

All datasets are verified byte-identical via their canonical SHA-256
fingerprints before anything is reported, and the measured numbers are
snapshotted to ``BENCH_datagen.json`` at the repo root.

Host reporting: the snapshot records both the logical CPU count and the
scheduler-affinity size, and raises an explicit ``core_gated`` flag when
fewer than 2 effective cores are available — on such hosts a process pool
cannot beat serial wall-clock, so the speedup floors are annotated rather
than silently meaningless.  With >= 4 effective cores the 4-worker build
must be at least 2x serial at ``REPRO_SCALE=default``; with >= 2 it must at
least not lose to serial.  ``REPRO_SCALE=tiny`` runs the same flow as a
smoke test without the speedup floors.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import run_once

from repro.data import DesignConfig
from repro.netlist import GeneratorSpec
from repro.netlist.generators import generate
from repro.runtime import DatasetRuntime, RuntimeStats, sample_set_fingerprint

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_datagen.json"

#: Default scale mirrors the AES-like point of the experiment suite's
#: design matrix (700 gates); tiny is a smoke-sized stand-in.
SPECS = {
    "default": GeneratorSpec("bench_datagen", "aes_like", 700, 80, 32, 32, seed=3),
    "tiny": GeneratorSpec("bench_datagen", "aes_like", 120, 12, 8, 8, seed=3),
}
PREPARE = {
    "default": dict(n_chains=8, chains_per_channel=4, max_patterns=192),
    "tiny": dict(n_chains=4, chains_per_channel=2, max_patterns=48),
}
N_SAMPLES = {"default": 256, "tiny": 48}
#: The paper-scale tier exercised for generation only (ATPG at 98K gates is
#: out of scope for a bench run); mirrors the ``large`` AES point.
LARGE_SPEC = GeneratorSpec("bench_large", "aes_like", 98_000, 10_800, 128, 128, seed=1)
SWEEP_WORKERS = (1, 2, 4, 8)
WORKERS = 4
SEED = 31337


def _effective_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _timed_build(rt, design, n_samples):
    t0 = time.perf_counter()
    ds = rt.build_dataset(design, "bypass", n_samples, SEED)
    return ds, time.perf_counter() - t0


def _bench_datagen(scale):
    spec = SPECS.get(scale, SPECS["tiny"])
    kwargs = PREPARE.get(scale, PREPARE["tiny"])
    n_samples = N_SAMPLES.get(scale, 48)

    with tempfile.TemporaryDirectory(prefix="repro_bench_cache_") as cache_dir:
        cold_stats = RuntimeStats()
        rt_cold = DatasetRuntime(workers=WORKERS, cache_dir=cache_dir, stats=cold_stats)
        t0 = time.perf_counter()
        design = rt_cold.prepare(spec, DesignConfig.standard("Syn-1"), **kwargs)
        t_prepare = time.perf_counter() - t0

        ds_serial, t_serial = _timed_build(DatasetRuntime(workers=1), design, n_samples)

        # Scaling curve over persistent pools.  Each width is measured on a
        # warmed pool (one throwaway build first) so the numbers reflect
        # steady-state dispatch, not one-time worker fork cost.
        scaling = {}
        digest = sample_set_fingerprint(ds_serial)
        for w in SWEEP_WORKERS:
            rt_w = DatasetRuntime(workers=w)
            if w > 1:
                rt_w.build_dataset(design, "bypass", min(n_samples, 48), SEED)
            ds_w, t_w = _timed_build(rt_w, design, n_samples)
            assert sample_set_fingerprint(ds_w) == digest
            scaling[str(w)] = {
                "seconds": t_w,
                "samples_per_s": n_samples / t_w,
                "speedup_vs_serial": t_serial / t_w,
            }
        t_par = scaling[str(WORKERS)]["seconds"]

        _ds_cold, t_cold = _timed_build(rt_cold, design, n_samples)
        assert sample_set_fingerprint(_ds_cold) == digest

        warm_stats = RuntimeStats()
        rt_warm = DatasetRuntime(workers=1, cache_dir=cache_dir, stats=warm_stats)
        t0 = time.perf_counter()
        design_warm = rt_warm.prepare(spec, DesignConfig.standard("Syn-1"), **kwargs)
        ds_warm, t_warm = _timed_build(rt_warm, design_warm, n_samples)
        assert sample_set_fingerprint(ds_warm) == digest

        warm_skipped_simulation = (
            warm_stats.counters.get("dataset.chunks_built", 0) == 0
            and warm_stats.counters.get("prepare.designs_built", 0) == 0
            and "dataset.inject" not in warm_stats.stage_seconds
        )

        t0 = time.perf_counter()
        large_nl = generate(LARGE_SPEC)
        t_large_gen = time.perf_counter() - t0

        cores = _effective_cores()
        return {
            "scale": scale,
            "workers": WORKERS,
            "host": {
                "cpu_logical": os.cpu_count() or 1,
                "cpu_affinity": cores,
            },
            "core_gated": cores < 2,
            "design": {
                "name": spec.name,
                "n_gates": design.nl.n_gates,
                "n_patterns": design.patterns.n_patterns,
                "n_samples": n_samples,
            },
            "prepare_seconds": t_prepare,
            "build": {
                "serial": {"seconds": t_serial, "samples_per_s": n_samples / t_serial},
                "parallel": {"seconds": t_par, "samples_per_s": n_samples / t_par},
                "cold_cache": {"seconds": t_cold, "samples_per_s": n_samples / t_cold},
                "warm_cache": {"seconds": t_warm, "samples_per_s": n_samples / t_warm},
            },
            "scaling": scaling,
            "speedup": {
                "parallel_vs_serial": t_serial / t_par,
                "warm_cache_vs_serial": t_serial / t_warm,
            },
            "warm_cache": {
                "chunk_hits": warm_stats.counters.get("cache.sample_chunk.hit", 0),
                "design_hits": warm_stats.counters.get("cache.design.hit", 0),
                "chunks_built": warm_stats.counters.get("dataset.chunks_built", 0),
                "skipped_simulation": warm_skipped_simulation,
            },
            "large_tier": {
                "name": LARGE_SPEC.name,
                "n_gates": large_nl.n_gates,
                "generate_seconds": t_large_gen,
            },
            "fingerprints_identical": True,
            "fingerprint": digest,
        }


def test_datagen_throughput(benchmark, scale):
    result = run_once(benchmark, _bench_datagen, scale)
    d = result["design"]
    host = result["host"]
    print(
        f"\n[{scale}] {d['n_gates']} gates, {d['n_patterns']} patterns, "
        f"{d['n_samples']} samples, {result['workers']} workers "
        f"(prepare {result['prepare_seconds']:.1f}s; host "
        f"{host['cpu_logical']} logical / {host['cpu_affinity']} effective cores)"
    )
    for name, row in result["build"].items():
        print(
            f"  build {name:10s}: {row['samples_per_s']:8.1f} samples/s "
            f"({row['seconds']:.2f}s)"
        )
    curve = ", ".join(
        f"{w}w {row['speedup_vs_serial']:.2f}x" for w, row in result["scaling"].items()
    )
    print(f"  scaling: {curve}")
    print(
        f"  speedup: parallel {result['speedup']['parallel_vs_serial']:.2f}x, "
        f"warm cache {result['speedup']['warm_cache_vs_serial']:.2f}x "
        f"({result['warm_cache']['chunk_hits']} chunk hits)"
    )
    print(
        f"  large tier: {result['large_tier']['n_gates']} gates generated in "
        f"{result['large_tier']['generate_seconds']:.2f}s"
    )
    assert result["fingerprints_identical"]
    assert result["warm_cache"]["skipped_simulation"]
    if scale == "default":
        # Only the paper-shaped run refreshes the committed snapshot; smoke
        # scales would clobber it with non-representative numbers.
        SNAPSHOT.write_text(json.dumps(result, indent=2) + "\n")
        assert result["speedup"]["warm_cache_vs_serial"] >= 2.0
        cores = result["host"]["cpu_affinity"]
        if result["core_gated"]:
            print("  (core-gated host: parallel speedup floors not enforced)")
        elif cores >= 4:
            assert result["speedup"]["parallel_vs_serial"] >= 2.0
        else:
            assert result["speedup"]["parallel_vs_serial"] >= 1.0
