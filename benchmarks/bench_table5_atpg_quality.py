"""Bench: regenerate Table V (ATPG diagnosis-report quality, no compaction)."""

from conftest import run_once

from repro.experiments import atpg_quality, format_quality


def test_table5_atpg_quality_bypass(benchmark, scale, n_samples):
    rows = run_once(benchmark, atpg_quality, "bypass", n_samples=n_samples, scale=scale)
    print("\n" + format_quality(rows, "Table V: ATPG report quality (bypass)"))
    assert len(rows) == 16  # 4 designs x 4 configs
    for r in rows:
        assert r.quality.accuracy >= 0.8
        assert r.quality.mean_resolution >= 1.0
    # Note: the paper's resolution-grows-with-design-size ordering does not
    # survive the ~100x scaling — equivalence classes shrink with size, so
    # the four designs' resolutions compress into one band (EXPERIMENTS.md).
    # Assert that band: no design's reports are degenerate (resolution ~1)
    # or wildly larger than the others'.
    mean_res = lambda name: sum(
        r.quality.mean_resolution for r in rows if r.design == name
    ) / 4
    means = [mean_res(n) for n in ("AES", "Tate", "netcard", "leon3mp")]
    assert min(means) >= 1.5
    assert max(means) / min(means) <= 3.0
