"""Bench (beyond the paper): top-level (Topedge) features on vs off."""

from conftest import run_once

from repro.experiments.ablation import feature_ablation


def test_ablation_top_level_features(benchmark, scale, n_samples):
    rows = run_once(
        benchmark, feature_ablation, "AES", n_samples=n_samples, scale=scale
    )
    print("\nAblation: Tier-predictor accuracy by feature set (Syn-2 test)")
    for label, acc in rows:
        print(f"  {label:20s} accuracy={acc:.1%}")
    by = dict(rows)
    # Removing the Topedge features must not *improve* transfer accuracy.
    assert by["all 13 features"] >= by["circuit-level only"] - 0.08
