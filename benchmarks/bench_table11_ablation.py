"""Bench: regenerate Table XI (standalone Tier-predictor / MIV-pinpointer)."""

from conftest import run_once

from repro.experiments import format_standalone, standalone_models


def test_table11_standalone_models(benchmark, scale, n_samples):
    rows = run_once(benchmark, standalone_models, "AES", n_samples=n_samples, scale=scale)
    print("\n" + format_standalone(rows))
    by_name = {r.method: r.quality for r in rows}
    atpg = by_name["ATPG only"]
    tier = by_name["Tier-predictor"]
    miv = by_name["MIV-pinpointer"]
    both = by_name["Tier-predictor + MIV-pinpointer"]
    # MIV-pinpointer alone never prunes: resolution/accuracy unchanged.
    assert miv.mean_resolution == atpg.mean_resolution
    assert miv.accuracy == atpg.accuracy
    # Tier-predictor drives the resolution gain; adding the MIV-pinpointer
    # must not lose accuracy relative to tier-only (it protects MIV faults).
    assert tier.mean_resolution <= atpg.mean_resolution
    assert both.accuracy >= tier.accuracy - 1e-9
