"""Bench (paper extension): three-tier localization end to end."""

from conftest import run_once

from repro.experiments.three_tier import format_three_tier, three_tier_study


def test_ext_three_tier(benchmark, scale, n_samples):
    result = run_once(
        benchmark, three_tier_study, "AES", n_test=n_samples,
        n_train=max(240, n_samples * 3), scale=scale,
    )
    print("\n" + format_three_tier(result))
    assert result.n_tiers == 3
    assert result.mivs > 0
    # A 3-class predictor must clearly beat chance (1/3).
    assert result.tier_accuracy > 0.5
    assert result.framework.mean_resolution <= result.atpg.mean_resolution + 1e-9
