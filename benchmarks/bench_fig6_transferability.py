"""Bench: regenerate Fig. 6 (dedicated vs transferred model accuracy)."""

from conftest import run_once

from repro.experiments import format_transferability, transferability_study


def test_fig6_transferability(benchmark, scale, n_samples):
    rows = run_once(
        benchmark, transferability_study, "Tate", n_samples=n_samples, scale=scale
    )
    print("\n" + format_transferability(rows, "Tate"))
    assert [r.config for r in rows] == ["Syn-1", "TPI", "Syn-2", "Par"]
    for r in rows:
        # The transferred model tracks the dedicated one without retraining.
        assert r.transferred_tier >= r.dedicated_tier - 0.15
        # Few MIV-fault chips land in a 30-sample test set, so the MIV
        # accuracy estimate is coarse; assert a wide band.
        assert r.transferred_miv >= r.dedicated_miv - 0.5
        assert r.transferred_tier >= 0.6
