"""Bench: diagnosis-as-a-service latency and block-diagonal batching gains.

Three arms over the same pool of synthetic failure datalogs (each submission
carries its precomputed ATPG candidate list, so the measured delta is the
GNN inference + policy path the batcher actually batches):

1. **sequential** — the serving core with ``max_batch=1``: every request
   pays its own three model forwards (the pre-batching regime);
2. **batched** — the same core with ``max_batch=64``: concurrent requests
   share block-diagonal forwards;
3. **http** — a live ``repro serve`` HTTP server fired at with the stdlib
   concurrent client, recording end-to-end p50/p99 latency and throughput.

At ``REPRO_SCALE=default`` the run floods the server with 1000 concurrent
synthetic datalogs, snapshots everything to ``BENCH_serving.json`` at the
repo root, and enforces the batching floor: batched core throughput must be
at least 2x the sequential baseline.  ``REPRO_SCALE=tiny`` is the same flow
as a smoke test without the floor.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from conftest import run_once

from repro.core import M3DDiagnosisFramework
from repro.data import DesignConfig, build_dataset, prepare_design
from repro.diagnosis import EffectCauseDiagnoser
from repro.netlist import GeneratorSpec
from repro.runtime.instrument import RuntimeStats
from repro.serve import (
    DesignContext,
    DiagnosisService,
    ModelRegistry,
    RequestBatcher,
    ServeClient,
    candidate_to_json,
    fire_concurrent,
    percentile,
    serve_http,
)
from repro.tester.datalog import dumps_datalog

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_serving.json"

#: Requests in flight / unique chips behind them, per scale.
N_REQUESTS = {"default": 1000, "tiny": 60}
N_CHIPS = {"default": 60, "tiny": 12}
EPOCHS = {"default": 10, "tiny": 4}
MAX_BATCH = 64
HTTP_CONCURRENCY = 64
SPEEDUP_FLOOR = 2.0


def _build_serving_state(scale):
    spec = GeneratorSpec("bench-serve", "aes_like", 200, 28, 14, 14, seed=11)
    design = prepare_design(
        spec, DesignConfig.standard("Syn-1"), n_chains=4,
        chains_per_channel=2, max_patterns=96,
    )
    train = build_dataset(design, "bypass", 60, seed=71)
    fw = M3DDiagnosisFramework(epochs=EPOCHS.get(scale, EPOCHS["tiny"]), seed=0)
    fw.fit([train])

    chips = build_dataset(
        design, "bypass", N_CHIPS.get(scale, N_CHIPS["tiny"]), seed=72
    ).items
    diag = EffectCauseDiagnoser(
        design.nl, design.obsmap("bypass"), design.patterns,
        mivs=design.mivs, sim=design.sim,
    )
    submissions = []
    n_requests = N_REQUESTS.get(scale, N_REQUESTS["tiny"])
    for i in range(n_requests):
        chip = chips[i % len(chips)]
        report = diag.diagnose(chip.sample.log)
        submissions.append({
            "id": f"r{i}",
            "datalog": dumps_datalog(
                chip.sample.log, f"r{i}", design.obsmap("bypass")
            ),
            "report": [candidate_to_json(c) for c in report.candidates],
        })
    return design, fw, submissions


def _core_arm(design, fw, submissions, max_batch):
    """Flood the serving core (no HTTP) and drain every future."""
    registry = ModelRegistry()
    registry.register("Syn-1", "v1", fw)
    registry.warmup()
    stats = RuntimeStats()
    service = DiagnosisService(
        registry, {"bench": DesignContext("bench", design)}, stats=stats
    )
    batcher = RequestBatcher(
        service.process_batch, max_batch=max_batch,
        max_queue=len(submissions) + 1, flush_interval_s=0.005, stats=stats,
    )
    futures = [batcher.submit(sub) for sub in submissions]  # all concurrent
    t0 = time.perf_counter()
    batcher.start()
    docs = [f.result() for f in futures]
    wall = time.perf_counter() - t0
    batcher.close()
    assert all(doc["ok"] for doc in docs), "serving arm produced errors"
    batches = stats.counters.get("serve.batches", 1)
    return {
        "max_batch": max_batch,
        "n_requests": len(docs),
        "wall_s": round(wall, 6),
        "throughput_rps": round(len(docs) / wall, 3),
        "batches": batches,
        "mean_batch_size": round(len(docs) / batches, 2),
    }


def _http_arm(design, fw, submissions):
    """End-to-end HTTP latency under concurrent fire."""
    registry = ModelRegistry()
    registry.register("Syn-1", "v1", fw)
    registry.warmup()
    stats = RuntimeStats()
    service = DiagnosisService(
        registry, {"bench": DesignContext("bench", design)}, stats=stats
    )
    batcher = RequestBatcher(
        service.process_batch, max_batch=MAX_BATCH,
        max_queue=max(256, HTTP_CONCURRENCY * 4), flush_interval_s=0.005,
        stats=stats,
    ).start()
    httpd = serve_http(service, batcher)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address
    client = ServeClient(f"http://{host}:{port}", timeout_s=120.0)
    fired = fire_concurrent(client, submissions, concurrency=HTTP_CONCURRENCY)
    httpd.shutdown()
    httpd.server_close()
    batcher.close()
    assert fired["n_errors"] == 0, "HTTP arm produced errors"
    fired.pop("responses")  # the snapshot keeps numbers, not payloads
    fired["concurrency"] = HTTP_CONCURRENCY
    batches = stats.counters.get("serve.batches", 1)
    fired["mean_batch_size"] = round(fired["n_requests"] / batches, 2)
    return fired


def _bench_serving(scale):
    design, fw, submissions = _build_serving_state(scale)
    sequential = _core_arm(design, fw, submissions, max_batch=1)
    batched = _core_arm(design, fw, submissions, max_batch=MAX_BATCH)
    http = _http_arm(design, fw, submissions)
    return {
        "scale": scale,
        "workload": {
            "n_requests": len(submissions),
            "n_unique_chips": N_CHIPS.get(scale, N_CHIPS["tiny"]),
            "design_gates": design.nl.n_gates,
            "precomputed_reports": True,
        },
        "host": {"cpu_logical": os.cpu_count()},
        "sequential": sequential,
        "batched": batched,
        "http": http,
        "speedup": {
            "batched_vs_sequential": round(
                batched["throughput_rps"] / sequential["throughput_rps"], 3
            ),
        },
    }


def test_serving_throughput(benchmark, scale):
    result = run_once(benchmark, _bench_serving, scale)
    w = result["workload"]
    print(
        f"\n[{scale}] {w['n_requests']} concurrent datalogs "
        f"({w['n_unique_chips']} unique chips, reports precomputed)"
    )
    for arm in ("sequential", "batched"):
        row = result[arm]
        print(
            f"  core {arm:10s} max_batch={row['max_batch']:3d}  "
            f"{row['throughput_rps']:9.1f} req/s  "
            f"(mean batch {row['mean_batch_size']:.1f})"
        )
    http = result["http"]
    print(
        f"  http end-to-end  {http['throughput_rps']:9.1f} req/s  "
        f"p50 {http['latency_p50_s'] * 1e3:.1f}ms  "
        f"p99 {http['latency_p99_s'] * 1e3:.1f}ms  "
        f"429 retries: {http['retries_429']}"
    )
    speedup = result["speedup"]["batched_vs_sequential"]
    print(f"  batched vs sequential core: {speedup:.2f}x")
    assert percentile([1.0, 2.0], 50) >= 1.0  # keep the helper honest
    if scale == "default":
        # Only the paper-shaped run refreshes the committed snapshot; smoke
        # scales would clobber it with non-representative numbers.
        SNAPSHOT.write_text(json.dumps(result, indent=2) + "\n")
        assert speedup >= SPEEDUP_FLOOR
