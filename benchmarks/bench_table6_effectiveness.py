"""Bench: regenerate Table VI (fault-localization effectiveness, no compaction)."""

from conftest import run_once

from repro.experiments import effectiveness, format_effectiveness


def test_table6_effectiveness_bypass(benchmark, scale, n_samples):
    rows = run_once(benchmark, effectiveness, "bypass", n_samples=n_samples, scale=scale)
    print("\n" + format_effectiveness(rows, "Table VI: effectiveness (bypass)"))
    assert len(rows) == 16
    for r in rows:
        # Post-processing can only shrink reports.
        assert r.gnn.quality.mean_resolution <= r.atpg.quality.mean_resolution + 1e-9
        assert r.combined.quality.mean_resolution <= r.gnn.quality.mean_resolution + 1e-9
    # Accuracy-loss and tier-localization shapes are asserted in aggregate:
    # with 30-chip test sets and ~500-chip training sets the per-row accuracy
    # loss is noisier than the paper's <1% (see EXPERIMENTS.md), but the
    # averages must stay in the useful regime and the GNN must localize
    # better than the 2D baseline overall.
    mean_loss = sum(r.atpg.quality.accuracy - r.gnn.quality.accuracy for r in rows) / len(rows)
    assert mean_loss <= 0.15
    locs = [(r.gnn.tier_localization, r.baseline.tier_localization)
            for r in rows if r.gnn.tier_localization is not None]
    if locs:
        mean_gnn = sum(g for g, _b in locs) / len(locs)
        mean_base = sum(b for _g, b in locs) / len(locs)
        assert mean_gnn >= mean_base
