"""Bench: regenerate Fig. 10 (PFA time saved vs per-candidate cost x)."""

from conftest import run_once

from repro.experiments import format_pfa_savings, pfa_savings, runtime_table


def test_fig10_pfa_savings(benchmark, scale, n_samples):
    rows = run_once(benchmark, runtime_table, n_samples=n_samples, scale=scale)
    curves = pfa_savings(rows, x_values=(1.0, 10.0, 100.0, 1000.0))
    print("\n" + format_pfa_savings(curves))
    assert set(curves) == {"AES", "Tate", "netcard", "leon3mp"}
    for design, pts in curves.items():
        # T_diff is linear in x: its slope is the per-chip FHI improvement.
        deltas = [d for _x, d in pts]
        assert deltas == sorted(deltas) or deltas == sorted(deltas, reverse=True)
        # Whenever FHI improved, savings must turn positive at large x;
        # with no FHI change the curve stays flat at the small (seconds)
        # framework overhead — both are valid shapes at this report
        # sharpness (the paper's 10^3-10^6 s savings need its FHI≈4-20
        # regime, which requires full-size designs; see EXPERIMENTS.md).
        implied_dfhi = (deltas[-1] - deltas[0]) / (999.0 * max(n_samples, 1))
        assert implied_dfhi >= -0.5  # reordering must not wreck the ranking
        if implied_dfhi > 0.05:
            assert deltas[-1] > 0
