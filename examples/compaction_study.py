#!/usr/bin/env python
"""Response-compaction study (paper Tables V/VII contrast).

Diagnoses the same injected defects twice — once with scan-out bypass
(uncompressed responses) and once through the XOR response compactor — and
shows how compaction inflates the candidate space and what the GNN
framework recovers in each mode.

Run:  python examples/compaction_study.py
"""

import numpy as np

from repro import (
    DesignConfig,
    EffectCauseDiagnoser,
    GeneratorSpec,
    M3DDiagnosisFramework,
    build_dataset,
    prepare_design,
    summarize_reports,
)


def main() -> None:
    spec = GeneratorSpec("leon", "leon3mp_like", 550, 64, 16, 16, seed=5)
    design = prepare_design(
        spec, DesignConfig.standard("Syn-1"), n_chains=8, chains_per_channel=4,
        max_patterns=128,
    )
    print(f"design: {design.nl}")
    print(
        f"scan: {design.scan.n_chains} chains -> {design.scan.n_channels} channels "
        f"({design.scan.n_chains // design.scan.n_channels}x compaction)"
    )

    for mode in ("bypass", "compacted"):
        obsmap = design.obsmap(mode)
        print(f"\n=== {mode} mode ({obsmap.n_observations} observations) ===")
        train = build_dataset(design, mode, 150, seed=0)
        test = build_dataset(design, mode, 40, seed=99)

        framework = M3DDiagnosisFramework(epochs=25, seed=0)
        framework.fit([train])

        diagnoser = EffectCauseDiagnoser(
            design.nl, obsmap, design.patterns, mivs=design.mivs, sim=design.sim
        )
        reports = [diagnoser.diagnose(item.sample.log) for item in test.items]
        truths = [item.faults for item in test.items]
        before = summarize_reports(zip(reports, truths))

        outs = [
            framework.diagnose(design, mode, item.sample.log, rep, graph=item.graph)
            for item, rep in zip(test.items, reports)
        ]
        after = summarize_reports(zip([o.report for o in outs], truths))
        log_sizes = [len(item.sample.log) for item in test.items]
        print(f"mean failure-log size: {np.mean(log_sizes):.1f} entries")
        print(
            f"ATPG report : acc={before.accuracy:.1%} "
            f"res={before.mean_resolution:.1f} fhi={before.mean_fhi:.1f}"
        )
        print(
            f"GNN-updated : acc={after.accuracy:.1%} "
            f"res={after.mean_resolution:.1f} fhi={after.mean_fhi:.1f} "
            f"(resolution {1 - after.mean_resolution / before.mean_resolution:+.1%})"
        )


if __name__ == "__main__":
    main()
