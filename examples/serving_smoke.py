#!/usr/bin/env python
"""Serving smoke: a live ``repro serve`` must match offline diagnosis bytes.

The end-to-end contract check CI runs on every push:

1. build a design and train a framework offline, save it to ``.npz``;
2. spawn ``repro serve --http`` as a subprocess warm-loading that same
   checkpoint, and wait for its ready line;
3. fire concurrent datalog submissions at it (some with precomputed ATPG
   reports, some forcing server-side effect-cause diagnosis);
4. diff every response against an offline ``pipeline.diagnose`` rerun of the
   same logs — after stripping volatile provenance (timings, batch size) the
   serialized documents must be byte-identical;
5. write the latency/throughput stats as a JSON artifact.

Exit status is non-zero on any mismatch or failed request.

Run:  PYTHONPATH=src python examples/serving_smoke.py [artifact.json]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import (
    DesignConfig,
    EffectCauseDiagnoser,
    GeneratorSpec,
    build_dataset,
    prepare_design,
)
from repro.core import M3DDiagnosisFramework
from repro.core.io import save_framework
from repro.serve import (
    ModelRegistry,
    ServeClient,
    candidate_to_json,
    canonical_response,
    dumps_response,
    fire_concurrent,
    result_response,
)
from repro.tester.datalog import dumps_datalog

GATES = 300
SEED = 7
CONFIG = "Syn-1"
MODE = "bypass"
TRAIN_SAMPLES = 80
EPOCHS = 8
N_CHIPS = 24
CONCURRENCY = 16


def main() -> int:
    artifact = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("serving_smoke.json")

    # 1. The same design ``repro serve --gates 300 --seed 7`` builds.
    spec = GeneratorSpec(
        f"serve-{CONFIG.lower()}", "aes_like", GATES, max(16, GATES // 8),
        16, 16, seed=SEED,
    )
    design = prepare_design(
        spec, DesignConfig.standard(CONFIG), n_chains=4, chains_per_channel=2,
        max_patterns=128,
    )
    train = build_dataset(design, MODE, TRAIN_SAMPLES, seed=0)
    fw = M3DDiagnosisFramework(epochs=EPOCHS, seed=0)
    fw.fit([train])

    with tempfile.TemporaryDirectory() as tmp:
        fw_path = str(Path(tmp) / "smoke-model.npz")
        save_framework(fw, fw_path)

        # 2. Live server warm-loading the identical checkpoint.
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--http", "127.0.0.1:0",
                "--gates", str(GATES), "--seed", str(SEED),
                "--configs", CONFIG, "--mode", MODE,
                "--framework", fw_path,
            ],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        try:
            assert proc.stdout is not None
            # Skip the runtime's [stage] progress lines until the ready line.
            while True:
                ready = proc.stdout.readline().strip()
                if ready.startswith("listening on http://"):
                    break
                if not ready and proc.poll() is not None:
                    print("server exited before ready line", file=sys.stderr)
                    return 1
            base_url = ready.split("listening on ", 1)[1]
            print(ready)

            # 3. Concurrent submissions; odd ones carry precomputed reports.
            chips = build_dataset(design, MODE, N_CHIPS, seed=99).items
            diagnoser = EffectCauseDiagnoser(
                design.nl, design.obsmap(MODE), design.patterns,
                mivs=design.mivs, sim=design.sim,
            )
            reports = [diagnoser.diagnose(c.sample.log) for c in chips]
            submissions = []
            for i, (chip, report) in enumerate(zip(chips, reports)):
                sub = {
                    "id": f"smoke{i}",
                    "datalog": dumps_datalog(
                        chip.sample.log, f"chip{i}", design.obsmap(MODE)
                    ),
                }
                if i % 2 == 1:
                    sub["report"] = [
                        candidate_to_json(c) for c in report.candidates
                    ]
                submissions.append(sub)

            client = ServeClient(base_url, timeout_s=60.0)
            fired = fire_concurrent(client, submissions, concurrency=CONCURRENCY)
            responses = fired.pop("responses")
            print(
                f"{fired['n_ok']}/{fired['n_requests']} ok, "
                f"p50 {fired['latency_p50_s'] * 1e3:.1f}ms "
                f"p99 {fired['latency_p99_s'] * 1e3:.1f}ms, "
                f"{fired['throughput_rps']} req/s"
            )
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    # 4. Offline rerun: same weights, same logs, one code path.
    registry = ModelRegistry()
    record = registry.register(CONFIG, "v1", fw)
    provenance = {
        "design": CONFIG,
        "config": CONFIG,
        "mode": MODE,
        "model_version": record.version,
        "nn_backend": record.backend,
    }
    mismatches = 0
    for i, (chip, report, server_doc) in enumerate(
        zip(chips, reports, responses)
    ):
        result = record.framework.diagnose(design, MODE, chip.sample.log, report)
        offline_doc = result_response(result, f"smoke{i}", f"chip{i}", provenance)
        offline = dumps_response(canonical_response(offline_doc))
        served = dumps_response(canonical_response(server_doc))
        if offline != served:
            mismatches += 1
            print(f"MISMATCH smoke{i}:\n  offline {offline}\n  served  {served}")

    # 5. The artifact CI uploads.
    fired["concurrency"] = CONCURRENCY
    fired["mismatches"] = mismatches
    artifact.write_text(json.dumps(fired, indent=2, sort_keys=True) + "\n")
    print(f"wrote {artifact}")

    if mismatches or fired["n_errors"]:
        print(
            f"FAIL: {mismatches} mismatch(es), {fired['n_errors']} error(s)",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(responses)} responses byte-identical to offline diagnose")
    return 0


if __name__ == "__main__":
    sys.exit(main())
