#!/usr/bin/env python
"""Transferability across design configurations (paper Section IV, Figs. 5/6).

Trains the framework once on the baseline configuration plus two
randomly-partitioned netlists (the paper's data augmentation), then
evaluates it — without retraining — on test-point-inserted (TPI),
re-synthesized (Syn-2), and alternatively partitioned (Par) variants of the
same design, and shows the PCA feature-space overlap that makes this work.

Run:  python examples/transferability.py
"""

import numpy as np

from repro import GeneratorSpec, M3DDiagnosisFramework, build_dataset, prepare_design
from repro.core import build_training_sets, graph_feature_vector
from repro.data import DesignConfig
from repro.nn import PCA

SPEC = GeneratorSpec("tate", "tate_like", 450, 56, 16, 16, seed=2)
CONFIGS = ("Syn-1", "TPI", "Syn-2", "Par")


def main() -> None:
    print("preparing design configurations...")
    prepared = {
        name: prepare_design(
            SPEC, DesignConfig.standard(name), n_chains=4, chains_per_channel=2,
            max_patterns=128,
        )
        for name in CONFIGS + ("Rand-0", "Rand-1")
    }

    # --- Fig. 5: feature-space overlap across configurations -------------
    vectors, labels = [], []
    for name in CONFIGS:
        ds = build_dataset(prepared[name], "bypass", 40, seed=10)
        for g in ds.graphs:
            vectors.append(graph_feature_vector(g))
            labels.append(name)
    x = np.asarray(vectors)
    x = (x - x.mean(axis=0)) / np.where(x.std(axis=0) == 0, 1, x.std(axis=0))
    proj = PCA(2).fit_transform(x)
    print("\nFig. 5 — PCA centroids per configuration (overlapping clouds):")
    for name in CONFIGS:
        pts = proj[[i for i, l in enumerate(labels) if l == name]]
        c = pts.mean(axis=0)
        spread = np.sqrt(((pts - c) ** 2).sum(axis=1).mean())
        print(f"  {name:6s} centroid=({c[0]:+.2f}, {c[1]:+.2f}) spread={spread:.2f}")

    # --- Fig. 6: transferred model vs per-configuration evaluation -------
    print("\ntraining transferred model (Syn-1 + 2 random partitions)...")
    train_sets = build_training_sets(
        [prepared["Syn-1"], prepared["Rand-0"], prepared["Rand-1"]],
        "bypass", 120, seed=100,
    )
    framework = M3DDiagnosisFramework(epochs=30, seed=0)
    framework.fit(train_sets)

    print("\nFig. 6 — transferred-model accuracy per configuration:")
    for name in CONFIGS:
        test = build_dataset(prepared[name], "bypass", 50, seed=777)
        tier_graphs = [g for g in test.graphs if g.y >= 0]
        tier_acc = framework.tier_predictor.accuracy(tier_graphs)
        miv_acc = framework.miv_pinpointer.sample_accuracy(test.graphs)
        print(f"  {name:6s} tier-predictor={tier_acc:.1%}  MIV-pinpointer={miv_acc:.1%}")
    print("\n(no retraining was performed between configurations)")


if __name__ == "__main__":
    main()
