#!/usr/bin/env python
"""Three-tier M3D diagnosis (the paper's multi-tier extension).

The Tier-predictor generalizes beyond two tiers by widening its graph
representation vector.  This example partitions a design into *three*
device tiers with the k-way partitioner, extracts one MIV per (net,
destination tier) crossing, trains a 3-class Tier-predictor, and prunes
ATPG reports down to the predicted tier.

Run:  python examples/three_tier.py
"""

import numpy as np

from repro import (
    DesignConfig,
    EffectCauseDiagnoser,
    GeneratorSpec,
    M3DDiagnosisFramework,
    build_dataset,
    prepare_design,
    summarize_reports,
)


def main() -> None:
    spec = GeneratorSpec("m3d3t", "leon3mp_like", 450, 56, 16, 16, seed=8)
    design = prepare_design(
        spec,
        DesignConfig("3T", n_tiers=3, partition_seed=5),
        n_chains=8,
        chains_per_channel=4,
        max_patterns=128,
    )
    tiers = sorted({g.tier for g in design.nl.gates})
    print(f"design: {design.nl}")
    print(f"tiers: {tiers}, MIVs: {len(design.mivs)} "
          f"(one per net per destination tier)")

    train = build_dataset(design, "bypass", 240, seed=0)
    test = build_dataset(design, "bypass", 60, seed=99)
    fw = M3DDiagnosisFramework(epochs=30, seed=0, n_tiers=3)
    fw.fit([train])

    graphs = [g for g in test.graphs if g.y >= 0]
    preds = fw.tier_predictor.predict(graphs)
    truth = np.asarray([g.y for g in graphs])
    print(f"\n3-class tier accuracy: {np.mean(preds == truth):.1%} "
          f"(chance would be 33.3%)")
    for t in tiers:
        sel = truth == t
        if sel.any():
            print(f"  tier {t}: {np.mean(preds[sel] == t):.1%} over {sel.sum()} chips")

    diag = EffectCauseDiagnoser(
        design.nl, design.obsmap("bypass"), design.patterns,
        mivs=design.mivs, sim=design.sim,
    )
    reports = [diag.diagnose(item.sample.log) for item in test.items]
    policy = fw.policy_for(design)
    outs = [policy.apply(r, item.graph) for r, item in zip(reports, test.items)]
    truths = [item.faults for item in test.items]
    before = summarize_reports(zip(reports, truths))
    after = summarize_reports(zip([o.report for o in outs], truths))
    print(f"\nATPG report : acc={before.accuracy:.1%} res={before.mean_resolution:.1f}")
    print(f"pruned      : acc={after.accuracy:.1%} res={after.mean_resolution:.1f} "
          f"({1 - after.mean_resolution / before.mean_resolution:+.1%} resolution)")


if __name__ == "__main__":
    main()
