#!/usr/bin/env python
"""Foundry yield-learning scenario (the paper's motivating use case).

An immature M3D process produces *tier-systematic* defects: a batch of chips
fails on the tester with 2-5 delay faults clustered in the same tier.
Tier-level localization lets the foundry review the suspect tier's process
steps *before* the slow physical failure analysis completes.

This example simulates such a batch (a deliberately biased process that
damages the top tier 80% of the time), runs the framework's tier-level
localization over every failing chip, and prints the verdict the foundry
would act on — together with the time the improved first-hit index saves in
the downstream PFA queue.

Run:  python examples/yield_learning.py
"""

from collections import Counter

import numpy as np

from repro import (
    DesignConfig,
    EffectCauseDiagnoser,
    GeneratorSpec,
    M3DDiagnosisFramework,
    build_dataset,
    first_hit_index,
    prepare_design,
)
from repro.core.backtrace import backtrace
from repro.m3d import DefectSampler
from repro.tester import InjectionCampaign


def main() -> None:
    spec = GeneratorSpec("ncard", "netcard_like", 500, 64, 16, 16, seed=4)
    design = prepare_design(
        spec, DesignConfig.standard("Syn-1"), n_chains=8, chains_per_channel=4,
        max_patterns=128,
    )
    print(f"design: {design.nl} with {len(design.mivs)} MIVs")

    # Train the framework on single- and multi-fault samples.
    train_single = build_dataset(design, "compacted", 120, seed=0)
    train_multi = build_dataset(design, "compacted", 80, seed=1, kind="multi")
    framework = M3DDiagnosisFramework(epochs=25, seed=0)
    framework.fit([train_single, train_multi])

    # Simulate the failing batch: a top-tier-biased systematic defect.
    rng = np.random.default_rng(33)
    obsmap = design.obsmap("compacted")
    sampler = DefectSampler(design.nl, design.mivs, seed=34)
    campaign = InjectionCampaign(design.machine, design.good, obsmap, sampler)
    batch = []
    true_tiers = []
    while len(batch) < 30:
        tier = 1 if rng.random() < 0.8 else 0
        faults = [sampler.sample_gate_fault(tier) for _ in range(rng.integers(2, 6))]
        log = campaign._log_of(faults)
        if log is not None:
            batch.append((faults, log))
            true_tiers.append(tier)

    # Tier-level localization per chip — no ATPG diagnosis needed for this.
    votes = Counter()
    correct = 0
    for (faults, log), tier in zip(batch, true_tiers):
        pred, conf, _mivs = framework.localize(design, "compacted", log)
        votes[pred] += 1
        correct += int(pred == tier)
    print(f"\nbatch of {len(batch)} failing chips (80% injected in top tier)")
    print(f"tier votes: bottom={votes[0]}, top={votes[1]} (errors/no-trace={votes[-1]})")
    print(f"per-chip tier localization accuracy: {correct / len(batch):.1%}")
    suspect = max((t for t in votes if t >= 0), key=lambda t: votes[t])
    print(f"==> foundry verdict: review tier-{suspect} process steps "
          f"({'top' if suspect == 1 else 'bottom'} tier)")

    # PFA queue effect: FHI before vs after pruning/reordering.
    diagnoser = EffectCauseDiagnoser(
        design.nl, obsmap, design.patterns, mivs=design.mivs, sim=design.sim
    )
    fhi_before, fhi_after = [], []
    for (faults, log), _tier in zip(batch[:15], true_tiers):
        report = diagnoser.diagnose(log)
        out = framework.diagnose(design, "compacted", log, report)
        a = first_hit_index(report, faults)
        b = first_hit_index(out.report, faults)
        if a is not None and b is not None:
            fhi_before.append(a)
            fhi_after.append(b)
    if fhi_before:
        x = 60.0  # seconds of PFA per candidate
        saved = (np.mean(fhi_before) - np.mean(fhi_after)) * x
        print(
            f"\nmean FHI {np.mean(fhi_before):.1f} -> {np.mean(fhi_after):.1f}; "
            f"at {x:.0f}s of PFA per candidate that saves {saved:.0f}s per chip"
        )


if __name__ == "__main__":
    main()
