#!/usr/bin/env python
"""Quickstart: diagnose a single delay fault in an M3D design.

Walks the full flow on a small synthetic design:

1. generate a netlist and partition it into two tiers (MIVs extracted);
2. insert scan, generate TDF patterns, and simulate the good machine;
3. inject one transition delay fault and record the tester failure log;
4. run the effect-cause (ATPG-style) diagnosis;
5. train the GNN framework and use it to prune/reorder the report.

Run:  python examples/quickstart.py
"""

from repro import (
    DesignConfig,
    EffectCauseDiagnoser,
    GeneratorSpec,
    M3DDiagnosisFramework,
    build_dataset,
    first_hit_index,
    prepare_design,
    report_is_accurate,
)


def main() -> None:
    # 1-2. The Fig. 4 flow in one call: synthesize, partition, scan, ATPG.
    spec = GeneratorSpec("demo", "aes_like", 400, 48, 16, 16, seed=7)
    design = prepare_design(
        spec, DesignConfig.standard("Syn-1"), n_chains=4, chains_per_channel=2,
        max_patterns=128,
    )
    print(f"design: {design.nl}")
    print(
        f"tiers balanced at {design.partition.balance:.2f}, "
        f"{len(design.mivs)} MIVs, {design.patterns.n_patterns} TDF patterns, "
        f"fault coverage {design.atpg.fault_coverage:.1%}"
    )

    # 3. Inject faults; the first dataset trains the GNNs, one extra chip is
    # the "customer return" we diagnose below.
    train = build_dataset(design, "bypass", 150, seed=0)
    chip = build_dataset(design, "bypass", 1, seed=999).items[0]
    fault = chip.faults[0]
    print(f"\ninjected defect: {fault.label} (tier label {chip.graph.y})")
    print(f"failure log: {len(chip.sample.log)} failing responses")

    # 4. ATPG-style diagnosis.
    diagnoser = EffectCauseDiagnoser(
        design.nl, design.obsmap("bypass"), design.patterns,
        mivs=design.mivs, sim=design.sim,
    )
    report = diagnoser.diagnose(chip.sample.log)
    print(f"\nATPG report: {report.resolution} candidates")
    for rank, cand in enumerate(report.candidates[:5], start=1):
        tier = "MIV" if cand.tier is None else f"tier {cand.tier}"
        print(f"  {rank}. {cand.site.label:28s} {tier:7s} score={cand.score:.2f}")

    # 5. GNN framework: train, then prune and reorder the report.
    framework = M3DDiagnosisFramework(epochs=25, seed=0)
    stats = framework.fit([train])
    print(
        f"\ntrained: tier accuracy {stats['tier_train_accuracy']:.1%} "
        f"(Tp = {stats['tp_threshold']:.3f})"
    )
    result = framework.diagnose(
        design, "bypass", chip.sample.log, report, graph=chip.graph
    )
    print(
        f"policy action: {result.action} "
        f"(predicted tier {result.predicted_tier}, confidence {result.confidence:.2f})"
    )
    print(f"final report: {result.report.resolution} candidates")
    print(f"accurate: {report_is_accurate(result.report, chip.faults)}, "
          f"first hit at rank {first_hit_index(result.report, chip.faults)}")


if __name__ == "__main__":
    main()
