#!/usr/bin/env python
"""Region-level fault localization on a conventional 2D IC.

The paper notes the models "are not restricted to M3D designs: if 2D
circuits are partitioned into distinct regions, Tier-predictor can be
utilized to perform region-level fault localization".  This example does
exactly that — a 2D design is split into four placement regions with the
k-way partitioner, regions play the role of tiers, and the 4-class
Tier-predictor narrows every failing chip to one region of the die.

Run:  python examples/region_2d.py
"""

import numpy as np

from repro import GeneratorSpec, M3DDiagnosisFramework, build_dataset, prepare_design
from repro.data import DesignConfig

N_REGIONS = 4


def main() -> None:
    spec = GeneratorSpec("soc2d", "netcard_like", 500, 64, 16, 16, seed=6)
    # Regions are just tiers to the framework; the k-way partitioner plays
    # the role of a placement-based region assignment.
    design = prepare_design(
        spec,
        DesignConfig("regions", n_tiers=N_REGIONS, partition_seed=3),
        n_chains=8,
        chains_per_channel=4,
        max_patterns=128,
    )
    region_sizes = np.bincount([g.tier for g in design.nl.gates], minlength=N_REGIONS)
    print(f"design: {design.nl}")
    print(f"regions: {N_REGIONS}, gates per region: {region_sizes.tolist()}")
    print(f"inter-region nets: {len(design.mivs)}")

    train = build_dataset(design, "bypass", 320, seed=0, miv_fraction=0.0)
    test = build_dataset(design, "bypass", 80, seed=99, miv_fraction=0.0)

    fw = M3DDiagnosisFramework(
        epochs=30, seed=0, n_tiers=N_REGIONS, use_miv_pinpointer=False
    )
    fw.fit([train])

    graphs = [g for g in test.graphs if g.y >= 0]
    preds = fw.tier_predictor.predict(graphs)
    truth = np.asarray([g.y for g in graphs])
    acc = float(np.mean(preds == truth))
    print(f"\nregion-level localization accuracy: {acc:.1%} "
          f"(chance = {1 / N_REGIONS:.1%})")
    for r in range(N_REGIONS):
        sel = truth == r
        if sel.any():
            print(f"  region {r}: {np.mean(preds[sel] == r):.1%} over {sel.sum()} chips")
    print("\nPFA can now start probing in one quadrant of the die instead of four.")


if __name__ == "__main__":
    main()
