#!/usr/bin/env python
"""Diagnosing an externally supplied netlist (ISCAS-89 ``.bench`` import).

The whole framework runs on any flat gate-level design, not only the
generated benchmarks.  This example imports the classic ISCAS-89 ``s27``
circuit from its ``.bench`` description, scales it up by chaining a few
copies (s27 alone is too small to partition meaningfully), partitions it
into two tiers, and runs the fault-dictionary and effect-cause diagnosers
side by side on injected defects.

Run:  python examples/custom_netlist.py
"""

import numpy as np

from repro.atpg import generate_tdf_patterns
from repro.dft import ObservationMap, build_scan_chains
from repro.diagnosis import (
    EffectCauseDiagnoser,
    FaultDictionary,
    first_hit_index,
    report_is_accurate,
)
from repro.m3d import DefectSampler, apply_partition, extract_mivs, mincut_bipartition, miv_fault_sites
from repro.netlist import NetlistBuilder, loads_bench
from repro.sim import CompiledSimulator, FaultMachine
from repro.tester import InjectionCampaign

S27 = """
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
"""


def widen(n_copies: int):
    """Stitch ``n_copies`` of s27 side by side, cross-coupling neighbours."""
    b = NetlistBuilder("s27xN")
    outs = []
    for k in range(n_copies):
        sub = loads_bench(S27, name=f"s27_{k}")
        net_map = {}
        for nid in sub.primary_inputs:
            net_map[nid] = b.add_primary_input(f"c{k}_{sub.nets[nid].name}")
        for f in sub.flops:
            net_map[f.q_net] = b.add_net(f"c{k}_{sub.nets[f.q_net].name}")
        for gid in sub.topo_order():
            g = sub.gates[gid]
            net_map[g.out] = b.add_gate(
                g.cell.name, [net_map[x] for x in g.fanin], gate_name=f"c{k}_{g.name}"
            )
        for f in sub.flops:
            b.add_flop_with_q(net_map[f.d_net], net_map[f.q_net], name=f"c{k}_{f.name}")
        outs.append(net_map[sub.primary_outputs[0]])
    # Cross-couple copies so the partitioner has real structure to cut.
    prev = outs[0]
    for k, out in enumerate(outs[1:], start=1):
        prev = b.add_gate("XOR2", [prev, out], gate_name=f"mix{k}")
    b.mark_primary_output(prev)
    return b.finish()


def main() -> None:
    nl = widen(12)
    print(f"imported design: {nl}")
    apply_partition(nl, mincut_bipartition(nl, seed=1))
    mivs = extract_mivs(nl)
    print(f"partitioned into 2 tiers with {len(mivs)} MIVs")

    sim = CompiledSimulator(nl)
    atpg = generate_tdf_patterns(
        nl, seed=0, mivs=miv_fault_sites(nl, mivs), max_patterns=128,
        target_coverage=0.98, sim=sim, deterministic_topoff=True,
    )
    print(f"ATPG: {atpg.patterns.n_patterns} patterns, "
          f"coverage {atpg.fault_coverage:.1%} (with PODEM top-off)")

    good = sim.simulate_pair(atpg.patterns.v1, atpg.patterns.v2)
    scan = build_scan_chains(nl, n_chains=4, chains_per_channel=2, seed=0)
    obsmap = ObservationMap.bypass(nl, scan)
    campaign = InjectionCampaign(
        FaultMachine(sim), good, obsmap, DefectSampler(nl, mivs, seed=7)
    )
    chips = campaign.single_fault_samples(20)

    effect_cause = EffectCauseDiagnoser(nl, obsmap, atpg.patterns, mivs=mivs, sim=sim)
    dictionary = FaultDictionary(nl, obsmap, atpg.patterns, mivs=mivs, sim=sim)
    print(f"fault dictionary: {len(dictionary)} entries, "
          f"{dictionary.size_bytes() / 1024:.0f} kB")

    ec_acc = fd_acc = 0
    for chip in chips:
        ec = effect_cause.diagnose(chip.log)
        fd = dictionary.diagnose(chip.log)
        ec_acc += report_is_accurate(ec, chip.faults)
        fd_acc += report_is_accurate(fd, chip.faults)
    print(f"\neffect-cause accuracy : {ec_acc}/{len(chips)}")
    print(f"dictionary accuracy   : {fd_acc}/{len(chips)}")


if __name__ == "__main__":
    main()
