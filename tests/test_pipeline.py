"""Integration tests: the end-to-end framework on a small prepared design."""

import numpy as np
import pytest

from repro.core import BackupDictionary, M3DDiagnosisFramework
from repro.data import build_dataset
from repro.diagnosis import (
    EffectCauseDiagnoser,
    first_hit_index,
    report_is_accurate,
    summarize_reports,
)


@pytest.fixture(scope="module")
def trained(prepared):
    train = build_dataset(prepared, "bypass", 120, seed=51)
    fw = M3DDiagnosisFramework(epochs=25, seed=0)
    stats = fw.fit([train])
    return fw, stats


@pytest.fixture(scope="module")
def test_env(prepared):
    test = build_dataset(prepared, "bypass", 40, seed=52)
    diag = EffectCauseDiagnoser(
        prepared.nl,
        prepared.obsmap("bypass"),
        prepared.patterns,
        mivs=prepared.mivs,
        sim=prepared.sim,
    )
    reports = [diag.diagnose(item.sample.log) for item in test.items]
    return test, reports


class TestFit:
    def test_stats(self, trained):
        _fw, stats = trained
        assert 0.6 <= stats["tier_train_accuracy"] <= 1.0
        assert 0.0 <= stats["tp_threshold"] <= 1.0

    def test_models_present(self, trained):
        fw, _ = trained
        assert fw.tier_predictor._fitted
        assert fw.miv_pinpointer is not None

    def test_empty_training_rejected(self):
        fw = M3DDiagnosisFramework()
        with pytest.raises(ValueError, match="no training graphs"):
            fw.fit([])

    def test_policy_before_fit_rejected(self, prepared):
        fw = M3DDiagnosisFramework()
        with pytest.raises(RuntimeError, match="not fitted"):
            fw.policy_for(prepared)


class TestDiagnose:
    def test_localize(self, trained, prepared, test_env):
        fw, _ = trained
        test, _reports = test_env
        hits = total = 0
        for item in test.items:
            tier, conf, _mivs = fw.localize(prepared, "bypass", item.sample.log)
            assert 0.0 <= conf <= 1.0
            if item.graph.y >= 0:
                total += 1
                hits += int(tier == item.graph.y)
        assert hits / total >= 0.6

    def test_diagnose_improves_or_preserves_quality(self, trained, prepared, test_env):
        fw, _ = trained
        test, reports = test_env
        truths = [item.faults for item in test.items]
        before = summarize_reports(zip(reports, truths))
        outs = [
            fw.diagnose(prepared, "bypass", item.sample.log, rep, graph=item.graph)
            for item, rep in zip(test.items, reports)
        ]
        after = summarize_reports(zip([o.report for o in outs], truths))
        assert after.mean_resolution <= before.mean_resolution + 1e-9
        assert after.accuracy >= before.accuracy - 0.1

    def test_backup_dictionary_restores_accuracy(self, trained, prepared, test_env):
        fw, _ = trained
        test, reports = test_env
        backup = BackupDictionary()
        restored_acc = atpg_acc = 0
        for i, (item, rep) in enumerate(zip(test.items, reports)):
            out = fw.diagnose(
                prepared, "bypass", item.sample.log, rep, backup=backup, chip_id=i,
                graph=item.graph,
            )
            final = backup.restore(i, out.report)
            restored_acc += report_is_accurate(final, item.faults)
            atpg_acc += report_is_accurate(rep, item.faults)
        assert restored_acc == atpg_acc
        assert backup.size_bytes() >= 0

    def test_diagnose_empty_backtrace_passthrough(self, trained, prepared):
        from repro.tester import FailureLog
        from repro.diagnosis import DiagnosisReport

        fw, _ = trained
        rep = DiagnosisReport(candidates=[])
        out = fw.diagnose(prepared, "bypass", FailureLog(entries=[]), rep)
        assert out.action == "passthrough"
        assert out.report is rep


class TestPolicyCache:
    def test_repeated_diagnose_reuses_one_policy(self, trained, prepared, test_env,
                                                 monkeypatch):
        """Regression: diagnose used to rebuild a PruneReorderPolicy per call."""
        import repro.core.pipeline as pipeline_mod

        fw, _ = trained
        fw._policy_cache.clear()
        built = []
        real = pipeline_mod.PruneReorderPolicy

        class Counting(real):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "PruneReorderPolicy", Counting)
        test, reports = test_env
        for item, rep in zip(test.items[:3], reports[:3]):
            fw.diagnose(prepared, "bypass", item.sample.log, rep, graph=item.graph)
        assert len(built) == 1
        assert fw.policy_for(prepared) is fw.policy_for(prepared)

    def test_cache_keys_on_design_and_use_tier(self, trained, prepared, prepared_par):
        fw, _ = trained
        base = fw.policy_for(prepared)
        assert fw.policy_for(prepared, use_tier=False) is not base
        assert fw.policy_for(prepared_par) is not base
        assert fw.policy_for(prepared) is base

    def test_refit_invalidates_cache(self, prepared):
        from repro.data import build_dataset

        train = build_dataset(prepared, "bypass", 30, seed=55)
        fw = M3DDiagnosisFramework(epochs=2, seed=0)
        fw.fit([train])
        stale = fw.policy_for(prepared)
        fw.fit([train])
        assert fw.policy_for(prepared) is not stale


class TestBatchedDiagnosis:
    def test_batched_matches_sequential_on_the_wire(self, trained, prepared,
                                                    test_env):
        """Serving and offline are one code path: identical canonical bytes."""
        from repro.serve import dumps_response, result_response

        fw, _ = trained
        test, reports = test_env
        items, reps = test.items[:8], reports[:8]
        logs = [i.sample.log for i in items]
        graphs = [i.graph for i in items]
        seq = [
            fw.diagnose(prepared, "bypass", log, rep, graph=g)
            for log, rep, g in zip(logs, reps, graphs)
        ]
        bat = fw.diagnose_batch(prepared, "bypass", logs, reps, graphs=graphs)
        assert len(bat) == len(seq)
        for a, b in zip(seq, bat):
            assert a.action == b.action
            assert a.predicted_tier == b.predicted_tier
            assert a.faulty_mivs == b.faulty_mivs
            wire_a = dumps_response(result_response(a, "x", "x", {}))
            wire_b = dumps_response(result_response(b, "x", "x", {}))
            assert wire_a == wire_b

    def test_empty_backtrace_counter(self, trained, prepared):
        from repro.diagnosis import DiagnosisReport
        from repro.runtime.instrument import RuntimeStats
        from repro.tester import FailureLog

        fw, _ = trained
        stats = RuntimeStats()
        out = fw.diagnose(prepared, "bypass", FailureLog(entries=[]),
                          DiagnosisReport(candidates=[]), stats=stats)
        assert out.action == "passthrough"
        assert stats.counters["diagnose.empty_backtrace"] == 1

    def test_batch_length_mismatch_rejected(self, trained, prepared, test_env):
        fw, _ = trained
        test, reports = test_env
        with pytest.raises(ValueError):
            fw.diagnose_batch(prepared, "bypass",
                              [test.items[0].sample.log], reports[:2])


class TestTransferAcrossConfigs:
    def test_policy_binds_to_other_design(self, trained, prepared_par):
        """Models trained on Syn-1 apply to the Par partitioning unchanged."""
        fw, _ = trained
        test = build_dataset(prepared_par, "bypass", 25, seed=53)
        graphs = [g for g in test.graphs if g.y >= 0]
        acc = fw.tier_predictor.accuracy(graphs)
        assert acc >= 0.5  # transfer without retraining keeps signal

    def test_localize_on_par(self, trained, prepared_par):
        fw, _ = trained
        test = build_dataset(prepared_par, "bypass", 10, seed=54)
        for item in test.items:
            tier, _conf, _m = fw.localize(prepared_par, "bypass", item.sample.log)
            assert tier in (-1, 0, 1)
