"""Chaos-injection suite: recovery paths preserve dataset fingerprints.

The fault-tolerance contract under test: worker crashes, hung units,
corrupted cache payloads, and dropped sidecars cost retries and rebuilds —
never bytes.  Every recovered build here must fingerprint identically to a
clean ``workers=1`` build, and exhausted retries must surface as a
structured :class:`UnitFailedError` naming the failing unit, not as a
silent partial dataset.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import subprocess
import sys
import time

import pytest

from repro.runtime import (
    ChaosError,
    ChaosPlan,
    Coordinator,
    DatasetRuntime,
    DistPolicy,
    RetryPolicy,
    RuntimeStats,
    UnitFailedError,
    chaos_from_env,
    reset_runtime,
    run_worker,
    sample_set_fingerprint,
)
from repro.runtime.faulttol import run_units

pytestmark = pytest.mark.chaos

SEED = 4242


@pytest.fixture(autouse=True)
def _isolate_global_runtime():
    reset_runtime()
    yield
    reset_runtime()


# ------------------------------------------------------------ REPRO_CHAOS
def test_chaos_from_env_parses_all_fields():
    plan = chaos_from_env("crash=0.5, hang=1, corrupt=0.25,drop_sidecar=1,seed=9,hang_s=3")
    assert plan == ChaosPlan(crash=0.5, hang=1.0, corrupt=0.25, drop_sidecar=1.0,
                             seed=9, hang_seconds=3.0)
    assert plan.active


def test_chaos_from_env_empty_and_unset(monkeypatch):
    assert chaos_from_env("") is None
    assert chaos_from_env("  ") is None
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert chaos_from_env() is None
    monkeypatch.setenv("REPRO_CHAOS", "crash=1")
    assert chaos_from_env().crash == 1.0


@pytest.mark.parametrize("bad", ["crash", "crash=x", "explode=1", "crash=1;hang=1"])
def test_chaos_from_env_rejects_malformed(bad):
    with pytest.raises(ValueError, match="REPRO_CHAOS"):
        chaos_from_env(bad)


def test_chaos_decisions_are_deterministic():
    a = ChaosPlan(crash=0.5, seed=7)
    b = ChaosPlan(crash=0.5, seed=7)
    tokens = [("chunk", 0, i) for i in range(64)]
    fires_a = [a._fires("crash", t, a.crash) for t in tokens]
    assert fires_a == [b._fires("crash", t, b.crash) for t in tokens]
    assert any(fires_a) and not all(fires_a)  # 0.5 is neither 0 nor 1
    # Rates 0 and 1 short-circuit to constant decisions.
    assert not ChaosPlan(seed=7)._fires("crash", tokens[0], 0.0)
    assert ChaosPlan(seed=7)._fires("crash", tokens[0], 1.0)


# ------------------------------------------------- run_units failure paths
def _double(task):
    payload, _attempt = task
    return payload * 2


def _crash_on_first_attempt(task):
    payload, attempt = task
    if attempt == 0 and payload == 1:
        os._exit(70)  # hard worker death; the task is lost, never raised
    return payload * 2


def _hang_on_first_attempt(task):
    payload, attempt = task
    if attempt == 0 and payload == 1:
        time.sleep(30)
    return payload * 2


def _always_fail(task):
    payload, _attempt = task
    raise ValueError(f"unit {payload} is cursed")


def _sleep_forever(task):
    time.sleep(60)


def test_run_units_clean_parallel_keeps_order():
    stats = RuntimeStats()
    out = run_units(list(range(6)), _double, workers=4,
                    policy=RetryPolicy(deadline=30), stats=stats)
    assert out == [0, 2, 4, 6, 8, 10]
    assert stats.counters == {}  # no retries, no timeouts, no respawns


def test_run_units_recovers_worker_crash():
    """A hard-killed worker loses its unit; the retry reproduces it."""
    stats = RuntimeStats()
    out = run_units(list(range(4)), _crash_on_first_attempt, workers=4,
                    policy=RetryPolicy(deadline=3, max_retries=2), stats=stats)
    assert out == [0, 2, 4, 6]
    assert stats.counters.get("faulttol.unit.timeouts", 0) >= 1
    assert stats.counters.get("faulttol.unit.retries", 0) >= 1


def test_run_units_recovers_hung_unit():
    """A unit sleeping past its deadline is killed with its pool and retried."""
    stats = RuntimeStats()
    t0 = time.perf_counter()
    out = run_units(list(range(4)), _hang_on_first_attempt, workers=4,
                    policy=RetryPolicy(deadline=2, max_retries=2), stats=stats)
    assert out == [0, 2, 4, 6]
    assert time.perf_counter() - t0 < 25  # nowhere near the 30s sleep
    assert stats.counters.get("faulttol.unit.timeouts", 0) >= 1
    assert stats.counters.get("faulttol.unit.pool_respawns", 0) >= 1


def test_run_units_degrades_to_serial():
    """With no respawn budget, one unhealthy pool drops to in-process serial."""
    stats = RuntimeStats()
    out = run_units(list(range(4)), _hang_on_first_attempt, workers=4,
                    policy=RetryPolicy(deadline=2, max_retries=2,
                                       max_pool_respawns=0), stats=stats)
    assert out == [0, 2, 4, 6]
    assert stats.counters.get("faulttol.unit.degraded_serial", 0) == 1


def test_run_units_retry_exhaustion_names_unit_parallel():
    stats = RuntimeStats()
    with pytest.raises(UnitFailedError) as err:
        run_units([5, 6], _always_fail, workers=2,
                  policy=RetryPolicy(deadline=30, max_retries=1), stats=stats)
    assert err.value.unit in (5, 6)
    assert err.value.attempts == 2
    assert isinstance(err.value.cause, ValueError)
    assert "cursed" in str(err.value)


def test_run_units_retry_exhaustion_serial():
    stats = RuntimeStats()
    with pytest.raises(UnitFailedError) as err:
        run_units([9], _always_fail, workers=1,
                  policy=RetryPolicy(max_retries=2), stats=stats)
    assert err.value.unit == 9 and err.value.attempts == 3
    assert stats.counters["faulttol.unit.retries"] == 2


def test_run_units_timeout_exhaustion_has_no_cause():
    stats = RuntimeStats()
    with pytest.raises(UnitFailedError) as err:
        run_units([1, 1], _sleep_forever, workers=2,
                  policy=RetryPolicy(deadline=1, max_retries=0), stats=stats)
    assert err.value.cause is None
    assert "timeout/worker death" in str(err.value)


def test_run_units_empty_and_single():
    stats = RuntimeStats()
    assert run_units([], _double, workers=4, policy=RetryPolicy(), stats=stats) == []
    # A single unit runs in-process even with a pool-sized worker budget.
    assert run_units([3], _double, workers=4, policy=RetryPolicy(), stats=stats) == [6]


# ------------------------------------------- the chaos determinism proof
#: Chosen (with crash=hang=0.25) so that over this build's three chunk
#: units exactly one crashes and one hangs — asserted below, so a rate or
#: hash change cannot silently turn this into a chaos-free test.
CHAOS_SEED = 10
N_SAMPLES = 48  # three 16-sample chunks


def test_chaotic_parallel_build_matches_clean_serial(prepared, tmp_path):
    """Acceptance proof: crash + hang + corrupted cache ⇒ identical bytes.

    A 4-worker build under a chaos plan that kills one worker, hangs one
    unit past its deadline, and damages every cache payload it writes must
    produce the exact SHA-256 fingerprint of a clean serial build — and a
    follow-up warm build must detect the corrupted entries, evict them,
    and rebuild to the same fingerprint again.
    """
    plan = ChaosPlan(crash=0.25, hang=0.25, corrupt=1.0, seed=CHAOS_SEED,
                     hang_seconds=30.0)
    tokens = [("chunk", 0, i) for i in range(3)]
    crashed = [t for t in tokens if plan._fires("crash", t, plan.crash)]
    hung = [t for t in tokens if t not in crashed and plan._fires("hang", t, plan.hang)]
    assert len(crashed) == 1 and len(hung) == 1  # the chaos this test promises

    stats = RuntimeStats()
    chaotic = DatasetRuntime(
        workers=4,
        cache_dir=tmp_path,
        stats=stats,
        retry=RetryPolicy(deadline=4.0, max_retries=3, max_pool_respawns=4),
        chaos=plan,
    )
    built = chaotic.build_dataset(prepared, "bypass", N_SAMPLES, SEED)
    clean = DatasetRuntime(workers=1).build_dataset(prepared, "bypass", N_SAMPLES, SEED)
    assert sample_set_fingerprint(built) == sample_set_fingerprint(clean)
    # The failures really happened: one deadline expiry per crash and hang.
    assert stats.counters.get("faulttol.chunk.timeouts", 0) >= 2
    assert stats.counters.get("faulttol.chunk.retries", 0) >= 2

    # Every cached payload was damaged on write; a warm, chaos-free build
    # must quarantine them all and regenerate the same bytes.
    warm_stats = RuntimeStats()
    warm = DatasetRuntime(workers=1, cache_dir=tmp_path, stats=warm_stats)
    rebuilt = warm.build_dataset(prepared, "bypass", N_SAMPLES, SEED)
    assert sample_set_fingerprint(rebuilt) == sample_set_fingerprint(clean)
    assert warm_stats.counters.get("cache.sample_chunk.hit", 0) == 0
    assert (warm_stats.counters.get("cache.sample_chunk.corrupt", 0)
            + warm_stats.counters.get("cache.sample_chunk.desynced", 0)) == 3
    assert warm_stats.counters.get("dataset.chunks_built", 0) == 3


def test_dropped_sidecars_force_rebuild_to_identical_bytes(prepared, tmp_path):
    plan = ChaosPlan(drop_sidecar=1.0, seed=1)
    first = DatasetRuntime(workers=1, cache_dir=tmp_path, chaos=plan).build_dataset(
        prepared, "bypass", 32, SEED
    )
    stats = RuntimeStats()
    warm = DatasetRuntime(workers=1, cache_dir=tmp_path, stats=stats)
    second = warm.build_dataset(prepared, "bypass", 32, SEED)
    assert sample_set_fingerprint(second) == sample_set_fingerprint(first)
    assert stats.counters.get("cache.sample_chunk.desynced", 0) == 2
    # The eviction removed both halves: the repaired cache is then clean.
    assert warm.cache.doctor().problems == 0


def test_env_driven_serial_chaos_retries_to_identical_bytes(prepared, monkeypatch):
    """``REPRO_CHAOS`` crash injection on the serial path raises-and-retries."""
    monkeypatch.setenv("REPRO_CHAOS", "crash=1,seed=3")
    stats = RuntimeStats()
    rt = DatasetRuntime(workers=1, stats=stats)
    assert rt.chaos is not None and rt.chaos.crash == 1.0
    built = rt.build_dataset(prepared, "bypass", 32, SEED)
    monkeypatch.delenv("REPRO_CHAOS")
    clean = DatasetRuntime(workers=1).build_dataset(prepared, "bypass", 32, SEED)
    assert sample_set_fingerprint(built) == sample_set_fingerprint(clean)
    # Every chunk failed once (attempt 0) and succeeded on retry.
    assert stats.counters.get("faulttol.chunk.unit_errors", 0) == 2
    assert stats.counters.get("faulttol.chunk.retries", 0) == 2


def test_serial_chaos_crash_raises_instead_of_exiting():
    """Outside a worker, crash injection must never kill the process."""
    plan = ChaosPlan(crash=1.0, seed=0)
    with pytest.raises(ChaosError, match="injected crash"):
        plan.maybe_fail_unit(("chunk", 0, 0), attempt=0)
    plan.maybe_fail_unit(("chunk", 0, 0), attempt=1)  # retries run clean


# ------------------------------------- distributed network-chaos sweep
#: Deterministic chaos seed for the distributed sweep — every fault fires
#: at rate 1.0, so each run exercises its recovery path on every unit.
DIST_CHAOS_SEED = 5

_DIST_POLICY_KW = dict(heartbeat_s=0.2, lease_timeout_s=1.0, poll_s=0.05,
                       fallback_after_s=1.5, ack_timeout_s=0.5)


def _dist_worker_entry(port):
    sys.exit(run_worker(f"127.0.0.1:{port}", max_reconnects=5))


def _distributed_build(prepared, n_workers, chaos):
    """One coordinator + ``n_workers`` worker processes; returns (fp, stats)."""
    ctx = mp.get_context("fork")
    stats = RuntimeStats()
    coord = Coordinator(
        workers=2, policy=DistPolicy(**_DIST_POLICY_KW),
        retry=RetryPolicy(backoff_base=0.02, backoff_cap=0.2),
        stats=stats, chaos=chaos,
    )
    procs = [ctx.Process(target=_dist_worker_entry, args=(coord.address[1],))
             for _ in range(n_workers)]
    for p in procs:
        p.start()
    try:
        rt = DatasetRuntime(workers=2, dist=coord, stats=stats, chaos=chaos)
        built = rt.build_dataset(prepared, "bypass", N_SAMPLES, SEED)
        return sample_set_fingerprint(built), stats
    finally:
        coord.close()
        for p in procs:
            p.join(timeout=15)
            if p.is_alive():  # pragma: no cover - hung worker
                p.terminate()


@pytest.fixture(scope="module")
def dist_serial_fp(prepared):
    clean = DatasetRuntime(workers=1).build_dataset(prepared, "bypass",
                                                    N_SAMPLES, SEED)
    return sample_set_fingerprint(clean)


@pytest.mark.parametrize("n_workers", [1, 2, 4])
@pytest.mark.parametrize("fault", ["clean", "net_kill", "net_drop",
                                   "net_dup", "net_stall"])
def test_distributed_chaos_build_matches_clean_serial(
    prepared, dist_serial_fp, fault, n_workers
):
    """Every network fault kind × worker count reproduces the serial bytes.

    Each fault fires at rate 1.0, so its recovery path (disconnect requeue,
    ack-timeout resend, duplicate-result dedup, lease expiry + fallback)
    carries real load — and the stats assertions below pin that the chaos
    actually engaged rather than silently rounding to a clean run.
    """
    chaos = (
        None if fault == "clean"
        else ChaosPlan(**{fault: 1.0}, seed=DIST_CHAOS_SEED, hang_seconds=2.0)
    )
    fp, stats = _distributed_build(prepared, n_workers, chaos)
    assert fp == dist_serial_fp
    c = stats.counters
    assert c.get("dist.workers_seen", 0) >= 1
    if fault == "clean":
        assert c.get("dist.results_remote", 0) == 3  # all units went remote
    elif fault == "net_kill":
        # Each worker dies executing its first unit; the coordinator
        # requeues the lease and the survivors (or the fallback) finish.
        assert c.get("dist.disconnect_requeues", 0) >= 1
    elif fault == "net_drop":
        # Dropped result frames resend after the ack timeout; every unit
        # still lands remotely.
        assert c.get("dist.results_remote", 0) >= 1
    elif fault == "net_dup":
        # Duplicated frames are acknowledged but never double-stored.
        assert (c.get("dist.duplicate_results", 0)
                + c.get("dist.stale_results", 0)) >= 1
    elif fault == "net_stall":
        # Stalled workers skip heartbeats; their leases expire and requeue.
        assert c.get("dist.lease_expired", 0) >= 1


def test_distributed_truncation_reconnects_to_identical_bytes(
    prepared, dist_serial_fp
):
    """Mid-frame truncation kills connections; resends stay byte-identical."""
    chaos = ChaosPlan(net_trunc=1.0, seed=DIST_CHAOS_SEED)
    fp, stats = _distributed_build(prepared, 2, chaos)
    assert fp == dist_serial_fp
    assert stats.counters.get("dist.disconnect_requeues", 0) >= 1
    # Reconnections register as fresh sessions beyond the two workers.
    assert stats.counters.get("dist.workers_seen", 0) >= 3


def test_partitioned_batch_degrades_to_local_ladder(prepared, dist_serial_fp):
    """A partitioned cluster builds everything through the local rungs."""
    chaos = ChaosPlan(partition=1.0, seed=DIST_CHAOS_SEED)
    fp, stats = _distributed_build(prepared, 0, chaos)
    assert fp == dist_serial_fp
    assert stats.counters.get("dist.partitioned_batches", 0) >= 1
    assert stats.counters.get("dist.fallback_units", 0) == 3
    assert stats.counters.get("dist.results_remote", 0) == 0


# ------------------------------------------------------- signal teardown
_ABORT_SCRIPT = """
import os, signal, sys, threading, time

from repro.runtime import RetryPolicy, RuntimeStats, handle_termination
from repro.runtime.faulttol import run_units
from tests.test_chaos import _sleep_forever

stats = RuntimeStats()

def _terminate_soon():
    time.sleep(1.5)
    os.kill(os.getpid(), signal.SIGTERM)

threading.Thread(target=_terminate_soon, daemon=True).start()
try:
    with handle_termination():
        run_units([1, 2, 3, 4], _sleep_forever, workers=2,
                  policy=RetryPolicy(), stats=stats)
except KeyboardInterrupt:
    print("ABORTED", stats.counters.get("faulttol.unit.aborted_units", 0), flush=True)
    sys.exit(130)
print("NOT INTERRUPTED", flush=True)
sys.exit(1)
"""


def test_sigterm_tears_pool_down_promptly_and_records_aborts(tmp_path):
    """SIGTERM during a fan-out exits in seconds, not after the 60s sleeps."""
    script = tmp_path / "abort_script.py"
    script.write_text(_ABORT_SCRIPT)
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src"), root, env.get("PYTHONPATH", "")]
    )
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, str(script)], env=env, cwd=root,
        capture_output=True, text=True, timeout=40,
    )
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 130, proc.stderr
    assert "ABORTED 4" in proc.stdout  # all four outstanding units recorded
    assert elapsed < 30  # terminate(), not a 60s drain
