"""Golden end-to-end regression fixture (paper Fig. 1 flow in miniature).

Runs a tiny fixed-seed pipeline — prepare → inject → ATPG diagnosis → train
→ prune/reorder — and compares the resulting diagnosis metrics against the
snapshot in ``tests/golden/e2e_metrics.json`` within explicit tolerances.
Any silent behavior change anywhere in the flow (simulation, ATPG,
back-trace, features, GNN training, policy) moves a metric and fails here.

Refresh the snapshot after an *intentional* change with::

    REPRO_UPDATE_GOLDEN=1 pytest tests/test_golden.py -m slow

and commit the diff alongside the change that caused it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.data import DesignConfig
from repro.diagnosis import EffectCauseDiagnoser
from repro.diagnosis.report import first_hit_index, report_is_accurate
from repro.core.pipeline import M3DDiagnosisFramework
from repro.netlist import GeneratorSpec
from repro.runtime import DatasetRuntime

GOLDEN_PATH = Path(__file__).parent / "golden" / "e2e_metrics.json"

#: Absolute tolerance per metric: counts and rates are exact under the
#: fixed seeds; rank/resolution means get slack for BLAS-order float noise
#: in GNN training on other platforms.
TOLERANCES = {
    "n_test": 0.0,
    "n_diagnosed": 0.0,
    "atpg_accuracy": 1e-9,
    "atpg_mean_resolution": 1e-6,
    "atpg_mean_first_hit": 1e-6,
    "policy_accuracy": 0.10,
    "policy_mean_resolution": 0.75,
    "policy_mean_first_hit": 0.75,
    "tier_accuracy": 0.10,
    "miv_flag_rate": 0.15,
}


def _run_pipeline() -> dict:
    rt = DatasetRuntime(workers=1)
    spec = GeneratorSpec("golden", "aes_like", 200, 24, 12, 12, seed=17)
    design = rt.prepare(
        spec,
        DesignConfig.standard("Syn-1"),
        n_chains=4,
        chains_per_channel=2,
        max_patterns=96,
    )
    train = rt.build_dataset(design, "bypass", 96, seed=100)
    test = rt.build_dataset(design, "bypass", 24, seed=9000)

    fw = M3DDiagnosisFramework(epochs=15, seed=0)
    fw.fit([train])
    diag = EffectCauseDiagnoser(
        design.nl, design.obsmap("bypass"), design.patterns,
        mivs=design.mivs, sim=design.sim,
    )

    atpg_acc, atpg_res, atpg_hit = [], [], []
    pol_acc, pol_res, pol_hit = [], [], []
    tier_ok, miv_flagged, n_diagnosed = [], [], 0
    for item in test.items:
        report = diag.diagnose(item.sample.log)
        result = fw.diagnose(design, "bypass", item.sample.log, report,
                             graph=item.graph)
        n_diagnosed += 1
        atpg_acc.append(report_is_accurate(report, item.faults))
        atpg_res.append(report.resolution)
        atpg_hit.append(first_hit_index(report, item.faults) or report.resolution + 1)
        pol_acc.append(report_is_accurate(result.report, item.faults))
        pol_res.append(result.report.resolution)
        pol_hit.append(
            first_hit_index(result.report, item.faults) or result.report.resolution + 1
        )
        if item.graph.y >= 0:
            tier_ok.append(result.predicted_tier == item.graph.y)
        miv_flagged.append(bool(result.faulty_mivs))

    return {
        "n_test": float(len(test)),
        "n_diagnosed": float(n_diagnosed),
        "atpg_accuracy": float(np.mean(atpg_acc)),
        "atpg_mean_resolution": float(np.mean(atpg_res)),
        "atpg_mean_first_hit": float(np.mean(atpg_hit)),
        "policy_accuracy": float(np.mean(pol_acc)),
        "policy_mean_resolution": float(np.mean(pol_res)),
        "policy_mean_first_hit": float(np.mean(pol_hit)),
        "tier_accuracy": float(np.mean(tier_ok)) if tier_ok else -1.0,
        "miv_flag_rate": float(np.mean(miv_flagged)),
    }


@pytest.mark.slow
def test_golden_e2e_metrics():
    metrics = _run_pipeline()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot refreshed at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "missing golden snapshot; generate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert set(metrics) == set(golden), "metric set changed — refresh the snapshot"
    for name, want in golden.items():
        tol = TOLERANCES[name]
        got = metrics[name]
        assert got == pytest.approx(want, abs=tol), (
            f"{name}: got {got!r}, golden {want!r} (tolerance ±{tol}); "
            f"if intentional, refresh with REPRO_UPDATE_GOLDEN=1"
        )
