"""Unit tests for the standard-cell library."""

import itertools

import numpy as np
import pytest

from repro.netlist.cells import CELL_LIBRARY, INVERTING_CELLS, cell, cell_names


def _bits(n_inputs):
    """All input combinations as pattern-parallel arrays."""
    combos = list(itertools.product([0, 1], repeat=n_inputs))
    cols = np.array(combos, dtype=np.uint8).T
    return [cols[i] for i in range(n_inputs)], combos


REFERENCE = {
    "BUF": lambda v: v[0],
    "INV": lambda v: 1 - v[0],
    "AND2": lambda v: v[0] & v[1],
    "AND3": lambda v: v[0] & v[1] & v[2],
    "AND4": lambda v: v[0] & v[1] & v[2] & v[3],
    "OR2": lambda v: v[0] | v[1],
    "OR3": lambda v: v[0] | v[1] | v[2],
    "OR4": lambda v: v[0] | v[1] | v[2] | v[3],
    "NAND2": lambda v: 1 - (v[0] & v[1]),
    "NAND3": lambda v: 1 - (v[0] & v[1] & v[2]),
    "NAND4": lambda v: 1 - (v[0] & v[1] & v[2] & v[3]),
    "NOR2": lambda v: 1 - (v[0] | v[1]),
    "NOR3": lambda v: 1 - (v[0] | v[1] | v[2]),
    "NOR4": lambda v: 1 - (v[0] | v[1] | v[2] | v[3]),
    "XOR2": lambda v: v[0] ^ v[1],
    "XOR3": lambda v: v[0] ^ v[1] ^ v[2],
    "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
    "MUX2": lambda v: v[1] if v[2] else v[0],
    "AOI21": lambda v: 1 - ((v[0] & v[1]) | v[2]),
    "OAI21": lambda v: 1 - ((v[0] | v[1]) & v[2]),
}


@pytest.mark.parametrize("name", sorted(REFERENCE))
def test_truth_tables(name):
    ct = cell(name)
    inputs, combos = _bits(ct.n_inputs)
    out = ct.evaluate(inputs)
    expected = np.array([REFERENCE[name](c) for c in combos], dtype=np.uint8)
    assert np.array_equal(out, expected), f"{name} truth table mismatch"


def test_library_covers_reference():
    assert set(REFERENCE) == set(CELL_LIBRARY)


def test_evaluate_rejects_wrong_arity():
    with pytest.raises(ValueError):
        cell("NAND2").evaluate([np.zeros(4, dtype=np.uint8)])


def test_unknown_cell_raises_keyerror():
    with pytest.raises(KeyError, match="unknown cell"):
        cell("NAND9")


def test_cell_names_sorted_and_complete():
    names = cell_names()
    assert list(names) == sorted(names)
    assert set(names) == set(CELL_LIBRARY)


def test_areas_positive():
    for ct in CELL_LIBRARY.values():
        assert ct.area > 0


def test_inverting_cells_listed_exist():
    for name in INVERTING_CELLS:
        assert name in CELL_LIBRARY


def test_output_dtype_uint8():
    inputs, _ = _bits(2)
    assert cell("XOR2").evaluate(inputs).dtype == np.uint8
