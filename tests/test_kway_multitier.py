"""Unit tests for k-way partitioning and >2-tier support."""

import pytest

from repro.data import DesignConfig, build_dataset, prepare_design
from repro.m3d import apply_partition, extract_mivs, kway_partition, random_bipartition
from repro.netlist import GeneratorSpec, generate


@pytest.fixture(scope="module")
def tri(small_spec):
    return prepare_design(
        small_spec,
        DesignConfig("3T", n_tiers=3, partition_seed=4),
        n_chains=4,
        chains_per_channel=2,
        max_patterns=64,
    )


class TestKwayPartition:
    def test_uses_all_tiers(self, small_netlist):
        part = kway_partition(small_netlist, 3, seed=0)
        assert set(part.gate_tiers) | set(part.flop_tiers) == {0, 1, 2}
        assert part.method == "kway3"

    def test_balance(self, small_netlist):
        part = kway_partition(small_netlist, 4, seed=0)
        # Largest tier holds at most ~1/k + tolerance of the area.
        assert part.balance <= 1 / 4 + 0.2

    def test_beats_random_three_way(self, small_netlist):
        part = kway_partition(small_netlist, 3, seed=0)
        # A random 3-way assignment cuts more nets than the refined one.
        import random

        rng = random.Random(0)
        nl = small_netlist.copy()
        for g in nl.gates:
            g.tier = rng.randrange(3)
        for f in nl.flops:
            f.tier = rng.randrange(3)
        from repro.m3d import cut_nets

        assert part.cut < len(cut_nets(nl))

    def test_k_one_rejected(self, small_netlist):
        with pytest.raises(ValueError, match="k >= 2"):
            kway_partition(small_netlist, 1)

    def test_deterministic(self, small_netlist):
        a = kway_partition(small_netlist, 3, seed=5)
        b = kway_partition(small_netlist, 3, seed=5)
        assert a.gate_tiers == b.gate_tiers


class TestMultiTierMivs:
    def test_miv_per_destination_tier(self, tri):
        by_net = {}
        for m in tri.mivs:
            by_net.setdefault(m.net, []).append(m)
        for net, group in by_net.items():
            tiers = [m.target_tier for m in group]
            assert len(tiers) == len(set(tiers))  # one MIV per far tier
            for m in group:
                assert m.target_tier != m.source_tier
                for gid, _pin in m.far_sinks:
                    assert tri.nl.gates[gid].tier == m.target_tier

    def test_two_tier_unchanged(self, prepared):
        # On bipartitioned designs every net still yields at most one MIV.
        nets = [m.net for m in prepared.mivs]
        assert len(nets) == len(set(nets))


class TestThreeTierPipeline:
    def test_dataset_labels_three_classes(self, tri):
        ds = build_dataset(tri, "bypass", 40, seed=73, miv_fraction=0.0)
        labels = {g.y for g in ds.graphs}
        assert labels <= {0, 1, 2}
        assert len(labels) >= 2

    def test_framework_three_tiers(self, tri):
        from repro.core import M3DDiagnosisFramework

        train = build_dataset(tri, "bypass", 90, seed=74)
        fw = M3DDiagnosisFramework(epochs=12, seed=0, n_tiers=3)
        fw.fit([train])
        proba = fw.tier_predictor.predict_proba([g for g in train.graphs if g.y >= 0][:5])
        assert proba.shape[1] == 3

    def test_sampler_covers_three_tiers(self, tri):
        from repro.m3d import DefectSampler
        from repro.atpg import site_tier

        sampler = DefectSampler(tri.nl, tri.mivs, seed=0)
        assert sampler.tiers == [0, 1, 2]
        seen = set()
        for _ in range(30):
            cluster = sampler.sample_tier_systematic()
            seen.add(site_tier(tri.nl, cluster[0].site))
        assert len(seen) >= 2
