"""Unit tests for the heterogeneous graph construction (Table I)."""

import numpy as np
import pytest

from repro.core import HetGraph, NodeKind
from repro.core.hetgraph import NodeKind
from repro.atpg import branch_site, stem_site
from repro.m3d import miv_fault_sites
from repro.netlist.topology import fanin_cone_nets


@pytest.fixture(scope="module")
def het(prepared):
    return prepared.het


class TestStructure:
    def test_node_counts(self, prepared, het):
        nl = prepared.nl
        n_stems = nl.n_nets
        n_branches = sum(len(g.fanin) for g in nl.gates)
        n_mivs = len(prepared.mivs)
        assert het.n_nodes == n_stems + n_branches + n_mivs
        assert (het.kind == NodeKind.STEM).sum() == n_stems
        assert (het.kind == NodeKind.BRANCH).sum() == n_branches
        assert (het.kind == NodeKind.MIV).sum() == n_mivs

    def test_topnode_per_observation(self, prepared, het):
        assert het.topnode_nets == prepared.nl.observed_nets

    def test_branch_edges_route_through_miv(self, prepared, het):
        """Every far-tier sink pin is reached stem→MIV→branch."""
        src, dst = het.edges
        edge_set = set(zip(src.tolist(), dst.tolist()))
        for m in prepared.mivs:
            mv = het.miv_index[m.id]
            stem = int(het.stem_of_net[m.net])
            assert (stem, mv) in edge_set
            for g, p in m.far_sinks:
                b = het.branch_index[(g, p)]
                assert (mv, b) in edge_set
                assert (stem, b) not in edge_set

    def test_near_sinks_direct_edge(self, prepared, het):
        src, dst = het.edges
        edge_set = set(zip(src.tolist(), dst.tolist()))
        nl = prepared.nl
        miv_far = {(g, p) for m in prepared.mivs for (g, p) in m.far_sinks}
        for net in nl.nets:
            for g, p in net.sinks:
                if (g, p) not in miv_far:
                    assert (int(het.stem_of_net[net.id]), het.branch_index[(g, p)]) in edge_set

    def test_branch_to_output_edges(self, prepared, het):
        src, dst = het.edges
        edge_set = set(zip(src.tolist(), dst.tolist()))
        for g in prepared.nl.gates:
            out_stem = int(het.stem_of_net[g.out])
            for p in range(len(g.fanin)):
                assert (het.branch_index[(g.id, p)], out_stem) in edge_set

    def test_miv_node_tier_is_half(self, het):
        miv_nodes = het.kind == NodeKind.MIV
        assert np.all(het.tier[miv_nodes] == 0.5)

    def test_is_output_only_for_driven_stems(self, prepared, het):
        from repro.netlist.netlist import EXTERNAL_DRIVER

        for net in prepared.nl.nets:
            v = int(het.stem_of_net[net.id])
            assert het.is_output[v] == (net.driver != EXTERNAL_DRIVER)


class TestConeMask:
    def test_matches_net_level_cone(self, prepared, het):
        """Stem nodes in a Topnode's cone == nets in its fan-in cone."""
        nl = prepared.nl
        for t_idx, obs_net in enumerate(het.topnode_nets[:5]):
            cone_nets = fanin_cone_nets(nl, obs_net)
            stems_in = {
                int(het.net[v])
                for v in np.nonzero(het.cone_mask[t_idx])[0]
                if het.kind[v] == NodeKind.STEM
            }
            assert stems_in == cone_nets

    def test_topedge_dist_zero_at_observation(self, het):
        for t_idx, obs_net in enumerate(het.topnode_nets[:5]):
            v = int(het.stem_of_net[obs_net])
            assert het.topedge_dist[t_idx, v] == 0

    def test_dist_negative_outside_cone(self, het):
        outside = ~het.cone_mask
        assert np.all(het.topedge_dist[outside] == -1)
        assert np.all(het.topedge_miv[outside] == -1)

    def test_branch_dist_one_more_than_gate_output(self, prepared, het):
        nl = prepared.nl
        t_idx = 0
        for g in nl.gates[:20]:
            out_stem = int(het.stem_of_net[g.out])
            if not het.cone_mask[t_idx, out_stem]:
                continue
            for p in range(len(g.fanin)):
                b = het.branch_index[(g.id, p)]
                assert het.cone_mask[t_idx, b]
                assert het.topedge_dist[t_idx, b] == het.topedge_dist[t_idx, out_stem] + 1


class TestSiteMapping:
    def test_stem_roundtrip(self, prepared, het):
        site = stem_site(prepared.nl, prepared.nl.gates[0].out)
        v = het.node_of_site(site)
        kind, net, _sinks = het.site_of_node(v)
        assert kind == "stem" and net == site.net

    def test_branch_roundtrip(self, prepared, het):
        g = prepared.nl.gates[3]
        site = branch_site(prepared.nl, g.id, 0)
        v = het.node_of_site(site)
        kind, net, sinks = het.site_of_node(v)
        assert kind == "branch" and sinks == ((g.id, 0),)

    def test_miv_roundtrip(self, prepared, het):
        for site in miv_fault_sites(prepared.nl, prepared.mivs)[:5]:
            v = het.node_of_site(site)
            assert het.kind[v] == NodeKind.MIV
            assert int(het.miv_id[v]) == site.miv_id

    def test_node_transitions_maps_nets(self, prepared, het):
        trans = prepared.good.transitions()
        node_trans = het.node_transitions(0)
        assert np.array_equal(node_trans, trans[het.net, 0])
