"""Unit tests for partitioning, MIV extraction, and defect models."""

import pytest

from repro.atpg import site_tier
from repro.m3d import (
    DefectSampler,
    apply_partition,
    cut_nets,
    extract_mivs,
    mincut_bipartition,
    miv_fault_sites,
    miv_net_set,
    random_bipartition,
    spectral_bipartition,
)


@pytest.fixture
def partitioned(small_netlist):
    nl = small_netlist.copy()
    part = mincut_bipartition(nl, seed=1)
    apply_partition(nl, part)
    return nl, part


class TestPartitioners:
    @pytest.mark.parametrize("fn", [mincut_bipartition, spectral_bipartition, random_bipartition])
    def test_balance(self, small_netlist, fn):
        part = fn(small_netlist, seed=0)
        assert 0.38 <= part.balance <= 0.62
        assert len(part.gate_tiers) == small_netlist.n_gates
        assert len(part.flop_tiers) == small_netlist.n_flops
        assert set(part.gate_tiers) <= {0, 1}

    def test_mincut_beats_random(self, small_netlist):
        mc = mincut_bipartition(small_netlist, seed=0)
        rd = random_bipartition(small_netlist, seed=0)
        assert mc.cut < rd.cut

    def test_deterministic(self, small_netlist):
        a = mincut_bipartition(small_netlist, seed=7)
        b = mincut_bipartition(small_netlist, seed=7)
        assert a.gate_tiers == b.gate_tiers
        assert a.cut == b.cut

    def test_seeds_differ(self, small_netlist):
        a = random_bipartition(small_netlist, seed=1)
        b = random_bipartition(small_netlist, seed=2)
        assert a.gate_tiers != b.gate_tiers

    def test_cut_matches_cut_nets(self, partitioned):
        nl, part = partitioned
        assert part.cut == len(cut_nets(nl))

    def test_apply_partition_size_check(self, small_netlist, toy):
        part = mincut_bipartition(small_netlist, seed=0)
        with pytest.raises(ValueError, match="does not match"):
            apply_partition(toy, part)


class TestMivs:
    def test_requires_tier_assignment(self, small_netlist):
        with pytest.raises(ValueError, match="not fully tier-assigned"):
            extract_mivs(small_netlist)

    def test_one_miv_per_cut_net(self, partitioned):
        nl, part = partitioned
        mivs = extract_mivs(nl)
        assert len(mivs) == part.cut
        assert miv_net_set(mivs) == set(cut_nets(nl))

    def test_far_sinks_are_on_other_tier(self, partitioned):
        nl, _part = partitioned
        for m in extract_mivs(nl):
            for gid, _pin in m.far_sinks:
                assert nl.gates[gid].tier != m.source_tier

    def test_miv_fault_sites(self, partitioned):
        nl, _ = partitioned
        mivs = extract_mivs(nl)
        sites = miv_fault_sites(nl, mivs)
        assert len(sites) == len(mivs)
        for s, m in zip(sites, mivs):
            assert s.kind == "miv"
            assert s.net == m.net
            assert s.miv_id == m.id
            assert s.sinks == m.far_sinks


class TestDefectSampler:
    def test_deterministic(self, partitioned):
        nl, _ = partitioned
        mivs = extract_mivs(nl)
        a = DefectSampler(nl, mivs, seed=3)
        b = DefectSampler(nl, mivs, seed=3)
        for _ in range(10):
            fa, fb = a.sample_single(0.3), b.sample_single(0.3)
            assert fa.label == fb.label

    def test_tier_restriction(self, partitioned):
        nl, _ = partitioned
        sampler = DefectSampler(nl, extract_mivs(nl), seed=0)
        for tier in (0, 1):
            for _ in range(10):
                f = sampler.sample_gate_fault(tier)
                assert site_tier(nl, f.site) == tier

    def test_tier_systematic_confined(self, partitioned):
        nl, _ = partitioned
        sampler = DefectSampler(nl, extract_mivs(nl), seed=1)
        for _ in range(10):
            faults = sampler.sample_tier_systematic()
            assert 2 <= len(faults) <= 5
            tiers = {site_tier(nl, f.site) for f in faults}
            assert len(tiers) == 1
            # Distinct sites within a cluster.
            assert len({f.site.label for f in faults}) == len(faults)

    def test_miv_fault_kind(self, partitioned):
        nl, _ = partitioned
        sampler = DefectSampler(nl, extract_mivs(nl), seed=2)
        assert sampler.sample_miv_fault().site.kind == "miv"

    def test_no_mivs_raises(self, small_netlist):
        nl = small_netlist.copy()
        for g in nl.gates:
            g.tier = 0
        for f in nl.flops:
            f.tier = 0
        sampler = DefectSampler(nl, extract_mivs(nl), seed=0)
        with pytest.raises(ValueError, match="no MIVs"):
            sampler.sample_miv_fault()
