"""Unit tests for the repro-lint AST checker: good/bad snippet pairs per rule."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import LINT_RULES, lint_paths, lint_source


def rules_of(source: str):
    return [v.rule for v in lint_source(textwrap.dedent(source))]


# ------------------------------------------------------------------ RPL001
BAD_RPL001 = [
    "import random\nx = random.random()",
    "import random\nrandom.seed(42)",
    "import random\nxs = random.sample(range(9), 3)",
    "import numpy as np\na = np.random.rand(3)",
    "import numpy as np\nnp.random.seed(0)",
    "import numpy.random as npr\nnpr.shuffle([1, 2])",
    "from random import shuffle",
    "from numpy.random import rand",
]

GOOD_RPL001 = [
    "import random\nr = random.Random(7)\nx = r.random()",
    "import random\nr = random.SystemRandom()",
    "import numpy as np\ng = np.random.default_rng(0)\na = g.random(3)",
    "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))",
    "from random import Random\nr = Random(3)",
    "from numpy.random import default_rng",
    # A different module's `random` attribute is not the stdlib RNG.
    "import mylib\nx = mylib.random.random()",
]


@pytest.mark.parametrize("src", BAD_RPL001)
def test_rpl001_fires(src):
    assert "RPL001" in rules_of(src)


@pytest.mark.parametrize("src", GOOD_RPL001)
def test_rpl001_clean(src):
    assert "RPL001" not in rules_of(src)


# ------------------------------------------------------------------ RPL002
BAD_RPL002 = [
    "import time\nt = time.time()",
    "import time\nt = time.time_ns()",
    "import os\nb = os.urandom(8)",
    "import uuid\nu = uuid.uuid4()",
    "import secrets\nt = secrets.token_hex(8)",
    "import datetime\nd = datetime.datetime.now()",
    "from time import time\nt = time()",
]

GOOD_RPL002 = [
    "import time\ntime.sleep(0.1)",
    "import time\nt = time.monotonic()",
    "import os\np = os.path.join('a', 'b')",
    "import uuid\nu = uuid.uuid5(None, 'x')",
    "import datetime\nd = datetime.datetime(2022, 3, 14)",
]


@pytest.mark.parametrize("src", BAD_RPL002)
def test_rpl002_fires(src):
    assert "RPL002" in rules_of(src)


@pytest.mark.parametrize("src", GOOD_RPL002)
def test_rpl002_clean(src):
    assert "RPL002" not in rules_of(src)


# ------------------------------------------------------------------ RPL003
BAD_RPL003 = [
    "for x in {1, 2, 3}:\n    pass",
    "xs = list({1, 2})",
    "xs = tuple(set(ys))",
    "xs = [x for x in {1, 2}]",
    "s = ','.join({'a', 'b'})",
    "for i, x in enumerate({1, 2}):\n    pass",
]

GOOD_RPL003 = [
    "for x in sorted({1, 2, 3}):\n    pass",
    "xs = list([1, 2])",
    "xs = sorted(set(ys))",
    "xs = [x for x in sorted({1, 2})]",
    "s = ','.join(sorted({'a', 'b'}))",
    "n = len({1, 2})",  # size queries are order-independent
]


@pytest.mark.parametrize("src", BAD_RPL003)
def test_rpl003_fires(src):
    assert "RPL003" in rules_of(src)


@pytest.mark.parametrize("src", GOOD_RPL003)
def test_rpl003_clean(src):
    assert "RPL003" not in rules_of(src)


# ------------------------------------------------------------------ RPL004
BAD_RPL004 = [
    "def f(x=[]):\n    pass",
    "def f(x={}):\n    pass",
    "def f(x=set()):\n    pass",
    "def f(x=dict()):\n    pass",
    "def f(*, x=[1]):\n    pass",
    "async def f(x=[]):\n    pass",
]

GOOD_RPL004 = [
    "def f(x=None):\n    pass",
    "def f(x=()):\n    pass",
    "def f(x=0, y='a'):\n    pass",
    "def f(x=frozenset()):\n    pass",
]


@pytest.mark.parametrize("src", BAD_RPL004)
def test_rpl004_fires(src):
    assert "RPL004" in rules_of(src)


@pytest.mark.parametrize("src", GOOD_RPL004)
def test_rpl004_clean(src):
    assert "RPL004" not in rules_of(src)


# ------------------------------------------------------------------ RPL005
BAD_RPL005 = [
    """
    class C:
        def __init__(self):
            self.f = lambda x: x + 1
    """,
    """
    class C:
        def __init__(self):
            self.f: object = lambda: 0
    """,
]

GOOD_RPL005 = [
    """
    class C:
        def __init__(self):
            self.f = max
        def g(self, x):
            return x
    """,
    "f = lambda x: x",  # local lambda, never pickled with an instance
]


@pytest.mark.parametrize("src", BAD_RPL005)
def test_rpl005_fires(src):
    assert "RPL005" in rules_of(src)


@pytest.mark.parametrize("src", GOOD_RPL005)
def test_rpl005_clean(src):
    assert "RPL005" not in rules_of(src)


# ------------------------------------------------------------------ RPL006
BAD_RPL006 = [
    """
    try:
        work()
    except:
        pass
    """,
    """
    try:
        work()
    except Exception:
        pass
    """,
    """
    try:
        work()
    except BaseException:
        ...
    """,
    """
    try:
        work()
    except (ValueError, Exception):
        pass
    """,
    """
    for x in xs:
        try:
            work(x)
        except Exception as e:
            continue
    """,
    """
    try:
        work()
    except:
        handled()
    """,  # bare except is flagged even with a real body
]

GOOD_RPL006 = [
    """
    try:
        work()
    except OSError:
        pass
    """,  # narrow exception: intentional swallow is fine
    """
    try:
        work()
    except Exception:
        raise
    """,
    """
    try:
        work()
    except Exception as e:
        log(e)
    """,
    """
    try:
        work()
    except (ValueError, KeyError):
        pass
    """,
]


@pytest.mark.parametrize("src", BAD_RPL006)
def test_rpl006_fires(src):
    assert "RPL006" in rules_of(src)


@pytest.mark.parametrize("src", GOOD_RPL006)
def test_rpl006_clean(src):
    assert "RPL006" not in rules_of(src)


def test_rpl006_suppressible_inline():
    src = (
        "try:\n"
        "    work()\n"
        "except Exception:  # repro-lint: disable=RPL006\n"
        "    pass\n"
    )
    assert rules_of(src) == []


# ------------------------------------------------------------- suppressions
def test_line_suppression():
    src = "import random\nx = random.random()  # repro-lint: disable=RPL001"
    assert rules_of(src) == []


def test_line_suppression_wrong_rule_keeps_finding():
    src = "import random\nx = random.random()  # repro-lint: disable=RPL002"
    assert "RPL001" in rules_of(src)


def test_multi_id_suppression():
    src = (
        "import random, time\n"
        "x = random.random() + time.time()  # repro-lint: disable=RPL001, RPL002"
    )
    assert rules_of(src) == []


def test_file_suppression():
    src = (
        "# repro-lint: disable-file=RPL001\n"
        "import random\n"
        "x = random.random()\n"
        "y = random.random()\n"
    )
    assert rules_of(src) == []


# ------------------------------------------------------------------ plumbing
def test_violation_str_format():
    (v,) = lint_source("import random\nx = random.random()", path="m.py")
    assert str(v) == f"m.py:2:4: RPL001 {v.message}"
    assert v.message in ("global-state RNG 'random.random'; inject a seeded "
                        "random.Random instead",)


def test_lint_source_raises_on_syntax_error():
    with pytest.raises(SyntaxError):
        lint_source("def broken(:\n")


def test_lint_paths_reports_syntax_error_as_rpl000(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    ok = tmp_path / "ok.py"
    ok.write_text("x = 1\n")
    findings = lint_paths([tmp_path])
    assert [v.rule for v in findings] == ["RPL000"]
    assert findings[0].path.endswith("bad.py")


def test_lint_paths_walks_directories(tmp_path):
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "a.py").write_text("import random\nx = random.random()\n")
    (sub / "b.txt").write_text("import random\nrandom.random()\n")
    findings = lint_paths([tmp_path])
    assert len(findings) == 1 and findings[0].rule == "RPL001"


def test_rule_catalog_complete():
    assert set(LINT_RULES) == {
        "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
    }
