"""Unit tests for the Fig. 4 data-generation flow and dataset builders."""

import pytest

from repro.atpg import site_tier
from repro.data import CONFIG_NAMES, DesignConfig, build_dataset, prepare_design
from repro.netlist import GeneratorSpec


class TestDesignConfig:
    def test_standard_names(self):
        for name in CONFIG_NAMES:
            cfg = DesignConfig.standard(name)
            assert cfg.name == name

    def test_random_configs(self):
        cfg = DesignConfig.standard("Rand-3")
        assert cfg.partitioner == "random"
        assert cfg.partition_seed == 103

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration"):
            DesignConfig.standard("Syn-9")

    @pytest.mark.parametrize("name", ["Rand-", "Rand-x", "Rand-1.5", "Rand-0x3"])
    def test_rand_non_integer_suffix_rejected(self, name):
        with pytest.raises(ValueError, match="expected an integer suffix"):
            DesignConfig.standard(name)

    def test_rand_missing_suffix_rejected(self):
        with pytest.raises(ValueError, match="Rand-<k>"):
            DesignConfig.standard("Rand")

    def test_rand_negative_suffix_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            DesignConfig.standard("Rand--3")

    def test_rand_large_and_padded_suffixes_accepted(self):
        assert DesignConfig.standard("Rand-12").partition_seed == 112
        # int(..., 10) tolerates leading zeros but not other bases.
        assert DesignConfig.standard("Rand-007").partition_seed == 107


class TestPrepareDesign:
    def test_bundle_consistency(self, prepared):
        assert prepared.config.name == "Syn-1"
        assert prepared.patterns.n_patterns > 0
        assert prepared.atpg.fault_coverage > 0.7
        assert len(prepared.mivs) == prepared.partition.cut
        assert set(prepared.obsmaps) == {"bypass", "compacted", "misr"}
        assert prepared.het.n_nodes > prepared.nl.n_nets

    def test_configs_produce_different_designs(self, small_spec, prepared, prepared_par):
        assert prepared.partition.method == "mincut"
        assert prepared_par.partition.method == "spectral"
        assert prepared.partition.gate_tiers != prepared_par.partition.gate_tiers

    def test_tpi_adds_flops(self, small_spec):
        tpi = prepare_design(
            small_spec, DesignConfig.standard("TPI"), n_chains=4,
            chains_per_channel=2, max_patterns=64,
        )
        base_flops = small_spec.n_flops
        assert tpi.nl.n_flops > base_flops

    def test_syn2_changes_structure(self, small_spec, prepared):
        syn2 = prepare_design(
            small_spec, DesignConfig.standard("Syn-2"), n_chains=4,
            chains_per_channel=2, max_patterns=64,
        )
        assert syn2.nl.n_gates != prepared.nl.n_gates

    def test_bad_partitioner_rejected(self, small_spec):
        with pytest.raises(ValueError, match="unknown partitioner"):
            prepare_design(small_spec, DesignConfig("X", partitioner="magic"))


class TestBuildDataset:
    def test_single_fault_labels(self, prepared):
        ds = build_dataset(prepared, "bypass", 25, seed=61, miv_fraction=0.3)
        assert len(ds) > 0
        for item in ds.items:
            fault = item.faults[0]
            if fault.site.kind == "miv":
                assert item.graph.y == -1
                assert item.graph.node_y.sum() == 1.0
            else:
                assert item.graph.y == site_tier(prepared.nl, fault.site)

    def test_multi_fault_labels_single_tier(self, prepared):
        ds = build_dataset(prepared, "bypass", 10, seed=62, kind="multi")
        for item in ds.items:
            tiers = {site_tier(prepared.nl, f.site) for f in item.faults}
            assert len(tiers) == 1
            assert item.graph.y == next(iter(tiers))

    def test_miv_kind(self, prepared):
        ds = build_dataset(prepared, "bypass", 8, seed=63, kind="miv")
        assert all(item.faults[0].site.kind == "miv" for item in ds.items)

    def test_unknown_kind_rejected(self, prepared):
        with pytest.raises(ValueError, match="unknown dataset kind"):
            build_dataset(prepared, "bypass", 5, seed=0, kind="exotic")

    def test_graphs_property(self, prepared):
        ds = build_dataset(prepared, "bypass", 5, seed=64)
        assert len(ds.graphs) == len(ds.samples) == len(ds)

    def test_compacted_mode(self, prepared):
        ds = build_dataset(prepared, "compacted", 10, seed=65)
        assert all(item.sample.log.compacted for item in ds.items)
