"""Unit and property tests for TDF fault simulation."""

import numpy as np
import pytest

from repro.atpg import Fault, Polarity, branch_site, stem_site
from repro.netlist import NetlistBuilder, toy_netlist
from repro.sim import CompiledSimulator, FaultMachine


@pytest.fixture
def buf_chain():
    """pi -> BUF -> BUF -> po: detection is fully predictable."""
    b = NetlistBuilder("chain")
    a = b.add_primary_input("a")
    x = b.add_gate("BUF", [a], gate_name="b0")
    y = b.add_gate("BUF", [x], gate_name="b1")
    b.mark_primary_output(y)
    return b.finish()


def test_slow_to_rise_needs_rising_transition(buf_chain):
    sim = CompiledSimulator(buf_chain)
    machine = FaultMachine(sim)
    # Patterns: 0->1 (rising), 1->0 (falling), 1->1, 0->0.
    v1 = np.array([[0, 1, 1, 0]], dtype=np.uint8)
    v2 = np.array([[1, 0, 1, 0]], dtype=np.uint8)
    good = sim.simulate_pair(v1, v2)
    site = stem_site(buf_chain, buf_chain.primary_inputs[0])
    det_str = machine.detects(Fault(site, Polarity.SLOW_TO_RISE), good)
    det_stf = machine.detects(Fault(site, Polarity.SLOW_TO_FALL), good)
    assert det_str.tolist() == [True, False, False, False]
    assert det_stf.tolist() == [False, True, False, False]


def test_branch_fault_disturbs_only_its_sink(toy):
    """A branch fault at g3's q0 pin must never show at the PO (g2 cone)."""
    sim = CompiledSimulator(toy)
    machine = FaultMachine(sim)
    rng = np.random.default_rng(0)
    v1 = rng.integers(0, 2, size=(5, 64), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(5, 64), dtype=np.uint8)
    good = sim.simulate_pair(v1, v2)
    g3 = next(g for g in toy.gates if g.name == "g3")
    fault = Fault(branch_site(toy, g3.id, 1), Polarity.SLOW_TO_RISE)
    detections = machine.propagate(fault, good)
    po = toy.primary_outputs[0]
    assert po not in detections
    # It can still reach the flop D input via g3 -> g4.
    assert set(detections) <= {toy.flops[0].d_net}


def test_stem_fault_superset_of_branch(toy):
    """A stem fault reaches at least the observations any branch reaches."""
    sim = CompiledSimulator(toy)
    machine = FaultMachine(sim)
    rng = np.random.default_rng(1)
    v1 = rng.integers(0, 2, size=(5, 128), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(5, 128), dtype=np.uint8)
    good = sim.simulate_pair(v1, v2)
    g1 = next(g for g in toy.gates if g.name == "g1")  # n1 feeds g2 and g3
    stem = machine.detects(Fault(stem_site(toy, g1.out), Polarity.SLOW_TO_FALL), good)
    for gid, pin in toy.nets[g1.out].sinks:
        br = machine.detects(Fault(branch_site(toy, gid, pin), Polarity.SLOW_TO_FALL), good)
        # Branch detection may differ pattern-wise (reconvergence masking),
        # but any pattern detecting the branch through a single path also
        # activates the stem; the stem must be detectable wherever all
        # branch effects agree — at minimum it is detected somewhere.
        if br.any():
            assert stem.any()


def test_observed_stem_detected_directly():
    """A fault on a PO net is observed even with no downstream gates."""
    b = NetlistBuilder("po")
    a = b.add_primary_input("a")
    x = b.add_gate("BUF", [a])
    b.mark_primary_output(x)
    nl = b.finish()
    sim = CompiledSimulator(nl)
    machine = FaultMachine(sim)
    v1 = np.array([[0]], dtype=np.uint8)
    v2 = np.array([[1]], dtype=np.uint8)
    good = sim.simulate_pair(v1, v2)
    det = machine.propagate(Fault(stem_site(nl, x), Polarity.SLOW_TO_RISE), good)
    assert x in det and det[x][0]


def test_no_transition_no_detection(buf_chain):
    sim = CompiledSimulator(buf_chain)
    machine = FaultMachine(sim)
    v = np.array([[1, 0]], dtype=np.uint8)
    good = sim.simulate_pair(v, v)  # static patterns
    site = stem_site(buf_chain, buf_chain.primary_inputs[0])
    assert not machine.detects(Fault(site, Polarity.SLOW_TO_RISE), good).any()
    assert machine.propagate(Fault(site, Polarity.SLOW_TO_RISE), good) == {}


def test_multi_fault_union_cone(toy):
    """propagate_multi detects at least what the strongest single fault does
    when faults do not interact (disjoint cones)."""
    sim = CompiledSimulator(toy)
    machine = FaultMachine(sim)
    rng = np.random.default_rng(2)
    v1 = rng.integers(0, 2, size=(5, 64), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(5, 64), dtype=np.uint8)
    good = sim.simulate_pair(v1, v2)
    g0 = next(g for g in toy.gates if g.name == "g0")
    g4 = next(g for g in toy.gates if g.name == "g4")
    f1 = Fault(stem_site(toy, g0.out), Polarity.SLOW_TO_RISE)
    f2 = Fault(stem_site(toy, g4.out), Polarity.SLOW_TO_RISE)
    # g0 reaches only the PO; g4 is the flop D net itself: disjoint.
    multi = machine.propagate_multi([f1, f2], good)
    single1 = machine.propagate(f1, good)
    single2 = machine.propagate(f2, good)
    for obs, mask in single1.items():
        assert obs in multi and np.array_equal(multi[obs], mask)
    for obs, mask in single2.items():
        assert obs in multi and np.array_equal(multi[obs], mask)


def test_activation_mask_polarity(toy):
    sim = CompiledSimulator(toy)
    machine = FaultMachine(sim)
    v1 = np.array([[0, 1, 0, 1, 0]], dtype=np.uint8).T.repeat(2, axis=1)
    v1[:, 1] ^= 1
    v2 = v1 ^ 1
    good = sim.simulate_pair(v1, v2)
    site = stem_site(toy, toy.primary_inputs[0])
    mask_r = machine.activation_mask(Fault(site, Polarity.SLOW_TO_RISE), good)
    mask_f = machine.activation_mask(Fault(site, Polarity.SLOW_TO_FALL), good)
    assert mask_r.tolist() == [True, False]
    assert mask_f.tolist() == [False, True]
