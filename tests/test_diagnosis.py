"""Unit tests for diagnosis reports, the effect-cause tool, and the baseline."""

import numpy as np
import pytest

from repro.atpg import Fault, Polarity, stem_site
from repro.diagnosis import (
    Candidate,
    DiagnosisReport,
    EffectCauseDiagnoser,
    PadreLikeFilter,
    first_hit_index,
    report_is_accurate,
    site_key,
    sites_match,
    summarize_reports,
)
from repro.m3d import DefectSampler
from repro.tester import InjectionCampaign


def _candidate(site, score=1.0, tier=0, tfsf=5, tfsp=0, tpsf=0):
    return Candidate(
        site=site, polarity=Polarity.SLOW_TO_RISE, score=score, tier=tier,
        tfsf=tfsf, tfsp=tfsp, tpsf=tpsf,
    )


class TestReportMetrics:
    def test_site_key_and_match(self, toy):
        a = stem_site(toy, toy.gates[0].out)
        b = stem_site(toy, toy.gates[0].out)
        c = stem_site(toy, toy.gates[1].out)
        assert site_key(a) == site_key(b)
        assert sites_match(a, b)
        assert not sites_match(a, c)

    def test_accuracy_and_fhi(self, toy):
        s0 = stem_site(toy, toy.gates[0].out)
        s1 = stem_site(toy, toy.gates[1].out)
        report = DiagnosisReport(candidates=[_candidate(s1), _candidate(s0)])
        truth = [Fault(s0, Polarity.SLOW_TO_RISE)]
        assert report_is_accurate(report, truth)
        assert first_hit_index(report, truth) == 2
        assert report.resolution == 2

    def test_miss(self, toy):
        s0 = stem_site(toy, toy.gates[0].out)
        s1 = stem_site(toy, toy.gates[1].out)
        report = DiagnosisReport(candidates=[_candidate(s1)])
        truth = [Fault(s0, Polarity.SLOW_TO_RISE)]
        assert not report_is_accurate(report, truth)
        assert first_hit_index(report, truth) is None

    def test_multi_fault_accuracy_requires_all(self, toy):
        s0 = stem_site(toy, toy.gates[0].out)
        s1 = stem_site(toy, toy.gates[1].out)
        report = DiagnosisReport(candidates=[_candidate(s0)])
        truths = [Fault(s0, Polarity.SLOW_TO_RISE), Fault(s1, Polarity.SLOW_TO_FALL)]
        assert not report_is_accurate(report, truths)

    def test_summarize(self, toy):
        s0 = stem_site(toy, toy.gates[0].out)
        report = DiagnosisReport(candidates=[_candidate(s0)])
        truth = [Fault(s0, Polarity.SLOW_TO_RISE)]
        q = summarize_reports([(report, truth), (DiagnosisReport([]), truth)])
        assert q.accuracy == 0.5
        assert q.mean_fhi == 1.0  # over accurate reports only
        assert q.n_samples == 2


@pytest.fixture(scope="module")
def diag_setup(prepared):
    obsmap = prepared.obsmap("bypass")
    diag = EffectCauseDiagnoser(
        prepared.nl, obsmap, prepared.patterns, mivs=prepared.mivs, sim=prepared.sim
    )
    sampler = DefectSampler(prepared.nl, prepared.mivs, seed=21)
    campaign = InjectionCampaign(prepared.machine, prepared.good, obsmap, sampler)
    samples = campaign.single_fault_samples(25)
    return diag, samples


class TestEffectCause:
    def test_single_fault_accuracy(self, diag_setup):
        diag, samples = diag_setup
        hits = sum(
            report_is_accurate(diag.diagnose(s.log), s.faults) for s in samples
        )
        assert hits / len(samples) >= 0.9

    def test_truth_net_in_suspects(self, diag_setup):
        diag, samples = diag_setup
        for s in samples[:10]:
            assert s.faults[0].site.net in diag.suspect_nets(s.log)

    def test_empty_log(self, diag_setup):
        from repro.tester import FailureLog

        diag, _ = diag_setup
        assert diag.diagnose(FailureLog(entries=[])).resolution == 0

    def test_report_ranked_and_capped(self, diag_setup):
        diag, samples = diag_setup
        for s in samples[:5]:
            rep = diag.diagnose(s.log)
            assert rep.resolution <= diag.max_candidates
            bands = [diag._band(c.score) for c in rep.candidates]
            assert bands == sorted(bands, reverse=True)

    def test_deterministic(self, diag_setup):
        diag, samples = diag_setup
        a = diag.diagnose(samples[0].log)
        b = diag.diagnose(samples[0].log)
        assert [c.site.label for c in a] == [c.site.label for c in b]


class TestBaseline:
    def test_small_report_passthrough(self, prepared, toy):
        filt = PadreLikeFilter(prepared.nl)
        s0 = stem_site(prepared.nl, prepared.nl.gates[0].out)
        rep = DiagnosisReport(candidates=[_candidate(s0)])
        assert filt.filter(rep).resolution == 1

    def test_filter_never_empties_report(self, diag_setup, prepared):
        diag, samples = diag_setup
        filt = PadreLikeFilter(prepared.nl)
        for s in samples:
            rep = diag.diagnose(s.log)
            out = filt.filter(rep)
            assert 0 < out.resolution <= rep.resolution

    def test_filter_mostly_preserves_accuracy(self, diag_setup, prepared):
        diag, samples = diag_setup
        filt = PadreLikeFilter(prepared.nl)
        before = after = 0
        for s in samples:
            rep = diag.diagnose(s.log)
            before += report_is_accurate(rep, s.faults)
            after += report_is_accurate(filt.filter(rep), s.faults)
        assert after >= before - max(2, 0.15 * len(samples))

    def test_ranking_preserved(self, diag_setup, prepared):
        diag, samples = diag_setup
        filt = PadreLikeFilter(prepared.nl)
        rep = diag.diagnose(samples[0].log)
        out = filt.filter(rep)
        labels = [c.site.label for c in rep]
        kept = [c.site.label for c in out]
        assert kept == [l for l in labels if l in set(kept)]
