"""Unit tests for pattern containers and the TDF ATPG loop."""

import numpy as np
import pytest

from repro.atpg import PatternSet, generate_tdf_patterns, random_patterns
from repro.netlist import toy_netlist


class TestPatternSet:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            PatternSet(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            PatternSet(np.zeros(3), np.zeros(3))

    def test_select(self):
        ps = PatternSet(np.arange(8).reshape(2, 4) % 2, np.zeros((2, 4)))
        sub = ps.select([0, 2])
        assert sub.n_patterns == 2
        assert np.array_equal(sub.v1, ps.v1[:, [0, 2]])

    def test_concat(self):
        a = random_patterns(toy_netlist(), 3, np.random.default_rng(0))
        b = random_patterns(toy_netlist(), 2, np.random.default_rng(1))
        c = a.concat(b)
        assert c.n_patterns == 5
        assert np.array_equal(c.v2[:, :3], a.v2)

    def test_concat_input_mismatch(self):
        a = PatternSet(np.zeros((2, 1)), np.zeros((2, 1)))
        b = PatternSet(np.zeros((3, 1)), np.zeros((3, 1)))
        with pytest.raises(ValueError, match="input counts"):
            a.concat(b)


class TestAtpg:
    def test_coverage_and_determinism(self, toy):
        r1 = generate_tdf_patterns(toy, seed=5, max_patterns=64)
        r2 = generate_tdf_patterns(toy, seed=5, max_patterns=64)
        assert r1.fault_coverage > 0.7
        assert np.array_equal(r1.patterns.v1, r2.patterns.v1)
        assert r1.detected == r2.detected

    def test_detected_aligns_with_faults(self, toy):
        r = generate_tdf_patterns(toy, seed=5, max_patterns=64)
        assert len(r.detected) == len(r.faults) == r.n_target_faults

    def test_selected_patterns_actually_detect(self, toy):
        """Every detected fault is detected by the emitted pattern set."""
        from repro.sim import CompiledSimulator, FaultMachine

        r = generate_tdf_patterns(toy, seed=5, max_patterns=64, target_coverage=1.0)
        sim = CompiledSimulator(toy)
        machine = FaultMachine(sim)
        good = sim.simulate_pair(r.patterns.v1, r.patterns.v2)
        for fault, det in zip(r.faults, r.detected):
            if det:
                assert machine.detects(fault, good).any(), fault.label

    def test_pattern_budget_respected(self, toy):
        r = generate_tdf_patterns(toy, seed=5, max_patterns=4, target_coverage=1.0)
        assert r.patterns.n_patterns <= 4

    def test_small_netlist_reaches_high_coverage(self, small_netlist):
        r = generate_tdf_patterns(small_netlist, seed=0, max_patterns=128)
        assert r.fault_coverage >= 0.85
