"""Mutation harness for the backend-purity analyzer (BPL rules).

Each mutator returns a ``(bad, good)`` pair of source snippets: ``bad``
contains exactly one class of purity violation and must fire the intended
rule; ``good`` is the sanctioned twin of the same code and must not.
``test_all_rules_covered`` pins the harness to the full ``PURITY_RULES``
catalog, so adding a BPL rule without a mutation here fails CI.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import PURITY_RULES, analyze_purity_source

MUTATIONS = []


def mutation(rule):
    def deco(fn):
        MUTATIONS.append(pytest.param(rule, fn, id=f"{rule}-{fn.__name__}"))
        return fn

    return deco


def _src(text: str) -> str:
    return textwrap.dedent(text)


@mutation("BPL001")
def raw_numpy_on_tensor():
    bad = _src("""
        import numpy as np

        def combine(x, backend):
            t = backend.matmul(x, x)
            return np.tanh(t)
    """)
    good = _src("""
        import numpy as np

        def combine(x, backend):
            t = backend.matmul(x, x)
            return backend.tanh(t)
    """)
    return bad, good


@mutation("BPL001")
def raw_scipy_on_parameter_field():
    bad = _src("""
        import scipy.sparse as sp

        class Layer:
            def step(self):
                return sp.csr_matrix(self.w.value)
    """)
    good = _src("""
        import scipy.sparse as sp

        class Layer:
            def step(self, backend):
                host = backend.to_numpy(self.w.value)
                return sp.csr_matrix(host)
    """)
    return bad, good


@mutation("BPL002")
def reduced_precision_dtype_kwarg():
    bad = _src("""
        import numpy as np

        def init_weights(n):
            return np.zeros(n, dtype=np.float32)
    """)
    good = _src("""
        import numpy as np

        def init_weights(n):
            return np.zeros(n, dtype=np.float64)
    """)
    return bad, good


@mutation("BPL002")
def reduced_precision_astype_string():
    bad = _src("""
        def shrink(w):
            return w.astype("float16")
    """)
    good = _src("""
        def shrink(w):
            return w.astype("float64")
    """)
    return bad, good


@mutation("BPL003")
def host_round_trip_in_forward():
    bad = _src("""
        def forward(self, x, backend):
            h = backend.to_numpy(x)
            return backend.asarray(h)
    """)
    # The identical round-trip outside a hot path (checkpoint export) is
    # sanctioned — BPL003 is specifically about forward/backward.
    good = _src("""
        def export(self, x, backend):
            h = backend.to_numpy(x)
            return backend.asarray(h)
    """)
    return bad, good


@mutation("BPL004")
def state_dict_returns_live_tensor():
    bad = _src("""
        class Layer:
            def state_dict(self):
                return {"w": self.w.value, "b": self.b.value}
    """)
    good = _src("""
        class Layer:
            def state_dict(self):
                be = self.backend
                return {
                    "w": be.to_numpy(self.w.value),
                    "b": be.to_numpy(self.b.value),
                }
    """)
    return bad, good


@mutation("BPL005")
def direct_torch_import():
    bad = _src("""
        import torch

        def relu(x):
            return torch.relu(x)
    """)
    good = _src("""
        def relu(x, backend):
            return backend.relu(x)
    """)
    return bad, good


@mutation("BPL005")
def direct_torch_from_import():
    bad = _src("""
        from torch import nn

        def head(d):
            return nn.Linear(d, d)
    """)
    good = _src("""
        from repro.nn.layers import Linear

        def head(d):
            return Linear(d, d)
    """)
    return bad, good


# ------------------------------------------------------------------ tests
@pytest.mark.parametrize("rule,mutator", MUTATIONS)
def test_bad_fires_and_good_stays_clean(rule, mutator):
    bad, good = mutator()
    fired = {f.rule for f in analyze_purity_source(bad, "nn/model.py")}
    assert rule in fired, f"expected {rule} on the bad twin, got {sorted(fired)}"
    clean = {f.rule for f in analyze_purity_source(good, "nn/model.py")}
    assert rule not in clean, f"{rule} misfired on the good twin"


def test_all_rules_covered():
    covered = {p.values[0] for p in MUTATIONS}
    assert covered == set(PURITY_RULES), (
        f"rules without a mutation: {sorted(set(PURITY_RULES) - covered)}; "
        f"mutations for unknown rules: {sorted(covered - set(PURITY_RULES))}"
    )


def test_findings_carry_symbol_and_position():
    bad, _ = state_dict_returns_live_tensor()
    findings = [
        f for f in analyze_purity_source(bad, "nn/model.py")
        if f.rule == "BPL004"
    ]
    assert findings and all(f.symbol == "Layer.state_dict" for f in findings)
    assert all(f.line > 0 for f in findings)


def test_inline_suppression_silences_finding():
    bad, _ = raw_numpy_on_tensor()
    bad = bad.replace(
        "return np.tanh(t)",
        "return np.tanh(t)  # repro-lint: disable=BPL001",
    )
    assert analyze_purity_source(bad, "nn/model.py") == []
    # Raw mode still sees it — that is what the SUP001 audit consumes.
    raw = analyze_purity_source(bad, "nn/model.py", suppress=False)
    assert {f.rule for f in raw} == {"BPL001"}
