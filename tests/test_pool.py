"""Persistent-pool layer: payloads, shared-memory lifecycle, orphan reaping.

The contracts under test:

* dispatched unit payloads are *descriptors* — a resident-design token plus
  chunk geometry — never the pickled ``PreparedDesign`` itself;
* results travel through named shared-memory segments that are verified,
  consumed, and unlinked; a worker dying mid-write leaves a torn segment
  that the retry overwrites and the post-run sweep reaps;
* a chaotic 4-worker build whose workers die mid-shm-write still
  fingerprints identically to a clean serial build and leaves no result
  segments behind;
* ``repro doctor`` finds (and with ``--fix`` reaps) ``repro_*`` segments
  whose owning process is gone, and never touches a live process's.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.runtime import (
    ChaosError,
    ChaosPlan,
    DatasetRuntime,
    RetryPolicy,
    RuntimeStats,
    reset_runtime,
    sample_set_fingerprint,
)
from repro.runtime import pool as poolmod
from repro.runtime.pool import (
    auto_batch_size,
    batched,
    fetch_result,
    get_pool,
    reap_orphan_segments,
    register_resident,
    resolve_resident,
    scan_orphan_segments,
    ship_result,
)
from repro.runtime.runtime import ChunkUnit

SEED = 9001

_HAS_SHM_DIR = poolmod._SHM_DIR.is_dir()


@pytest.fixture(autouse=True)
def _isolate_global_runtime():
    reset_runtime()
    yield
    reset_runtime()


def _result_segments() -> list:
    """This process's result ("c"/"p" tag) segments visible in /dev/shm."""
    if not _HAS_SHM_DIR:
        return []
    pid = os.getpid()
    return sorted(
        p.name
        for p in poolmod._SHM_DIR.glob(f"repro_{pid}_*")
        if p.name.split("_", 2)[2][0] in ("c", "p")
    )


# ----------------------------------------------------------- unit payloads
def test_chunk_unit_payload_is_descriptor_sized(prepared):
    """A dispatched unit must not embed the design — tokens only."""
    ref = register_resident(prepared)
    unit = ChunkUnit(
        ref=ref,
        order_index=0,
        mode="bypass",
        seed=SEED,
        kind="single",
        miv_fraction=0.15,
        chunks=((0, 16), (1, 16), (2, 16)),
        result_base=f"repro_{os.getpid()}_c999",
        chaos=ChaosPlan(crash=0.25, seed=7),
    )
    payload = len(pickle.dumps(unit, protocol=pickle.HIGHEST_PROTOCOL))
    design = len(pickle.dumps(prepared, protocol=pickle.HIGHEST_PROTOCOL))
    assert payload < 2048  # descriptor-sized, independent of design size
    assert design > 20 * payload  # the design itself is much bigger
    assert resolve_resident(ref) is prepared


def test_resident_tokens_stable_and_anon_designs_distinct(prepared):
    assert poolmod.resident_token(prepared) == poolmod.resident_token(prepared)

    class _Fake:
        provenance = None

    a, b = _Fake(), _Fake()
    assert poolmod.resident_token(a) != poolmod.resident_token(b)
    assert poolmod.resident_token(a) == poolmod.resident_token(a)


# ------------------------------------------------------- shm result plane
def test_ship_fetch_roundtrip_unlinks_segment():
    value = {"items": list(range(100)), "tag": "roundtrip"}
    base = f"repro_{os.getpid()}_t1"
    desc = ship_result(value, base, attempt=0)
    assert desc[0] == "shm" and desc[1] == f"{base}a0"
    if _HAS_SHM_DIR:
        assert (poolmod._SHM_DIR / desc[1]).exists()
    assert fetch_result(desc) == value
    if _HAS_SHM_DIR:
        assert not (poolmod._SHM_DIR / desc[1]).exists()  # consumed == unlinked


def test_ship_result_serial_path_bypasses_shm():
    desc = ship_result([1, 2, 3], base=None, attempt=0)
    assert desc == ("obj", [1, 2, 3])
    assert fetch_result(desc) == [1, 2, 3]


def test_torn_segment_is_overwritten_on_retry_and_swept():
    """A mid-write death leaves {base}a0 torn; the re-run replaces it."""
    value = {"payload": "x" * 4096}
    base = f"repro_{os.getpid()}_t2"
    plan = ChaosPlan(shm_crash=1.0, seed=0)
    token = ("chunkres", 0, 0)
    # Serial-path injection raises mid-write instead of killing the process,
    # leaving exactly the torn segment a worker death would.
    with pytest.raises(ChaosError, match="shm-write"):
        ship_result(value, base, attempt=0, chaos=plan, token=token)
    if _HAS_SHM_DIR:
        assert (poolmod._SHM_DIR / f"{base}a0").exists()
    # The resubmitted attempt hits FileExistsError and must replace the
    # torn bytes wholesale (attempt 0 fired already, attempt stays 0 only
    # for the billing-free resubmissions; rewrite must succeed either way).
    desc = ship_result(value, base, attempt=0, chaos=None, token=token)
    assert fetch_result(desc) == value

    # And a sweep reaps whatever a unit *could* have written, fetched or not.
    with pytest.raises(ChaosError):
        ship_result(value, base, attempt=0, chaos=plan, token=token)
    pool = get_pool(2)
    removed = pool.sweep_results([base], max_retries=2)
    assert removed == 1
    if _HAS_SHM_DIR:
        assert not (poolmod._SHM_DIR / f"{base}a0").exists()


class _SpillPayload:
    """Anonymous picklable design stand-in for the spill-failure test."""

    provenance = None


def test_ensure_resident_failed_spill_write_reclaims_segment(monkeypatch):
    """A raise between segment creation and registry escape must unlink.

    The segment's name reaches ``_spills`` only after the payload write
    succeeds, so a failure in between used to strand the segment in
    ``/dev/shm`` until ``repro doctor`` (lifecycle rule RCL001; see
    ``repro.analysis.lifecycle``).
    """
    pool = poolmod.PersistentWorkerPool(2)
    created: list = []
    orig = poolmod._open_shm

    def undersized(name, create=False, size=0):
        created.append(name)
        # One byte instead of the payload size: the buf write then raises
        # exactly where a mid-spill failure (ENOMEM, chaos) would.
        return orig(name, create=create, size=1)

    monkeypatch.setattr(poolmod, "_open_shm", undersized)
    with pytest.raises(ValueError):
        pool.ensure_resident(_SpillPayload())
    assert created, "spill segment was never created"
    assert not pool._spills  # the name never escaped to the registry
    monkeypatch.setattr(poolmod, "_open_shm", orig)
    if _HAS_SHM_DIR:
        assert not (poolmod._SHM_DIR / created[0]).exists()
    with pytest.raises(FileNotFoundError):
        orig(created[0])  # attach fails: the segment was unlinked on raise


# ------------------------------------------------------------ batch geometry
def test_auto_batch_size_serial_and_small_fanouts_stay_per_chunk():
    assert auto_batch_size(3, 1, 180) == 1  # serial: reference loop
    assert auto_batch_size(1, 8, 180) == 1
    assert auto_batch_size(3, 4, 180) == 1  # fewer tasks than target units


def test_auto_batch_size_groups_large_fanouts_and_caps_heavy_designs():
    assert auto_batch_size(64, 2, 180) == 8  # ceil(64 / (2*4))
    assert auto_batch_size(64, 2, 100_000) == 1  # one 100K chunk is enough
    assert auto_batch_size(64, 2, 20_000) == 2  # 50_000 // 20_000
    # Batching never drops or reorders grid cells.
    cells = [(i, 16) for i in range(17)]
    groups = list(batched(cells, 3))
    assert [c for g in groups for c in g] == cells
    assert max(len(g) for g in groups) == 3


def test_batched_parallel_build_matches_serial_fingerprint(prepared):
    """batch > 1 groups grid cells per dispatch without changing bytes."""
    n_samples = 272  # 17 canonical chunks -> batch 3 on 2 workers
    assert auto_batch_size(17, 2, prepared.nl.n_gates) > 1
    serial = DatasetRuntime(workers=1).build_dataset(
        prepared, "bypass", n_samples, SEED
    )
    parallel = DatasetRuntime(workers=2).build_dataset(
        prepared, "bypass", n_samples, SEED
    )
    assert sample_set_fingerprint(parallel) == sample_set_fingerprint(serial)
    assert _result_segments() == []  # every result consumed and unlinked


# --------------------------------------------------------- pool persistence
def test_get_pool_is_persistent_and_reused_across_builds(prepared):
    pool = get_pool(2)
    assert get_pool(2) is pool
    assert pool.acquire() is pool.acquire()
    before = pool.invalidations
    rt = DatasetRuntime(workers=2)
    a = rt.build_dataset(prepared, "bypass", 48, SEED)
    b = rt.build_dataset(prepared, "bypass", 48, SEED + 1)
    assert pool.invalidations == before  # healthy builds never respawn
    assert len(a.items) == 48 and len(b.items) == 48
    # One spill segment per design, deduplicated across builds.
    token = poolmod.resident_token(prepared)
    assert token in pool._spills
    assert _result_segments() == []


# ------------------------------------------- chaos: death mid-segment-write
@pytest.mark.chaos
def test_shm_crash_chaos_build_matches_clean_serial(prepared):
    """Workers dying mid-shm-write cost retries, never bytes or segments.

    ``shm_crash=1.0`` kills every unit's worker halfway through its result
    write on attempt 0 (``os._exit(71)``), so each of the three chunk units
    leaves a torn segment and must be re-executed.  The recovered build must
    fingerprint identically to a clean serial build, and no result segment
    may outlive the run.
    """
    plan = ChaosPlan(shm_crash=1.0, seed=5)
    stats = RuntimeStats()
    chaotic = DatasetRuntime(
        workers=4,
        stats=stats,
        retry=RetryPolicy(deadline=3.0, max_retries=2, max_pool_respawns=4),
        chaos=plan,
    )
    built = chaotic.build_dataset(prepared, "bypass", 48, SEED)
    clean = DatasetRuntime(workers=1).build_dataset(prepared, "bypass", 48, SEED)
    assert sample_set_fingerprint(built) == sample_set_fingerprint(clean)
    # The deaths really happened: deadline expiries and billed retries.
    assert stats.counters.get("faulttol.chunk.timeouts", 0) >= 1
    assert stats.counters.get("faulttol.chunk.retries", 0) >= 1
    # Torn and fetched segments alike were reclaimed by the sweep.
    assert _result_segments() == []


# ------------------------------------------------------------ orphan audit
def test_scan_and_reap_orphans_only_touch_dead_pids(tmp_path):
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    dead_pid = proc.pid
    live_pid = os.getpid()

    (tmp_path / f"repro_{dead_pid}_s1").write_bytes(b"x" * 64)
    (tmp_path / f"repro_{dead_pid}_c2a0").write_bytes(b"y" * 32)
    (tmp_path / f"repro_{live_pid}_s1").write_bytes(b"z" * 16)
    (tmp_path / "repro_notapid_s1").write_bytes(b"?")  # unattributable: keep
    (tmp_path / "unrelated_file").write_bytes(b"!")

    orphans = scan_orphan_segments(tmp_path)
    assert sorted(o.name for o in orphans) == [
        f"repro_{dead_pid}_c2a0",
        f"repro_{dead_pid}_s1",
    ]
    assert all(o.pid == dead_pid for o in orphans)
    assert {o.name: o.nbytes for o in orphans}[f"repro_{dead_pid}_s1"] == 64

    reaped = reap_orphan_segments(tmp_path)
    assert sorted(o.name for o in reaped) == sorted(o.name for o in orphans)
    assert not (tmp_path / f"repro_{dead_pid}_s1").exists()
    assert (tmp_path / f"repro_{live_pid}_s1").exists()
    assert (tmp_path / "repro_notapid_s1").exists()
    assert scan_orphan_segments(tmp_path) == []


def test_scan_orphans_missing_dir_is_empty(tmp_path):
    assert scan_orphan_segments(tmp_path / "nope") == []


def test_doctor_reports_and_reaps_orphan_segments(tmp_path, monkeypatch, capsys):
    """``repro doctor`` counts orphans as problems; ``--fix`` reaps them."""
    from repro.cli import main
    from repro.runtime import ArtifactCache

    cache_dir = tmp_path / "cache"
    ArtifactCache(cache_dir).put("unit", {"x": 1}, [1, 2, 3])
    shm_dir = tmp_path / "shm"
    shm_dir.mkdir()
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    (shm_dir / f"repro_{proc.pid}_s1").write_bytes(b"x" * 128)
    monkeypatch.setattr(poolmod, "_SHM_DIR", shm_dir)

    assert main(["doctor", "--cache-dir", str(cache_dir)]) == 1
    out = capsys.readouterr().out
    assert "found 1 orphaned segment(s) (128 bytes)" in out
    assert f"dead pid {proc.pid}" in out

    assert main(["doctor", "--cache-dir", str(cache_dir), "--fix"]) == 0
    out = capsys.readouterr().out
    assert "reaped 1 orphaned segment(s)" in out
    assert not (shm_dir / f"repro_{proc.pid}_s1").exists()

    assert main(["doctor", "--cache-dir", str(cache_dir)]) == 0
    assert "found 0 orphaned segment(s)" in capsys.readouterr().out
