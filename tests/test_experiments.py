"""Integration tests for experiment runners at tiny scale.

These are the slowest tests in the suite (they train models); they pin the
end-to-end behaviour every benchmark harness relies on.
"""

import numpy as np
import pytest

from repro.experiments import (
    atpg_quality,
    design_matrix,
    feature_significance,
    format_design_matrix,
    format_effectiveness,
    format_multifault,
    format_pca_study,
    format_pfa_savings,
    format_quality,
    format_runtime,
    format_significance,
    format_standalone,
    format_transferability,
    effectiveness,
    multifault_study,
    pca_study,
    pfa_savings,
    runtime_table,
    standalone_models,
    transferability_study,
)

SCALE = "tiny"


@pytest.mark.slow
def test_design_matrix():
    rows = design_matrix(scale=SCALE)
    assert [r.design for r in rows] == ["AES", "Tate", "netcard", "leon3mp"]
    for r in rows:
        assert r.gates > 0 and r.mivs > 0
        assert 0.5 <= r.fault_coverage <= 1.0
    gates = [r.gates for r in rows]
    assert gates == sorted(gates)  # AES < Tate < netcard < leon3mp
    assert "Table III" in format_design_matrix(rows)


@pytest.mark.slow
def test_atpg_quality_rows():
    rows = atpg_quality("bypass", designs=("AES",), configs=("Syn-1",), n_samples=15, scale=SCALE)
    assert len(rows) == 1
    q = rows[0].quality
    assert q.n_samples > 0
    assert q.accuracy > 0.7
    assert q.mean_resolution >= 1.0
    assert "Acc" in format_quality(rows, "t")


@pytest.mark.slow
def test_effectiveness_row_shape():
    rows = effectiveness(
        "bypass", designs=("AES",), configs=("Syn-1",), n_samples=15, scale=SCALE
    )
    r = rows[0]
    # Pruning/filtering can only shrink reports.
    assert r.gnn.quality.mean_resolution <= r.atpg.quality.mean_resolution + 1e-9
    assert r.baseline.quality.mean_resolution <= r.atpg.quality.mean_resolution + 1e-9
    assert r.combined.quality.mean_resolution <= r.gnn.quality.mean_resolution + 1e-9
    assert r.gnn.tier_localization is None or 0 <= r.gnn.tier_localization <= 1
    assert "GNN" in format_effectiveness(rows, "t")


@pytest.mark.slow
def test_pca_study_overlap():
    study = pca_study("AES", configs=("Syn-1", "Par"), n_samples=15, scale=SCALE)
    assert set(study.points) == {"Syn-1", "Par"}
    assert study.overlap_ratio < 3.0  # clouds overlap broadly
    assert "PCA" in format_pca_study(study)


@pytest.mark.slow
def test_transferability_rows():
    rows = transferability_study("AES", configs=("Syn-1",), n_samples=15, scale=SCALE)
    r = rows[0]
    for v in (r.dedicated_tier, r.transferred_tier, r.dedicated_miv, r.transferred_miv):
        assert 0.0 <= v <= 1.0
    assert "Fig. 6" in format_transferability(rows, "AES")


@pytest.mark.slow
def test_runtime_and_pfa():
    rows = runtime_table(designs=("AES",), n_samples=10, scale=SCALE)
    r = rows[0]
    assert r.t_atpg_s > 0 and r.t_gnn_s > 0 and r.t_update_s >= 0
    assert r.t_gnn_s < r.t_atpg_s  # GNN inference is the fast path
    curves = pfa_savings(rows)
    pts = curves["AES"]
    assert pts[-1][0] > pts[0][0]
    assert "T_diff" in format_pfa_savings(curves)
    assert "Table IX" in format_runtime(rows)


@pytest.mark.slow
def test_multifault_rows():
    rows = multifault_study(designs=("AES",), n_train=40, n_test=12, epochs=15, scale=SCALE)
    r = rows[0]
    assert 0.0 <= r.tier_localization <= 1.0
    assert r.framework.mean_resolution <= r.atpg.mean_resolution + 1e-9
    assert "Table X" in format_multifault(rows)


@pytest.mark.slow
def test_standalone_ablation():
    rows = standalone_models("AES", n_samples=15, scale=SCALE)
    assert [r.method for r in rows] == [
        "ATPG only",
        "Tier-predictor",
        "MIV-pinpointer",
        "Tier-predictor + MIV-pinpointer",
    ]
    atpg = rows[0].quality
    miv_only = rows[2].quality
    # MIV-pinpointer alone never prunes: resolution unchanged.
    assert miv_only.mean_resolution == pytest.approx(atpg.mean_resolution)
    assert miv_only.accuracy == pytest.approx(atpg.accuracy)
    assert "Table XI" in format_standalone(rows)


@pytest.mark.slow
def test_feature_significance_rows():
    rows = feature_significance("AES", n_samples=15, scale=SCALE)
    assert len(rows) == 13
    for r in rows:
        assert 0.0 <= r.significance <= 1.0
    assert "significance" in format_significance(rows)
