"""Mutation harness for the resource-lifecycle analyzer (RCL rules).

Each mutator returns a ``(bad, good)`` pair of source snippets: ``bad``
contains exactly one class of lifecycle/fork-safety damage and must fire
the intended rule; ``good`` is the disciplined twin of the same code and
must not.  ``test_all_rules_covered`` pins the harness to the full
``LIFECYCLE_RULES`` catalog, so adding an RCL rule without a mutation here
fails CI.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import LIFECYCLE_RULES, analyze_lifecycle_source

MUTATIONS = []


def mutation(rule):
    def deco(fn):
        MUTATIONS.append(pytest.param(rule, fn, id=f"{rule}-{fn.__name__}"))
        return fn

    return deco


def _src(text: str) -> str:
    return textwrap.dedent(text)


@mutation("RCL001")
def create_leaks_on_write_failure():
    # The write between creation and the name escaping can raise; the bad
    # twin strands the segment (exactly the ensure_resident bug PR 8 fixed).
    bad = _src("""
        def spill(name, payload):
            shm = _open_shm(name, create=True, size=len(payload))
            shm.buf[: len(payload)] = payload
            shm.close()
            _unlink_segment(name)
    """)
    good = _src("""
        def spill(name, payload):
            shm = _open_shm(name, create=True, size=len(payload))
            try:
                shm.buf[: len(payload)] = payload
            except BaseException:
                _unlink_segment(name)
                raise
            finally:
                shm.close()
            return name
    """)
    return bad, good


@mutation("RCL001")
def finally_closes_but_never_unlinks():
    bad = _src("""
        def spill(name, payload):
            shm = _open_shm(name, create=True, size=len(payload))
            try:
                shm.buf[: len(payload)] = payload
            finally:
                shm.close()
    """)
    good = _src("""
        def spill(name, payload):
            shm = _open_shm(name, create=True, size=len(payload))
            try:
                shm.buf[: len(payload)] = payload
            finally:
                shm.close()
                _unlink_segment(name)
    """)
    return bad, good


@mutation("RCL002")
def attach_never_closed():
    bad = _src("""
        def peek(name):
            shm = _open_shm(name)
            return bytes(shm.buf[:8])
    """)
    good = _src("""
        def peek(name):
            shm = _open_shm(name)
            try:
                return bytes(shm.buf[:8])
            finally:
                shm.close()
    """)
    return bad, good


@mutation("RCL002")
def close_only_on_happy_branch():
    bad = _src("""
        def maybe_read(name, want):
            shm = _open_shm(name)
            if want:
                data = bytes(shm.buf[:8])
                shm.close()
                return data
            return None
    """)
    good = _src("""
        def maybe_read(name, want):
            shm = _open_shm(name)
            try:
                if want:
                    return bytes(shm.buf[:8])
                return None
            finally:
                shm.close()
    """)
    return bad, good


@mutation("RCL003")
def lambda_in_unit_payload():
    bad = _src("""
        def make_units(refs):
            return [ChunkUnit(ref=r, fn=lambda x: x) for r in refs]
    """)
    good = _src("""
        def make_units(refs):
            return [ChunkUnit(ref=r, fn_name="identity") for r in refs]
    """)
    return bad, good


@mutation("RCL003")
def tracer_in_payload():
    bad = _src("""
        def dispatch(mp_pool, unit, self):
            return mp_pool.apply_async(run, (unit, self.tracer))
    """)
    good = _src("""
        def dispatch(mp_pool, unit, self):
            return mp_pool.apply_async(run, (unit, self.span_export))
    """)
    return bad, good


@mutation("RCL003")
def lock_pickled_into_payload():
    bad = _src("""
        import threading

        def freeze(state):
            guard = threading.Lock()
            return pickle.dumps((state, guard))
    """)
    good = _src("""
        def freeze(state):
            return pickle.dumps((state,))
    """)
    return bad, good


@mutation("RCL004")
def queue_created_after_fork():
    bad = _src("""
        import multiprocessing

        def run(units):
            pool = get_pool(4)
            results = multiprocessing.Queue()
            return pool, results
    """)
    good = _src("""
        import multiprocessing

        def run(units):
            results = multiprocessing.Queue()
            pool = get_pool(4)
            return pool, results
    """)
    return bad, good


@mutation("RCL004")
def lock_created_after_pool_acquire():
    bad = _src("""
        import multiprocessing

        def run(pool, units):
            inner = pool.acquire()
            guard = multiprocessing.Lock()
            return inner, guard
    """)
    good = _src("""
        import multiprocessing

        def run(pool, units):
            guard = multiprocessing.Lock()
            inner = pool.acquire()
            return inner, guard
    """)
    return bad, good


@mutation("RCL005")
def connection_leaks_when_handshake_raises():
    # send_frame/recv_frame are lifecycle calls: using the socket through
    # them must NOT count as an ownership transfer, so the bad twin still
    # holds the close obligation on the exception path out of the handshake.
    bad = _src("""
        import socket

        def dial(addr):
            sock = socket.create_connection(addr, timeout=10.0)
            send_frame(sock, "hello")
            reply = recv_frame(sock)
            sock.close()
            return reply
    """)
    good = _src("""
        import socket

        def dial(addr):
            sock = socket.create_connection(addr, timeout=10.0)
            try:
                send_frame(sock, "hello")
                return recv_frame(sock)
            finally:
                sock.close()
    """)
    return bad, good


@mutation("RCL005")
def accepted_connection_dropped_on_early_return():
    bad = _src("""
        def accept_one(listener, sessions):
            conn, addr = listener.accept()
            if not sessions.allow(addr):
                return None
            sessions.adopt(conn)
            return addr
    """)
    # The disciplined twin hands the connection to an owner *before*
    # anything else can raise — the coordinator's accept-loop protocol.
    good = _src("""
        def accept_one(listener, sessions):
            conn, addr = listener.accept()
            sessions.adopt(conn)
            if not sessions.allow(addr):
                return None
            return addr
    """)
    return bad, good


# ------------------------------------------------------------------ tests
@pytest.mark.parametrize("rule,mutator", MUTATIONS)
def test_bad_fires_and_good_stays_clean(rule, mutator):
    bad, good = mutator()
    fired = {f.rule for f in analyze_lifecycle_source(bad, "runtime/pool.py")}
    assert rule in fired, f"expected {rule} on the bad twin, got {sorted(fired)}"
    clean = {f.rule for f in analyze_lifecycle_source(good, "runtime/pool.py")}
    assert rule not in clean, f"{rule} misfired on the good twin"


def test_all_rules_covered():
    covered = {p.values[0] for p in MUTATIONS}
    assert covered == set(LIFECYCLE_RULES), (
        f"rules without a mutation: {sorted(set(LIFECYCLE_RULES) - covered)}; "
        f"mutations for unknown rules: {sorted(covered - set(LIFECYCLE_RULES))}"
    )


def test_leak_finding_anchors_the_acquire_site():
    bad, _ = create_leaks_on_write_failure()
    findings = [
        f for f in analyze_lifecycle_source(bad, "runtime/pool.py")
        if f.rule == "RCL001"
    ]
    assert findings
    # Anchored at the _open_shm call, attributed to the enclosing function.
    assert all("_open_shm" in bad.splitlines()[f.line - 1] for f in findings)
    assert all(f.symbol == "spill" for f in findings)


def test_ownership_transfer_discharges_obligations():
    # Returning the segment *name* hands the obligations to the caller —
    # the protocol ship_result/sweep_results relies on.
    src = _src("""
        def publish(name, payload):
            shm = _open_shm(name, create=True, size=len(payload))
            shm.buf[: len(payload)] = payload
            shm.close()
            return name
    """)
    findings = analyze_lifecycle_source(src, "runtime/pool.py")
    assert {f.rule for f in findings} <= {"RCL001"}  # normal path is owned
