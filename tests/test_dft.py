"""Unit and property tests for scan chains and response compaction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft import ObservationMap, build_scan_chains


class TestScanChains:
    def test_balanced_chains(self, small_netlist):
        scan = build_scan_chains(small_netlist, n_chains=4, seed=0)
        lengths = [len(c.flops) for c in scan.chains]
        assert max(lengths) - min(lengths) <= 1
        assert sum(lengths) == small_netlist.n_flops
        assert scan.chain_length == max(lengths)

    def test_every_flop_in_exactly_one_chain(self, small_netlist):
        scan = build_scan_chains(small_netlist, n_chains=5, seed=0)
        seen = [f for c in scan.chains for f in c.flops]
        assert sorted(seen) == list(range(small_netlist.n_flops))

    def test_channels_group_chains(self, small_netlist):
        scan = build_scan_chains(small_netlist, n_chains=6, chains_per_channel=4, seed=0)
        assert scan.n_channels == 2
        assert [len(ch) for ch in scan.channels] == [4, 2]

    def test_zero_chains_rejected(self, small_netlist):
        with pytest.raises(ValueError, match="at least one chain"):
            build_scan_chains(small_netlist, n_chains=0)

    def test_deterministic(self, small_netlist):
        a = build_scan_chains(small_netlist, 4, seed=9)
        b = build_scan_chains(small_netlist, 4, seed=9)
        assert a == b


class TestObservationMap:
    def test_bypass_counts(self, small_netlist):
        scan = build_scan_chains(small_netlist, 4, seed=0)
        om = ObservationMap.bypass(small_netlist, scan)
        assert om.n_observations == len(small_netlist.primary_outputs) + small_netlist.n_flops
        assert not om.compacted

    def test_compacted_counts(self, small_netlist):
        scan = build_scan_chains(small_netlist, 4, chains_per_channel=2, seed=0)
        om = ObservationMap.compacted(small_netlist, scan)
        expected = len(small_netlist.primary_outputs) + sum(
            max(len(scan.chains[c].flops) for c in ch) for ch in scan.channels
        )
        assert om.n_observations == expected
        assert om.compacted

    def test_every_flop_observed_once_compacted(self, small_netlist):
        scan = build_scan_chains(small_netlist, 4, chains_per_channel=2, seed=0)
        om = ObservationMap.compacted(small_netlist, scan)
        count = {}
        for obs in om.observations:
            if obs.kind == "channel":
                for net in obs.nets:
                    count[net] = count.get(net, 0) + 1
        assert set(count.values()) == {1}
        assert set(count) == {f.d_net for f in small_netlist.flops}

    def test_fail_masks_bypass_passthrough(self, small_netlist):
        scan = build_scan_chains(small_netlist, 4, seed=0)
        om = ObservationMap.bypass(small_netlist, scan)
        d0 = small_netlist.flops[0].d_net
        mask = np.array([True, False, True])
        fails = om.fail_masks({d0: mask})
        obs_ids = om.observations_of_net(d0)
        assert len(obs_ids) == 1
        assert np.array_equal(fails[obs_ids[0]], mask)

    @given(st.lists(st.booleans(), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_xor_aliasing_parity(self, flags):
        """A compacted observation fails iff an odd number of members differ."""
        # Build a minimal observation map by hand via a tiny design.
        from repro.netlist import NetlistBuilder

        b = NetlistBuilder("p")
        a = b.add_primary_input("a")
        nets = []
        for i in range(len(flags)):
            nets.append(b.add_gate("BUF", [a], gate_name=f"b{i}"))
            b.add_flop(nets[-1], name=f"f{i}")
        nl = b.finish()
        scan = build_scan_chains(nl, n_chains=len(flags), chains_per_channel=len(flags), shuffle=False)
        om = ObservationMap.compacted(nl, scan)
        detections = {
            nl.flops[i].d_net: np.array([flags[i]]) for i in range(len(flags))
        }
        fails = om.fail_masks(detections)
        odd = sum(flags) % 2 == 1
        channel_obs = [o for o in om.observations if o.kind == "channel"]
        assert len(channel_obs) == 1
        assert (channel_obs[0].id in fails) == odd

    def test_good_responses_xor(self, small_netlist):
        scan = build_scan_chains(small_netlist, 4, chains_per_channel=2, seed=0)
        om = ObservationMap.compacted(small_netlist, scan)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2, size=(small_netlist.n_nets, 5), dtype=np.uint8)
        resp = om.good_responses(values)
        for obs in om.observations:
            acc = np.zeros(5, dtype=np.uint8)
            for net in obs.nets:
                acc ^= values[net]
            assert np.array_equal(resp[obs.id], acc)
