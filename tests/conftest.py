"""Shared fixtures: small deterministic designs and prepared bundles."""

from __future__ import annotations

import pytest

from repro.data import DesignConfig, prepare_design
from repro.netlist import GeneratorSpec, generate, toy_netlist


@pytest.fixture
def toy():
    """The hand-written 5-gate netlist."""
    return toy_netlist()


@pytest.fixture(scope="session")
def small_spec():
    return GeneratorSpec("small", "aes_like", 180, 24, 12, 12, seed=3)


@pytest.fixture(scope="session")
def small_netlist(small_spec):
    """A ~180-gate generated design (session-scoped, read-only)."""
    return generate(small_spec)


@pytest.fixture(scope="session")
def prepared(small_spec):
    """A fully prepared small design (partitioned, scanned, ATPG'd)."""
    return prepare_design(
        small_spec,
        DesignConfig.standard("Syn-1"),
        n_chains=4,
        chains_per_channel=2,
        max_patterns=96,
    )


@pytest.fixture(scope="session")
def prepared_par(small_spec):
    """The same design under the spectral (Par) partitioner."""
    return prepare_design(
        small_spec,
        DesignConfig.standard("Par"),
        n_chains=4,
        chains_per_channel=2,
        max_patterns=96,
    )
