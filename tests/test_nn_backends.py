"""Backend registry, batching-invariant, and oracle-differential tests.

This is the GNN analogue of the simulator's packed-vs-uint8 harness: the
numpy backend is the reference oracle, and every other backend must agree
with it on forward logits, loss values, gradients, and post-training
predictions within the tolerances documented below.  On hosts without torch
the differential tests *skip* (never fail); CI runs them in a dedicated
torch job.
"""

import copy
import pickle

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import N_FEATURES
from repro.nn import (
    Adam,
    GraphClassifier,
    GraphData,
    NodeClassifier,
    available_backends,
    bce_with_logits,
    build_batch,
    get_backend,
    softmax_cross_entropy,
    torch_available,
)
from repro.nn.backends import (
    BACKEND_ENV_VAR,
    BackendUnavailableError,
    NumpyBackend,
    infer_backend,
)
from repro.nn.layers import Parameter

#: Documented differential tolerances (see DESIGN.md).  Forward/loss/grad
#: comparisons are pure float64 re-orderings, so they agree to ~1e-12; the
#: bound leaves headroom for BLAS/backend kernel choice.  Post-fit
#: predictions compound hundreds of optimizer steps, hence the looser bound.
FORWARD_ATOL = 1e-9
FIT_ATOL = 1e-4

requires_torch = pytest.mark.skipif(
    not torch_available(),
    reason="torch not installed; the differential suite runs on the CI torch job",
)


def _graphs(seed, n=6, n_feat=4, max_nodes=8):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        k = int(rng.integers(2, max_nodes))
        edges = (rng.integers(0, k, size=2 * k), rng.integers(0, k, size=2 * k))
        out.append(
            GraphData(
                x=rng.normal(size=(k, n_feat)),
                edges=edges,
                y=int(i % 2),
                node_y=rng.integers(0, 2, size=k).astype(float),
                node_mask=np.ones(k, dtype=bool),
            )
        )
    return out


class TestRegistry:
    def test_default_is_numpy_singleton(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        be = get_backend(None)
        assert isinstance(be, NumpyBackend)
        assert be is get_backend("numpy")
        assert be.spec == "numpy" and be.name == "numpy"

    def test_instance_passthrough(self):
        be = get_backend("numpy")
        assert get_backend(be) is be

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend(None) is get_backend("numpy")
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-engine")
        with pytest.raises(ValueError, match="unknown nn backend"):
            get_backend(None)

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-engine")
        assert get_backend("numpy").name == "numpy"

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown nn backend"):
            get_backend("tensorflow")

    def test_auto_resolves_to_best_available(self):
        be = get_backend("auto")
        if torch_available():
            assert be.name == "torch"
        else:
            assert be.name == "numpy"

    def test_available_backends_oracle_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert ("torch" in names) == torch_available()

    @pytest.mark.skipif(torch_available(), reason="torch present on this host")
    def test_torch_spec_unavailable_raises(self):
        with pytest.raises(BackendUnavailableError, match="not installed"):
            get_backend("torch-cpu")

    @pytest.mark.parametrize("backend", available_backends())
    def test_pickle_roundtrip_preserves_identity(self, backend):
        be = get_backend(backend)
        assert pickle.loads(pickle.dumps(be)) is be

    def test_infer_backend_host_arrays(self):
        assert infer_backend(np.zeros(3)) is get_backend("numpy")

    @pytest.mark.parametrize("backend", available_backends())
    def test_op_semantics_match_oracle(self, backend):
        """Spot-check every backend op against the numpy reference."""
        be = get_backend(backend)
        ref = get_backend("numpy")
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 4))
        a = sp.random(5, 5, density=0.5, random_state=7, format="csr")
        pairs = [
            (be.to_numpy(be.exp(be.asarray(x))), np.exp(x)),
            (be.to_numpy(be.log(be.asarray(np.abs(x) + 1.0))), np.log(np.abs(x) + 1.0)),
            (be.to_numpy(be.sqrt(be.asarray(np.abs(x)))), np.sqrt(np.abs(x))),
            (be.to_numpy(be.relu(be.asarray(x))), np.maximum(x, 0.0)),
            (be.to_numpy(be.relu_grad(be.asarray(x))), (x > 0.0).astype(float)),
            (be.to_numpy(be.sigmoid(be.asarray(x))), ref.sigmoid(x)),
            (be.to_numpy(be.sum(be.asarray(x), axis=0)), x.sum(axis=0)),
            (
                be.to_numpy(be.max(be.asarray(x), axis=1, keepdims=True)),
                x.max(axis=1, keepdims=True),
            ),
            (be.to_numpy(be.onehot(np.array([0, 2, 1]), 3)), np.eye(3)[[0, 2, 1]]),
            (be.to_numpy(be.spmm(be.sparse(a), be.asarray(x))), a @ x),
            (be.to_numpy(be.spmm_t(be.sparse(a), be.asarray(x))), a.T @ x),
        ]
        for got, want in pairs:
            np.testing.assert_allclose(got, want, atol=FORWARD_ATOL, rtol=0)
        assert be.to_scalar(be.sum(be.asarray(x))) == pytest.approx(x.sum())
        assert be.dtype_of(be.asarray(x)) == np.float64


class TestBatchedIdentity:
    """Block-diagonal batched forward vs per-graph sequential forward.

    The graph ops (SpMM aggregation and mean pooling) are bitwise identical
    between the two paths on the numpy oracle.  Full GraphClassifier logits
    additionally cross the dense head, where BLAS picks shape-dependent
    gemm kernels that may differ in the last ulp — hence exact equality
    through pooling and a 1e-12 bound on logits (see DESIGN.md).
    """

    def test_pool_matrix_matches_pool_mean_bitwise(self):
        graphs = _graphs(0)
        batch = build_batch(graphs)
        rng = np.random.default_rng(1)
        h = rng.normal(size=(batch.n_nodes, 5))
        via_spmm = (batch.pool_matrix() @ h) / batch.graph_counts()[:, None]
        assert np.array_equal(via_spmm, batch.pool_mean(h))

    def test_graph_classifier_batched_equals_sequential(self):
        graphs = _graphs(2)
        model = GraphClassifier(4, 2, hidden=(6,), head_hidden=(5,), seed=0)
        batch = build_batch(graphs)
        be = model.backend

        # Through encoder + pooling: bitwise identical.
        h = model.encoder.forward(be.sparse(batch.a_hat), be.asarray(batch.x))
        pooled = be.spmm(be.sparse(batch.pool_matrix()), h) / batch.graph_counts()[:, None]
        batched_logits = model.forward(batch)
        seq_pooled, seq_logits = [], []
        for g in graphs:
            b1 = build_batch([g])
            h1 = model.encoder.forward(be.sparse(b1.a_hat), be.asarray(b1.x))
            seq_pooled.append(be.spmm(be.sparse(b1.pool_matrix()), h1) / b1.graph_counts()[:, None])
            seq_logits.append(model.forward(b1))
        assert np.array_equal(pooled, np.concatenate(seq_pooled, axis=0))
        np.testing.assert_allclose(
            batched_logits, np.concatenate(seq_logits, axis=0), atol=1e-12, rtol=0
        )

    def test_node_classifier_batched_equals_sequential_exactly(self):
        graphs = _graphs(3)
        model = NodeClassifier(4, hidden=(6, 5), seed=0)
        batched = model.forward(build_batch(graphs))
        seq = np.concatenate([model.forward(build_batch([g])) for g in graphs])
        assert np.array_equal(batched, seq)


def _graph_strategy():
    def build(sizes, seed):
        rng = np.random.default_rng(seed)
        out = []
        for i, k in enumerate(sizes):
            n_edges = int(rng.integers(0, 3 * k))
            edges = (rng.integers(0, k, size=n_edges), rng.integers(0, k, size=n_edges))
            out.append(
                GraphData(
                    x=rng.normal(size=(k, 3)),
                    edges=edges,
                    y=int(rng.integers(0, 3)),
                    node_y=rng.integers(0, 2, size=k).astype(float),
                    node_mask=rng.integers(0, 2, size=k).astype(bool),
                )
            )
        return out

    return st.builds(
        build,
        st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=2**31),
    )


class TestPackingInvariants:
    """Property-style sweeps over random graph lists (satellite 3)."""

    @settings(max_examples=30, deadline=None)
    @given(_graph_strategy())
    def test_packing_alignment(self, graphs):
        batch = build_batch(graphs)
        sizes = [g.n_nodes for g in graphs]
        assert batch.n_graphs == len(graphs)
        assert batch.n_nodes == sum(sizes)
        # graph_ids: contiguous non-decreasing blocks of the right lengths.
        assert np.array_equal(
            batch.graph_ids, np.repeat(np.arange(len(graphs)), sizes)
        )
        assert np.array_equal(
            np.bincount(batch.graph_ids, minlength=batch.n_graphs), sizes
        )
        # Label / mask alignment: each graph's slice is its own data.
        assert np.array_equal(batch.y, [g.y for g in graphs])
        start = 0
        for g in graphs:
            end = start + g.n_nodes
            assert np.array_equal(batch.node_y[start:end], g.node_y)
            assert np.array_equal(batch.node_mask[start:end], g.node_mask)
            start = end

    @settings(max_examples=30, deadline=None)
    @given(_graph_strategy())
    def test_block_diagonal_adjacency(self, graphs):
        batch = build_batch(graphs)
        coo = batch.a_hat.tocoo()
        # Every nonzero stays inside its graph's diagonal block.
        assert np.array_equal(batch.graph_ids[coo.row], batch.graph_ids[coo.col])
        # Row normalization survives the packing.
        np.testing.assert_allclose(
            np.asarray(batch.a_hat.sum(axis=1)).ravel(), 1.0, atol=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(_graph_strategy())
    def test_pool_matrix_invariants(self, graphs):
        batch = build_batch(graphs)
        pool = batch.pool_matrix()
        assert pool.shape == (batch.n_graphs, batch.n_nodes)
        assert np.array_equal(np.asarray(pool.sum(axis=1)).ravel(), batch.graph_counts())
        coo = pool.tocoo()
        assert np.array_equal(coo.data, np.ones(batch.n_nodes))
        assert np.array_equal(coo.row, batch.graph_ids[coo.col])


class TestStateDict:
    def test_state_is_backend_neutral_numpy(self):
        model = GraphClassifier(4, 2, hidden=(6,), seed=0)
        state = model.state_dict()
        assert all(isinstance(v, np.ndarray) and v.dtype == np.float64 for v in state)
        # Copies, not views: mutating the state never touches live weights.
        before = model.backend.to_numpy(model.parameters()[0].value)
        state[0][...] = 1e9
        assert np.array_equal(model.backend.to_numpy(model.parameters()[0].value), before)

    def test_dtype_mismatch_rejected(self):
        model = GraphClassifier(4, 2, hidden=(6,), seed=0)
        state = [v.astype(np.float32) for v in model.state_dict()]
        with pytest.raises(ValueError, match="dtype mismatch"):
            model.load_state_dict(state)

    def test_length_mismatch_rejected(self):
        model = GraphClassifier(4, 2, hidden=(6,), seed=0)
        with pytest.raises(ValueError, match="state has"):
            model.load_state_dict(model.state_dict()[:-1])

    @pytest.mark.parametrize("backend", available_backends())
    def test_roundtrip_on_each_backend(self, backend):
        graphs = _graphs(5)
        batch = build_batch(graphs)
        src = GraphClassifier(4, 2, hidden=(6,), seed=0, backend=backend)
        dst = GraphClassifier(4, 2, hidden=(6,), seed=99, backend=backend)
        dst.load_state_dict(src.state_dict())
        np.testing.assert_allclose(
            src.predict_proba(batch), dst.predict_proba(batch), atol=FORWARD_ATOL, rtol=0
        )

    @pytest.mark.parametrize("backend", available_backends())
    def test_to_backend_migration_preserves_weights(self, backend):
        model = GraphClassifier(4, 2, hidden=(6,), head_hidden=(3,), seed=0)
        state = model.state_dict()
        model.to_backend(backend)
        assert model.backend is get_backend(backend)
        assert all(p.backend is model.backend for p in model.parameters())
        for a, b in zip(state, model.state_dict()):
            assert np.array_equal(a, b)


@requires_torch
class TestTorchDifferential:
    """The oracle contract: torch must reproduce numpy within tolerance."""

    def _pair(self, **kw):
        return (
            GraphClassifier(4, 2, hidden=(6,), head_hidden=(5,), seed=0, backend="numpy", **kw),
            GraphClassifier(4, 2, hidden=(6,), head_hidden=(5,), seed=0, backend="torch", **kw),
        )

    def test_forward_logits_match(self):
        batch = build_batch(_graphs(7))
        ref, alt = self._pair()
        np.testing.assert_allclose(
            ref.forward(batch),
            alt.backend.to_numpy(alt.forward(batch)),
            atol=FORWARD_ATOL,
            rtol=0,
        )

    def test_node_logits_match(self):
        batch = build_batch(_graphs(8))
        ref = NodeClassifier(4, hidden=(6, 5), seed=0, backend="numpy")
        alt = NodeClassifier(4, hidden=(6, 5), seed=0, backend="torch")
        np.testing.assert_allclose(
            ref.forward(batch),
            alt.backend.to_numpy(alt.forward(batch)),
            atol=FORWARD_ATOL,
            rtol=0,
        )

    def test_loss_values_and_grads_match(self):
        batch = build_batch(_graphs(9))
        ref, alt = self._pair()
        weights = np.array([1.0, 2.5])
        l_ref, g_ref = softmax_cross_entropy(ref.forward(batch), batch.y, weights)
        l_alt, g_alt = softmax_cross_entropy(alt.forward(batch), batch.y, weights)
        assert l_alt == pytest.approx(l_ref, abs=FORWARD_ATOL)
        np.testing.assert_allclose(
            alt.backend.to_numpy(g_alt), g_ref, atol=FORWARD_ATOL, rtol=0
        )
        node = build_batch(_graphs(10))
        nl_ref, ng_ref = bce_with_logits(
            NodeClassifier(4, seed=0, backend="numpy").forward(node),
            node.node_y,
            mask=node.node_mask,
            pos_weight=3.0,
        )
        alt_model = NodeClassifier(4, seed=0, backend="torch")
        nl_alt, ng_alt = bce_with_logits(
            alt_model.forward(node), node.node_y, mask=node.node_mask, pos_weight=3.0
        )
        assert nl_alt == pytest.approx(nl_ref, abs=FORWARD_ATOL)
        np.testing.assert_allclose(
            alt_model.backend.to_numpy(ng_alt), ng_ref, atol=FORWARD_ATOL, rtol=0
        )

    def test_param_grads_match_after_backward(self):
        batch = build_batch(_graphs(11))
        ref, alt = self._pair()
        for model in (ref, alt):
            model.zero_grad()
            _, dl = softmax_cross_entropy(model.forward(batch), batch.y)
            model.backward(dl)
        for p_ref, p_alt in zip(ref.parameters(), alt.parameters()):
            np.testing.assert_allclose(
                alt.backend.to_numpy(p_alt.grad),
                p_ref.backend.to_numpy(p_ref.grad),
                atol=FORWARD_ATOL,
                rtol=0,
            )

    def test_adam_on_torch_parameters(self):
        be = get_backend("torch")
        p = Parameter(np.array([5.0, -3.0]), be)
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            be.copyto(p.grad, 2.0 * be.to_numpy(p.value))
            opt.step()
        assert np.all(np.abs(be.to_numpy(p.value)) < 0.05)

    def test_post_fit_predictions_match(self):
        """Identical seeds → (near-)identical trained predictors (satellite 2)."""
        from repro.core.tier_predictor import TierPredictor

        rng = np.random.default_rng(12)
        graphs = []
        for i in range(24):
            k = int(rng.integers(3, 7))
            edges = (rng.integers(0, k, size=2 * k), rng.integers(0, k, size=2 * k))
            x = rng.normal(size=(k, N_FEATURES))
            x[:, 0] += 2.0 * (i % 2)
            graphs.append(GraphData(x=x, edges=edges, y=int(i % 2)))
        preds = {}
        for backend in ("numpy", "torch"):
            tp = TierPredictor(hidden=(8,), epochs=6, batch_size=8, seed=0, backend=backend)
            tp.fit(graphs)
            preds[backend] = tp.predict_proba(graphs)
        np.testing.assert_allclose(preds["torch"], preds["numpy"], atol=FIT_ATOL, rtol=0)

    def test_cross_backend_checkpoint(self):
        """Train on one backend, predict on the other (satellite 4)."""
        batch = build_batch(_graphs(13))
        ref, _ = self._pair()
        opt = Adam(ref.parameters(), lr=0.05)
        for _ in range(5):
            ref.zero_grad()
            _, dl = softmax_cross_entropy(ref.forward(batch), batch.y)
            ref.backward(dl)
            opt.step()
        alt = GraphClassifier(4, 2, hidden=(6,), head_hidden=(5,), seed=42, backend="torch")
        alt.load_state_dict(ref.state_dict())
        np.testing.assert_allclose(
            alt.predict_proba(batch), ref.predict_proba(batch), atol=FORWARD_ATOL, rtol=0
        )
        # And back again: torch state re-homes onto the oracle unchanged.
        back = GraphClassifier(4, 2, hidden=(6,), head_hidden=(5,), seed=7, backend="numpy")
        back.load_state_dict(alt.state_dict())
        for a, b in zip(ref.state_dict(), back.state_dict()):
            assert np.array_equal(a, b)

    def test_transfer_encoder_migrates_across_backends(self):
        ref, _ = self._pair()
        transfer = GraphClassifier(
            4,
            2,
            encoder=copy.deepcopy(ref.encoder),
            freeze_encoder=True,
            seed=1,
            backend="torch",
        )
        assert transfer.backend.name == "torch"
        assert transfer.encoder.backend is transfer.backend
        for a, b in zip(ref.encoder.state_dict(), transfer.encoder.state_dict()):
            assert np.array_equal(a, b)

    def test_env_knob_selects_torch(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch-cpu")
        model = GraphClassifier(4, 2, hidden=(6,), seed=0)
        assert model.backend.name == "torch"
        assert model.backend.device == "cpu"

    def test_infer_backend_torch_tensor(self):
        be = get_backend("torch-cpu")
        assert infer_backend(be.asarray(np.zeros(3))) is be


class TestCoreKnob:
    """Backend selection threads through the paper pipeline (tentpole)."""

    def test_framework_checkpoint_key_records_backend(self):
        from repro.core.pipeline import M3DDiagnosisFramework

        fw = M3DDiagnosisFramework(nn_backend="numpy")
        assert fw._checkpoint_key([])["params"]["nn_backend"] == "numpy"

    def test_predictors_accept_backend(self):
        from repro.core.classifier import PruneReorderClassifier
        from repro.core.miv_pinpointer import MivPinpointer
        from repro.core.tier_predictor import TierPredictor

        tp = TierPredictor(backend="numpy")
        assert tp.model.backend is get_backend("numpy")
        mp = MivPinpointer(backend="numpy")
        assert mp.model.backend is get_backend("numpy")
        clf = PruneReorderClassifier(tp, backend=None)
        assert clf.model.backend is tp.model.backend

    def test_cli_exposes_nn_backend_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["demo", "--nn-backend", "numpy"])
        assert args.nn_backend == "numpy"
        assert build_parser().parse_args(["demo"]).nn_backend is None
