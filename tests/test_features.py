"""Unit tests for Table II feature extraction and normalization."""

import numpy as np
import pytest

from repro.core import FEATURE_NAMES, FeatureExtractor, N_FEATURES, StandardScaler, backtrace
from repro.core.features import graph_feature_vector
from repro.m3d import DefectSampler
from repro.tester import InjectionCampaign


@pytest.fixture(scope="module")
def sample_graphs(prepared):
    obsmap = prepared.obsmap("bypass")
    sampler = DefectSampler(prepared.nl, prepared.mivs, seed=41)
    campaign = InjectionCampaign(prepared.machine, prepared.good, obsmap, sampler)
    samples = campaign.single_fault_samples(20)
    graphs = []
    for s in samples:
        mask = backtrace(prepared.het, obsmap, s.log)
        graphs.append(prepared.extractor.subgraph(mask))
    return graphs


def test_feature_count():
    assert N_FEATURES == 13 == len(FEATURE_NAMES)


def test_feature_matrix_shape(sample_graphs):
    for g in sample_graphs:
        assert g.x.shape == (g.n_nodes, 13)
        assert np.isfinite(g.x).all()


def test_global_degree_features(prepared):
    het = prepared.het
    fx = prepared.extractor
    full = np.ones(het.n_nodes, dtype=bool)
    g = fx.subgraph(full)
    src, dst = het.edges
    fanin = np.bincount(dst, minlength=het.n_nodes)
    fanout = np.bincount(src, minlength=het.n_nodes)
    assert np.array_equal(g.x[:, 0], fanin)
    assert np.array_equal(g.x[:, 1], fanout)
    # On the full graph, sub-graph degrees equal circuit degrees.
    assert np.array_equal(g.x[:, 7], fanin)
    assert np.array_equal(g.x[:, 8], fanout)


def test_subgraph_degrees_bounded_by_circuit(sample_graphs):
    for g in sample_graphs:
        assert np.all(g.x[:, 7] <= g.x[:, 0])
        assert np.all(g.x[:, 8] <= g.x[:, 1])


def test_topedge_count_feature(prepared):
    het = prepared.het
    fx = prepared.extractor
    full = np.ones(het.n_nodes, dtype=bool)
    g = fx.subgraph(full)
    assert np.array_equal(g.x[:, 2], het.cone_mask.sum(axis=0))


def test_binary_features_binary(sample_graphs):
    for g in sample_graphs:
        assert set(np.unique(g.x[:, 5])) <= {0.0, 1.0}  # is_gate_output
        assert set(np.unique(g.x[:, 6])) <= {0.0, 1.0}  # connects_miv
        assert set(np.unique(g.x[:, 3])) <= {0.0, 0.5, 1.0}  # tier


def test_empty_mask_rejected(prepared):
    with pytest.raises(ValueError, match="empty sub-graph"):
        prepared.extractor.subgraph(np.zeros(prepared.het.n_nodes, dtype=bool))


def test_meta_nodes_map_back(prepared, sample_graphs):
    for g in sample_graphs:
        nodes = g.meta["nodes"]
        assert len(nodes) == g.n_nodes
        assert np.all(nodes < prepared.het.n_nodes)


def test_node_mask_marks_mivs(prepared, sample_graphs):
    from repro.core.hetgraph import NodeKind

    for g in sample_graphs:
        nodes = g.meta["nodes"]
        expected = prepared.het.kind[nodes] == NodeKind.MIV
        assert np.array_equal(g.node_mask, expected)


class TestScaler:
    def test_zero_mean_unit_std(self, sample_graphs):
        scaler = StandardScaler()
        normed = scaler.fit_transform(sample_graphs)
        stacked = np.concatenate([g.x for g in normed])
        assert np.allclose(stacked.mean(axis=0), 0, atol=1e-9)
        stds = stacked.std(axis=0)
        nonconst = stds > 1e-12
        assert np.allclose(stds[nonconst], 1, atol=1e-6)

    def test_unfitted_raises(self, sample_graphs):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(sample_graphs)

    def test_preserves_structure(self, sample_graphs):
        scaler = StandardScaler()
        normed = scaler.fit_transform(sample_graphs)
        for a, b in zip(sample_graphs, normed):
            assert a.n_nodes == b.n_nodes
            assert a.edges[0] is b.edges[0]
            assert b.meta is a.meta


def test_graph_feature_vector(sample_graphs):
    g = sample_graphs[0]
    assert np.allclose(graph_feature_vector(g), g.x.mean(axis=0))
