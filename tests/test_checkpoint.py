"""Checkpoint/resume: progress manifests and stage-checkpointed ``fit``.

The resume contract: an interrupted multi-stage run re-invoked with the
same inputs completes without re-running finished stages (visible as
``*.resumed`` counters and *absent* stage wall-clock entries), and any
input change invalidates the checkpoint wholesale — a resume can never mix
stages from two configurations.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import M3DDiagnosisFramework
from repro.data import build_dataset
from repro.runtime import (
    ArtifactCache,
    ProgressManifest,
    RuntimeStats,
    cache_key_hash,
    manifest_path,
    reset_runtime,
)


@pytest.fixture(autouse=True)
def _isolate_global_runtime():
    reset_runtime()
    yield
    reset_runtime()


# ------------------------------------------------------------- manifests
class TestProgressManifest:
    RUN_KEY = {"command": "tables", "scale": "tiny", "samples": 8}

    def test_roundtrip_across_reload(self, tmp_path):
        path = manifest_path(tmp_path, "tables", self.RUN_KEY)
        m = ProgressManifest(path, self.RUN_KEY)
        assert not m.is_done("table3")
        m.mark_done("table3", payload="| rendered |")
        m.mark_done("figure2")

        again = ProgressManifest(path, self.RUN_KEY)
        assert again.is_done("table3") and again.is_done("figure2")
        assert again.result("table3") == "| rendered |"
        assert again.result("figure2") is None  # payload-less stage
        assert again.done_stages() == ["table3", "figure2"]  # completion order

    def test_run_key_change_invalidates(self, tmp_path):
        path = tmp_path / "m.json"
        ProgressManifest(path, self.RUN_KEY).mark_done("table3")
        other = ProgressManifest(path, {**self.RUN_KEY, "samples": 16})
        assert not other.is_done("table3")
        # …and marking under the new key overwrites the stale record.
        other.mark_done("figure2")
        assert ProgressManifest(path, self.RUN_KEY).done_stages() == []

    def test_torn_or_foreign_file_restarts_cleanly(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"format": 1, "run_key_hash": "x", "stag')  # torn write
        m = ProgressManifest(path, self.RUN_KEY)
        assert m.done_stages() == []
        m.mark_done("table3")
        assert ProgressManifest(path, self.RUN_KEY).is_done("table3")

        path.write_text(json.dumps({"format": 99, "stages": {"table3": {}}}))
        assert not ProgressManifest(path, self.RUN_KEY).is_done("table3")

    def test_every_mark_is_durable_and_atomic(self, tmp_path):
        path = tmp_path / "m.json"
        m = ProgressManifest(path, self.RUN_KEY)
        for i in range(4):
            m.mark_done(f"stage{i}")
            # The on-disk file is valid JSON after every single mark and no
            # tempfile lingers — a SIGKILL at any point leaves a usable state.
            doc = json.loads(path.read_text())
            assert f"stage{i}" in doc["stages"]
            assert not list(tmp_path.glob("*.tmp"))

    def test_discard(self, tmp_path):
        path = tmp_path / "m.json"
        m = ProgressManifest(path, self.RUN_KEY)
        m.mark_done("table3")
        m.discard()
        assert not path.exists()
        assert not ProgressManifest(path, self.RUN_KEY).is_done("table3")
        m.discard()  # idempotent

    def test_manifest_path_isolates_run_keys(self, tmp_path):
        a = manifest_path(tmp_path, "tables", self.RUN_KEY)
        b = manifest_path(tmp_path, "tables", {**self.RUN_KEY, "samples": 16})
        c = manifest_path(tmp_path, "tables", dict(reversed(list(self.RUN_KEY.items()))))
        assert a != b  # different inputs → different manifest files
        assert a == c  # key order is canonicalized
        assert a.parent.name == "manifests"


# ------------------------------------------------- stage-checkpointed fit
N_TRAIN = 48
FIT_PARAMS = dict(epochs=6, seed=0)


@pytest.fixture(scope="module")
def train_set(prepared):
    return build_dataset(prepared, "bypass", N_TRAIN, seed=51)


def _fit_stage_path(cache, fw, train):
    key = fw._checkpoint_key([train])
    return lambda stage: cache._path("fit_stage", cache_key_hash({**key, "stage": stage}))


class TestFitCheckpoint:
    def test_refit_resumes_every_stage(self, prepared, train_set, tmp_path):
        cache = ArtifactCache(tmp_path)
        first_stats = RuntimeStats()
        fw1 = M3DDiagnosisFramework(**FIT_PARAMS)
        s1 = fw1.fit([train_set], stats_sink=first_stats, checkpoint=cache)
        trained = [k for k in first_stats.stage_seconds if k.startswith("fit.")]
        assert "fit.tier" in trained
        assert not any(k.endswith(".resumed") for k in first_stats.counters)

        resumed_stats = RuntimeStats()
        fw2 = M3DDiagnosisFramework(**FIT_PARAMS)
        s2 = fw2.fit([train_set], stats_sink=resumed_stats, checkpoint=cache)
        # The proof the stages did not re-run: no fit.* wall-clock at all.
        assert not any(k.startswith("fit.") for k in resumed_stats.stage_seconds)
        assert resumed_stats.counters.get("fit.tier.resumed") == 1
        assert resumed_stats.counters.get("fit.threshold.resumed") == 1
        # …and the resumed framework is behaviorally identical.
        assert s2["tp_threshold"] == s1["tp_threshold"]
        assert s2["tier_train_accuracy"] == s1["tier_train_accuracy"]
        graphs = [g for g in train_set.graphs if g.y >= 0]
        np.testing.assert_array_equal(
            fw1.tier_predictor.predict_proba(graphs),
            fw2.tier_predictor.predict_proba(graphs),
        )

    def test_partial_resume_retrains_only_missing_stage(self, prepared, train_set, tmp_path):
        cache = ArtifactCache(tmp_path)
        fw1 = M3DDiagnosisFramework(**FIT_PARAMS)
        fw1.fit([train_set], checkpoint=cache)

        # Simulate an interruption that completed tier but lost it (eviction
        # stands in for "killed before the stage was checkpointed").
        stage_path = _fit_stage_path(cache, fw1, train_set)
        cache._evict(stage_path("tier"))

        stats = RuntimeStats()
        fw2 = M3DDiagnosisFramework(**FIT_PARAMS)
        fw2.fit([train_set], stats_sink=stats, checkpoint=cache)
        assert "fit.tier" in stats.stage_seconds  # only this stage re-ran
        assert stats.counters.get("fit.threshold.resumed") == 1
        assert "fit.threshold" not in stats.stage_seconds

    def test_hyperparameter_change_invalidates(self, prepared, train_set, tmp_path):
        cache = ArtifactCache(tmp_path)
        M3DDiagnosisFramework(**FIT_PARAMS).fit([train_set], checkpoint=cache)
        stats = RuntimeStats()
        fw = M3DDiagnosisFramework(epochs=6, seed=1)  # different seed
        fw.fit([train_set], stats_sink=stats, checkpoint=cache)
        assert not any(k.endswith(".resumed") for k in stats.counters)
        assert "fit.tier" in stats.stage_seconds

    def test_without_checkpoint_nothing_is_written(self, prepared, train_set, tmp_path):
        cache = ArtifactCache(tmp_path)
        M3DDiagnosisFramework(**FIT_PARAMS).fit([train_set])
        assert cache.entries() == {}


# ----------------------------------------------------- tables CLI resume
@pytest.mark.slow
def test_tables_resumes_from_manifest(tmp_path, capsys):
    from repro.cli import main

    args = ["tables", "--scale", "tiny", "--samples", "8", "--only", "table3",
            "--workers", "1", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "resumed from checkpoint" not in first

    reset_runtime()
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "table3: resumed from checkpoint" in second
    assert "1 stage(s) already complete" in second

    # --no-resume discards the manifest and recomputes.
    reset_runtime()
    assert main(args + ["--no-resume"]) == 0
    third = capsys.readouterr().out
    assert "resumed from checkpoint" not in third
