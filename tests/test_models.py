"""Unit tests for Tier-predictor, MIV-pinpointer, and the transfer Classifier."""

import numpy as np
import pytest

from repro.core import MivPinpointer, PruneReorderClassifier, TierPredictor
from repro.nn import GraphData


def _tier_graphs(rng, n, informative=True):
    """Synthetic sub-graphs whose tier feature column encodes the label."""
    graphs = []
    for i in range(n):
        y = int(rng.integers(0, 2))
        k = int(rng.integers(4, 9))
        x = rng.normal(size=(k, 13)) * 0.3
        if informative:
            x[:, 3] = y + rng.normal(size=k) * 0.1
        edges = (np.arange(k - 1), np.arange(1, k))
        graphs.append(GraphData(x=x, edges=edges, y=y, meta={"nodes": np.arange(k)}))
    return graphs


def _miv_graphs(rng, n):
    """Graphs with MIV nodes; the faulty MIV has a distinctive feature."""
    graphs = []
    for _i in range(n):
        k = 8
        x = rng.normal(size=(k, 13)) * 0.3
        node_mask = np.zeros(k, dtype=bool)
        node_mask[[2, 5]] = True
        node_y = np.zeros(k)
        faulty = int(rng.choice([2, 5]))
        node_y[faulty] = 1.0
        x[faulty, 11] = 3.0  # strong signal on a Topedge-MIV stat column
        edges = (np.arange(k - 1), np.arange(1, k))
        graphs.append(
            GraphData(
                x=x, edges=edges, y=-1, node_y=node_y, node_mask=node_mask,
                meta={"nodes": np.arange(k)},
            )
        )
    return graphs


class TestTierPredictor:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        train = _tier_graphs(rng, 80)
        test = _tier_graphs(rng, 30)
        tp = TierPredictor(epochs=25, seed=0)
        history = tp.fit(train)
        assert history[-1] < history[0]
        assert tp.accuracy(test) > 0.9

    def test_predict_proba_shape_and_norm(self):
        rng = np.random.default_rng(1)
        train = _tier_graphs(rng, 40)
        tp = TierPredictor(epochs=10, seed=0)
        tp.fit(train)
        proba = tp.predict_proba(train[:7])
        assert proba.shape == (7, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.allclose(tp.confidence(train[:7]), proba.max(axis=1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TierPredictor().predict_proba([])

    def test_no_labels_raises(self):
        rng = np.random.default_rng(2)
        graphs = _tier_graphs(rng, 5)
        for g in graphs:
            g.y = -1
        with pytest.raises(ValueError, match="no labeled graphs"):
            TierPredictor().fit(graphs)

    def test_empty_predict(self):
        rng = np.random.default_rng(3)
        tp = TierPredictor(epochs=5, seed=0)
        tp.fit(_tier_graphs(rng, 20))
        assert tp.predict_proba([]).shape == (0, 2)


class TestMivPinpointer:
    def test_learns_planted_signal(self):
        rng = np.random.default_rng(4)
        train = _miv_graphs(rng, 60)
        test = _miv_graphs(rng, 25)
        mp = MivPinpointer(epochs=25, seed=1)
        mp.fit(train)
        assert mp.sample_accuracy(test) > 0.85

    def test_threshold_calibrated_above_half(self):
        rng = np.random.default_rng(5)
        mp = MivPinpointer(epochs=15, seed=1)
        mp.fit(_miv_graphs(rng, 40))
        assert mp.threshold >= 0.5

    def test_specificity_on_clean_graphs(self):
        rng = np.random.default_rng(6)
        train = _miv_graphs(rng, 60)
        mp = MivPinpointer(epochs=20, seed=1)
        mp.fit(train)
        clean = _miv_graphs(rng, 20)
        for g in clean:
            g.node_y = np.zeros(g.n_nodes)
            g.x[:, 11] = 0.0
        assert mp.specificity(clean) > 0.6

    def test_no_miv_graphs_raises(self):
        rng = np.random.default_rng(7)
        graphs = _tier_graphs(rng, 5)  # no node masks
        with pytest.raises(ValueError, match="no graphs with MIV nodes"):
            MivPinpointer().fit(graphs)

    def test_predict_faulty_mivs_returns_het_ids(self):
        rng = np.random.default_rng(8)
        train = _miv_graphs(rng, 60)
        mp = MivPinpointer(epochs=25, seed=1)
        mp.fit(train)
        g = train[0]
        picks = mp.predict_faulty_mivs(g)
        assert all(p in g.meta["nodes"] for p in picks)


class TestClassifier:
    def test_transfer_freezes_encoder(self):
        rng = np.random.default_rng(9)
        train = _tier_graphs(rng, 60)
        tp = TierPredictor(epochs=15, seed=0)
        tp.fit(train)
        before = [p.value.copy() for p in tp.model.encoder.parameters()]

        clf = PruneReorderClassifier(tp, epochs=10, seed=3)
        tp_graphs = train[:30]
        fp_graphs = train[30:36]
        clf.fit(tp_graphs, fp_graphs)
        # The Tier-predictor's own encoder must be untouched (deep copy)...
        for b, p in zip(before, tp.model.encoder.parameters()):
            assert np.array_equal(b, p.value)
        # ...and the classifier's frozen encoder must equal the snapshot.
        for b, p in zip(before, clf.model.encoder.parameters()):
            assert np.array_equal(b, p.value)

    def test_prune_probability_range(self):
        rng = np.random.default_rng(10)
        train = _tier_graphs(rng, 60)
        tp = TierPredictor(epochs=15, seed=0)
        tp.fit(train)
        clf = PruneReorderClassifier(tp, epochs=10, seed=3)
        clf.fit(train[:30], train[30:35])
        probs = clf.prune_probability(train[:10])
        assert probs.shape == (10,)
        assert np.all((probs >= 0) & (probs <= 1))
        assert isinstance(clf.should_prune(train[0]), bool)

    def test_learns_to_separate_tp_fp(self):
        """FP graphs carry a planted marker; the classifier should find it."""
        rng = np.random.default_rng(11)
        train = _tier_graphs(rng, 80)
        tp = TierPredictor(epochs=15, seed=0)
        tp.fit(train)
        tp_graphs = _tier_graphs(rng, 50)
        fp_graphs = _tier_graphs(rng, 8)
        for g in fp_graphs:
            g.x[:, 9] = 4.0
        clf = PruneReorderClassifier(tp, epochs=25, seed=3)
        clf.fit(tp_graphs, fp_graphs)
        fp_test = _tier_graphs(rng, 10)
        for g in fp_test:
            g.x[:, 9] = 4.0
        tp_test = _tier_graphs(rng, 10)
        assert clf.prune_probability(fp_test).mean() < clf.prune_probability(tp_test).mean()

    def test_requires_true_positives(self):
        rng = np.random.default_rng(12)
        tp = TierPredictor(epochs=5, seed=0)
        tp.fit(_tier_graphs(rng, 20))
        clf = PruneReorderClassifier(tp)
        with pytest.raises(ValueError, match="no True Positive"):
            clf.fit([], [])

    def test_unfitted_raises(self):
        rng = np.random.default_rng(13)
        tp = TierPredictor(epochs=5, seed=0)
        tp.fit(_tier_graphs(rng, 20))
        clf = PruneReorderClassifier(tp)
        with pytest.raises(RuntimeError):
            clf.prune_probability(_tier_graphs(rng, 2))
