"""Unit tests for dummy-buffer graph oversampling."""

import numpy as np
import pytest

from repro.core import insert_dummy_buffer, oversample_minority
from repro.nn import GraphData


@pytest.fixture
def graph():
    x = np.arange(12, dtype=float).reshape(4, 3)
    x = np.hstack([x, np.zeros((4, 10))])  # 13 features like Table II
    edges = (np.array([0, 1, 1]), np.array([1, 2, 3]))
    return GraphData(
        x=x,
        edges=edges,
        y=1,
        node_y=np.array([0.0, 1.0, 0.0, 0.0]),
        node_mask=np.array([False, True, False, False]),
        meta={"nodes": np.arange(4)},
    )


class TestInsertDummyBuffer:
    def test_adds_one_node(self, graph):
        out = insert_dummy_buffer(graph, 1)
        assert out.n_nodes == 5
        assert graph.n_nodes == 4  # original untouched

    def test_rewires_outgoing_edges(self, graph):
        out = insert_dummy_buffer(graph, 1)
        src, dst = out.edges
        pairs = set(zip(src.tolist(), dst.tolist()))
        # node 1's old out-edges (1->2, 1->3) now leave the buffer (node 4).
        assert (4, 2) in pairs and (4, 3) in pairs
        assert (1, 2) not in pairs and (1, 3) not in pairs
        assert (1, 4) in pairs  # host -> buffer
        assert (0, 1) in pairs  # untouched edge

    def test_buffer_features_copied_with_degree_fixup(self, graph):
        out = insert_dummy_buffer(graph, 1)
        assert out.x[4, 2] == graph.x[1, 2]
        assert out.x[4, 0] == 1.0  # circuit fan-in
        assert out.x[4, 7] == 1.0  # sub-graph fan-in

    def test_labels_and_masks_extended(self, graph):
        out = insert_dummy_buffer(graph, 1)
        assert out.node_y[4] == 0.0
        assert not out.node_mask[4]
        assert out.y == graph.y
        assert out.meta["synthetic"]

    def test_bad_node_rejected(self, graph):
        with pytest.raises(ValueError, match="out of range"):
            insert_dummy_buffer(graph, 7)


class TestOversampleMinority:
    def test_balances_population(self, graph):
        majority = [graph] * 20
        minority = [graph]
        out = oversample_minority(majority, minority, seed=0)
        assert len(out) == 20
        assert out[0] is graph
        assert all(o.meta.get("synthetic") for o in out[1:])

    def test_empty_minority(self, graph):
        assert oversample_minority([graph] * 5, [], seed=0) == []

    def test_deterministic(self, graph):
        a = oversample_minority([graph] * 10, [graph], seed=3)
        b = oversample_minority([graph] * 10, [graph], seed=3)
        assert len(a) == len(b)
        for ga, gb in zip(a, b):
            assert ga.n_nodes == gb.n_nodes
            assert np.array_equal(ga.edges[0], gb.edges[0])

    def test_consecutive_buffers_appear(self, graph):
        out = oversample_minority([graph] * 30, [graph], seed=1)
        sizes = [g.n_nodes for g in out]
        assert max(sizes) > graph.n_nodes + 1  # buffers stacked on synthetics
