"""Mutation harness for the structural DRC engine.

Each mutator injects exactly one class of structural damage into a deep
copy of the session's prepared design, and the test asserts the intended
rule id fires.  ``test_all_rules_covered`` pins the harness to the full
rule catalog, so adding a DRC rule without a mutation here fails CI.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np
import pytest

from repro.analysis import DRC_RULES, DrcError, assert_clean, run_drc
from repro.analysis.drc import NetlistError
from repro.analysis.drc import check_netlist as validate_check
from repro.analysis.drc import validate_netlist as validate_full
from repro.netlist.cells import CELL_LIBRARY
from repro.netlist.netlist import EXTERNAL_DRIVER, Gate, Net

MUTATIONS = []


def mutation(rule):
    def deco(fn):
        MUTATIONS.append(pytest.param(rule, fn, id=f"{rule}-{fn.__name__}"))
        return fn

    return deco


def _add_gate(nl, fanin, out_net, tier=0):
    """Append a NAND2 with consistent sink lists; returns the gate."""
    g = Gate(
        id=nl.n_gates, name=f"mut{nl.n_gates}", cell=CELL_LIBRARY["NAND2"],
        fanin=list(fanin), out=out_net, tier=tier,
    )
    nl.gates.append(g)
    for pin, nid in enumerate(g.fanin):
        nl.nets[nid].sinks.append((g.id, pin))
    nl.nets[out_net].driver = g.id
    nl.invalidate()
    return g


def _add_net(nl, name):
    net = Net(id=nl.n_nets, name=name)
    nl.nets.append(net)
    return net.id


# ------------------------------------------------------------ core netlist
@mutation("DRC001")
def combinational_loop(nl, mivs, het):
    for g1 in nl.gates:
        for g2_id, _pin in nl.nets[g1.out].sinks:
            g2 = nl.gates[g2_id]
            old = g1.fanin[0]
            nl.nets[old].sinks.remove((g1.id, 0))
            g1.fanin[0] = g2.out
            nl.nets[g2.out].sinks.append((g1.id, 0))
            nl.invalidate()
            return {"nl": nl}
    raise AssertionError("design has no gate-to-gate edge to rewire")


@mutation("DRC002")
def floating_net(nl, mivs, het):
    _add_net(nl, "orphan")
    return {"nl": nl}


@mutation("DRC003")
def driver_mismatch(nl, mivs, het):
    net = next(n for n in nl.nets if n.driver != EXTERNAL_DRIVER)
    net.driver = EXTERNAL_DRIVER
    nl.invalidate()
    return {"nl": nl}


@mutation("DRC003")
def multi_driven_net(nl, mivs, het):
    g0, g1 = nl.gates[0], nl.gates[1]
    g1.out = g0.out
    nl.invalidate()
    return {"nl": nl}


@mutation("DRC004")
def dangling_output(nl, mivs, het):
    out = _add_net(nl, "dangle")
    _add_gate(nl, [0, 1], out)
    return {"nl": nl}


@mutation("DRC005")
def fanin_arity(nl, mivs, het):
    g = nl.gates[0]
    extra = g.fanin[0]
    g.fanin.append(extra)
    nl.nets[extra].sinks.append((g.id, len(g.fanin) - 1))
    nl.invalidate()
    return {"nl": nl}


@mutation("DRC006")
def bad_reference(nl, mivs, het):
    nl.gates[0].fanin[0] = 10**6
    return {"nl": nl}


@mutation("DRC007")
def missing_sink(nl, mivs, het):
    net = next(n for n in nl.nets if n.sinks)
    net.sinks.pop(0)
    nl.invalidate()
    return {"nl": nl}


@mutation("DRC007")
def stale_sink(nl, mivs, het):
    nl.nets[0].sinks.append((nl.gates[0].id, 99))
    nl.invalidate()
    return {"nl": nl}


@mutation("DRC008")
def non_positional_id(nl, mivs, het):
    nl.nets[3].id = 7
    return {"nl": nl}


@mutation("DRC009")
def unreachable_gate(nl, mivs, het):
    mid = _add_net(nl, "unreach_mid")
    end = _add_net(nl, "unreach_end")
    feeder = _add_gate(nl, [0, 1], mid)
    _add_gate(nl, [mid, 0], end)
    # `feeder` fans out (to the dangling tail) but reaches no observation
    # point — DRC009; the tail itself is the already-covered DRC004.
    assert nl.nets[feeder.out].sinks
    return {"nl": nl}


# ------------------------------------------------------------- tiers/MIVs
@mutation("DRC020")
def partial_tiers(nl, mivs, het):
    nl.gates[0].tier = -1
    return {"nl": nl}


@mutation("DRC021")
def missing_miv(nl, mivs, het):
    assert mivs, "prepared design must have MIVs"
    mivs.pop()
    return {"nl": nl, "mivs": mivs}


@mutation("DRC022")
def intra_tier_miv(nl, mivs, het):
    m0 = mivs[0]
    mivs.append(dataclasses.replace(m0, id=len(mivs), target_tier=m0.source_tier))
    return {"nl": nl, "mivs": mivs}


@mutation("DRC023")
def observability_mismatch(nl, mivs, het):
    mivs[0] = dataclasses.replace(mivs[0], observed_faulty=not mivs[0].observed_faulty)
    return {"nl": nl, "mivs": mivs}


@mutation("DRC024")
def duplicate_miv(nl, mivs, het):
    mivs.append(dataclasses.replace(mivs[0], id=len(mivs)))
    return {"nl": nl, "mivs": mivs}


@mutation("DRC024")
def non_positional_miv(nl, mivs, het):
    mivs[0] = dataclasses.replace(mivs[0], id=41)
    return {"nl": nl, "mivs": mivs}


# --------------------------------------------------------------- HetGraph
@mutation("DRC030")
def topnode_drift(nl, mivs, het):
    het.topnode_nets.pop()
    return {"nl": nl, "mivs": mivs, "het": het}


@mutation("DRC031")
def topedge_feature_drift(nl, mivs, het):
    idx = int(np.argwhere(het.cone_mask[0]).ravel()[0])
    het.topedge_dist[0, idx] += 1
    return {"nl": nl, "mivs": mivs, "het": het, "deep": True}


@mutation("DRC032")
def cone_sentinel_mismatch(nl, mivs, het):
    idx = int(np.argwhere(het.cone_mask[0]).ravel()[0])
    het.topedge_dist[0, idx] = -1
    return {"nl": nl, "mivs": mivs, "het": het}


@mutation("DRC033")
def malformed_identity(nl, mivs, het):
    het.net[0] = -3
    return {"nl": nl, "mivs": mivs, "het": het}


# ------------------------------------------------------------------ tests
def _mutable_bundle(prepared):
    return copy.deepcopy((prepared.nl, list(prepared.mivs), prepared.het))


def test_prepared_design_is_deep_clean(prepared):
    assert run_drc(prepared.nl, mivs=prepared.mivs, het=prepared.het, deep=True) == []


@pytest.mark.parametrize("rule,mutator", MUTATIONS)
def test_mutation_fires_exact_rule(rule, mutator, prepared):
    nl, mivs, het = _mutable_bundle(prepared)
    kwargs = mutator(nl, mivs, het)
    fired = {v.rule for v in run_drc(**kwargs)}
    assert rule in fired, f"expected {rule}, engine fired {sorted(fired)}"


def test_all_rules_covered():
    covered = {p.values[0] for p in MUTATIONS}
    assert covered == set(DRC_RULES), (
        f"rules without a mutation: {sorted(set(DRC_RULES) - covered)}; "
        f"mutations for unknown rules: {sorted(covered - set(DRC_RULES))}"
    )


def test_assert_clean_raises_with_rule_id(prepared):
    nl, mivs, het = _mutable_bundle(prepared)
    kwargs = combinational_loop(nl, mivs, het)
    with pytest.raises(DrcError, match="DRC001"):
        assert_clean(context="mutated design", **kwargs)


def test_validate_shim_reports_rule_ids(prepared):
    nl, mivs, het = _mutable_bundle(prepared)
    kwargs = floating_net(nl, mivs, het)
    msgs = validate_check(kwargs["nl"])
    assert any(m.startswith("DRC002:") for m in msgs)
    with pytest.raises(NetlistError):
        validate_full(kwargs["nl"])


def test_clean_netlist_passes_shim(toy):
    assert validate_check(toy) == []
    validate_full(toy)
