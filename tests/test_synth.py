"""Unit and property tests for the synthesis transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import GeneratorSpec, check, generate, toy_netlist
from repro.sim import CompiledSimulator
from repro.synth import insert_test_points, resynthesize


def _io_behaviour(nl, inputs):
    values = CompiledSimulator(nl).simulate(inputs)
    return np.stack([values[o] for o in nl.observed_nets])


class TestResynthesize:
    def test_structurally_valid(self, small_netlist):
        out = resynthesize(small_netlist, seed=1)
        assert check(out) == []

    def test_function_preserved_toy(self, toy):
        out = resynthesize(toy, seed=1, rewrite_probability=1.0)
        rng = np.random.default_rng(0)
        inputs = rng.integers(0, 2, size=(len(toy.comb_inputs), 64), dtype=np.uint8)
        assert np.array_equal(_io_behaviour(toy, inputs), _io_behaviour(out, inputs))

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_function_preserved_random_seeds(self, seed):
        nl = generate(GeneratorSpec("p", "leon3mp_like", 60, 8, 6, 6, seed=4))
        out = resynthesize(nl, seed=seed, rewrite_probability=0.8)
        rng = np.random.default_rng(seed)
        inputs = rng.integers(0, 2, size=(len(nl.comb_inputs), 32), dtype=np.uint8)
        assert np.array_equal(_io_behaviour(nl, inputs), _io_behaviour(out, inputs))

    def test_structure_changes(self, small_netlist):
        out = resynthesize(small_netlist, seed=1, rewrite_probability=0.8)
        assert out.n_gates != small_netlist.n_gates

    def test_deterministic(self, small_netlist):
        a = resynthesize(small_netlist, seed=5)
        b = resynthesize(small_netlist, seed=5)
        assert [g.cell.name for g in a.gates] == [g.cell.name for g in b.gates]

    def test_boundary_preserved(self, small_netlist):
        out = resynthesize(small_netlist, seed=2)
        assert len(out.primary_inputs) == len(small_netlist.primary_inputs)
        assert len(out.primary_outputs) == len(small_netlist.primary_outputs)
        assert out.n_flops == small_netlist.n_flops


class TestTestPoints:
    def test_adds_flops_within_budget(self, small_netlist):
        out = insert_test_points(small_netlist, budget_fraction=0.05)
        added = out.n_flops - small_netlist.n_flops
        assert 1 <= added <= max(1, int(0.05 * small_netlist.n_gates))
        assert check(out) == []

    def test_gate_logic_untouched(self, small_netlist):
        out = insert_test_points(small_netlist)
        assert out.n_gates == small_netlist.n_gates
        rng = np.random.default_rng(1)
        inputs = rng.integers(
            0, 2, size=(len(small_netlist.comb_inputs), 16), dtype=np.uint8
        )
        # Original inputs are a prefix of the new ones (TP flops appended).
        padded = np.vstack(
            [inputs, rng.integers(0, 2, size=(out.n_flops - small_netlist.n_flops, 16), dtype=np.uint8)]
        )
        vals_old = CompiledSimulator(small_netlist).simulate(inputs)
        vals_new = CompiledSimulator(out).simulate(padded)
        for o in small_netlist.primary_outputs:
            assert np.array_equal(vals_old[o], vals_new[o])

    def test_picks_least_observable_nets(self, small_netlist):
        """Chosen nets are among the farthest from existing observations."""
        from repro.netlist import bfs_distance_from_observation
        from repro.netlist.netlist import EXTERNAL_DRIVER

        nearest = {}
        for obs in small_netlist.observed_nets:
            dist, _ = bfs_distance_from_observation(small_netlist, obs)
            for net, d in dist.items():
                if net not in nearest or d < nearest[net]:
                    nearest[net] = d
        out = insert_test_points(small_netlist, budget_fraction=0.02)
        new_flops = out.flops[small_netlist.n_flops :]
        eligible = [
            nearest.get(n.id, 10 ** 6)
            for n in small_netlist.nets
            if n.driver != EXTERNAL_DRIVER and n.id not in set(small_netlist.observed_nets)
        ]
        worst = sorted(eligible, reverse=True)[: len(new_flops)]
        chosen = sorted((nearest.get(f.d_net, 10 ** 6) for f in new_flops), reverse=True)
        assert chosen == worst

    def test_improves_observability(self, small_netlist):
        """TPI should not reduce ATPG fault coverage."""
        from repro.atpg import generate_tdf_patterns

        base = generate_tdf_patterns(small_netlist, seed=0, max_patterns=64)
        tpi = insert_test_points(small_netlist, budget_fraction=0.03)
        after = generate_tdf_patterns(tpi, seed=0, max_patterns=64)
        assert after.fault_coverage >= base.fault_coverage - 0.03
