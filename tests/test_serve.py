"""Diagnosis-as-a-service tests: batcher, registry, protocol, HTTP, stdin.

The e2e contract under test is the acceptance criterion of the serving PR:
a response produced by the live batched server is byte-identical (after
:func:`canonical_response` strips volatile timings) to the offline
``pipeline.diagnose`` serialization of the same datalog.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import M3DDiagnosisFramework
from repro.data import build_dataset
from repro.diagnosis import EffectCauseDiagnoser
from repro.runtime.instrument import RuntimeStats
from repro.serve import (
    MAX_LINE_BYTES,
    DesignContext,
    DiagnosisService,
    ModelRegistry,
    ProtocolError,
    QueueFullError,
    RequestBatcher,
    ServeClient,
    UnknownModelError,
    candidate_from_json,
    candidate_to_json,
    canonical_float,
    canonical_response,
    dumps_response,
    fire_concurrent,
    parse_submission,
    percentile,
    result_response,
    serve_http,
    serve_stdin,
)
from repro.tester.datalog import dumps_datalog, loads_datalog


# ------------------------------------------------------------------ fixtures
@pytest.fixture(scope="module")
def fw(prepared):
    train = build_dataset(prepared, "bypass", 60, seed=61)
    framework = M3DDiagnosisFramework(epochs=10, seed=0)
    framework.fit([train])
    return framework


@pytest.fixture(scope="module")
def chips(prepared):
    """(items, reports, datalogs): ten failing chips ready to submit."""
    test = build_dataset(prepared, "bypass", 10, seed=62)
    diag = EffectCauseDiagnoser(
        prepared.nl,
        prepared.obsmap("bypass"),
        prepared.patterns,
        mivs=prepared.mivs,
        sim=prepared.sim,
    )
    reports = [diag.diagnose(item.sample.log) for item in test.items]
    datalogs = [
        dumps_datalog(item.sample.log, f"chip{i}", prepared.obsmap("bypass"))
        for i, item in enumerate(test.items)
    ]
    return test.items, reports, datalogs


@pytest.fixture
def serving(fw, prepared):
    """A live HTTP server around the module-scoped framework."""
    registry = ModelRegistry()
    record = registry.register("Syn-1", "v1", fw)
    stats = RuntimeStats()
    service = DiagnosisService(
        registry, {"small": DesignContext("small", prepared)}, stats=stats
    )
    batcher = RequestBatcher(
        service.process_batch, max_batch=8, max_queue=32,
        flush_interval_s=0.005, stats=stats,
    ).start()
    httpd = serve_http(service, batcher)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    client = ServeClient(f"http://{host}:{port}", timeout_s=30.0)
    yield client, service, batcher, record
    httpd.shutdown()
    httpd.server_close()
    batcher.close()


def _offline_doc(fw, prepared, record, item, report, rid, chip=None):
    """The offline pipeline.diagnose serialization the server must match."""
    result = fw.diagnose(prepared, "bypass", item.sample.log, report)
    provenance = {
        "design": "small",
        "config": "Syn-1",
        "mode": "bypass",
        "model_version": record.version,
        "nn_backend": record.backend,
    }
    return result_response(result, rid, chip if chip is not None else rid,
                           provenance)


# ------------------------------------------------------------------ protocol
class TestProtocol:
    def test_candidate_roundtrip(self, chips):
        _items, reports, _logs = chips
        report = next(r for r in reports if r.candidates)
        for cand in report.candidates[:5]:
            doc = candidate_to_json(cand)
            back = candidate_from_json(json.loads(json.dumps(doc)))
            assert candidate_to_json(back) == doc

    def test_canonical_float_is_idempotent_and_close(self):
        rng = np.random.default_rng(7)
        for x in rng.random(50):
            c = canonical_float(float(x))
            assert canonical_float(c) == c
            assert abs(c - x) < 1e-11

    @pytest.mark.parametrize("doc", [
        "not a dict", 17, [], {}, {"datalog": ""}, {"datalog": 3},
        {"datalog": "x", "id": {}}, {"datalog": "x", "design": 5},
        {"datalog": "x", "mode": []}, {"datalog": "x", "report": "nope"},
        {"datalog": "x", "report": [{"kind": "stem"}]},
    ])
    def test_malformed_submissions_raise_protocol_error(self, doc):
        with pytest.raises(ProtocolError):
            parse_submission(doc)

    def test_submission_with_precomputed_report(self, chips):
        _items, reports, logs = chips
        report = next(r for r in reports if r.candidates)
        sub = parse_submission({
            "datalog": logs[0],
            "report": [candidate_to_json(c) for c in report.candidates],
        })
        assert sub.report is not None
        assert sub.report.resolution == report.resolution

    def test_percentile(self):
        values = [float(i) for i in range(100)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 98.0
        with pytest.raises(ValueError):
            percentile([], 50)


# ------------------------------------------------------------------- batcher
class TestBatcher:
    def test_coalesces_queued_submissions(self):
        stats = RuntimeStats()
        batcher = RequestBatcher(
            lambda items: [item.payload * 2 for item in items],
            max_batch=16, max_queue=32, flush_interval_s=0.005, stats=stats,
        )
        futures = [batcher.submit(i) for i in range(5)]  # queued pre-start
        batcher.start()
        assert [f.result(timeout=10) for f in futures] == [0, 2, 4, 6, 8]
        batcher.close()
        assert stats.counters["serve.batches"] == 1  # one block-diagonal pass
        assert stats.counters["serve.batched"] == 5

    def test_bounded_queue_rejects_when_full(self):
        stats = RuntimeStats()
        batcher = RequestBatcher(
            lambda items: [None for _ in items],
            max_batch=1, max_queue=2, stats=stats,
        )  # never started: the queue can only fill
        batcher.submit("a")
        batcher.submit("b")
        with pytest.raises(QueueFullError):
            batcher.submit("c")
        assert stats.counters["serve.rejected.queue_full"] == 1
        assert stats.counters["serve.accepted"] == 2
        batcher.start()
        batcher.close()

    def test_processor_crash_fails_batch_not_loop(self):
        calls = []

        def process(items):
            calls.append(len(items))
            if any(item.payload == "boom" for item in items):
                raise RuntimeError("kaboom")
            return [item.payload for item in items]

        stats = RuntimeStats()
        batcher = RequestBatcher(
            process, max_batch=4, max_queue=16, flush_interval_s=0.005,
            stats=stats,
        ).start()
        bad = batcher.submit("boom")
        with pytest.raises(RuntimeError, match="kaboom"):
            bad.result(timeout=10)
        good = batcher.submit("fine")
        assert good.result(timeout=10) == "fine"  # the loop survived
        batcher.close()
        assert stats.counters["serve.batch_errors"] == 1

    def test_result_count_mismatch_is_an_error(self):
        batcher = RequestBatcher(
            lambda items: [], max_batch=4, max_queue=4, flush_interval_s=0.005
        ).start()
        future = batcher.submit("x")
        with pytest.raises(RuntimeError, match="0 result"):
            future.result(timeout=10)
        batcher.close()

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            RequestBatcher(lambda items: [], max_batch=0)
        with pytest.raises(ValueError):
            RequestBatcher(lambda items: [], max_queue=0)


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_rejects_unfitted(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="unfitted"):
            registry.register("Syn-1", "v1", M3DDiagnosisFramework())

    def test_versioning_and_atomic_activation(self, fw):
        registry = ModelRegistry()
        registry.register("Syn-1", "v1", fw)
        registry.register("Syn-1", "v2", fw, activate=False)
        assert registry.active("Syn-1").version == "v1"
        registry.activate("Syn-1", "v2")
        assert registry.active("Syn-1").version == "v2"
        doc = registry.describe()
        assert doc["configs"]["Syn-1"]["versions"] == ["v1", "v2"]
        assert doc["configs"]["Syn-1"]["active"] == "v2"

    def test_unknown_lookups(self, fw):
        registry = ModelRegistry()
        with pytest.raises(UnknownModelError):
            registry.active("TPI")
        registry.register("Syn-1", "v1", fw)
        with pytest.raises(UnknownModelError):
            registry.activate("Syn-1", "v9")
        with pytest.raises(UnknownModelError):
            registry.activate("TPI", "v1")

    def test_warm_load_from_checkpoint(self, fw, tmp_path):
        from repro.core.io import save_framework

        path = tmp_path / "fw.npz"
        save_framework(fw, path)
        registry = ModelRegistry()
        record = registry.load("Syn-1", "v1", path)
        assert record.source == str(path)
        assert registry.warmup() == 1
        assert record.describe()["has_miv_pinpointer"] is True


# ------------------------------------------------------------- http frontend
class TestHTTP:
    def test_single_response_matches_offline_bytes(self, serving, fw, prepared,
                                                   chips):
        client, _service, _batcher, record = serving
        items, reports, logs = chips
        fired = client.diagnose({"id": "chip0", "datalog": logs[0]})
        assert fired.response["ok"] is True
        offline = _offline_doc(fw, prepared, record, items[0], reports[0], "chip0")
        assert (
            dumps_response(canonical_response(fired.response))
            == dumps_response(canonical_response(offline))
        )
        prov = fired.response["provenance"]
        assert prov["model_version"] == "v1"
        assert prov["config"] == "Syn-1"
        assert set(prov["timings"]) == {"queue_s", "atpg_s", "infer_s"}

    def test_concurrent_fire_matches_offline(self, serving, fw, prepared, chips):
        client, service, _batcher, record = serving
        items, reports, logs = chips
        subs = [{"id": f"chip{i}", "datalog": log} for i, log in enumerate(logs)]
        stats = fire_concurrent(client, subs, concurrency=10)
        assert stats["n_ok"] == len(subs)
        assert stats["latency_p99_s"] >= stats["latency_p50_s"]
        for i, resp in enumerate(stats["responses"]):
            offline = _offline_doc(fw, prepared, record, items[i], reports[i],
                                   f"chip{i}")
            assert (
                dumps_response(canonical_response(resp))
                == dumps_response(canonical_response(offline))
            )
        # Concurrency actually coalesced: fewer forwards than requests.
        assert service.stats.counters["serve.batches"] < len(subs)

    def test_precomputed_report_short_circuits_atpg(self, serving, fw, prepared,
                                                    chips):
        client, _service, _batcher, record = serving
        items, reports, logs = chips
        fired = client.diagnose({
            "id": "withrep", "datalog": logs[1],
            "report": [candidate_to_json(c) for c in reports[1].candidates],
        })
        offline = _offline_doc(fw, prepared, record, items[1], reports[1],
                               "withrep", chip="chip1")
        assert (
            dumps_response(canonical_response(fired.response))
            == dumps_response(canonical_response(offline))
        )

    def test_healthz_models_metrics(self, serving, chips):
        client, _service, _batcher, _record = serving
        _items, _reports, logs = chips
        health = client.healthz()
        assert health["ok"] is True and health["designs"] == ["small"]
        models = client.models()
        assert models["configs"]["Syn-1"]["active"] == "v1"
        client.diagnose({"datalog": logs[0]})
        metrics = client.metrics()
        assert 'repro_counter_total{name="serve.accepted"}' in metrics
        assert 'repro_counter_total{name="serve.responses"}' in metrics

    def test_model_swap_via_http(self, serving):
        client, service, _batcher, _record = serving
        service.registry.register(
            "Syn-1", "v2", service.registry.active("Syn-1").framework,
            activate=False,
        )
        swapped = client.activate("Syn-1", "v2")
        assert swapped["active"]["version"] == "v2"
        assert service.registry.active("Syn-1").version == "v2"
        with pytest.raises(urllib.error.HTTPError) as err:
            client.activate("Syn-1", "v99")
        assert err.value.code == 404

    def test_http_429_when_queue_full(self, fw, prepared, chips):
        _items, _reports, logs = chips
        registry = ModelRegistry()
        registry.register("Syn-1", "v1", fw)
        service = DiagnosisService(
            registry, {"small": DesignContext("small", prepared)}
        )
        # Not started: submissions only queue, so capacity 1 fills at once.
        batcher = RequestBatcher(service.process_batch, max_batch=8, max_queue=1)
        httpd = serve_http(service, batcher)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.server_address
        url = f"http://{host}:{port}/diagnose"
        body = json.dumps({"datalog": logs[0]}).encode()

        first_done = threading.Event()

        def occupant():
            try:
                urllib.request.urlopen(
                    urllib.request.Request(url, data=body, method="POST"),
                    timeout=30,
                )
            finally:
                first_done.set()

        t = threading.Thread(target=occupant, daemon=True)
        t.start()
        deadline = 100
        while batcher.queue_depth < 1 and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        assert batcher.queue_depth == 1
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                urllib.request.Request(url, data=body, method="POST"),
                timeout=30,
            )
        assert err.value.code == 429
        doc = json.loads(err.value.read())
        assert doc["error"]["type"] == "queue_full"
        batcher.start()  # drain the occupant before teardown
        assert first_done.wait(30)
        httpd.shutdown()
        httpd.server_close()
        batcher.close()

    def test_client_retries_429(self, fw, prepared, chips):
        _items, _reports, logs = chips
        registry = ModelRegistry()
        registry.register("Syn-1", "v1", fw)
        service = DiagnosisService(
            registry, {"small": DesignContext("small", prepared)}
        )
        batcher = RequestBatcher(service.process_batch, max_batch=8, max_queue=1)
        httpd = serve_http(service, batcher)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.server_address
        client = ServeClient(f"http://{host}:{port}", timeout_s=30.0,
                             backoff_s=0.02)
        occupant = threading.Thread(
            target=client.diagnose, args=({"datalog": logs[0]},), daemon=True
        )
        occupant.start()
        deadline = 100
        while batcher.queue_depth < 1 and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        starter = threading.Timer(0.2, batcher.start)
        starter.start()
        fired = client.diagnose({"datalog": logs[1]})
        assert fired.response["ok"] is True
        assert fired.retries >= 1
        occupant.join(timeout=30)
        starter.cancel()
        httpd.shutdown()
        httpd.server_close()
        batcher.close()


# ----------------------------------------------------- fuzz / malformed input
class TestMalformedSubmissions:
    def test_jsonl_batch_with_garbage_lines(self, serving, chips):
        """Every malformed line yields a structured error; valid lines work."""
        client, _service, _batcher, _record = serving
        _items, _reports, logs = chips
        lines = [
            json.dumps({"id": "good", "datalog": logs[0]}),
            "{truncated json",
            json.dumps({"id": "toolong", "datalog": "A" * (MAX_LINE_BYTES + 1)}),
            json.dumps(["not", "an", "object"]),
            json.dumps({"id": "nolog"}),
            json.dumps({"id": "badlog", "datalog": "not a datalog"}),
            json.dumps({"id": "baddesign", "datalog": logs[0],
                        "design": "nope"}),
            json.dumps({"id": "badmode", "datalog": logs[0], "mode": "warp"}),
        ]
        body = ("\n".join(lines) + "\n").encode()
        request = urllib.request.Request(
            client.base_url + "/diagnose", data=body,
            headers={"Content-Type": "application/x-ndjson"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            docs = [json.loads(ln) for ln in resp.read().decode().splitlines()]
        assert len(docs) == len(lines)
        assert docs[0]["ok"] is True and docs[0]["id"] == "good"
        expected = ["bad_json", "line_too_long", "bad_request", "bad_request",
                    "bad_datalog", "unknown_design", "unknown_mode"]
        for doc, kind in zip(docs[1:], expected):
            assert doc["ok"] is False
            assert doc["error"]["type"] == kind
        # The batch loop survived all of it.
        assert client.healthz()["ok"] is True
        assert client.diagnose({"datalog": logs[2]}).response["ok"] is True

    def test_empty_and_oversized_bodies(self, serving):
        client, _service, _batcher, _record = serving
        request = urllib.request.Request(
            client.base_url + "/diagnose", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        huge = urllib.request.Request(
            client.base_url + "/diagnose", data=b"x",
            headers={"Content-Length": str(10**12)}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(huge, timeout=30)
        assert err.value.code == 413

    def test_unknown_route_404(self, serving):
        client, _service, _batcher, _record = serving
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(client.base_url + "/nope", timeout=30)
        assert err.value.code == 404

    def test_fuzz_loads_datalog_never_crashes(self, prepared, chips):
        """Truncations, splices, and garbage: ValueError or success, only."""
        _items, _reports, logs = chips
        obsmap = prepared.obsmap("bypass")
        rng = np.random.default_rng(17)
        corpus = [
            logs[0],
            "",
            "\x00\xff garbage \n\n",
            "# repro failure datalog v1\n",
            "# repro failure datalog v1\nCHIP x\nMODE warp\n",
            "# repro failure datalog v1\nCHIP x\nMODE bypass\nFAIL pattern=",
            "# repro failure datalog v1\nCHIP x\nMODE bypass\n"
            "FAIL pattern=1 obs=po0 id=999999\n",
        ]
        for _ in range(60):
            base = logs[int(rng.integers(len(logs)))]
            cut = int(rng.integers(len(base)))
            mutated = base[:cut] + str(rng.integers(10)) + base[cut + 1:]
            corpus.append(mutated)
            corpus.append(base[:cut])
        parsed = failed = 0
        for text in corpus:
            try:
                chip_id, log = loads_datalog(text, obsmap)
                assert isinstance(chip_id, str)
                parsed += 1
            except ValueError:
                failed += 1
        assert parsed + failed == len(corpus)
        assert failed > 0  # the corpus did contain garbage


# ------------------------------------------------------------ stdin frontend
class TestStdinFrontend:
    def test_jsonl_in_order_with_inline_errors(self, fw, prepared, chips):
        items, reports, logs = chips
        registry = ModelRegistry()
        record = registry.register("Syn-1", "v1", fw)
        service = DiagnosisService(
            registry, {"small": DesignContext("small", prepared)}
        )
        batcher = RequestBatcher(
            service.process_batch, max_batch=4, max_queue=8,
            flush_interval_s=0.005, stats=service.stats,
        ).start()
        lines = [
            json.dumps({"id": "a", "datalog": logs[0]}),
            "garbage line",
            "",
            json.dumps({"id": "b", "datalog": logs[1]}),
        ]
        out = io.StringIO()
        n = serve_stdin(batcher, io.StringIO("\n".join(lines) + "\n"), out)
        batcher.close()
        docs = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert n == 3 and len(docs) == 3  # blank line skipped
        assert [d.get("id") for d in docs] == ["a", None, "b"]
        assert docs[0]["ok"] and not docs[1]["ok"] and docs[2]["ok"]
        for doc, item, report, rid, chip in (
            (docs[0], items[0], reports[0], "a", "chip0"),
            (docs[2], items[1], reports[1], "b", "chip1"),
        ):
            offline = _offline_doc(fw, prepared, record, item, report, rid,
                                   chip=chip)
            assert (
                dumps_response(canonical_response(doc))
                == dumps_response(canonical_response(offline))
            )


# ----------------------------------------------------------------- service
class TestService:
    def test_requires_designs(self, fw):
        registry = ModelRegistry()
        registry.register("Syn-1", "v1", fw)
        with pytest.raises(ValueError):
            DiagnosisService(registry, {})

    def test_no_active_model_is_structured(self, fw, prepared, chips):
        _items, _reports, logs = chips
        service = DiagnosisService(
            ModelRegistry(), {"small": DesignContext("small", prepared)}
        )
        batcher = RequestBatcher(
            service.process_batch, flush_interval_s=0.005, stats=service.stats
        ).start()
        doc = batcher.submit({"datalog": logs[0]}).result(timeout=30)
        batcher.close()
        assert doc["ok"] is False
        assert doc["error"]["type"] == "no_model"
        assert service.stats.counters["serve.rejected.no_model"] == 1

    def test_design_required_when_ambiguous(self, fw, prepared, chips):
        _items, _reports, logs = chips
        registry = ModelRegistry()
        registry.register("Syn-1", "v1", fw)
        service = DiagnosisService(registry, {
            "one": DesignContext("one", prepared),
            "two": DesignContext("two", prepared),
        })
        batcher = RequestBatcher(
            service.process_batch, flush_interval_s=0.005
        ).start()
        missing = batcher.submit({"datalog": logs[0]}).result(timeout=30)
        named = batcher.submit(
            {"datalog": logs[0], "design": "two"}
        ).result(timeout=30)
        batcher.close()
        assert missing["ok"] is False
        assert missing["error"]["type"] == "bad_request"
        assert named["ok"] is True
        assert named["provenance"]["design"] == "two"

    def test_serving_metrics_view(self, serving, chips):
        from repro.obs import metrics_document

        client, service, _batcher, _record = serving
        _items, _reports, logs = chips
        client.diagnose({"datalog": logs[0]})
        view = metrics_document(service.stats)["serving"]
        assert view["accepted"] >= 1
        assert view["responses"] >= 1
        assert view["mean_batch_size"] >= 1.0
