"""Differential determinism harness for the dataset-generation runtime.

The core guarantee under test: a dataset built serially, built with a
4-worker pool, and re-loaded from a warm cache are *byte-identical* —
graph adjacency, node features, labels, masks, injected-fault identities,
failure logs, and the canonical train/val split all fingerprint to one
SHA-256 digest.  Exercised on two benchmarks (aes_like and tate_like
generators) and on a random-partition (``Rand-k``) configuration, matching
the augmentation matrix the experiments fan out over.
"""

from __future__ import annotations

import pytest

from repro.data import DesignConfig, build_dataset, prepare_design
from repro.data.datasets import chunk_seed
from repro.netlist import GeneratorSpec
from repro.runtime import (
    DatasetRequest,
    DatasetRuntime,
    RuntimeStats,
    configure,
    fingerprints_identical,
    get_runtime,
    reset_runtime,
    sample_set_fingerprint,
)

#: Enough samples for 3 chunks (16 + 16 + 8) at the default chunk size.
N_SAMPLES = 40
SEED = 4242


@pytest.fixture(scope="module")
def tate_rand_design():
    """Second benchmark flavor under a random-partition (Rand-k) config."""
    spec = GeneratorSpec("tate_small", "tate_like", 160, 20, 10, 10, seed=5)
    return prepare_design(
        spec,
        DesignConfig.standard("Rand-1"),
        n_chains=4,
        chains_per_channel=2,
        max_patterns=64,
    )


@pytest.fixture(autouse=True)
def _isolate_global_runtime():
    reset_runtime()
    yield
    reset_runtime()


@pytest.fixture(params=["aes-Syn-1", "tate-Rand-1"])
def design(request, prepared, tate_rand_design):
    return prepared if request.param == "aes-Syn-1" else tate_rand_design


def test_serial_matches_plain_build(design):
    """The runtime with workers=1 reproduces the reference serial build."""
    rt = DatasetRuntime(workers=1)
    via_runtime = rt.build_dataset(design, "bypass", N_SAMPLES, SEED)
    reference = build_dataset(design, "bypass", N_SAMPLES, SEED)
    assert fingerprints_identical([via_runtime, reference])


def test_four_workers_byte_identical_to_serial(design):
    serial = DatasetRuntime(workers=1).build_dataset(design, "bypass", N_SAMPLES, SEED)
    par = DatasetRuntime(workers=4).build_dataset(design, "bypass", N_SAMPLES, SEED)
    assert sample_set_fingerprint(par) == sample_set_fingerprint(serial)


def test_warm_cache_byte_identical_and_skips_simulation(design, tmp_path):
    cold_stats = RuntimeStats()
    cold = DatasetRuntime(workers=1, cache_dir=tmp_path, stats=cold_stats)
    first = cold.build_dataset(design, "bypass", N_SAMPLES, SEED)
    assert cold_stats.counters.get("dataset.chunks_built", 0) == 3

    warm_stats = RuntimeStats()
    warm = DatasetRuntime(workers=1, cache_dir=tmp_path, stats=warm_stats)
    second = warm.build_dataset(design, "bypass", N_SAMPLES, SEED)
    assert sample_set_fingerprint(second) == sample_set_fingerprint(first)
    # No injection/simulation ran on the warm path — every chunk was a hit.
    assert warm_stats.counters.get("dataset.chunks_built", 0) == 0
    assert warm_stats.counters.get("cache.sample_chunk.hit", 0) == 3
    assert "dataset.inject" not in warm_stats.stage_seconds


def test_parallel_warm_cache_matches_cold_serial(design, tmp_path):
    """workers=4 writing the cache, then a warm reload: all three identical."""
    par = DatasetRuntime(workers=4, cache_dir=tmp_path)
    built = par.build_dataset(design, "compacted", N_SAMPLES, SEED)
    warm = DatasetRuntime(workers=1, cache_dir=tmp_path).build_dataset(
        design, "compacted", N_SAMPLES, SEED
    )
    serial = DatasetRuntime(workers=1).build_dataset(design, "compacted", N_SAMPLES, SEED)
    assert fingerprints_identical([built, warm, serial])


def test_chunk_prefix_stability(prepared):
    """Growing a dataset re-uses the identical leading chunks.

    Chunk seeds depend only on (master seed, unit identity), so the first 16
    samples of a 40-sample build equal a 16-sample build outright — the
    property that makes cached chunks reusable across dataset sizes.
    """
    small = DatasetRuntime(workers=1).build_dataset(prepared, "bypass", 16, SEED)
    large = DatasetRuntime(workers=1).build_dataset(prepared, "bypass", N_SAMPLES, SEED)
    prefix = type(small)(design=small.design, mode=small.mode, items=large.items[:16])
    assert sample_set_fingerprint(prefix) == sample_set_fingerprint(small)


def test_chunk_seed_is_worker_invariant(prepared, tate_rand_design):
    """Derived seeds hang off unit identity alone, and never collide here."""
    seeds = {
        chunk_seed(design, mode, "single", SEED, i)
        for design in (prepared, tate_rand_design)
        for mode in ("bypass", "compacted")
        for i in range(3)
    }
    assert len(seeds) == 12  # all distinct
    assert chunk_seed(prepared, "bypass", "single", SEED, 0) == chunk_seed(
        prepared, "bypass", "single", SEED, 0
    )


def test_build_datasets_matrix_matches_individual_builds(prepared, tate_rand_design):
    """One fan-out over a (design, request) matrix equals per-design builds."""
    orders = [
        (prepared, DatasetRequest("bypass", 24, SEED)),
        (tate_rand_design, DatasetRequest("bypass", 24, SEED + 1)),
    ]
    batch = DatasetRuntime(workers=4).build_datasets(orders)
    solo = [
        DatasetRuntime(workers=1).build_dataset(d, r.mode, r.n_samples, r.seed)
        for d, r in orders
    ]
    for got, want in zip(batch, solo):
        assert sample_set_fingerprint(got) == sample_set_fingerprint(want)


def test_prepared_design_cache_roundtrip_builds_identical_datasets(prepared, tmp_path):
    """A design re-loaded from the artifact cache is behaviorally identical."""
    rt = DatasetRuntime(workers=1, cache_dir=tmp_path)
    spec = prepared.provenance["spec"]
    kwargs = dict(n_chains=4, chains_per_channel=2, max_patterns=96)
    stored = rt.prepare(spec, DesignConfig.standard("Syn-1"), **kwargs)
    reloaded = DatasetRuntime(workers=1, cache_dir=tmp_path).prepare(
        spec, DesignConfig.standard("Syn-1"), **kwargs
    )
    a = DatasetRuntime(workers=1).build_dataset(stored, "bypass", 16, SEED)
    b = DatasetRuntime(workers=1).build_dataset(reloaded, "bypass", 16, SEED)
    assert sample_set_fingerprint(a) == sample_set_fingerprint(b)


def test_unknown_kind_rejected(prepared):
    with pytest.raises(ValueError, match="unknown dataset kind"):
        DatasetRuntime(workers=1).build_dataset(prepared, "bypass", 4, SEED, kind="exotic")


def test_global_runtime_configure_and_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    reset_runtime()
    rt = get_runtime()
    assert rt.workers == 3
    assert rt.cache is not None
    # Explicit configure() overrides the environment.
    rt2 = configure(workers=1, cache_dir=None)
    assert get_runtime() is rt2
    assert rt2.workers == 1
    # An empty env var means "no cache", not a cache rooted at "".
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    reset_runtime()
    assert get_runtime().cache is None
