"""Unit tests for netlist data structures and the builder."""

import pytest

from repro.netlist import NetlistBuilder, generate, GeneratorSpec, toy_netlist
from repro.netlist.netlist import EXTERNAL_DRIVER


def test_toy_shape(toy):
    assert toy.n_gates == 5
    assert toy.n_flops == 1
    assert len(toy.primary_inputs) == 4
    assert len(toy.primary_outputs) == 1


def test_comb_inputs_order(toy):
    assert toy.comb_inputs[: len(toy.primary_inputs)] == toy.primary_inputs
    assert toy.comb_inputs[-1] == toy.flops[0].q_net


def test_observed_nets(toy):
    assert toy.observed_nets == toy.primary_outputs + [toy.flops[0].d_net]


def test_topo_order_respects_dependencies(toy):
    order = toy.topo_order()
    pos = {gid: i for i, gid in enumerate(order)}
    for g in toy.gates:
        for net in g.fanin:
            drv = toy.nets[net].driver
            if drv != EXTERNAL_DRIVER:
                assert pos[drv] < pos[g.id]


def test_topo_order_cached(toy):
    assert toy.topo_order() is toy.topo_order()
    toy.invalidate()
    assert toy.topo_order() == toy.topo_order()


def test_net_levels_monotone(toy):
    levels = toy.net_levels()
    for g in toy.gates:
        for net in g.fanin:
            assert levels[net] < levels[g.out]


def test_copy_is_deep(toy):
    dup = toy.copy()
    dup.gates[0].tier = 1
    dup.nets[0].sinks.append((99, 0))
    assert toy.gates[0].tier == -1
    assert (99, 0) not in toy.nets[0].sinks


def test_stats_keys(toy):
    stats = toy.stats()
    assert stats["gates"] == 5
    assert stats["depth"] >= 2
    assert stats["area"] > 0


def test_net_tier_for_pi_is_bottom(toy):
    assert toy.net_tier(toy.primary_inputs[0]) == 0


def test_net_tier_tracks_flop(toy):
    toy.flops[0].tier = 1
    assert toy.net_tier(toy.flops[0].q_net) == 1


def test_repr(toy):
    assert "toy" in repr(toy)


class TestBuilder:
    def test_duplicate_net_name_rejected(self):
        b = NetlistBuilder("t")
        b.add_primary_input("a")
        with pytest.raises(ValueError, match="duplicate net"):
            b.add_net("a")

    def test_duplicate_gate_name_rejected(self):
        b = NetlistBuilder("t")
        a = b.add_primary_input("a")
        b.add_gate("INV", [a], gate_name="g")
        with pytest.raises(ValueError, match="duplicate gate"):
            b.add_gate("INV", [a], gate_name="g")

    def test_wrong_arity_rejected(self):
        b = NetlistBuilder("t")
        a = b.add_primary_input("a")
        with pytest.raises(ValueError, match="needs 2 inputs"):
            b.add_gate("NAND2", [a])

    def test_unknown_fanin_rejected(self):
        b = NetlistBuilder("t")
        b.add_primary_input("a")
        with pytest.raises(ValueError, match="does not exist"):
            b.add_gate("INV", [42])

    def test_undriven_net_rejected_at_finish(self):
        b = NetlistBuilder("t")
        floating = b.add_net("floating")
        b.add_gate("INV", [floating])
        with pytest.raises(ValueError, match="no driver"):
            b.finish()

    def test_combinational_loop_rejected(self):
        b = NetlistBuilder("t")
        a = b.add_primary_input("a")
        n1 = b.add_net("loop")
        out = b.add_gate("AND2", [a, n1], gate_name="g0")
        # Manually wire the loop: g1 drives n1 from g0's output, g0 reads n1.
        b._nets[n1].driver = len(b._gates)
        from repro.netlist.netlist import Gate
        from repro.netlist.cells import cell

        b._gates.append(Gate(id=1, name="g1", cell=cell("INV"), fanin=[out], out=n1))
        b._gate_by_name["g1"] = 1
        with pytest.raises(ValueError, match="loop"):
            b.finish()

    def test_insert_buffer_rewires_all_sinks(self, toy):
        b = NetlistBuilder.from_netlist(toy)
        target = toy.gates[0].out  # n0 feeds g2
        buf_out = b.insert_buffer_after(target)
        nl = b.finish()
        for g in nl.gates[:5]:
            if g.name == "g2":
                assert buf_out in g.fanin

    def test_insert_buffer_single_sink(self, toy):
        b = NetlistBuilder.from_netlist(toy)
        g3 = next(g for g in toy.gates if g.name == "g3")
        target = g3.fanin[1]  # q0 feeds both g3 and g4
        buf_out = b.insert_buffer_after(target, sink=(g3.id, 1))
        nl = b.finish()
        new_g3 = next(g for g in nl.gates if g.name == "g3")
        new_g4 = next(g for g in nl.gates if g.name == "g4")
        assert new_g3.fanin[1] == buf_out
        assert buf_out not in new_g4.fanin

    def test_add_flop_creates_q_net(self):
        b = NetlistBuilder("t")
        a = b.add_primary_input("a")
        out = b.add_gate("INV", [a])
        q = b.add_flop(out)
        nl = b.finish()
        assert nl.flops[0].q_net == q
        assert nl.flops[0].d_net == out


def test_generate_deterministic(small_spec):
    a = generate(small_spec)
    b = generate(small_spec)
    assert a.n_gates == b.n_gates
    assert [g.cell.name for g in a.gates] == [g.cell.name for g in b.gates]
    assert [g.fanin for g in a.gates] == [g.fanin for g in b.gates]


def test_generate_different_seeds_differ():
    s1 = GeneratorSpec("x", "aes_like", 100, 12, 8, 8, seed=1)
    s2 = GeneratorSpec("x", "aes_like", 100, 12, 8, 8, seed=2)
    a, b = generate(s1), generate(s2)
    assert [g.fanin for g in a.gates] != [g.fanin for g in b.gates]


def test_generate_all_flavors():
    from repro.netlist.generators import FLAVORS

    for flavor in FLAVORS:
        nl = generate(GeneratorSpec("f", flavor, 120, 16, 8, 8, seed=5))
        assert nl.n_gates == 120
        assert nl.n_flops == 16


def test_generate_no_dangling(small_netlist):
    from repro.netlist import check

    assert check(small_netlist) == []
