"""End-to-end tests for ``repro check`` / ``repro lint``."""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main
from repro.netlist import dumps_bench
from repro.netlist.cells import CELL_LIBRARY
from repro.netlist.netlist import EXTERNAL_DRIVER, Gate, Net, Netlist


def _cyclic_netlist():
    """Two cross-coupled NAND2s — unbuildable via NetlistBuilder (it fails
    fast on loops), so constructed by hand."""
    nand2 = CELL_LIBRARY["NAND2"]
    nets = [
        Net(0, "a", EXTERNAL_DRIVER, [(0, 0), (1, 0)]),
        Net(1, "n1", 0, [(1, 1)]),
        Net(2, "n2", 1, [(0, 1)]),
    ]
    gates = [
        Gate(0, "g0", nand2, [0, 2], 1),
        Gate(1, "g1", nand2, [0, 1], 2),
    ]
    return Netlist("cyc", gates, nets, [0], [1], [])


def test_check_clean_python_file(tmp_path, capsys):
    f = tmp_path / "clean.py"
    f.write_text("import random\nr = random.Random(1)\nx = r.random()\n")
    assert main(["check", str(f)]) == 0
    assert "0 problem(s)" in capsys.readouterr().out


def test_check_flags_global_rng(tmp_path, capsys):
    f = tmp_path / "bad.py"
    f.write_text("import random\nx = random.random()\n")
    assert main(["check", str(f)]) == 1
    assert "RPL001" in capsys.readouterr().out


def test_lint_alias(tmp_path):
    f = tmp_path / "bad.py"
    f.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(f)]) == 1


def test_check_self_is_clean():
    assert main(["check", "--self"]) == 0


def test_check_pickled_cyclic_netlist(tmp_path, capsys):
    f = tmp_path / "cyc.pkl"
    f.write_bytes(pickle.dumps(_cyclic_netlist()))
    assert main(["check", str(f)]) == 1
    assert "DRC001" in capsys.readouterr().out


def test_check_pickled_design_missing_miv(tmp_path, capsys, prepared):
    f = tmp_path / "design.pkl"
    bundle = {"nl": prepared.nl, "mivs": list(prepared.mivs)[:-1], "het": None}
    f.write_bytes(pickle.dumps(bundle))
    assert main(["check", str(f)]) == 1
    assert "DRC021" in capsys.readouterr().out


def test_check_pickled_clean_design(tmp_path, prepared):
    f = tmp_path / "design.pkl"
    bundle = {"nl": prepared.nl, "mivs": prepared.mivs, "het": prepared.het}
    f.write_bytes(pickle.dumps(bundle))
    assert main(["check", str(f)]) == 0


def test_check_bench_file(tmp_path, toy):
    f = tmp_path / "toy.bench"
    f.write_text(dumps_bench(toy))
    assert main(["check", str(f)]) == 0


def test_check_unparseable_bench(tmp_path, capsys):
    f = tmp_path / "bad.bench"
    f.write_text("n1 = NAND(nonexistent_a, nonexistent_b)\n")
    assert main(["check", str(f)]) == 1
    assert "unloadable netlist" in capsys.readouterr().out


def test_check_without_targets_is_usage_error(capsys):
    assert main(["check"]) == 2


def test_check_missing_file_is_usage_error(tmp_path):
    assert main(["check", str(tmp_path / "nope.pkl")]) == 2


def test_check_rules_catalog(capsys):
    assert main(["check", "--rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("RPL001", "RPL005", "DRC001", "DRC033",
                "BPL001", "BPL005", "RCL001", "RCL004", "SUP001"):
        assert rid in out


def test_check_runs_purity_engine_on_explicit_paths(tmp_path, capsys):
    f = tmp_path / "model.py"
    f.write_text(
        "import numpy as np\n"
        "def combine(x, backend):\n"
        "    t = backend.matmul(x, x)\n"
        "    return np.tanh(t)\n"
    )
    assert main(["check", str(f)]) == 1
    assert "BPL001" in capsys.readouterr().out


def test_check_runs_lifecycle_engine_on_explicit_paths(tmp_path, capsys):
    f = tmp_path / "plane.py"
    f.write_text(
        "def peek(name):\n"
        "    shm = _open_shm(name)\n"
        "    return bytes(shm.buf[:8])\n"
    )
    assert main(["check", str(f)]) == 1
    out = capsys.readouterr().out
    assert "RCL001" in out or "RCL002" in out


def test_check_reports_dead_suppression(tmp_path, capsys):
    f = tmp_path / "dead.py"
    f.write_text("x = 1  # repro-lint: disable=RPL001\n")
    assert main(["check", str(f)]) == 1
    assert "SUP001" in capsys.readouterr().out


def test_check_json_format(tmp_path, capsys):
    import json

    f = tmp_path / "bad.py"
    f.write_text("import random\nx = random.random()\n")
    assert main(["check", "--format", "json", str(f)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["problems"] == 1 and doc["targets"] == 1
    (finding,) = doc["findings"]
    assert finding["rule"] == "RPL001"
    assert finding["path"] == str(f) and finding["line"] == 2
    assert finding["symbol"] == "<module>"
    assert doc["baselined"] == [] and doc["unused_baseline_entries"] == []


def test_check_json_format_clean_run(tmp_path, capsys):
    import json

    f = tmp_path / "clean.py"
    f.write_text("x = 1\n")
    assert main(["check", "--format", "json", str(f)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == {"findings": [], "baselined": [],
                   "unused_baseline_entries": [], "problems": 0,
                   "targets": 1}


def test_check_baseline_demotes_known_findings(tmp_path, capsys):
    import json

    f = tmp_path / "bad.py"
    f.write_text("import random\nx = random.random()\n")
    bl = tmp_path / "baseline.json"
    bl.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "RPL001", "path": "bad.py",
                     "symbol": "<module>", "reason": "legacy seed"}],
    }))
    assert main(["check", "--baseline", str(bl), str(f)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined finding(s)" in out and "0 problem(s)" in out


def test_check_stale_baseline_entry_is_a_problem(tmp_path, capsys):
    import json

    f = tmp_path / "clean.py"
    f.write_text("x = 1\n")
    bl = tmp_path / "baseline.json"
    bl.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "RPL001", "path": "gone.py",
                     "symbol": "<module>", "reason": "fixed long ago"}],
    }))
    assert main(["check", "--baseline", str(bl), str(f)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_check_malformed_baseline_is_usage_error(tmp_path, capsys):
    import json

    f = tmp_path / "clean.py"
    f.write_text("x = 1\n")
    bl = tmp_path / "baseline.json"
    bl.write_text(json.dumps({"version": 7}))
    assert main(["check", "--baseline", str(bl), str(f)]) == 2


def test_check_mixed_targets(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    cyc = tmp_path / "cyc.pkl"
    cyc.write_bytes(pickle.dumps(_cyclic_netlist()))
    assert main(["check", str(good), str(cyc)]) == 1
    out = capsys.readouterr().out
    assert "DRC001" in out and "2 target(s)" in out
