"""Shared suppression/baseline layer: directives, SUP001 audit, baseline."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    UNUSED_SUPPRESSION_RULE,
    Baseline,
    BaselineEntry,
    Finding,
    parse_suppressions,
    unused_suppressions,
)


def _f(rule="RPL001", path="src/a.py", line=3, symbol="fn"):
    return Finding(rule=rule, path=path, line=line, col=0,
                   message="m", symbol=symbol)


# ------------------------------------------------------------- directives
def test_per_line_directive_hides_only_its_line_and_rule():
    sup = parse_suppressions("x = 1  # repro-lint: disable=RPL001\ny = 2\n")
    assert sup.hides("RPL001", 1)
    assert not sup.hides("RPL001", 2)
    assert not sup.hides("RPL002", 1)


def test_file_directive_and_comma_separated_ids():
    src = "# repro-lint: disable-file=RPL001, BPL002\nx = 1\n"
    sup = parse_suppressions(src)
    assert sup.hides("RPL001", 99) and sup.hides("BPL002", 1)
    assert sup.apply([_f(line=50)]) == []


def test_directive_inside_string_literal_is_not_live():
    # Documentation that *mentions* a directive (docstrings, help text)
    # must neither suppress findings nor count as a dead suppression.
    src = textwrap.dedent('''
        DOC = """use # repro-lint: disable=RPL001 to silence"""
        x = 1  # a real comment
    ''')
    sup = parse_suppressions(src)
    assert not sup.per_line and not sup.per_file
    assert unused_suppressions(src, "a.py", []) == []


# ------------------------------------------------------------ SUP001 audit
def test_dead_line_directive_is_reported():
    src = "x = 1  # repro-lint: disable=RPL001\n"
    out = unused_suppressions(src, "a.py", [])
    assert [(f.rule, f.line) for f in out] == [(UNUSED_SUPPRESSION_RULE, 1)]
    assert "RPL001" in out[0].message


def test_live_directive_is_not_reported():
    src = "x = 1  # repro-lint: disable=RPL001\n"
    assert unused_suppressions(src, "a.py", [_f(line=1)]) == []


def test_dead_file_directive_reports_once_at_line_one():
    src = "# repro-lint: disable-file=BPL001\nx = 1\n"
    out = unused_suppressions(src, "a.py", [_f(rule="RPL001", line=2)])
    assert [(f.rule, f.line) for f in out] == [(UNUSED_SUPPRESSION_RULE, 1)]


# --------------------------------------------------------------- baseline
def test_baseline_suffix_path_and_symbol_matching():
    entry = BaselineEntry(rule="RPL001", path="repro/a.py", symbol="fn")
    assert entry.matches(_f(path="/checkout/src/repro/a.py"))
    assert not entry.matches(_f(path="/checkout/src/repro/b.py"))
    assert not entry.matches(_f(symbol="other"))
    assert not entry.matches(_f(rule="RPL002"))


def test_baseline_split_and_unused_entries():
    bl = Baseline([
        BaselineEntry(rule="RPL001", path="src/a.py", symbol="fn"),
        BaselineEntry(rule="BPL004", path="src/z.py", symbol="gone"),
    ])
    new, old = bl.split([_f(), _f(rule="RPL002")])
    assert [f.rule for f in new] == ["RPL002"]
    assert [f.rule for f in old] == ["RPL001"]
    assert [e.rule for e in bl.unused_entries([_f()])] == ["BPL004"]


def test_baseline_load_missing_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "nope.json").entries == []
    assert Baseline.load(None).entries == []


def test_baseline_load_rejects_wrong_version_and_bad_entries(tmp_path):
    p = tmp_path / "b.json"
    p.write_text(json.dumps({"version": 2, "entries": []}))
    with pytest.raises(ValueError, match="version-1"):
        Baseline.load(p)
    p.write_text(json.dumps({"version": 1, "entries": [{"rule": "X"}]}))
    with pytest.raises(ValueError, match="malformed"):
        Baseline.load(p)


def test_checked_in_baseline_is_valid_and_empty():
    # The healthy steady state: the repo carries no acknowledged debt.
    from pathlib import Path

    repo = Path(__file__).resolve().parent.parent
    bl = Baseline.load(repo / ".repro-baseline.json")
    assert bl.entries == []


# ---------------------------------------------------------------- Finding
def test_finding_str_and_json_round_trip():
    f = _f()
    assert str(f) == "src/a.py:3:0: RPL001 m"
    doc = f.to_json()
    assert doc == {"rule": "RPL001", "path": "src/a.py", "line": 3,
                   "col": 0, "message": "m", "symbol": "fn"}
    assert json.loads(json.dumps(doc)) == doc
