"""Unit and property tests for PR-curve threshold selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import precision_recall_curve, select_threshold


def test_perfect_predictor():
    points = precision_recall_curve([0.9, 0.8, 0.95], [True, True, True])
    for p in points:
        assert p.precision == 1.0
    assert select_threshold(points, 0.99) == 0.0


def test_mixed_predictor_threshold_separates():
    # Correct predictions are confident, incorrect ones are not.
    conf = [0.95, 0.9, 0.92, 0.55, 0.6]
    corr = [True, True, True, False, False]
    points = precision_recall_curve(conf, corr)
    t = select_threshold(points, 0.99)
    assert 0.6 <= t < 0.9
    # Everything above t is correct.
    assert all(c for cf, c in zip(conf, corr) if cf > t)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError, match="align"):
        precision_recall_curve([0.5], [True, False])


def test_fallback_when_unreachable():
    points = precision_recall_curve([0.9, 0.9], [False, False])
    t = select_threshold(points, 0.99)
    # No threshold reaches 99% precision on all-wrong data; the fallback
    # picks the point with the highest precision (all pruned → precision 1.0
    # by convention at the top threshold).
    assert t == max(p.threshold for p in points if p.precision == max(q.precision for q in points))


@given(
    st.lists(
        st.tuples(st.floats(0.0, 1.0), st.booleans()), min_size=2, max_size=40
    )
)
@settings(max_examples=60, deadline=None)
def test_recall_monotone_nonincreasing_in_threshold(data):
    conf = [c for c, _ in data]
    corr = [k for _, k in data]
    points = precision_recall_curve(conf, corr)
    thresholds = [p.threshold for p in points]
    assert thresholds == sorted(thresholds)
    recalls = [p.recall for p in points]
    for a, b in zip(recalls, recalls[1:]):
        assert b <= a + 1e-12


@given(
    st.lists(
        st.tuples(st.floats(0.0, 1.0), st.booleans()), min_size=2, max_size=40
    ),
    st.floats(0.5, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_selected_threshold_meets_target_when_possible(data, target):
    conf = [c for c, _ in data]
    corr = [k for _, k in data]
    points = precision_recall_curve(conf, corr)
    t = select_threshold(points, target)
    reachable = [p for p in points if p.precision >= target]
    if reachable:
        assert any(abs(p.threshold - t) < 1e-12 and p.precision >= target for p in points)
        # Minimality: no smaller qualifying threshold exists.
        for p in reachable:
            assert p.threshold >= t - 1e-12
