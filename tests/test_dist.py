"""Distributed-runtime suite: wire protocol, store, audits, coordinator.

Covers the layers of :mod:`repro.runtime.dist` individually — framing
integrity, seeded backoff, content-addressed unit identity, the
checkpoint/lease store and its doctor audits — plus an end-to-end
two-worker build proving the distributed path reproduces the serial
fingerprint byte-for-byte.  The chaos-side proofs (every network fault
kind, every worker count) live in ``test_chaos.py``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import socket
import sys
from typing import NamedTuple, Optional

import pytest

from repro.cli import build_parser
from repro.runtime import (
    ChaosPlan,
    Coordinator,
    DatasetRuntime,
    DistPolicy,
    ProgressManifest,
    RetryPolicy,
    RuntimeStats,
    audit_dist_store,
    audit_manifests,
    manifest_path,
    run_worker,
    sample_set_fingerprint,
)
from repro.runtime.dist import (
    DistStore,
    FrameError,
    recv_frame,
    recv_frame_poll,
    send_frame,
    unit_identity,
)
from repro.runtime.dist.store import run_hash

SEED = 4242


# ------------------------------------------------------------------- wire
def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_frame_roundtrip_preserves_kind_seq_meta_payload():
    a, b = _pair()
    try:
        send_frame(a, "result", seq=7, meta={"unit": 3}, payload=b"\x00bytes\xff")
        frame = recv_frame(b)
        assert frame.kind == "result"
        assert frame.seq == 7
        assert frame.meta == {"unit": 3}
        assert frame.payload == b"\x00bytes\xff"
    finally:
        a.close()
        b.close()


def test_corrupted_payload_fails_the_digest():
    a, b = _pair()
    relay_a, relay_b = _pair()
    try:
        send_frame(a, "result", payload=b"x" * 64)
        raw = bytearray(b.recv(65536))
        raw[-40] ^= 0xFF  # flip a payload byte; the trailing 32 are the digest
        relay_a.sendall(bytes(raw))
        with pytest.raises(FrameError, match="digest"):
            recv_frame(relay_b)
    finally:
        for s in (a, b, relay_a, relay_b):
            s.close()


def test_truncated_frame_surfaces_as_connection_error():
    a, b = _pair()
    relay_a, relay_b = _pair()
    try:
        send_frame(a, "result", payload=b"y" * 64)
        raw = b.recv(65536)
        relay_a.sendall(raw[: len(raw) // 2])
        relay_a.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_frame(relay_b)
    finally:
        for s in (a, b, relay_b):
            s.close()


def test_recv_frame_poll_idles_without_desync():
    a, b = _pair()
    try:
        assert recv_frame_poll(b, idle_timeout=0.05) is None
        send_frame(a, "beat", meta={"unit": 1})
        frame = recv_frame_poll(b, idle_timeout=0.5)
        assert frame is not None and frame.kind == "beat"
        assert recv_frame_poll(b, idle_timeout=0.05) is None  # stream intact
    finally:
        a.close()
        b.close()


def test_chaos_frame_faults_drop_dup_and_trunc():
    token = ("chunk", "unit", 0)
    # drop: first attempt sends nothing; the retry goes through clean.
    a, b = _pair()
    plan = ChaosPlan(net_drop=1.0, seed=5)
    send_frame(a, "result", chaos=plan, token=token, send_attempt=0)
    assert recv_frame_poll(b, idle_timeout=0.05) is None
    send_frame(a, "result", chaos=plan, token=token, send_attempt=1)
    assert recv_frame(b).kind == "result"
    a.close()
    b.close()

    # dup: the frame arrives twice; both verify.
    a, b = _pair()
    plan = ChaosPlan(net_dup=1.0, seed=5)
    send_frame(a, "result", seq=9, chaos=plan, token=token, send_attempt=0)
    assert recv_frame(b).seq == 9
    assert recv_frame(b).seq == 9
    a.close()
    b.close()

    # trunc: the sender's connection dies loudly; the receiver sees a cut.
    a, b = _pair()
    plan = ChaosPlan(net_trunc=1.0, seed=5)
    with pytest.raises(ConnectionError, match="chaos"):
        send_frame(a, "result", payload=b"z" * 64, chaos=plan,
                   token=token, send_attempt=0)
    with pytest.raises((ConnectionError, FrameError)):
        recv_frame(b)
    a.close()
    b.close()


# ---------------------------------------------------------------- backoff
def test_backoff_is_seeded_deterministic_and_capped():
    policy = RetryPolicy(backoff_base=0.1, backoff_cap=1.0)
    token = ("connect", "w1")
    delays = [policy.backoff_delay(attempt, token) for attempt in (1, 2, 3, 10)]
    assert delays == [policy.backoff_delay(a, token) for a in (1, 2, 3, 10)]
    assert all(d <= 1.0 for d in delays)
    assert all(d >= 0.0 for d in delays)
    # Jitter is token-dependent: a different worker desynchronizes.
    assert policy.backoff_delay(3, token) != policy.backoff_delay(3, ("connect", "w2"))


# --------------------------------------------------------------- identity
class FakeUnit(NamedTuple):
    idx: int
    seed: int
    result_base: Optional[str] = None
    chaos: Optional[ChaosPlan] = None


def test_unit_identity_excludes_execution_only_fields():
    base = FakeUnit(0, 7)
    assert unit_identity(base) == unit_identity(FakeUnit(0, 7, result_base="/tmp/x"))
    assert unit_identity(base) == unit_identity(
        FakeUnit(0, 7, chaos=ChaosPlan(crash=1.0))
    )
    assert unit_identity(base) != unit_identity(FakeUnit(0, 8))
    ids = [unit_identity(u) for u in (FakeUnit(0, 7), FakeUnit(1, 7))]
    assert run_hash("chunk", ids) == run_hash("chunk", ids)
    assert run_hash("chunk", ids) != run_hash("prepare", ids)


# ------------------------------------------------------------------ store
def test_store_resume_ignores_identity_mismatches(tmp_path):
    store = DistStore(tmp_path)
    units = [FakeUnit(i, 7) for i in range(3)]
    ids = [unit_identity(u) for u in units]
    rhash = run_hash("fake", ids)
    store.put_result(rhash, 0, ids[0], "keep")
    store.put_result(rhash, 1, "some-other-identity", "smuggled")
    (store.results / rhash / "u2.pkl").write_bytes(b"torn garbage")
    assert store.load_results(rhash, ids) == {0: "keep"}


def test_dist_store_audit_flags_and_fixes(tmp_path):
    store = DistStore(tmp_path)
    dead_pid = 2**22 + 12345  # beyond default pid_max: never alive

    # Stale lease: recorded owner is dead.
    store.write_lease("r-u0-a0", {"wid": "w1", "unit": 0, "run": "r"})
    lease = store.leases / "r-u0-a0.json"
    doc = json.loads(lease.read_text())
    doc["pid"] = dead_pid
    lease.write_text(json.dumps(doc))

    # Orphaned results: a results dir whose marker is gone.
    store.put_result("orphan", 0, "id", "desc")

    # Stale marker: dead pid, nothing to resume.
    store.write_marker("stale", {"label": "fake", "units": 1})
    marker = store.runs / "stale.json"
    doc = json.loads(marker.read_text())
    doc["pid"] = dead_pid
    marker.write_text(json.dumps(doc))

    # Resume state: dead pid but results present — NOT a problem.
    store.write_marker("resume", {"label": "fake", "units": 1})
    rdoc = json.loads((store.runs / "resume.json").read_text())
    rdoc["pid"] = dead_pid
    (store.runs / "resume.json").write_text(json.dumps(rdoc))
    store.put_result("resume", 0, "id", "desc")

    health = audit_dist_store(tmp_path)
    assert health.stale_leases == ("leases/r-u0-a0.json",)
    assert health.orphaned_results == ("results/orphan/",)
    assert health.stale_markers == ("runs/stale.json",)
    assert health.problems == 3

    fixed = audit_dist_store(tmp_path, fix=True)
    assert fixed.problems == 3  # reports what it reaped
    clean = audit_dist_store(tmp_path)
    assert clean.problems == 0
    # The resume pair survived the reap.
    assert (store.runs / "resume.json").is_file()
    assert (store.results / "resume" / "u0.pkl").is_file()


def test_live_coordinator_store_state_is_healthy(tmp_path):
    store = DistStore(tmp_path)
    store.write_lease("r-u0-a0", {"wid": "w1", "unit": 0, "run": "r"})
    store.write_marker("r", {"label": "fake", "units": 1})
    store.put_result("r", 0, "id", "desc")
    assert audit_dist_store(tmp_path).problems == 0  # our own pid is alive


# ------------------------------------------------------- manifest audit
def test_audit_manifests_flags_only_unmatchable_files(tmp_path):
    run_key = {"scale": "tiny", "samples": 4}
    manifest = ProgressManifest(
        manifest_path(tmp_path, "tables", run_key), run_key, name="tables"
    )
    manifest.mark_done("table3")
    assert audit_manifests(tmp_path) == []

    mdir = tmp_path / "manifests"
    good = manifest_path(tmp_path, "tables", run_key)
    # Renamed file: its recorded run key no longer derives its filename.
    renamed = mdir / "tables-0000000000000000.json"
    renamed.write_text(good.read_text())
    # Legacy format-1 manifest: nothing can verify it.
    (mdir / "tables-1111111111111111.json").write_text(
        json.dumps({"format": 1, "run_key_hash": "x", "stages": {}})
    )
    # Torn file.
    (mdir / "tables-2222222222222222.json").write_text("{not json")

    problems = dict(audit_manifests(tmp_path))
    assert good.name not in problems
    assert "filename" in problems["tables-0000000000000000.json"]
    assert "legacy" in problems["tables-1111111111111111.json"]
    assert "unreadable" in problems["tables-2222222222222222.json"]

    audit_manifests(tmp_path, fix=True)
    assert audit_manifests(tmp_path) == []
    assert good.is_file()  # the verifying manifest is never touched


# ------------------------------------------------- coordinator (no workers)
_FAST = DistPolicy(heartbeat_s=0.2, lease_timeout_s=1.0, poll_s=0.05,
                   fallback_after_s=0.3, ack_timeout_s=0.5)


def _fake_fn(task):
    unit, _attempt = task
    return ("obj", unit.idx * unit.idx)


def test_coordinator_falls_back_locally_and_cleans_its_store(tmp_path):
    stats = RuntimeStats()
    units = [FakeUnit(i, 7) for i in range(3)]
    with Coordinator(workers=1, policy=_FAST, retry=RetryPolicy(),
                     stats=stats, store_dir=tmp_path) as coord:
        out = coord.run_units(units, _fake_fn, label="fake")
    assert out == [("obj", 0), ("obj", 1), ("obj", 4)]
    assert stats.counters.get("dist.fallback_units", 0) == 3
    # Success cleanup: no markers, results, or leases left behind.
    assert audit_dist_store(tmp_path).problems == 0
    store = DistStore(tmp_path)
    assert not list(store.runs.glob("*.json"))
    assert not (store.results / run_hash(
        "fake", [unit_identity(u) for u in units]
    )).exists()


def test_coordinator_preloads_interrupted_results_from_store(tmp_path):
    units = [FakeUnit(i, 7) for i in range(3)]
    ids = [unit_identity(u) for u in units]
    rhash = run_hash("fake", ids)
    # Simulate a coordinator that died after completing unit 1.
    store = DistStore(tmp_path)
    store.write_marker(rhash, {"label": "fake", "units": 3})
    store.put_result(rhash, 1, ids[1], ("obj", "resumed"))

    stats = RuntimeStats()
    with Coordinator(workers=1, policy=_FAST, retry=RetryPolicy(),
                     stats=stats, store_dir=tmp_path) as coord:
        out = coord.run_units(units, _fake_fn, label="fake")
    # The preloaded descriptor is used verbatim; the rest ran locally.
    assert out == [("obj", 0), ("obj", "resumed"), ("obj", 4)]
    assert stats.counters.get("dist.resumed_units", 0) == 1
    assert stats.counters.get("dist.fallback_units", 0) == 2


def test_coordinator_rejects_overlapping_batches():
    with Coordinator(workers=1, policy=_FAST, retry=RetryPolicy()) as coord:
        with coord._cond:
            coord._batch_seq += 1
            from repro.runtime.dist.coordinator import _Batch

            coord._batch = _Batch("fake", [FakeUnit(0, 7)], ["id"], "r", 1)
        with pytest.raises(RuntimeError, match="active batch"):
            coord.run_units([FakeUnit(1, 7)], _fake_fn, label="fake")
        with coord._cond:
            coord._batch = None


# --------------------------------------------------------- end to end
def _worker_entry(port):
    sys.exit(run_worker(f"127.0.0.1:{port}", max_reconnects=5))


def test_two_worker_build_is_byte_identical_to_serial(prepared):
    serial = DatasetRuntime(workers=1).build_dataset(prepared, "bypass", 48, SEED)
    fp_serial = sample_set_fingerprint(serial)

    ctx = mp.get_context("fork")
    stats = RuntimeStats()
    coord = Coordinator(workers=2, policy=_FAST, retry=RetryPolicy(), stats=stats)
    procs = [ctx.Process(target=_worker_entry, args=(coord.address[1],))
             for _ in range(2)]
    for p in procs:
        p.start()
    try:
        rt = DatasetRuntime(workers=2, dist=coord, stats=stats)
        built = rt.build_dataset(prepared, "bypass", 48, SEED)
        assert sample_set_fingerprint(built) == fp_serial
    finally:
        coord.close()
        for p in procs:
            p.join(timeout=15)
            if p.is_alive():  # pragma: no cover - hung worker
                p.terminate()
    assert stats.counters.get("dist.results_remote", 0) >= 1
    assert stats.counters.get("dist.workers_seen", 0) == 2
    # Coordinator shutdown is a clean exit for workers, not an error.
    assert [p.exitcode for p in procs] == [0, 0]


# -------------------------------------------------------------------- CLI
def test_cli_parses_coordinator_and_worker_commands():
    args = build_parser().parse_args(
        ["coordinator", "--scale", "tiny", "--samples", "4", "--port", "9100",
         "--lease-timeout", "5", "--fallback-after", "2"]
    )
    assert args.command == "coordinator"
    assert args.port == 9100 and args.lease_timeout == 5.0

    args = build_parser().parse_args(
        ["worker", "--connect", "127.0.0.1:9100", "--max-reconnects", "3"]
    )
    assert args.command == "worker"
    assert args.connect == "127.0.0.1:9100" and args.max_reconnects == 3

    with pytest.raises(SystemExit):
        build_parser().parse_args(["worker"])  # --connect is required
