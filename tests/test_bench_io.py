"""Unit tests for the ISCAS-89 .bench reader/writer."""

import numpy as np
import pytest

from repro.netlist import check, dumps_bench, loads_bench, toy_netlist
from repro.sim import CompiledSimulator

S27 = """
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
"""


def test_parse_s27():
    nl = loads_bench(S27, name="s27")
    assert nl.n_flops == 3
    assert len(nl.primary_inputs) == 4
    assert len(nl.primary_outputs) == 1
    assert nl.n_gates == 10
    assert check(nl) == []


def test_s27_functional_spot_check():
    """G17 = NOT(G11) with G11 = NOR(G5, G9): all-zero state, specific PIs."""
    nl = loads_bench(S27, name="s27")
    sim = CompiledSimulator(nl)
    # inputs: G0..G3 then flop Qs G5, G6, G7.
    vec = np.array([[0], [0], [0], [0], [0], [0], [0]], dtype=np.uint8)
    vals = sim.simulate(vec)
    g17 = nl.primary_outputs[0]
    # Hand-evaluate: G14=1, G8=0, G12=1, G15=1, G16=0, G9=1, G11=NOR(0,1)=0,
    # G17=NOT(0)=1.
    assert vals[g17][0] == 1


def test_roundtrip_preserves_function(toy):
    text = dumps_bench(toy)
    nl = loads_bench(text)
    rng = np.random.default_rng(0)
    inputs = rng.integers(0, 2, size=(len(toy.comb_inputs), 32), dtype=np.uint8)
    va = CompiledSimulator(toy).simulate(inputs)
    vb = CompiledSimulator(nl).simulate(inputs)
    for oa, ob in zip(toy.observed_nets, nl.observed_nets):
        assert np.array_equal(va[oa], vb[ob])


def test_wide_gate_decomposed():
    text = """
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
y = NAND(a, b, c, d, e)
"""
    nl = loads_bench(text)
    assert check(nl) == []
    sim = CompiledSimulator(nl)
    ones = np.ones((5, 1), dtype=np.uint8)
    assert sim.simulate(ones)[nl.primary_outputs[0]][0] == 0
    ones[2, 0] = 0
    assert sim.simulate(ones)[nl.primary_outputs[0]][0] == 1


def test_unknown_operator_rejected():
    with pytest.raises(ValueError, match="unknown .bench operator"):
        loads_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n")


def test_undriven_output_rejected():
    with pytest.raises(ValueError, match="undriven"):
        loads_bench("INPUT(a)\nOUTPUT(y)\n")


def test_unparseable_line_rejected():
    with pytest.raises(ValueError, match="unparseable"):
        loads_bench("INPUT(a)\nwhat is this\n")


def test_export_rejects_complex_cells(small_netlist):
    # Generated designs contain MUX2/AOI21 which .bench cannot express.
    from repro.synth import resynthesize

    with pytest.raises(ValueError, match="no .bench equivalent"):
        dumps_bench(small_netlist)
    flat = resynthesize(small_netlist, seed=0, rewrite_probability=1.0)
    text = dumps_bench(flat)  # after full rewrite it must export cleanly
    assert "NAND" in text or "AND" in text
