"""Unit and property tests for the Fig. 3 back-tracing algorithm."""

import numpy as np
import pytest

from repro.core import backtrace
from repro.m3d import DefectSampler
from repro.tester import FailureLog, InjectionCampaign


@pytest.fixture(scope="module", params=["bypass", "compacted"])
def traced(request, prepared):
    mode = request.param
    obsmap = prepared.obsmap(mode)
    sampler = DefectSampler(prepared.nl, prepared.mivs, seed=31)
    campaign = InjectionCampaign(prepared.machine, prepared.good, obsmap, sampler)
    samples = campaign.single_fault_samples(30)
    return prepared, obsmap, samples


def test_truth_node_always_in_candidates(traced):
    """Fig. 3 soundness: the injected site's node survives back-tracing."""
    prepared, obsmap, samples = traced
    for s in samples:
        mask = backtrace(prepared.het, obsmap, s.log)
        v = prepared.het.node_of_site(s.faults[0].site)
        assert v is not None
        assert mask[v], f"missed {s.faults[0].label}"


def test_candidates_transition_under_failing_patterns(traced):
    prepared, obsmap, samples = traced
    het = prepared.het
    for s in samples[:10]:
        mask = backtrace(het, obsmap, s.log)
        for p in s.log.failing_patterns:
            trans = het.node_transitions(p)
            assert np.all(trans[mask]), "candidate without transition survived"


def test_candidates_in_every_failing_cone(traced):
    prepared, obsmap, samples = traced
    het = prepared.het
    for s in samples[:10]:
        mask = backtrace(het, obsmap, s.log)
        for entry in s.log.entries:
            tops = [
                het.topnode_of_net[n]
                for n in obsmap.observations[entry.observation].nets
                if n in het.topnode_of_net
            ]
            union = np.zeros(het.n_nodes, dtype=bool)
            for t in tops:
                union |= het.cone_mask[t]
            assert np.all(union[mask])


def test_empty_log_empty_mask(prepared):
    obsmap = prepared.obsmap("bypass")
    mask = backtrace(prepared.het, obsmap, FailureLog(entries=[]))
    assert not mask.any()


def test_multi_fault_fallback_nonempty(prepared):
    """Multi-fault chips may empty the strict intersection; the fallback
    must still produce candidates."""
    obsmap = prepared.obsmap("bypass")
    sampler = DefectSampler(prepared.nl, prepared.mivs, seed=32)
    campaign = InjectionCampaign(prepared.machine, prepared.good, obsmap, sampler)
    for s in campaign.multi_fault_samples(10):
        mask = backtrace(prepared.het, obsmap, s.log)
        assert mask.any()


def test_subgraph_smaller_than_graph(traced):
    prepared, obsmap, samples = traced
    sizes = [int(backtrace(prepared.het, obsmap, s.log).sum()) for s in samples]
    assert max(sizes) < prepared.het.n_nodes
    assert min(sizes) >= 1
