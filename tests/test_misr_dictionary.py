"""Unit tests for MISR compaction and fault-dictionary diagnosis."""

import numpy as np
import pytest

from repro.dft import ObservationMap, build_scan_chains
from repro.diagnosis import FaultDictionary, first_hit_index, report_is_accurate
from repro.data import build_dataset
from repro.tester import FailureLog


class TestMisr:
    def test_one_signature_observation(self, prepared):
        om = prepared.obsmap("misr")
        misr_obs = [o for o in om.observations if o.kind == "misr"]
        assert len(misr_obs) == 1
        assert misr_obs[0].combine == "or"
        assert set(misr_obs[0].nets) == {f.d_net for f in prepared.nl.flops}

    def test_or_combine_no_aliasing(self, prepared):
        """Unlike XOR, an even number of differing flops still fails."""
        om = prepared.obsmap("misr")
        misr_obs = next(o for o in om.observations if o.kind == "misr")
        d0, d1 = misr_obs.nets[0], misr_obs.nets[1]
        mask = np.array([True, False])
        fails = om.fail_masks({d0: mask, d1: mask})
        assert misr_obs.id in fails
        assert fails[misr_obs.id].tolist() == [True, False]
        # The XOR-compacted map aliases the same double difference when the
        # two flops share a channel position; the OR map never does.

    def test_misr_dataset_and_backtrace(self, prepared):
        ds = build_dataset(prepared, "misr", 15, seed=81)
        assert len(ds) > 0
        # MISR logs carry less information: the back-traced sub-graphs are
        # at least as large (on average) as in bypass mode.
        ds_b = build_dataset(prepared, "bypass", 15, seed=81)
        mean_misr = np.mean([g.n_nodes for g in ds.graphs])
        mean_bypass = np.mean([g.n_nodes for g in ds_b.graphs])
        assert mean_misr >= mean_bypass * 0.8


class TestFaultDictionary:
    @pytest.fixture(scope="class")
    def dictionary(self, prepared):
        return FaultDictionary(
            prepared.nl,
            prepared.obsmap("bypass"),
            prepared.patterns,
            mivs=prepared.mivs,
            sim=prepared.sim,
        )

    def test_entries_and_size(self, dictionary):
        assert len(dictionary) > 100
        assert dictionary.size_bytes() > 0

    def test_exact_match_single_fault(self, dictionary, prepared):
        ds = build_dataset(prepared, "bypass", 20, seed=82)
        hits = 0
        for item in ds.items:
            rep = dictionary.diagnose(item.sample.log)
            hits += report_is_accurate(rep, item.faults)
        assert hits >= len(ds.items) - 1

    def test_perfect_signature_ranks_first(self, dictionary, prepared):
        ds = build_dataset(prepared, "bypass", 10, seed=83)
        for item in ds.items:
            rep = dictionary.diagnose(item.sample.log)
            assert rep.resolution >= 1
            assert rep.candidates[0].score == pytest.approx(1.0)

    def test_empty_log(self, dictionary):
        assert dictionary.diagnose(FailureLog(entries=[])).resolution == 0

    def test_polarities_collapsed(self, dictionary, prepared):
        ds = build_dataset(prepared, "bypass", 5, seed=84)
        rep = dictionary.diagnose(ds.items[0].sample.log)
        keys = [
            (c.site.kind, c.site.net, c.site.sinks, c.site.miv_id)
            for c in rep.candidates
        ]
        assert len(keys) == len(set(keys))
