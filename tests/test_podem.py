"""Unit tests for the PODEM deterministic test generator."""

import numpy as np
import pytest

from repro.atpg import Fault, Podem, Polarity, stem_site
from repro.netlist import GeneratorSpec, NetlistBuilder, generate
from repro.sim import CompiledSimulator, FaultMachine


@pytest.fixture(scope="module")
def design():
    return generate(GeneratorSpec("pd", "leon3mp_like", 150, 20, 10, 10, seed=9))


@pytest.fixture(scope="module")
def podem(design):
    return Podem(design)


def _verify_stuck_at(nl, net, stuck, assignment):
    """Simulate the assignment and check the fault is observed."""
    sim = CompiledSimulator(nl)
    rng = np.random.default_rng(7)
    vec = rng.integers(0, 2, size=(len(nl.comb_inputs), 1), dtype=np.uint8)
    for i, n in enumerate(nl.comb_inputs):
        if n in assignment:
            vec[i, 0] = assignment[n]
    good = sim.simulate(vec)
    # Faulty machine: force `net` to the stuck value.
    faulty_val = np.full(1, stuck, dtype=np.uint8)
    sinks = nl.nets[net].sinks
    override = {(g, p): faulty_val for g, p in sinks}
    modified = sim.resimulate_with_overrides(good, [g for g, _ in sinks], override)
    for obs in nl.observed_nets:
        if obs == net and good[net][0] != stuck:
            return True
        if obs in modified and modified[obs][0] != good[obs][0]:
            return True
    return False


def test_stuck_at_generation_verified(design, podem):
    rng = np.random.default_rng(0)
    successes = 0
    for _ in range(20):
        net = int(rng.integers(0, design.n_nets))
        stuck = int(rng.integers(0, 2))
        res = podem.generate_stuck_at(net, stuck)
        if res.success:
            successes += 1
            assert _verify_stuck_at(design, net, stuck, res.assignment)
    assert successes >= 15


def test_justify(design, podem):
    sim = CompiledSimulator(design)
    rng = np.random.default_rng(1)
    for _ in range(10):
        net = int(rng.integers(0, design.n_nets))
        value = int(rng.integers(0, 2))
        res = podem.justify(net, value)
        if not res.success:
            continue
        vec = rng.integers(0, 2, size=(len(design.comb_inputs), 1), dtype=np.uint8)
        for i, n in enumerate(design.comb_inputs):
            if n in res.assignment:
                vec[i, 0] = res.assignment[n]
        assert sim.simulate(vec)[net][0] == value


def test_tdf_pair_detects(design, podem):
    sim = CompiledSimulator(design)
    machine = FaultMachine(sim)
    rng = np.random.default_rng(2)
    generated = detected = 0
    for trial in range(15):
        net = int(rng.integers(0, design.n_nets))
        pol = Polarity.SLOW_TO_RISE if rng.random() < 0.5 else Polarity.SLOW_TO_FALL
        fault = Fault(stem_site(design, net), pol)
        pair = podem.generate_tdf_pair(fault, seed=trial)
        if pair is None:
            continue
        generated += 1
        v1, v2 = pair
        good = sim.simulate_pair(v1[:, None], v2[:, None])
        detected += int(machine.detects(fault, good).any())
    assert generated >= 10
    assert detected == generated  # PODEM never emits a non-detecting pair


def test_redundant_fault_terminates():
    """x AND NOT(x) is constant 0: s-a-0 at the AND output is redundant."""
    b = NetlistBuilder("red")
    a = b.add_primary_input("a")
    na = b.add_gate("INV", [a])
    y = b.add_gate("AND2", [a, na])
    out = b.add_gate("BUF", [y])
    b.mark_primary_output(out)
    nl = b.finish()
    podem = Podem(nl, max_backtracks=50)
    res = podem.generate_stuck_at(y, 0)
    assert not res.success  # cannot activate a 1 on a constant-0 net


def test_backtrack_budget_respected(design):
    podem = Podem(design, max_backtracks=1)
    rng = np.random.default_rng(3)
    for _ in range(5):
        net = int(rng.integers(0, design.n_nets))
        res = podem.generate_stuck_at(net, 0)
        assert res.backtracks <= 2  # budget + the final counted attempt
