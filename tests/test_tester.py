"""Unit tests for failure logs and injection campaigns."""

import numpy as np
import pytest

from repro.dft import ObservationMap, build_scan_chains
from repro.m3d import DefectSampler, extract_mivs
from repro.tester import FailEntry, FailureLog, InjectionCampaign


@pytest.fixture
def campaign(prepared):
    obsmap = prepared.obsmap("bypass")
    sampler = DefectSampler(prepared.nl, prepared.mivs, seed=11)
    return InjectionCampaign(prepared.machine, prepared.good, obsmap, sampler)


class TestFailureLog:
    def test_from_detections_sorted(self, prepared):
        obsmap = prepared.obsmap("bypass")
        d0 = prepared.nl.flops[0].d_net
        n_pat = prepared.good.n_patterns
        mask = np.zeros(n_pat, dtype=bool)
        mask[[3, 1]] = True
        log = FailureLog.from_detections(obsmap, {d0: mask})
        assert [e.pattern for e in log.entries] == [1, 3]
        assert log.failing_patterns == [1, 3]

    def test_by_pattern(self):
        log = FailureLog(entries=[FailEntry(0, 1), FailEntry(0, 2), FailEntry(3, 1)])
        assert log.by_pattern() == {0: [1, 2], 3: [1]}
        assert log.observations_of_pattern(0) == [1, 2]

    def test_len_iter(self):
        log = FailureLog(entries=[FailEntry(0, 1)])
        assert len(log) == 1
        assert list(log) == [FailEntry(0, 1)]


class TestInjectionCampaign:
    def test_single_fault_samples(self, campaign):
        samples = campaign.single_fault_samples(10)
        assert len(samples) == 10
        for s in samples:
            assert len(s.faults) == 1
            assert len(s.log) > 0
            assert not s.log.compacted

    def test_miv_fraction_zero_means_gate_faults(self, campaign):
        samples = campaign.single_fault_samples(10, miv_fraction=0.0)
        assert all(s.faults[0].site.kind != "miv" for s in samples)

    def test_miv_samples_all_miv(self, campaign):
        samples = campaign.miv_fault_samples(5)
        assert len(samples) == 5
        assert all(s.faults[0].site.kind == "miv" for s in samples)

    def test_multi_fault_cluster_sizes(self, campaign):
        samples = campaign.multi_fault_samples(5)
        for s in samples:
            assert 2 <= len(s.faults) <= 5
            assert len(s.log) > 0

    def test_compacted_logs_flagged(self, prepared):
        obsmap = prepared.obsmap("compacted")
        sampler = DefectSampler(prepared.nl, prepared.mivs, seed=12)
        camp = InjectionCampaign(prepared.machine, prepared.good, obsmap, sampler)
        samples = camp.single_fault_samples(5)
        assert all(s.log.compacted for s in samples)

    def test_deterministic(self, prepared):
        def make():
            obsmap = prepared.obsmap("bypass")
            sampler = DefectSampler(prepared.nl, prepared.mivs, seed=42)
            camp = InjectionCampaign(prepared.machine, prepared.good, obsmap, sampler)
            return camp.single_fault_samples(8)

        a, b = make(), make()
        assert [s.faults[0].label for s in a] == [s.faults[0].label for s in b]
        assert [len(s.log) for s in a] == [len(s.log) for s in b]
