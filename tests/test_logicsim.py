"""Unit and property tests for the bit-parallel logic simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import NetlistBuilder, toy_netlist
from repro.sim import CompiledSimulator


def _toy_reference(v):
    """Direct evaluation of the toy netlist: v = (pi0..pi3, q0)."""
    pi0, pi1, pi2, pi3, q0 = v
    n0 = 1 - (pi0 & pi1)
    n1 = 1 - (pi2 & pi3)
    n2 = 1 - (n0 & n1)
    n3 = 1 - (n1 & q0)
    n4 = n3 ^ q0
    return n2, n4


@given(st.lists(st.integers(0, 1), min_size=5, max_size=5))
@settings(max_examples=64, deadline=None)
def test_toy_matches_reference(bits):
    toy = toy_netlist()
    sim = CompiledSimulator(toy)
    inputs = np.array(bits, dtype=np.uint8)[:, None]
    values = sim.simulate(inputs)
    po, dnet = toy.observed_nets
    exp_po, exp_d = _toy_reference(bits)
    assert values[po][0] == exp_po
    assert values[dnet][0] == exp_d


def test_simulate_shape_check(toy):
    sim = CompiledSimulator(toy)
    with pytest.raises(ValueError, match="expected inputs"):
        sim.simulate(np.zeros((3, 4), dtype=np.uint8))


def test_pattern_parallelism_consistent(toy):
    """Simulating N patterns at once equals N single-pattern runs."""
    sim = CompiledSimulator(toy)
    rng = np.random.default_rng(1)
    block = rng.integers(0, 2, size=(5, 32), dtype=np.uint8)
    full = sim.simulate(block)
    for j in range(32):
        single = sim.simulate(block[:, j : j + 1])
        assert np.array_equal(full[:, j], single[:, 0])


def test_de_morgan_equivalence():
    """NAND(a,b) == OR(INV a, INV b) on random patterns."""
    b = NetlistBuilder("dm")
    a = b.add_primary_input("a")
    c = b.add_primary_input("b")
    nand = b.add_gate("NAND2", [a, c])
    ia = b.add_gate("INV", [a])
    ic = b.add_gate("INV", [c])
    orr = b.add_gate("OR2", [ia, ic])
    b.mark_primary_output(nand)
    b.mark_primary_output(orr)
    nl = b.finish()
    sim = CompiledSimulator(nl)
    rng = np.random.default_rng(2)
    vals = sim.simulate(rng.integers(0, 2, size=(2, 64), dtype=np.uint8))
    assert np.array_equal(vals[nand], vals[orr])


def test_double_inversion_identity():
    b = NetlistBuilder("ii")
    a = b.add_primary_input("a")
    x = b.add_gate("INV", [a])
    y = b.add_gate("INV", [x])
    b.mark_primary_output(y)
    nl = b.finish()
    sim = CompiledSimulator(nl)
    rng = np.random.default_rng(3)
    inp = rng.integers(0, 2, size=(1, 64), dtype=np.uint8)
    assert np.array_equal(sim.simulate(inp)[y], inp[0])


def test_two_pattern_result_transitions(toy):
    sim = CompiledSimulator(toy)
    v1 = np.zeros((5, 1), dtype=np.uint8)
    v2 = np.ones((5, 1), dtype=np.uint8)
    res = sim.simulate_pair(v1, v2)
    trans = res.transitions()
    rising = res.rising()
    falling = res.falling()
    assert np.array_equal(trans, rising | falling)
    assert not (rising & falling).any()
    # PIs all rise.
    for pi in toy.primary_inputs:
        assert rising[pi, 0]


def test_resimulate_with_overrides_matches_full_sim(toy):
    """Overriding an input net equals simulating the flipped input."""
    sim = CompiledSimulator(toy)
    rng = np.random.default_rng(4)
    base_in = rng.integers(0, 2, size=(5, 8), dtype=np.uint8)
    base = sim.simulate(base_in)
    flipped_in = base_in.copy()
    flipped_in[0] ^= 1  # flip pi0 everywhere
    full = sim.simulate(flipped_in)

    pi0 = toy.primary_inputs[0]
    sinks = toy.nets[pi0].sinks
    start = [g for g, _p in sinks]
    override = {(g, p): flipped_in[0] for g, p in sinks}
    modified = sim.resimulate_with_overrides(base, start, override)
    for net in range(toy.n_nets):
        if net == pi0:
            continue
        expected = full[net]
        got = modified.get(net, base[net])
        assert np.array_equal(got, expected), f"net {net}"
