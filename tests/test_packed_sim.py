"""Differential tests: packed engine vs. the uint8 reference engine.

Every behavior of the bit-packed engine — net values, transition masks,
single- and multi-fault propagation — must be *bitwise identical* to the
uint8 reference (``CompiledSimulator(nl, packed=False)``), including when
the pattern count is not a multiple of 64 (tail-word masking).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg import Fault, Polarity, enumerate_faults
from repro.netlist import GeneratorSpec, generate, toy_netlist
from repro.netlist.cells import CellType, packed_eval, packed_expr, cell
from repro.netlist.topology import sort_gates_topologically
from repro.sim import CompiledSimulator, FaultMachine
from repro.sim.bitpack import pack_patterns, unpack_patterns, rows_to_ints, int_to_bits

# Pattern counts straddling word boundaries: tiny, sub-word, exact words,
# and ragged tails.
PATTERN_COUNTS = (1, 37, 64, 100, 130)


def _random_pair(nl, n_patterns, seed):
    rng = np.random.default_rng(seed)
    n_in = len(nl.comb_inputs)
    v1 = rng.integers(0, 2, size=(n_in, n_patterns), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(n_in, n_patterns), dtype=np.uint8)
    return v1, v2


def _engines(nl):
    return CompiledSimulator(nl, packed=True), CompiledSimulator(nl, packed=False)


@pytest.fixture(scope="module", params=[("aes_like", 3), ("tate_like", 5), ("netcard_like", 9)])
def design(request):
    flavor, seed = request.param
    return generate(GeneratorSpec(f"diff_{flavor}", flavor, 150, 16, 10, 10, seed=seed))


# ----------------------------------------------------------------- bitpack
def test_pack_unpack_roundtrip():
    rng = np.random.default_rng(0)
    for n in PATTERN_COUNTS:
        vals = rng.integers(0, 2, size=(7, n), dtype=np.uint8)
        packed = pack_patterns(vals)
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_patterns(packed, n), vals)
        # Big-int rows agree bit-for-bit with the word rows.
        for row_int, row in zip(rows_to_ints(packed), vals):
            assert np.array_equal(int_to_bits(row_int, n), row)


# ------------------------------------------------------------- good machine
@pytest.mark.parametrize("n_patterns", PATTERN_COUNTS)
def test_net_values_bitwise_identical(design, n_patterns):
    simP, simU = _engines(design)
    v1, v2 = _random_pair(design, n_patterns, seed=n_patterns)
    assert np.array_equal(simP.simulate(v1), simU.simulate(v1))
    goodP = simP.simulate_pair(v1, v2)
    goodU = simU.simulate_pair(v1, v2)
    assert goodP.is_packed and not goodU.is_packed
    assert np.array_equal(goodP.v1, goodU.v1)
    assert np.array_equal(goodP.v2, goodU.v2)


@pytest.mark.parametrize("n_patterns", (37, 100))
def test_transition_masks_identical(design, n_patterns):
    simP, simU = _engines(design)
    v1, v2 = _random_pair(design, n_patterns, seed=41)
    goodP = simP.simulate_pair(v1, v2)
    goodU = simU.simulate_pair(v1, v2)
    assert np.array_equal(goodP.transitions(), goodU.transitions())
    assert np.array_equal(goodP.rising(), goodU.rising())
    assert np.array_equal(goodP.falling(), goodU.falling())
    # The packed mask words unpack to the boolean masks (tails are zero for
    # transitions since V1/V2 of a net share tail bits).
    assert np.array_equal(
        unpack_patterns(goodP.transitions_packed(), n_patterns).astype(bool),
        goodU.transitions(),
    )


def test_subset_stays_packed_and_identical(design):
    simP, simU = _engines(design)
    v1, v2 = _random_pair(design, 100, seed=8)
    goodP = simP.simulate_pair(v1, v2)
    goodU = simU.simulate_pair(v1, v2)
    cols = np.array([0, 3, 5, 66, 99])
    subP, subU = goodP.subset(cols), goodU.subset(cols)
    assert subP.is_packed and not subU.is_packed
    assert np.array_equal(subP.v1, subU.v1)
    assert np.array_equal(subP.v2, subU.v2)
    # Subsets must propagate identically too.
    fmP, fmU = FaultMachine(simP), FaultMachine(simU)
    for fault in enumerate_faults(design)[:40]:
        assert _same_detections(fmP.propagate(fault, subP), fmU.propagate(fault, subU))


# -------------------------------------------------------------- propagation
def _same_detections(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


@pytest.mark.parametrize("n_patterns", PATTERN_COUNTS)
def test_propagate_detection_maps_identical(design, n_patterns):
    simP, simU = _engines(design)
    v1, v2 = _random_pair(design, n_patterns, seed=17)
    goodP = simP.simulate_pair(v1, v2)
    goodU = simU.simulate_pair(v1, v2)
    fmP, fmU = FaultMachine(simP), FaultMachine(simU)
    for fault in enumerate_faults(design):
        dP = fmP.propagate(fault, goodP)
        dU = fmU.propagate(fault, goodU)
        assert _same_detections(dP, dU), f"mismatch for {fault}"
        assert np.array_equal(fmP.detects(fault, goodP), fmU.detects(fault, goodU))


@pytest.mark.parametrize("n_patterns", (37, 128))
def test_propagate_multi_identical(design, n_patterns):
    simP, simU = _engines(design)
    v1, v2 = _random_pair(design, n_patterns, seed=23)
    goodP = simP.simulate_pair(v1, v2)
    goodU = simU.simulate_pair(v1, v2)
    fmP, fmU = FaultMachine(simP), FaultMachine(simU)
    faults = enumerate_faults(design)
    rng = np.random.default_rng(5)
    for _ in range(25):
        k = int(rng.integers(2, 6))
        group = [faults[i] for i in rng.choice(len(faults), size=k, replace=False)]
        assert _same_detections(
            fmP.propagate_multi(group, goodP), fmU.propagate_multi(group, goodU)
        )


def test_codegen_kernel_fallback_for_custom_cell():
    """A cell outside the library exercises the truth-table + kernel path."""
    nl = toy_netlist()
    # Clone NAND2 under a custom name with no hand-written packed kernel:
    # packed_eval must derive it and the cone codegen must call it (no
    # inline template exists for it).
    nand2 = cell("NAND2")
    custom = CellType(name="CUSTOM_NAND2", n_inputs=2, func=nand2.func)
    assert packed_expr(custom, ["a", "b"]) is None
    for g in nl.gates:
        if g.cell.name == "NAND2":
            g.cell = custom
    simP, simU = _engines(nl)
    v1, v2 = _random_pair(nl, 70, seed=2)
    goodP = simP.simulate_pair(v1, v2)
    goodU = simU.simulate_pair(v1, v2)
    assert np.array_equal(goodP.v1, goodU.v1)
    fmP, fmU = FaultMachine(simP), FaultMachine(simU)
    for fault in enumerate_faults(nl):
        assert _same_detections(fmP.propagate(fault, goodP), fmU.propagate(fault, goodU))


def test_derived_packed_kernel_matches_truth_table():
    """Truth-table derivation reproduces every library cell's kernel."""
    import itertools

    from repro.netlist.cells import CELL_LIBRARY, _truth_table_packed

    for ct in CELL_LIBRARY.values():
        derived = _truth_table_packed(ct.func, ct.n_inputs)
        native = packed_eval(ct)
        full = (1 << 8) - 1
        for bits in itertools.product((0, 0xA5, 0x3C, full), repeat=ct.n_inputs):
            assert derived(list(bits), full) & full == native(list(bits), full) & full


# ------------------------------------------------------ caching / topo sort
def test_topo_position_cache_and_invalidation(design):
    pos = design.topo_position()
    order = design.topo_order()
    assert [pos[g] for g in order] == list(range(design.n_gates))
    assert design.topo_position() is pos  # cached
    design.invalidate()
    pos2 = design.topo_position()
    assert pos2 is not pos and pos2 == pos  # recomputed, same content


def test_sort_gates_topologically_matches_order(design):
    rng = np.random.default_rng(11)
    gids = list(rng.choice(design.n_gates, size=30, replace=False))
    ordered = sort_gates_topologically(design, gids)
    pos = design.topo_position()
    assert ordered == sorted(gids, key=pos.__getitem__)
    assert sorted(ordered) == sorted(gids)


def test_cone_and_plan_memoization(design):
    sim = CompiledSimulator(design)
    starts = [g.id for g in design.gates[:3]]
    cone1 = sim.fanout_cone(starts)
    cone2 = sim.fanout_cone(list(reversed(starts)))  # order-insensitive key
    assert cone1 is cone2
    fn1 = sim.propagation_fn(starts)
    fn2 = sim.propagation_fn(tuple(reversed(starts)))
    assert fn1 is fn2


def test_resimulate_packed_matches_uint8_overrides(design):
    """The generic packed cone re-simulation overlays match the uint8 ones."""
    simP, simU = _engines(design)
    v1, v2 = _random_pair(design, 90, seed=31)
    goodP = simP.simulate_pair(v1, v2)
    base_u8 = simU.simulate(v2)
    base_ints = goodP.v2_ints()
    rng = np.random.default_rng(3)
    for gid in rng.choice(design.n_gates, size=10, replace=False):
        g = design.gates[int(gid)]
        flip = rng.integers(0, 2, size=90, dtype=np.uint8)
        ov_u8 = {(g.id, 0): base_u8[g.fanin[0]] ^ flip}
        ov_int = {(g.id, 0): base_ints[g.fanin[0]] ^ rows_to_ints(pack_patterns(flip))[0]}
        mod_u8 = simU.resimulate_with_overrides(base_u8, [g.id], ov_u8)
        mod_int = simP.resimulate_packed(base_ints, [g.id], ov_int, goodP.full_mask)
        assert set(mod_u8) == set(mod_int)
        for net, vals in mod_u8.items():
            assert np.array_equal(int_to_bits(mod_int[net], 90), vals)
