"""Unit tests for the TDF fault universe."""

import pytest

from repro.atpg import (
    Polarity,
    branch_site,
    enumerate_faults,
    enumerate_sites,
    site_tier,
    stem_site,
)
from repro.atpg.faults import FaultSite
from repro.m3d import apply_partition, extract_mivs, miv_fault_sites, mincut_bipartition


def test_stem_site_covers_all_sinks(toy):
    g1 = next(g for g in toy.gates if g.name == "g1")
    site = stem_site(toy, g1.out)
    assert site.kind == "stem"
    assert set(site.sinks) == set(toy.nets[g1.out].sinks)
    assert site.observed_faulty


def test_branch_site_single_sink(toy):
    g2 = next(g for g in toy.gates if g.name == "g2")
    site = branch_site(toy, g2.id, 0)
    assert site.kind == "branch"
    assert site.sinks == ((g2.id, 0),)
    assert not site.observed_faulty
    assert site.net == g2.fanin[0]


def test_bad_kind_rejected():
    with pytest.raises(ValueError, match="bad fault-site kind"):
        FaultSite(kind="weird", net=0, sinks=(), observed_faulty=False)


def test_enumerate_sites_collapses_single_destination(toy):
    sites = enumerate_sites(toy)
    # Single-destination nets must not emit branch sites.
    for net in toy.nets:
        observed = net.id in set(toy.observed_nets)
        n_dest = len(net.sinks) + (1 if observed else 0)
        branches = [
            s for s in sites if s.kind == "branch" and s.net == net.id
        ]
        if n_dest <= 1:
            assert branches == []
        else:
            assert len(branches) == len(net.sinks)


def test_enumerate_faults_both_polarities(toy):
    faults = enumerate_faults(toy)
    sites = enumerate_sites(toy)
    assert len(faults) == 2 * len(sites)
    labels = {f.label for f in faults}
    assert len(labels) == len(faults)


def test_site_tier(toy):
    apply_partition(toy, mincut_bipartition(toy, seed=0))
    g1 = next(g for g in toy.gates if g.name == "g1")
    g3 = next(g for g in toy.gates if g.name == "g3")
    assert site_tier(toy, stem_site(toy, g1.out)) == g1.tier
    assert site_tier(toy, branch_site(toy, g3.id, 0)) == g3.tier
    mivs = extract_mivs(toy)
    for s in miv_fault_sites(toy, mivs):
        assert site_tier(toy, s) is None


def test_fault_label_includes_polarity(toy):
    site = stem_site(toy, toy.gates[0].out)
    from repro.atpg import Fault

    f = Fault(site, Polarity.SLOW_TO_RISE)
    assert f.label.endswith("/STR")
