"""Tests for datalog serialization, equivalence classes, netlist profiles."""

import numpy as np
import pytest

from repro.atpg import Polarity, stem_site
from repro.diagnosis import (
    Candidate,
    DiagnosisReport,
    class_first_hit,
    class_resolution,
    group_candidates,
)
from repro.netlist import format_profile, profile_netlist
from repro.tester import FailEntry, FailureLog, dumps_datalog, loads_datalog


class TestDatalog:
    def test_roundtrip(self, prepared):
        log = FailureLog(
            entries=[FailEntry(3, 1), FailEntry(0, 2)], compacted=True
        )
        text = dumps_datalog(log, chip_id="lot1_die9", obsmap=prepared.obsmap("compacted"))
        chip, parsed = loads_datalog(text, obsmap=prepared.obsmap("compacted"))
        assert chip == "lot1_die9"
        assert parsed.compacted
        assert parsed.entries == sorted(log.entries, key=lambda e: (e.pattern, e.observation))

    def test_roundtrip_without_obsmap(self):
        log = FailureLog(entries=[FailEntry(1, 4)])
        chip, parsed = loads_datalog(dumps_datalog(log))
        assert parsed.entries == log.entries
        assert not parsed.compacted

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="missing header"):
            loads_datalog("CHIP x\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            loads_datalog("# repro failure datalog v1\nFAIL whatever\n")

    def test_label_mismatch_detected(self, prepared):
        obsmap = prepared.obsmap("bypass")
        text = "# repro failure datalog v1\nFAIL pattern=0 obs=WRONG id=1\n"
        with pytest.raises(ValueError, match="label mismatch"):
            loads_datalog(text, obsmap=obsmap)

    def test_out_of_range_id(self, prepared):
        obsmap = prepared.obsmap("bypass")
        text = f"# repro failure datalog v1\nFAIL pattern=0 obs=x id={10**6}\n"
        with pytest.raises(ValueError, match="out of range"):
            loads_datalog(text, obsmap=obsmap)

    def test_diagnosable_after_roundtrip(self, prepared):
        """A re-parsed datalog diagnoses identically to the original log."""
        from repro.data import build_dataset
        from repro.diagnosis import EffectCauseDiagnoser

        ds = build_dataset(prepared, "bypass", 3, seed=91)
        diag = EffectCauseDiagnoser(
            prepared.nl, prepared.obsmap("bypass"), prepared.patterns,
            mivs=prepared.mivs, sim=prepared.sim,
        )
        for item in ds.items:
            _chip, parsed = loads_datalog(dumps_datalog(item.sample.log))
            a = diag.diagnose(item.sample.log)
            b = diag.diagnose(parsed)
            assert [c.site.label for c in a] == [c.site.label for c in b]


def _cand(site, tfsf, tfsp=0, tpsf=0, tier=0):
    return Candidate(site=site, polarity=Polarity.SLOW_TO_RISE,
                     score=1.0, tier=tier, tfsf=tfsf, tfsp=tfsp, tpsf=tpsf)


class TestEquivalence:
    def test_grouping(self, toy):
        s = [stem_site(toy, toy.gates[i].out) for i in range(4)]
        rep = DiagnosisReport(candidates=[
            _cand(s[0], 5), _cand(s[1], 5), _cand(s[2], 3), _cand(s[3], 5, tpsf=1),
        ])
        classes = group_candidates(rep)
        assert [len(c.members) for c in classes] == [2, 1, 1]
        assert class_resolution(rep) == 3

    def test_class_first_hit(self, toy):
        from repro.atpg import Fault

        s = [stem_site(toy, toy.gates[i].out) for i in range(3)]
        rep = DiagnosisReport(candidates=[_cand(s[0], 5), _cand(s[1], 3), _cand(s[2], 3)])
        truth = [Fault(s[2], Polarity.SLOW_TO_RISE)]
        assert class_first_hit(rep, truth) == 2
        assert class_first_hit(rep, [Fault(stem_site(toy, toy.gates[4].out),
                                           Polarity.SLOW_TO_RISE)]) == 0

    def test_class_resolution_bounded(self, toy):
        s0 = stem_site(toy, toy.gates[0].out)
        rep = DiagnosisReport(candidates=[_cand(s0, 5)])
        assert class_resolution(rep) == 1 <= rep.resolution


class TestProfile:
    def test_profile_fields(self, small_netlist):
        p = profile_netlist(small_netlist)
        assert p.n_gates == small_netlist.n_gates
        assert abs(sum(p.gate_mix.values()) - 1.0) < 1e-9
        assert p.depth > 0
        assert 0.0 <= p.reconvergence <= 1.0
        assert sum(p.fanout_histogram.values()) == small_netlist.n_nets

    def test_flavors_differ(self):
        from repro.netlist import GeneratorSpec, generate

        aes = profile_netlist(generate(GeneratorSpec("a", "aes_like", 300, 32, 16, 16, 1)))
        ncd = profile_netlist(generate(GeneratorSpec("n", "netcard_like", 300, 32, 16, 16, 1)))
        assert aes.gate_mix.get("XOR2", 0) > ncd.gate_mix.get("XOR2", 0)
        assert ncd.gate_mix.get("MUX2", 0) > aes.gate_mix.get("MUX2", 0)

    def test_format(self, small_netlist):
        text = format_profile(profile_netlist(small_netlist), "small")
        assert "gate mix" in text and "reconvergent" in text
