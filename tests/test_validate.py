"""Unit tests for netlist structural validation."""

import pytest

from repro.netlist import NetlistError, check, toy_netlist, validate


def test_clean_netlist_passes(toy):
    assert check(toy) == []
    validate(toy)  # must not raise


def test_detects_dangling_gate_output(toy):
    # Detach the PO so g2's output dangles.
    toy.primary_outputs.clear()
    problems = check(toy)
    assert any("dangles" in p for p in problems)
    with pytest.raises(NetlistError):
        validate(toy)


def test_detects_missing_sink_entry(toy):
    toy.nets[toy.gates[2].fanin[0]].sinks.clear()
    problems = check(toy)
    assert any("missing" in p for p in problems)


def test_detects_driver_mismatch(toy):
    g = toy.gates[0]
    toy.nets[g.out].driver = toy.gates[1].id
    problems = check(toy)
    assert any("claims driver" in p for p in problems)


def test_detects_undriven_net(toy):
    toy.nets[toy.primary_inputs[0]].driver = -1
    toy.primary_inputs.pop(0)
    problems = check(toy)
    assert any("no driver" in p for p in problems)


def test_detects_bad_flop_reference(toy):
    toy.flops[0].d_net = 999
    problems = check(toy)
    assert any("bad nets" in p for p in problems)


def test_detects_wrong_arity(toy):
    toy.gates[0].fanin.append(0)
    toy.nets[0].sinks.append((0, 2))
    problems = check(toy)
    assert any("fanins" in p for p in problems)
