"""Unit tests for the structural Verilog reader/writer."""

import io

import pytest

from repro.netlist import check, dumps, loads, read_verilog, toy_netlist, write_verilog
from repro.m3d import apply_partition, mincut_bipartition


def test_roundtrip_toy(toy):
    nl = loads(dumps(toy))
    assert nl.n_gates == toy.n_gates
    assert nl.n_flops == toy.n_flops
    assert len(nl.primary_inputs) == len(toy.primary_inputs)
    assert check(nl) == []


def test_roundtrip_preserves_function(toy):
    import numpy as np
    from repro.sim import CompiledSimulator

    nl = loads(dumps(toy))
    rng = np.random.default_rng(0)
    inputs = rng.integers(0, 2, size=(len(toy.comb_inputs), 16), dtype=np.uint8)
    v_a = CompiledSimulator(toy).simulate(inputs)
    v_b = CompiledSimulator(nl).simulate(inputs)
    for oa, ob in zip(toy.observed_nets, nl.observed_nets):
        assert np.array_equal(v_a[oa], v_b[ob])


def test_roundtrip_preserves_tiers(toy):
    apply_partition(toy, mincut_bipartition(toy, seed=1))
    nl = loads(dumps(toy))
    assert [g.tier for g in nl.gates] == [g.tier for g in toy.gates]
    assert [f.tier for f in nl.flops] == [f.tier for f in toy.flops]


def test_roundtrip_generated(small_netlist):
    nl = loads(dumps(small_netlist))
    assert nl.n_gates == small_netlist.n_gates
    assert check(nl) == []


def test_file_io(toy, tmp_path):
    path = tmp_path / "toy.v"
    with open(path, "w") as fh:
        write_verilog(toy, fh)
    with open(path) as fh:
        nl = read_verilog(fh)
    assert nl.n_gates == toy.n_gates


def test_unknown_cell_rejected():
    text = """module t (a, y);
  input a;
  output y;
  FOO g0 (.Y(y), .A(a));
endmodule
"""
    with pytest.raises(ValueError, match="unknown cell"):
        loads(text)


def test_missing_pin_rejected():
    text = """module t (a, y);
  input a;
  output y;
  NAND2 g0 (.Y(y), .A(a));
endmodule
"""
    with pytest.raises(ValueError, match="missing pin"):
        loads(text)


def test_undriven_output_rejected():
    text = """module t (a, y);
  input a;
  output y;
endmodule
"""
    with pytest.raises(ValueError, match="undriven"):
        loads(text)


def test_out_of_order_instances_resolved():
    text = """module t (a, y);
  input a;
  output y;
  wire m;
  INV g1 (.Y(y), .A(m));
  INV g0 (.Y(m), .A(a));
endmodule
"""
    nl = loads(text)
    assert nl.n_gates == 2


def test_unparseable_line_rejected():
    with pytest.raises(ValueError, match="unparseable"):
        loads("module t (a);\n  input a;\n  garbage here\nendmodule\n")
