"""Unit tests for cones, BFS distances, and reachability."""

import pytest

from repro.netlist import (
    bfs_distance_from_observation,
    fanin_cone_nets,
    fanin_nets,
    fanout_cone_gates,
    reachable_observations,
    sort_gates_topologically,
    toy_netlist,
)


@pytest.fixture
def names(toy):
    gates = {g.name: g for g in toy.gates}
    nets = {n.name: n for n in toy.nets}
    return gates, nets


def test_fanin_nets_of_gate_output(toy, names):
    gates, _ = names
    g2 = gates["g2"]
    assert set(fanin_nets(toy, g2.out)) == set(g2.fanin)


def test_fanin_nets_of_pi_empty(toy):
    assert fanin_nets(toy, toy.primary_inputs[0]) == []


def test_fanin_cone_contains_inputs(toy, names):
    gates, _ = names
    cone = fanin_cone_nets(toy, gates["g2"].out)
    assert set(toy.primary_inputs[:4]) <= cone
    assert gates["g0"].out in cone and gates["g1"].out in cone


def test_fanin_cone_excludes_unrelated(toy, names):
    gates, _ = names
    cone = fanin_cone_nets(toy, gates["g0"].out)
    assert gates["g1"].out not in cone
    assert toy.flops[0].q_net not in cone


def test_fanout_cone_topo_sorted(toy, names):
    gates, _ = names
    cone = fanout_cone_gates(toy, [gates["g1"].id])
    # g1 feeds g2 and g3, g3 feeds g4.
    assert set(cone) == {gates["g1"].id, gates["g2"].id, gates["g3"].id, gates["g4"].id}
    pos = {gid: i for i, gid in enumerate(cone)}
    assert pos[gates["g1"].id] < pos[gates["g3"].id] < pos[gates["g4"].id]


def test_sort_gates_topologically_subset(toy, names):
    gates, _ = names
    subset = {gates["g4"].id, gates["g0"].id}
    ordered = sort_gates_topologically(toy, subset)
    assert ordered == [gates["g0"].id, gates["g4"].id]


def test_bfs_distances(toy, names):
    gates, _ = names
    po = toy.primary_outputs[0]  # g2 output
    dist, mivs = bfs_distance_from_observation(toy, po)
    assert dist[po] == 0
    assert dist[gates["g0"].out] == 1
    assert dist[toy.primary_inputs[0]] == 2
    assert all(v == 0 for v in mivs.values())


def test_bfs_miv_counting(toy, names):
    gates, _ = names
    po = toy.primary_outputs[0]
    miv_nets = {gates["g0"].out}
    _dist, mivs = bfs_distance_from_observation(toy, po, miv_nets)
    assert mivs[gates["g0"].out] == 1
    assert mivs[toy.primary_inputs[0]] == 1  # path goes through the MIV net
    assert mivs[gates["g1"].out] == 0


def test_reachable_observations(toy, names):
    gates, _ = names
    # g0 only reaches the PO; q0 reaches both PO-side (via g3? no) and flop D.
    assert reachable_observations(toy, gates["g0"].out) == [toy.primary_outputs[0]]
    q_reach = reachable_observations(toy, toy.flops[0].q_net)
    assert toy.flops[0].d_net in q_reach


def test_reachable_includes_self_for_observed(toy):
    d = toy.flops[0].d_net
    assert d in reachable_observations(toy, d)
