"""Unit and gradient tests for the pluggable-backend GNN stack.

The finite-difference gradient checks run on *every* available backend
(numpy always; torch when installed), perturbing weights through the
backend interface so the same oracle validates analytic backprop on all
engines.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    GCNLayer,
    GraphBatch,
    GraphClassifier,
    GraphData,
    NodeClassifier,
    PCA,
    SAGELayer,
    SGD,
    available_backends,
    bce_with_logits,
    build_batch,
    get_backend,
    normalized_adjacency,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)


def _random_graphs(rng, n=3, n_feat=4):
    out = []
    for i in range(n):
        k = rng.integers(3, 7)
        edges = (rng.integers(0, k, size=k), rng.integers(0, k, size=k))
        out.append(
            GraphData(
                x=rng.normal(size=(k, n_feat)),
                edges=edges,
                y=int(i % 2),
                node_y=rng.integers(0, 2, size=k).astype(float),
                node_mask=rng.integers(0, 2, size=k).astype(bool),
            )
        )
    return out


def _gradcheck(loss_fn, params, eps=1e-6, tol=1e-4, n_checks=8):
    """Compare analytic grads (already in ``p.grad``) to central differences.

    Perturbation goes through the backend interface (host copy in,
    ``copyto`` out), so the same check runs unchanged on numpy and torch
    parameters.
    """
    worst = 0.0
    for p in params:
        be = p.backend
        host = be.to_numpy(p.value)
        grad = be.to_numpy(p.grad).ravel()
        flat = host.ravel()
        idx = np.linspace(0, flat.size - 1, min(n_checks, flat.size)).astype(int)
        for i in idx:
            old = flat[i]
            flat[i] = old + eps
            be.copyto(p.value, host)
            lp = loss_fn()
            flat[i] = old - eps
            be.copyto(p.value, host)
            lm = loss_fn()
            flat[i] = old
            be.copyto(p.value, host)
            num = (lp - lm) / (2 * eps)
            if abs(num) > 1e-9:
                worst = max(worst, abs(num - grad[i]) / (abs(num) + 1e-9))
    assert worst < tol, f"gradient error {worst}"


#: Layer zoo for the parametrized gradient sweep: every trainable layer,
#: with and without the ReLU nonlinearity where it is optional.
_LAYER_KINDS = ("dense", "dense-relu", "gcn", "gcn-linear", "sage")
_GRAPH_KINDS = {"gcn", "gcn-linear", "sage"}
_LOSS_KINDS = ("softmax_ce", "bce")


def _make_layer(kind, n_in, n_out, be):
    rng = np.random.default_rng(12)
    if kind == "dense":
        return Dense(n_in, n_out, rng, activation=False, backend=be)
    if kind == "dense-relu":
        return Dense(n_in, n_out, rng, activation=True, backend=be)
    if kind == "gcn":
        return GCNLayer(n_in, n_out, rng, activation=True, backend=be)
    if kind == "gcn-linear":
        return GCNLayer(n_in, n_out, rng, activation=False, backend=be)
    return SAGELayer(n_in, n_out, rng, activation=True, backend=be)


class TestLayerGradients:
    """Finite-difference checks: every layer x every loss x every backend."""

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("loss_kind", _LOSS_KINDS)
    @pytest.mark.parametrize("layer_kind", _LAYER_KINDS)
    def test_layer_loss_gradcheck(self, layer_kind, loss_kind, backend):
        be = get_backend(backend)
        rng = np.random.default_rng(11)
        n, n_in = 7, 4
        n_out = 3 if loss_kind == "softmax_ce" else 1
        x = be.asarray(rng.normal(size=(n, n_in)))
        a_hat = be.sparse(
            normalized_adjacency(n, (rng.integers(0, n, size=10), rng.integers(0, n, size=10)))
        )
        layer = _make_layer(layer_kind, n_in, n_out, be)
        labels = rng.integers(0, n_out, size=n)
        targets = rng.integers(0, 2, size=n).astype(float)
        mask = np.ones(n, dtype=bool)

        def forward():
            if layer_kind in _GRAPH_KINDS:
                return layer.forward(a_hat, x)
            return layer.forward(x)

        def loss_and_grad():
            out = forward()
            if loss_kind == "softmax_ce":
                return softmax_cross_entropy(out, labels)
            loss, grad = bce_with_logits(out.reshape(-1), targets, mask=mask, pos_weight=2.0)
            return loss, grad.reshape(n, 1)

        layer.zero_grad()
        _loss, dl = loss_and_grad()
        layer.backward(dl)
        _gradcheck(lambda: loss_and_grad()[0], layer.parameters())


class TestAdjacency:
    def test_rows_sum_to_one(self):
        a = normalized_adjacency(4, (np.array([0, 1]), np.array([1, 2])))
        sums = np.asarray(a.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_symmetric_pattern(self):
        a = normalized_adjacency(3, (np.array([0]), np.array([2])))
        dense = a.toarray()
        assert dense[0, 2] > 0 and dense[2, 0] > 0
        assert dense[1, 1] == 1.0  # isolated node keeps only its self-loop

    def test_multi_edges_collapsed(self):
        a = normalized_adjacency(2, (np.array([0, 0, 0]), np.array([1, 1, 1])))
        assert np.allclose(np.asarray(a.sum(axis=1)).ravel(), 1.0)
        assert a.toarray()[0, 1] == 0.5


class TestBatching:
    def test_block_diagonal(self):
        rng = np.random.default_rng(0)
        graphs = _random_graphs(rng)
        batch = build_batch(graphs)
        assert batch.n_graphs == 3
        assert batch.n_nodes == sum(g.n_nodes for g in graphs)
        # No cross-graph coupling.
        dense = batch.a_hat.toarray()
        start = 0
        for g in graphs:
            end = start + g.n_nodes
            assert np.allclose(dense[start:end, :start], 0)
            assert np.allclose(dense[start:end, end:], 0)
            start = end

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero graphs"):
            build_batch([])

    def test_pool_mean_and_backward(self):
        rng = np.random.default_rng(1)
        graphs = _random_graphs(rng)
        batch = build_batch(graphs)
        h = rng.normal(size=(batch.n_nodes, 5))
        pooled = batch.pool_mean(h)
        start = 0
        for i, g in enumerate(graphs):
            end = start + g.n_nodes
            assert np.allclose(pooled[i], h[start:end].mean(axis=0))
            start = end
        # Backward: gradient of f = sum(pool * dpool) w.r.t. h.
        dpool = rng.normal(size=pooled.shape)
        dh = batch.pool_mean_backward(dpool)
        eps = 1e-6
        h2 = h.copy()
        h2[0, 0] += eps
        num = ((batch.pool_mean(h2) - pooled) * dpool).sum() / eps
        assert abs(num - dh[0, 0]) < 1e-5


class TestLosses:
    def test_softmax_rows(self):
        p = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(p.sum(), 1.0)
        assert p[0, 2] > p[0, 1] > p[0, 0]

    def test_ce_gradient_numeric(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        loss, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(5):
            for j in range(3):
                lp = softmax_cross_entropy(logits + eps * _one(5, 3, i, j), labels)[0]
                lm = softmax_cross_entropy(logits - eps * _one(5, 3, i, j), labels)[0]
                assert abs((lp - lm) / (2 * eps) - grad[i, j]) < 1e-5

    def test_bce_gradient_numeric(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=7)
        targets = rng.integers(0, 2, size=7).astype(float)
        mask = rng.integers(0, 2, size=7).astype(bool)
        mask[0] = True
        loss, grad = bce_with_logits(logits, targets, mask=mask, pos_weight=2.0)
        eps = 1e-6
        for i in range(7):
            d = np.zeros(7)
            d[i] = eps
            lp = bce_with_logits(logits + d, targets, mask=mask, pos_weight=2.0)[0]
            lm = bce_with_logits(logits - d, targets, mask=mask, pos_weight=2.0)[0]
            assert abs((lp - lm) / (2 * eps) - grad[i]) < 1e-5

    def test_sigmoid_stable(self):
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)


def _one(n, m, i, j):
    out = np.zeros((n, m))
    out[i, j] = 1.0
    return out


class TestModels:
    @pytest.mark.parametrize("backend", available_backends())
    def test_graph_classifier_gradcheck(self, backend):
        rng = np.random.default_rng(4)
        graphs = _random_graphs(rng)
        batch = build_batch(graphs)
        model = GraphClassifier(4, 2, hidden=(6,), head_hidden=(5,), seed=0, backend=backend)

        def loss_fn():
            return softmax_cross_entropy(model.forward(batch), batch.y)[0]

        logits = model.forward(batch)
        _l, dl = softmax_cross_entropy(logits, batch.y)
        model.zero_grad()
        model.backward(dl)
        _gradcheck(loss_fn, model.parameters())

    @pytest.mark.parametrize("backend", available_backends())
    def test_node_classifier_gradcheck(self, backend):
        rng = np.random.default_rng(5)
        graphs = _random_graphs(rng)
        batch = build_batch(graphs)
        model = NodeClassifier(4, hidden=(6, 5), seed=0, backend=backend)

        def loss_fn():
            return bce_with_logits(model.forward(batch), batch.node_y, mask=batch.node_mask)[0]

        logits = model.forward(batch)
        _l, dl = bce_with_logits(logits, batch.node_y, mask=batch.node_mask)
        model.zero_grad()
        model.backward(dl)
        _gradcheck(loss_fn, model.parameters())

    def test_frozen_encoder_excluded_from_parameters(self):
        base = GraphClassifier(4, 2, hidden=(6,), seed=0)
        import copy

        transfer = GraphClassifier(
            4, 2, encoder=copy.deepcopy(base.encoder), freeze_encoder=True, head_hidden=(3,), seed=1
        )
        n_all = len(base.parameters())
        assert len(transfer.parameters()) < n_all + 4  # head layers only
        enc_params = transfer.encoder.parameters()
        assert all(p not in transfer.parameters() for p in enc_params)

    def test_state_dict_roundtrip(self):
        model = GraphClassifier(4, 2, hidden=(6,), seed=0)
        state = model.state_dict()
        model2 = GraphClassifier(4, 2, hidden=(6,), seed=99)
        model2.load_state_dict(state)
        for a, b in zip(model.parameters(), model2.parameters()):
            assert np.array_equal(a.value, b.value)

    def test_load_state_dict_shape_check(self):
        model = GraphClassifier(4, 2, hidden=(6,), seed=0)
        with pytest.raises(ValueError):
            model.load_state_dict([np.zeros((1, 1))])


class TestOptim:
    def test_adam_minimizes_quadratic(self):
        from repro.nn.layers import Parameter

        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            p.grad[:] = 2 * p.value
            opt.step()
        assert np.all(np.abs(p.value) < 0.05)

    def test_sgd_momentum(self):
        from repro.nn.layers import Parameter

        p = Parameter(np.array([4.0]))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(100):
            p.zero_grad()
            p.grad[:] = 2 * p.value
            opt.step()
        assert abs(p.value[0]) < 0.1


class TestPCA:
    def test_recovers_principal_direction(self):
        rng = np.random.default_rng(6)
        t = rng.normal(size=500)
        x = np.stack([3 * t, t + 0.01 * rng.normal(size=500)], axis=1)
        pca = PCA(2).fit(x)
        direction = pca.components_[0] / np.linalg.norm(pca.components_[0])
        expected = np.array([3.0, 1.0]) / np.sqrt(10)
        assert abs(abs(direction @ expected) - 1.0) < 1e-2
        assert pca.explained_variance_ratio_[0] > 0.95

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((3, 2)))

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            PCA(2).fit(np.zeros((1, 4)))


class TestExplain:
    def test_feature_mask_finds_informative_feature(self):
        """Only feature 0 carries the label; its mask score should be highest."""
        from repro.nn import feature_mask_significance

        rng = np.random.default_rng(7)
        graphs = []
        for i in range(40):
            y = i % 2
            x = rng.normal(size=(6, 4)) * 0.1
            x[:, 0] = 2.0 * y - 1.0
            edges = (np.arange(5), np.arange(1, 6))
            graphs.append(GraphData(x=x, edges=edges, y=y))
        model = GraphClassifier(4, 2, hidden=(8,), seed=0)
        from repro.core.training import train_graph_classifier

        train_graph_classifier(model, graphs, epochs=30, lr=0.05, seed=0)
        sig = feature_mask_significance(model, graphs, n_steps=150, l1=0.05)
        assert sig.shape == (4,)
        assert np.all((sig >= 0) & (sig <= 1))
        assert sig[0] == max(sig)

    def test_permutation_importance_sign(self):
        from repro.nn import permutation_importance

        rng = np.random.default_rng(8)
        graphs = []
        for i in range(40):
            y = i % 2
            x = rng.normal(size=(5, 3)) * 0.1
            x[:, 1] = y
            graphs.append(GraphData(x=x, edges=(np.array([0]), np.array([1])), y=y))
        model = GraphClassifier(3, 2, hidden=(8,), seed=0)
        from repro.core.training import train_graph_classifier

        train_graph_classifier(model, graphs, epochs=30, lr=0.05, seed=0)
        drops = permutation_importance(model, graphs)
        assert drops[1] == max(drops)
        assert drops[1] > 0.2
