"""Tests for the PODEM ATPG top-off, SCOAP-based TPI, and misc extensions."""

import numpy as np
import pytest

from repro.atpg import generate_tdf_patterns
from repro.netlist import GeneratorSpec, check, generate
from repro.synth import insert_test_points


def test_deterministic_topoff_never_reduces_coverage(small_netlist):
    base = generate_tdf_patterns(
        small_netlist, seed=0, max_patterns=48, target_coverage=1.0
    )
    topped = generate_tdf_patterns(
        small_netlist, seed=0, max_patterns=96, target_coverage=1.0,
        deterministic_topoff=True,
    )
    assert topped.fault_coverage >= base.fault_coverage
    assert topped.patterns.n_patterns >= base.patterns.n_patterns


def test_topoff_closes_random_resistant_gap():
    """With a tiny random budget, PODEM should add coverage."""
    nl = generate(GeneratorSpec("tp", "leon3mp_like", 150, 20, 10, 10, seed=9))
    base = generate_tdf_patterns(nl, seed=0, batch_size=4, max_patterns=6,
                                 target_coverage=1.0)
    topped = generate_tdf_patterns(nl, seed=0, batch_size=4, max_patterns=64,
                                   target_coverage=1.0, deterministic_topoff=True)
    assert topped.fault_coverage > base.fault_coverage


def test_scoap_tpi_valid_and_distinct(small_netlist):
    by_dist = insert_test_points(small_netlist, budget_fraction=0.03, method="distance")
    by_scoap = insert_test_points(small_netlist, budget_fraction=0.03, method="scoap")
    assert check(by_scoap) == []
    assert by_scoap.n_flops == by_dist.n_flops
    # Both pick observation points; the criteria need not agree exactly but
    # must both leave gate logic untouched.
    assert by_scoap.n_gates == small_netlist.n_gates


def test_tpi_unknown_method_rejected(small_netlist):
    with pytest.raises(ValueError, match="unknown test-point method"):
        insert_test_points(small_netlist, method="magic")


def test_generator_distinct_fanins(small_netlist):
    for g in small_netlist.gates:
        assert len(set(g.fanin)) == len(g.fanin), f"duplicate fanin on {g.name}"
