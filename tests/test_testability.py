"""Unit tests for SCOAP testability analysis."""

import numpy as np
import pytest

from repro.netlist import NetlistBuilder, compute_testability, toy_netlist
from repro.netlist.testability import INF


def test_inputs_cost_one(toy):
    t = compute_testability(toy)
    for net in toy.comb_inputs:
        assert t.cc0[net] == 1
        assert t.cc1[net] == 1


def test_observed_nets_free_to_observe(toy):
    t = compute_testability(toy)
    for net in toy.observed_nets:
        assert t.co[net] == 0


def test_and_gate_controllability():
    b = NetlistBuilder("t")
    a = b.add_primary_input("a")
    c = b.add_primary_input("b")
    y = b.add_gate("AND2", [a, c])
    b.mark_primary_output(y)
    nl = b.finish()
    t = compute_testability(nl)
    # CC0(AND) = min(CC0 inputs) + 1 = 2; CC1 = sum(CC1 inputs) + 1 = 3.
    assert t.cc0[y] == 2
    assert t.cc1[y] == 3


def test_nand_inverts_controllability():
    b = NetlistBuilder("t")
    a = b.add_primary_input("a")
    c = b.add_primary_input("b")
    y = b.add_gate("NAND2", [a, c])
    b.mark_primary_output(y)
    t = compute_testability(b.finish())
    assert t.cc0[y] == 3  # all inputs to 1
    assert t.cc1[y] == 2  # any input to 0


def test_xor_controllability():
    b = NetlistBuilder("t")
    a = b.add_primary_input("a")
    c = b.add_primary_input("b")
    y = b.add_gate("XOR2", [a, c])
    b.mark_primary_output(y)
    t = compute_testability(b.finish())
    # Even parity (00 or 11): 1+1=2; odd parity: 1+1=2 -> +1 each.
    assert t.cc0[y] == 3
    assert t.cc1[y] == 3


def test_observability_grows_with_depth():
    b = NetlistBuilder("t")
    a = b.add_primary_input("a")
    c = b.add_primary_input("b")
    d = b.add_primary_input("c")
    x = b.add_gate("AND2", [a, c])
    y = b.add_gate("AND2", [x, d])
    b.mark_primary_output(y)
    t = compute_testability(b.finish())
    assert t.co[y] == 0
    assert t.co[x] == t.co[y] + t.cc1[d] + 1
    assert t.co[a] == t.co[x] + t.cc1[c] + 1
    assert t.co[a] > t.co[x] > t.co[y]


def test_unobservable_net_is_inf():
    b = NetlistBuilder("t")
    a = b.add_primary_input("a")
    dead = b.add_gate("INV", [a])
    live = b.add_gate("BUF", [a])
    b.mark_primary_output(live)
    nl = b.finish()
    # `dead` output drives nothing and is not observed.
    t = compute_testability(nl)
    assert t.co[dead] >= INF
    assert t.co[live] == 0


def test_hardest_lists(small_netlist):
    t = compute_testability(small_netlist)
    hard_obs = t.hardest_to_observe(5)
    assert len(hard_obs) == 5
    costs = [t.co[n] for n in hard_obs]
    assert costs == sorted(costs, reverse=True)
    hard_ctl = t.hardest_to_control(5)
    assert len(hard_ctl) == 5


def test_all_cells_have_rules(small_netlist):
    # The generated design mixes every flavor; this must not raise.
    t = compute_testability(small_netlist)
    assert np.all(t.cc0[small_netlist.comb_inputs] == 1)
    for g in small_netlist.gates:
        assert t.cc0[g.out] < INF
        assert t.cc1[g.out] < INF
