"""Tests for the GraphSAGE layer and the 3-valued simulator."""

import numpy as np
import pytest

from repro.nn import GraphClassifier, GraphData, build_batch, make_sage_encoder, softmax_cross_entropy
from repro.sim import X, forced_nets, simulate3
from repro.netlist import NetlistBuilder


class TestSage:
    def _graphs(self, rng, n=3):
        out = []
        for i in range(n):
            k = int(rng.integers(3, 7))
            out.append(
                GraphData(
                    x=rng.normal(size=(k, 4)),
                    edges=(rng.integers(0, k, size=k), rng.integers(0, k, size=k)),
                    y=i % 2,
                )
            )
        return out

    def test_gradcheck_through_classifier(self):
        rng = np.random.default_rng(0)
        graphs = self._graphs(rng)
        batch = build_batch(graphs)
        model = GraphClassifier(4, 2, encoder=make_sage_encoder(4, (6, 5), seed=1), seed=2)

        logits = model.forward(batch)
        _l, dl = softmax_cross_entropy(logits, batch.y)
        model.zero_grad()
        model.backward(dl)

        eps = 1e-6
        worst = 0.0
        for p in model.parameters():
            flat, grad = p.value.ravel(), p.grad.ravel()
            for i in np.linspace(0, flat.size - 1, 6).astype(int):
                old = flat[i]
                flat[i] = old + eps
                lp = softmax_cross_entropy(model.forward(batch), batch.y)[0]
                flat[i] = old - eps
                lm = softmax_cross_entropy(model.forward(batch), batch.y)[0]
                flat[i] = old
                num = (lp - lm) / (2 * eps)
                if abs(num) > 1e-9:
                    worst = max(worst, abs(num - grad[i]) / (abs(num) + 1e-9))
        assert worst < 1e-4

    def test_learns_separable_data(self):
        from repro.core.training import train_graph_classifier

        rng = np.random.default_rng(1)
        graphs = []
        for i in range(60):
            y = i % 2
            k = 5
            x = rng.normal(size=(k, 4)) * 0.1
            x[:, 1] = y
            graphs.append(GraphData(x=x, edges=(np.arange(4), np.arange(1, 5)), y=y))
        model = GraphClassifier(4, 2, encoder=make_sage_encoder(4, (8,), seed=0), seed=0)
        train_graph_classifier(model, graphs, epochs=25, lr=0.05, seed=0)
        batch = build_batch(graphs)
        acc = np.mean(np.argmax(model.forward(batch), axis=1) == batch.y)
        assert acc > 0.9


class TestThreeValued:
    @pytest.fixture
    def gate(self):
        b = NetlistBuilder("tv")
        a = b.add_primary_input("a")
        c = b.add_primary_input("b")
        y = b.add_gate("AND2", [a, c])
        z = b.add_gate("XOR2", [a, c])
        b.mark_primary_output(y)
        b.mark_primary_output(z)
        return b.finish(), a, c, y, z

    def test_controlling_value_forces_output(self, gate):
        nl, a, c, y, z = gate
        values = simulate3(nl, {a: 0})
        assert values[y] == 0  # AND with a 0 input is forced
        assert values[z] == X  # XOR needs both inputs

    def test_fully_specified_matches_two_valued(self, gate):
        nl, a, c, y, z = gate
        from repro.sim import CompiledSimulator

        sim = CompiledSimulator(nl)
        for va in (0, 1):
            for vb in (0, 1):
                v3 = simulate3(nl, {a: va, c: vb})
                v2 = sim.simulate(np.array([[va], [vb]], dtype=np.uint8))
                assert v3[y] == v2[y][0]
                assert v3[z] == v2[z][0]

    def test_forced_nets(self, gate):
        nl, a, c, y, z = gate
        forced = forced_nets(nl, {a: 0})
        assert forced[y] == 0
        assert z not in forced
        assert forced[a] == 0

    def test_bad_assignment_rejected(self, gate):
        nl, a, c, y, z = gate
        with pytest.raises(ValueError, match="not a combinational input"):
            simulate3(nl, {y: 1})
        with pytest.raises(ValueError, match="0 or 1"):
            simulate3(nl, {a: 2})

    def test_monotone_x_reduction(self, small_netlist):
        """Specifying more inputs never un-forces a net."""
        rng = np.random.default_rng(0)
        inputs = small_netlist.comb_inputs
        partial = {n: int(rng.integers(0, 2)) for n in inputs[: len(inputs) // 2]}
        full = dict(partial)
        for n in inputs:
            full.setdefault(n, int(rng.integers(0, 2)))
        v_partial = simulate3(small_netlist, partial)
        v_full = simulate3(small_netlist, full)
        known = v_partial != X
        assert np.array_equal(v_partial[known], v_full[known])
        assert (v_full != X).all()
