"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import GeneratorSpec, check, dumps, generate, loads
from repro.sim import CompiledSimulator


spec_strategy = st.builds(
    GeneratorSpec,
    name=st.just("prop"),
    flavor=st.sampled_from(["aes_like", "tate_like", "netcard_like", "leon3mp_like"]),
    n_gates=st.integers(30, 120),
    n_flops=st.integers(4, 16),
    n_pis=st.integers(4, 12),
    n_pos=st.integers(2, 8),
    seed=st.integers(0, 10 ** 6),
)


@given(spec_strategy)
@settings(max_examples=15, deadline=None)
def test_generated_netlists_are_structurally_valid(spec):
    nl = generate(spec)
    assert check(nl) == []
    assert nl.n_gates == spec.n_gates
    assert nl.n_flops == spec.n_flops


@given(spec_strategy)
@settings(max_examples=8, deadline=None)
def test_verilog_roundtrip_preserves_behaviour(spec):
    nl = generate(spec)
    back = loads(dumps(nl))
    rng = np.random.default_rng(spec.seed)
    inputs = rng.integers(0, 2, size=(len(nl.comb_inputs), 8), dtype=np.uint8)
    va = CompiledSimulator(nl).simulate(inputs)
    vb = CompiledSimulator(back).simulate(inputs)
    for oa, ob in zip(nl.observed_nets, back.observed_nets):
        assert np.array_equal(va[oa], vb[ob])


@given(spec_strategy, st.integers(0, 10 ** 6))
@settings(max_examples=8, deadline=None)
def test_partition_cut_equals_miv_count(spec, seed):
    from repro.m3d import apply_partition, extract_mivs, mincut_bipartition

    nl = generate(spec)
    part = mincut_bipartition(nl, seed=seed)
    apply_partition(nl, part)
    assert len(extract_mivs(nl)) == part.cut


@given(st.integers(0, 10 ** 6), st.integers(1, 6))
@settings(max_examples=10, deadline=None)
def test_backtrace_always_contains_injected_site(seed, n_inject):
    """Fig. 3 soundness over random designs and injections."""
    from repro.data import DesignConfig, build_dataset, prepare_design

    spec = GeneratorSpec("bt", "aes_like", 120, 16, 8, 8, seed=seed % 5)
    design = prepare_design(
        spec, DesignConfig.standard("Syn-1"), n_chains=4,
        chains_per_channel=2, max_patterns=48,
    )
    ds = build_dataset(design, "bypass", n_inject, seed=seed)
    from repro.core import backtrace

    for item in ds.items:
        mask = backtrace(design.het, design.obsmap("bypass"), item.sample.log)
        v = design.het.node_of_site(item.faults[0].site)
        assert v is not None and mask[v]


@given(
    st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5)), min_size=1, max_size=40)
)
@settings(max_examples=40, deadline=None)
def test_failure_log_roundtrip_datalog(pairs):
    from repro.tester import FailEntry, FailureLog, dumps_datalog, loads_datalog

    entries = sorted({FailEntry(p, o) for p, o in pairs}, key=lambda e: (e.pattern, e.observation))
    log = FailureLog(entries=list(entries))
    _chip, back = loads_datalog(dumps_datalog(log))
    assert back.entries == log.entries


@given(st.integers(0, 10 ** 6))
@settings(max_examples=10, deadline=None)
def test_dummy_buffer_preserves_labels_and_grows_by_one(seed):
    from repro.core import insert_dummy_buffer
    from repro.nn import GraphData

    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 10))
    g = GraphData(
        x=rng.normal(size=(k, 13)),
        edges=(rng.integers(0, k, size=k), rng.integers(0, k, size=k)),
        y=int(rng.integers(0, 2)),
        node_y=rng.integers(0, 2, size=k).astype(float),
        node_mask=rng.integers(0, 2, size=k).astype(bool),
        meta={"nodes": np.arange(k)},
    )
    node = int(rng.integers(0, k))
    out = insert_dummy_buffer(g, node)
    assert out.n_nodes == k + 1
    assert out.y == g.y
    assert np.array_equal(out.node_y[:k], g.node_y)
    assert not out.node_mask[k]
    # Edge count grows by exactly one (host -> buffer).
    assert len(out.edges[0]) == len(g.edges[0]) + 1


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_pattern_select_concat_roundtrip(data):
    from repro.atpg import PatternSet

    n_in = data.draw(st.integers(1, 6))
    n_pat = data.draw(st.integers(1, 10))
    rng = np.random.default_rng(data.draw(st.integers(0, 100)))
    ps = PatternSet(
        rng.integers(0, 2, size=(n_in, n_pat), dtype=np.uint8),
        rng.integers(0, 2, size=(n_in, n_pat), dtype=np.uint8),
    )
    cols = data.draw(
        st.lists(st.integers(0, n_pat - 1), min_size=1, max_size=n_pat, unique=True)
    )
    sub = ps.select(cols)
    assert sub.n_patterns == len(cols)
    both = sub.concat(sub)
    assert both.n_patterns == 2 * len(cols)
    assert np.array_equal(both.v1[:, : len(cols)], sub.v1)
