"""Tests for early stopping / validation in the shared training loop."""

import numpy as np

from repro.core.training import train_graph_classifier
from repro.nn import GraphClassifier, GraphData


def _graphs(rng, n, noise=0.1):
    out = []
    for i in range(n):
        y = i % 2
        k = int(rng.integers(4, 8))
        x = rng.normal(size=(k, 6)) * noise
        x[:, 0] = 2.0 * y - 1.0 + rng.normal(size=k) * noise
        out.append(GraphData(x=x, edges=(np.arange(k - 1), np.arange(1, k)), y=y))
    return out


def test_early_stopping_halts_before_budget():
    rng = np.random.default_rng(0)
    train = _graphs(rng, 40)
    val = _graphs(rng, 16)
    model = GraphClassifier(6, 2, hidden=(8,), seed=0)
    history = train_graph_classifier(
        model, train, epochs=200, lr=0.05, seed=0, val_graphs=val, patience=5
    )
    assert len(history) < 200  # separable data converges long before budget


def test_best_weights_restored():
    """The restored model matches the best validation accuracy seen."""
    from repro.nn import build_batch

    rng = np.random.default_rng(1)
    train = _graphs(rng, 40)
    val = _graphs(rng, 20)
    model = GraphClassifier(6, 2, hidden=(8,), seed=0)
    train_graph_classifier(
        model, train, epochs=60, lr=0.05, seed=0, val_graphs=val, patience=4
    )
    batch = build_batch(val)
    acc = float(np.mean(np.argmax(model.forward(batch), axis=1) == batch.y))
    assert acc > 0.9


def test_no_validation_keeps_old_behaviour():
    rng = np.random.default_rng(2)
    train = _graphs(rng, 30)
    model = GraphClassifier(6, 2, hidden=(8,), seed=0)
    history = train_graph_classifier(model, train, epochs=12, lr=0.05, seed=0)
    assert len(history) == 12
