"""Observability layer: span tracer, metrics export, profiling hooks.

Covers the tentpole (hierarchical spans, worker-buffer merging, JSON /
Prometheus export, ``repro stats`` rendering, ``REPRO_PROFILE`` hooks) and
the instrumentation bugfix sweep (cache-counter scoping, ``RuntimeStats``
pickling, report alignment, interrupt-path tmp collection).
"""

from __future__ import annotations

import json
import pickle
import re
import threading

import pytest

from repro.obs import (
    METRICS_SCHEMA,
    SpanTracer,
    diff_spans,
    load_metrics,
    metrics_document,
    profiled,
    render_metrics,
    render_span_tree,
    write_metrics,
)
from repro.runtime import DatasetRuntime, RuntimeStats, sample_set_fingerprint
from repro.runtime.instrument import null_progress

N_SAMPLES = 40  # 3 chunks at the default 16-sample grid
SEED = 4242


# ------------------------------------------------------------------ spans
def test_span_nesting_builds_dotted_paths():
    tr = SpanTracer()
    with tr.span("tables"):
        with tr.span("table9"):
            with tr.span("dataset"):
                pass
        with tr.span("table9"):
            pass
    spans = tr.export()
    assert set(spans) == {"tables", "tables.table9", "tables.table9.dataset"}
    assert spans["tables"]["calls"] == 1
    assert spans["tables.table9"]["calls"] == 2
    # A parent's wall-clock dominates its children's.
    assert spans["tables"]["seconds"] >= spans["tables.table9.dataset"]["seconds"]


def test_span_counters_attach_to_active_span():
    tr = SpanTracer()
    with tr.span("dataset"):
        tr.count("samples", 16)
        tr.count("samples", 8)
    tr.count("stray")  # outside any span: lands on the root record
    spans = tr.export()
    assert spans["dataset"]["counters"] == {"samples": 24}
    assert spans[""]["counters"] == {"stray": 1}
    assert "(root)" in render_span_tree(spans)


def test_span_dotted_names_add_levels():
    tr = SpanTracer()
    with tr.span("dataset"):
        with tr.span("cache.load"):
            pass
    assert "dataset.cache.load" in tr.export()
    tree = render_span_tree(tr.export())
    # The synthesized intermediate "cache" level nests "load" under it.
    assert re.search(r"^\s+cache\b", tree, re.M)
    assert re.search(r"^\s+load\b", tree, re.M)


def test_span_merge_reroots_worker_buffers_under_active_span():
    worker = SpanTracer()
    with worker.span("chunk"):
        worker.count("samples", 16)
    exported = worker.export()

    parent = SpanTracer()
    with parent.span("tables"):
        with parent.span("dataset"):
            parent.merge(exported)
            parent.merge(exported)
    spans = parent.export()
    assert spans["tables.dataset.chunk"]["calls"] == 2
    assert spans["tables.dataset.chunk"]["counters"] == {"samples": 32}


def test_span_merge_explicit_prefix_and_root():
    worker = SpanTracer()
    with worker.span("design"):
        pass
    parent = SpanTracer()
    parent.merge(worker.export(), prefix="prepare")
    parent.merge(worker.export(), prefix="")
    spans = parent.export()
    assert spans["prepare.design"]["calls"] == 1
    assert spans["design"]["calls"] == 1


def test_span_thread_safety_separate_stacks():
    tr = SpanTracer()
    barrier = threading.Barrier(2)

    def record(name: str) -> None:
        barrier.wait()
        for _ in range(50):
            with tr.span(name):
                with tr.span("inner"):
                    pass

    threads = [threading.Thread(target=record, args=(n,)) for n in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    spans = tr.export()
    # No cross-thread path pollution: each thread nested under its own root.
    assert spans["a"]["calls"] == 50 and spans["a.inner"]["calls"] == 50
    assert spans["b"]["calls"] == 50 and spans["b.inner"]["calls"] == 50
    assert not any(".a" in p or ".b" in p for p in spans)


def test_diff_spans_isolates_one_interval():
    tr = SpanTracer()
    with tr.span("fit"):
        with tr.span("tier"):
            pass
    before = tr.export()
    with tr.span("fit"):
        with tr.span("classifier"):
            tr.count("graphs", 3)
    delta = diff_spans(before, tr.export())
    assert set(delta) == {"fit", "fit.classifier"}
    assert delta["fit"]["calls"] == 1  # only the second fit interval
    assert delta["fit.classifier"]["counters"] == {"graphs": 3}


def test_render_span_tree_empty():
    assert "no recorded spans" in render_span_tree({})


# ------------------------------------------------- RuntimeStats bugfix sweep
def test_cache_hit_scoping_regression():
    """Only ``cache.*`` counters are cache traffic — not any ``*.hit/.miss``."""
    stats = RuntimeStats()
    stats.count("cache.design.hit", 2)
    stats.count("cache.sample_chunk.miss", 3)
    stats.count("retry.miss", 5)     # the over-match the old suffix check had
    stats.count("rate_limit.hit", 7)
    assert stats.cache_hits == 2
    assert stats.cache_misses == 3


def test_runtime_stats_pickles_with_lambda_progress_sink():
    stats = RuntimeStats()
    stats.progress = lambda msg: None  # non-module-level: unpicklable as-is
    stats.count("cache.design.hit")
    clone = pickle.loads(pickle.dumps(stats))
    assert clone.progress is null_progress
    clone.emit("no crash")  # the restored sink is callable
    assert clone.counters == stats.counters
    # The original object keeps its sink — only the wire copy drops it.
    assert stats.progress is not null_progress


def test_report_aligns_long_dotted_stage_names():
    stats = RuntimeStats()
    long = "tables.table9.dataset.cache.sample_chunk.load"
    assert len(long) > 28
    stats.add_time(long, 1.0)
    stats.add_time("short", 2.0)
    stats.count("cache.design.hit", 3)
    lines = stats.report().splitlines()[1:]
    # One shared name-column width sized to the longest key: each value is an
    # 8-char right-aligned field starting right after it.
    width = len(long)
    for ln in lines:
        name = ln[2 : 2 + width].rstrip()
        assert name in {long, "short", "cache.design.hit"}, ln
        value = ln[2 + width + 1 : 2 + width + 9]
        assert len(value) == 8 and value.lstrip()[0].isdigit(), f"misaligned: {ln!r}"


def test_runtime_stats_merge_and_timed_nesting():
    outer = RuntimeStats()
    with outer.timed("outer"):
        with outer.timed("outer.inner"):
            pass
    assert outer.stage_calls == {"outer": 1, "outer.inner": 1}
    assert outer.stage_seconds["outer"] >= outer.stage_seconds["outer.inner"]

    worker = RuntimeStats()
    with worker.timed("outer"):
        pass
    worker.count("cache.design.hit", 2)
    outer.merge(worker)
    assert outer.stage_calls["outer"] == 2
    assert outer.counters["cache.design.hit"] == 2


# ---------------------------------------------------------- runtime + spans
def _span_calls(tracer):
    return {path: rec["calls"] for path, rec in tracer.export().items()}


def test_parallel_worker_span_merge_equals_serial(prepared):
    """The acceptance bar: 4-worker span tree ≡ serial tree in call counts."""
    serial_tracer = SpanTracer()
    serial = DatasetRuntime(workers=1, tracer=serial_tracer).build_dataset(
        prepared, "bypass", N_SAMPLES, SEED
    )
    par_tracer = SpanTracer()
    par = DatasetRuntime(workers=4, tracer=par_tracer).build_dataset(
        prepared, "bypass", N_SAMPLES, SEED
    )
    # Tracing enabled changes nothing about the bytes...
    assert sample_set_fingerprint(par) == sample_set_fingerprint(serial)
    # ...and the merged worker buffers reproduce the serial span tree
    # (modulo the pool-bookkeeping span that only parallel runs have).
    serial_calls = {p: c for p, c in _span_calls(serial_tracer).items()
                    if not p.endswith(("pool", "serial"))}
    par_calls = {p: c for p, c in _span_calls(par_tracer).items()
                 if not p.endswith(("pool", "serial"))}
    assert par_calls == serial_calls
    assert par_calls["dataset.chunk"] == 3  # 16+16+8 over the chunk grid
    chunk = par_tracer.export()["dataset.chunk"]
    assert chunk["counters"]["samples"] == len(par.items)


def test_cache_spans_nest_under_dataset(prepared, tmp_path):
    tracer = SpanTracer()
    rt = DatasetRuntime(workers=1, cache_dir=tmp_path, tracer=tracer)
    rt.build_dataset(prepared, "bypass", 16, SEED)
    warm = DatasetRuntime(workers=1, cache_dir=tmp_path, tracer=tracer)
    warm.build_dataset(prepared, "bypass", 16, SEED)
    spans = tracer.export()
    assert spans["dataset.cache.store"]["calls"] == 1
    assert spans["dataset.cache.load"]["calls"] == 1


# ----------------------------------------------------------------- metrics
def _sample_stats_and_tracer():
    stats = RuntimeStats()
    stats.add_time("dataset.inject", 1.5)
    stats.add_time("prepare.build", 4.0)
    stats.count("cache.design.hit", 3)
    stats.count("cache.design.miss", 1)
    stats.count("cache.sample_chunk.miss", 2)
    stats.count("faulttol.chunk.retries", 2)
    stats.count("faulttol.prepare.retries", 1)
    tracer = SpanTracer()
    with tracer.span("tables"):
        with tracer.span("dataset"):
            tracer.count("samples", 40)
    return stats, tracer


def test_metrics_document_schema():
    stats, tracer = _sample_stats_and_tracer()
    doc = metrics_document(stats, tracer)
    assert doc["schema"] == METRICS_SCHEMA
    assert doc["stages"]["dataset.inject"] == {"seconds": 1.5, "calls": 1}
    assert doc["spans"]["tables.dataset"]["counters"] == {"samples": 40}
    assert doc["cache"]["kinds"]["design"] == {"hits": 3, "misses": 1, "hit_ratio": 0.75}
    assert doc["cache"]["kinds"]["sample_chunk"]["hit_ratio"] == 0.0
    assert doc["cache"]["hits"] == 3 and doc["cache"]["misses"] == 3
    assert doc["faulttol"]["totals"] == {"retries": 3}
    json.dumps(doc)  # JSON-serializable end to end


def test_write_and_load_json_metrics(tmp_path):
    stats, tracer = _sample_stats_and_tracer()
    out = write_metrics(tmp_path / "metrics.json", stats, tracer)
    doc = load_metrics(out)
    assert doc == metrics_document(stats, tracer)


def test_load_metrics_rejects_wrong_schema_and_shape(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": 999}))
    with pytest.raises(ValueError, match="unsupported metrics schema"):
        load_metrics(bad)
    bad.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError, match="not a repro metrics document"):
        load_metrics(bad)


def test_prometheus_textfile_format(tmp_path):
    stats, tracer = _sample_stats_and_tracer()
    out = write_metrics(tmp_path / "metrics.prom", stats, tracer)
    text = out.read_text()
    assert '# TYPE repro_stage_seconds_total counter' in text
    assert 'repro_stage_seconds_total{stage="dataset.inject"} 1.5' in text
    assert 'repro_span_calls_total{span="tables.dataset"} 1' in text
    assert 'repro_cache_hits_total{kind="design"} 3' in text
    assert 'repro_counter_total{name="faulttol.chunk.retries"} 2' in text
    # Every non-comment line is `name{label="value"} number`.
    for line in text.splitlines():
        if line and not line.startswith("#"):
            assert re.fullmatch(r'\w+\{\w+="[^"]*"\} [-+0-9.e]+', line), line


def test_render_metrics_sections():
    stats, tracer = _sample_stats_and_tracer()
    text = render_metrics(metrics_document(stats, tracer), top=1)
    assert "span tree:" in text
    assert "top 1 stage(s)" in text and "prepare.build" in text
    assert "dataset.inject" not in text.split("top 1")[1].split("cache")[0]
    assert "cache hit ratios:" in text and "75.0%" in text
    assert "faulttol events:" in text and "faulttol.chunk.retries" in text


def test_render_metrics_empty_run():
    text = render_metrics(metrics_document(RuntimeStats(), SpanTracer()))
    assert "no recorded spans" in text
    assert "(none" in text  # faulttol section present even when quiet


# ------------------------------------------------------------------- CLI
def test_cli_stats_renders_snapshot(tmp_path, capsys):
    from repro.cli import main

    stats, tracer = _sample_stats_and_tracer()
    path = write_metrics(tmp_path / "out.json", stats, tracer)
    assert main(["stats", str(path)]) == 0
    out = capsys.readouterr().out
    assert "span tree:" in out and "cache hit ratios:" in out


def test_cli_stats_bad_inputs(tmp_path, capsys):
    from repro.cli import main

    assert main(["stats", str(tmp_path / "missing.json")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["stats", str(bad)]) == 2


def test_tables_interrupt_collects_orphan_tmps_and_flushes_stats(
    tmp_path, monkeypatch, capsys
):
    """Ctrl-C mid-tables: *.tmp leftovers are collected, metrics still land."""
    import repro.cli as cli

    cache_dir = tmp_path / "cache"
    stats_out = tmp_path / "out.json"

    def interrupted_body(rt, *args, **kwargs):
        # Simulate a write interrupted mid-tempfile inside the cache tree.
        tmp = rt.cache.root / "sample_chunk" / "ab"
        tmp.mkdir(parents=True)
        (tmp / "stranded.tmp").write_bytes(b"partial")
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_tables_body", interrupted_body)
    code = cli.main(["tables", "--scale", "tiny", "--samples", "4",
                     "--only", "table3", "--cache-dir", str(cache_dir),
                     "--stats-out", str(stats_out)])
    assert code == 130
    assert not list(cache_dir.rglob("*.tmp"))
    assert load_metrics(stats_out)["schema"] == METRICS_SCHEMA
    err = capsys.readouterr().err
    assert "collected 1 orphaned tmp file(s)" in err
    assert "interrupted" in err


# ----------------------------------------------------------------- profiling
def _busy(tracer):
    with tracer.span("unit"):
        sum(range(1000))


def test_profiled_off_by_default(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
    with profiled("unit-x"):
        pass
    assert not list(tmp_path.iterdir())


def test_profiled_cprofile_dumps_prof(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "cprofile")
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
    tr = SpanTracer()
    with profiled("chunk-0-1-a0", tr):
        _busy(tr)
    prof = tmp_path / "chunk-0-1-a0.prof"
    assert prof.exists()
    import pstats

    assert pstats.Stats(str(prof)).total_calls > 0


def test_profiled_spans_dumps_per_unit_tree(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "spans")
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
    tr = SpanTracer()
    with tr.span("earlier"):
        pass  # pre-existing span: must not leak into the unit dump
    with profiled("fit-tier", tr):
        _busy(tr)
    text = (tmp_path / "fit-tier.spans.txt").read_text()
    assert "unit: fit-tier" in text and "unit" in text
    assert "earlier" not in text


def test_profiled_rejects_unknown_mode(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "flamegraph")
    with pytest.raises(ValueError, match="bad REPRO_PROFILE"):
        with profiled("x"):
            pass


def test_profile_labels_sanitized(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "spans")
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
    with profiled("design-aes/Syn 1-a0", SpanTracer()):
        pass
    assert (tmp_path / "design-aes_Syn_1-a0.spans.txt").exists()


# ------------------------------------------------------------ pipeline spans
@pytest.mark.slow
def test_fit_records_stage_spans(prepared):
    from repro.core.pipeline import M3DDiagnosisFramework

    train = DatasetRuntime(workers=1).build_dataset(prepared, "bypass", 24, SEED)
    tracer = SpanTracer()
    fw = M3DDiagnosisFramework(epochs=2, seed=0)
    fw.fit([train], tracer=tracer)
    spans = tracer.export()
    assert spans["fit"]["calls"] == 1
    assert spans["fit.tier"]["calls"] == 1
    assert spans["fit.threshold"]["calls"] == 1
