"""Unit tests for the candidate pruning and reordering policy (Figs. 7/8)."""

import numpy as np
import pytest

from repro.atpg import Polarity, stem_site
from repro.core.policy import PruneReorderPolicy
from repro.diagnosis import Candidate, DiagnosisReport
from repro.nn import GraphData


class StubTier:
    """Tier-predictor stub returning a fixed probability vector."""

    def __init__(self, proba):
        self.proba = np.asarray(proba, dtype=float)

    def predict_proba(self, graphs):
        return np.tile(self.proba, (len(graphs), 1))


class StubMiv:
    """MIV-pinpointer stub flagging fixed HetGraph node ids."""

    def __init__(self, nodes):
        self.nodes = list(nodes)

    def predict_faulty_mivs(self, graph):
        return self.nodes

    def predict_faulty_mivs_batch(self, graphs):
        return [self.nodes for _ in graphs]


class StubClassifier:
    def __init__(self, prune):
        self.prune = prune

    def should_prune(self, graph, threshold=0.5):
        return self.prune

    def should_prune_batch(self, graphs, threshold=0.5):
        return [self.prune for _ in graphs]


@pytest.fixture
def setup(prepared):
    het = prepared.het
    nl = prepared.nl
    # Build a report with candidates in both tiers plus one MIV candidate.
    tier0 = [g for g in nl.gates if g.tier == 0][:2]
    tier1 = [g for g in nl.gates if g.tier == 1][:2]
    miv = prepared.mivs[0]

    def cand(site, tier):
        return Candidate(
            site=site, polarity=Polarity.SLOW_TO_RISE, score=0.9, tier=tier
        )

    from repro.m3d import miv_fault_sites

    miv_site = miv_fault_sites(nl, [miv])[0]
    candidates = [
        cand(stem_site(nl, tier0[0].out), 0),
        cand(stem_site(nl, tier1[0].out), 1),
        cand(miv_site, None),
        cand(stem_site(nl, tier0[1].out), 0),
        cand(stem_site(nl, tier1[1].out), 1),
    ]
    report = DiagnosisReport(candidates=candidates)
    graph = GraphData(
        x=np.zeros((3, 13)),
        edges=(np.array([0]), np.array([1])),
        meta={"nodes": np.arange(3)},
    )
    return het, report, graph, miv


def test_low_confidence_reorders(setup):
    het, report, graph, _miv = setup
    policy = PruneReorderPolicy(
        StubTier([0.4, 0.6]), None, None, het, tp_threshold=0.9
    )
    result = policy.apply(report, graph)
    assert result.action == "reorder_lowconf"
    assert result.pruned == []
    assert result.report.resolution == report.resolution
    tiers = [c.tier for c in result.report.candidates]
    # Predicted tier 1 candidates come first.
    first_others = tiers.index(0)
    assert all(t != 1 for t in tiers[first_others:])


def test_high_confidence_prunes_fault_free_tier(setup):
    het, report, graph, _miv = setup
    policy = PruneReorderPolicy(
        StubTier([0.02, 0.98]), None, StubClassifier(True), het, tp_threshold=0.9
    )
    result = policy.apply(report, graph)
    assert result.action == "prune"
    assert all(c.tier in (None, 1) for c in result.report.candidates)
    assert all(c.tier == 0 for c in result.pruned)
    assert len(result.pruned) == 2


def test_classifier_can_veto_pruning(setup):
    het, report, graph, _miv = setup
    policy = PruneReorderPolicy(
        StubTier([0.02, 0.98]), None, StubClassifier(False), het, tp_threshold=0.9
    )
    result = policy.apply(report, graph)
    assert result.action == "reorder"
    assert result.pruned == []
    assert result.report.resolution == report.resolution


def test_no_classifier_means_prune_on_confidence(setup):
    het, report, graph, _miv = setup
    policy = PruneReorderPolicy(StubTier([0.98, 0.02]), None, None, het, tp_threshold=0.9)
    result = policy.apply(report, graph)
    assert result.action == "prune"
    assert all(c.tier in (None, 0) for c in result.report.candidates)


def test_miv_candidates_protected_from_pruning(setup):
    """Candidates equivalent to flagged MIVs move to the top and survive."""
    het, report, graph, miv = setup
    miv_node = het.miv_index[miv.id]
    policy = PruneReorderPolicy(
        StubTier([0.98, 0.02]),
        StubMiv([miv_node]),
        StubClassifier(True),
        het,
        tp_threshold=0.9,
    )
    result = policy.apply(report, graph)
    assert result.faulty_mivs == [miv.id]
    top = result.report.candidates[0]
    assert top.site.kind == "miv" and top.site.miv_id == miv.id


def test_miv_net_equivalence_protects_stem(setup, prepared):
    """A stem candidate on the flagged MIV's net is also promoted."""
    het, _report, graph, miv = setup
    stem = Candidate(
        site=stem_site(prepared.nl, miv.net),
        polarity=Polarity.SLOW_TO_RISE,
        score=0.5,
        tier=prepared.nl.net_tier(miv.net),
    )
    other_gate = next(g for g in prepared.nl.gates if g.out != miv.net and g.tier == 1)
    other = Candidate(
        site=stem_site(prepared.nl, other_gate.out),
        polarity=Polarity.SLOW_TO_RISE,
        score=0.9,
        tier=1,
    )
    report = DiagnosisReport(candidates=[other, stem])
    miv_node = het.miv_index[miv.id]
    policy = PruneReorderPolicy(
        StubTier([0.5, 0.5]), StubMiv([miv_node]), None, het, tp_threshold=0.9
    )
    result = policy.apply(report, graph)
    assert result.report.candidates[0].site.net == miv.net


def test_use_tier_false_only_applies_miv(setup):
    het, report, graph, miv = setup
    miv_node = het.miv_index[miv.id]
    policy = PruneReorderPolicy(
        StubTier([0.98, 0.02]),
        StubMiv([miv_node]),
        StubClassifier(True),
        het,
        tp_threshold=0.9,
        use_tier=False,
    )
    result = policy.apply(report, graph)
    assert result.predicted_tier == -1
    assert result.pruned == []
    assert result.report.resolution == report.resolution
    assert result.report.candidates[0].site.kind == "miv"
