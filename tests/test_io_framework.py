"""Unit tests for framework serialization (save/load round trip)."""

import numpy as np
import pytest

from repro.core import M3DDiagnosisFramework, load_framework, save_framework
from repro.data import build_dataset


@pytest.fixture(scope="module")
def trained(prepared):
    train = build_dataset(prepared, "bypass", 100, seed=71)
    fw = M3DDiagnosisFramework(epochs=15, seed=0)
    fw.fit([train])
    return fw, train


def test_roundtrip_predictions_identical(trained, tmp_path):
    fw, train = trained
    path = tmp_path / "fw.npz"
    save_framework(fw, path)
    fw2 = load_framework(path)
    graphs = [g for g in train.graphs if g.y >= 0][:20]
    assert np.allclose(
        fw.tier_predictor.predict_proba(graphs),
        fw2.tier_predictor.predict_proba(graphs),
    )
    assert fw2.tp_threshold == fw.tp_threshold
    if fw.miv_pinpointer is not None:
        assert fw2.miv_pinpointer is not None
        g = train.graphs[0]
        assert np.allclose(
            fw.miv_pinpointer.predict_node_proba(g),
            fw2.miv_pinpointer.predict_node_proba(g),
        )
        assert fw2.miv_pinpointer.threshold == fw.miv_pinpointer.threshold


def test_roundtrip_classifier(trained, tmp_path):
    fw, train = trained
    path = tmp_path / "fw.npz"
    save_framework(fw, path)
    fw2 = load_framework(path)
    assert (fw.classifier is None) == (fw2.classifier is None)
    if fw.classifier is not None:
        graphs = [g for g in train.graphs if g.y >= 0][:10]
        assert np.allclose(
            fw.classifier.prune_probability(graphs),
            fw2.classifier.prune_probability(graphs),
        )


def test_loaded_framework_deployable(trained, prepared, tmp_path):
    fw, _train = trained
    path = tmp_path / "fw.npz"
    save_framework(fw, path)
    fw2 = load_framework(path)
    test = build_dataset(prepared, "bypass", 5, seed=72)
    for item in test.items:
        tier, conf, _m = fw2.localize(prepared, "bypass", item.sample.log)
        assert tier in (-1, 0, 1)
        assert 0.0 <= conf <= 1.0


def test_unfitted_save_rejected(tmp_path):
    fw = M3DDiagnosisFramework()
    with pytest.raises(RuntimeError, match="unfitted"):
        save_framework(fw, tmp_path / "x.npz")
