"""Unit tests for the dataset-generation runtime's building blocks.

Covers seed derivation and the chunk grid (:mod:`repro.runtime.seeds`), the
content-addressed artifact cache (:mod:`repro.runtime.cache`), the stats
sink (:mod:`repro.runtime.instrument`), and the canonical fingerprint
helpers (:mod:`repro.runtime.fingerprint`).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.data.datagen import DesignConfig
from repro.runtime import (
    ArtifactCache,
    DatasetRequest,
    RuntimeStats,
    cache_key_hash,
    canonical_key,
    chunk_plan,
    derive_seed,
    deterministic_split,
)


# ------------------------------------------------------------------- seeds
def test_derive_seed_is_deterministic_and_sensitive():
    a = derive_seed(7, "AES", "Syn-1", "bypass", 0)
    assert a == derive_seed(7, "AES", "Syn-1", "bypass", 0)
    # Any part changing changes the stream.
    assert a != derive_seed(8, "AES", "Syn-1", "bypass", 0)
    assert a != derive_seed(7, "Tate", "Syn-1", "bypass", 0)
    assert a != derive_seed(7, "AES", "Rand-0", "bypass", 0)
    assert a != derive_seed(7, "AES", "Syn-1", "compacted", 0)
    assert a != derive_seed(7, "AES", "Syn-1", "bypass", 1)


def test_derive_seed_fits_numpy_seed_range():
    for i in range(100):
        s = derive_seed(i, "x", i * 3)
        assert 0 <= s < 2 ** 63
        np.random.default_rng(s)  # must be accepted


def test_derive_seed_no_concat_collisions():
    # ("ab", "c") must not collide with ("a", "bc").
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_chunk_plan_covers_exactly():
    for n in (0, 1, 15, 16, 17, 48, 100):
        plan = chunk_plan(n, 16)
        assert sum(size for _i, size in plan) == n
        assert [i for i, _s in plan] == list(range(len(plan)))
        assert all(1 <= size <= 16 for _i, size in plan)
        if plan:
            assert all(size == 16 for _i, size in plan[:-1])


def test_chunk_plan_rejects_bad_input():
    with pytest.raises(ValueError):
        chunk_plan(-1, 16)
    with pytest.raises(ValueError):
        chunk_plan(10, 0)


# ----------------------------------------------------------------- cache key
def test_canonical_key_is_order_independent():
    k1 = canonical_key({"b": 2, "a": 1, "nested": {"y": 0, "x": [1, 2]}})
    k2 = canonical_key({"a": 1, "nested": {"x": [1, 2], "y": 0}, "b": 2})
    assert k1 == k2
    assert cache_key_hash({"b": 2, "a": 1}) == cache_key_hash({"a": 1, "b": 2})


def test_canonical_key_flattens_dataclasses_with_type_tag():
    cfg = DesignConfig.standard("Rand-3")
    text = canonical_key({"config": cfg})
    assert "DesignConfig" in text  # __type__ tag present
    assert "103" in text  # partition_seed captured
    # Distinct configs hash differently.
    assert cache_key_hash({"c": cfg}) != cache_key_hash(
        {"c": DesignConfig.standard("Rand-4")}
    )


def test_cache_key_hash_is_stable_hex():
    h = cache_key_hash({"artifact": "design", "version": 1})
    assert h == cache_key_hash({"version": 1, "artifact": "design"})
    assert len(h) == 64
    int(h, 16)


# -------------------------------------------------------------------- cache
def test_cache_roundtrip_and_layout(tmp_path):
    stats = RuntimeStats()
    cache = ArtifactCache(tmp_path / "c", stats=stats)
    key = {"artifact": "unit", "x": 1}
    obj, hit = cache.get("unit", key)
    assert not hit and obj is None
    payload = {"arr": np.arange(5), "s": "hello"}
    cache.put("unit", key, payload)
    back, hit = cache.get("unit", key)
    assert hit
    assert np.array_equal(back["arr"], payload["arr"]) and back["s"] == "hello"
    assert stats.cache_hits == 1 and stats.cache_misses == 1
    # Two-level fan-out layout plus a readable sidecar.
    digest = cache_key_hash(key)
    pkl = tmp_path / "c" / "unit" / digest[:2] / f"{digest}.pkl"
    assert pkl.exists()
    assert pkl.with_suffix(".key.json").exists() or pkl.parent.joinpath(
        f"{digest}.key.json"
    ).exists()


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = {"artifact": "unit", "x": 2}
    cache.put("unit", key, [1, 2, 3])
    digest = cache_key_hash(key)
    pkl = tmp_path / "unit" / digest[:2] / f"{digest}.pkl"
    pkl.write_bytes(b"not a pickle")
    obj, hit = cache.get("unit", key)
    assert not hit and obj is None
    assert not pkl.exists()  # corrupt entry evicted
    # And a fresh put works again.
    cache.put("unit", key, [1, 2, 3])
    assert cache.get("unit", key)[1]


def test_cache_entries_size_and_clear(tmp_path):
    cache = ArtifactCache(tmp_path)
    for i in range(3):
        cache.put("kind_a", {"i": i}, list(range(i)))
    cache.put("kind_b", {"i": 0}, "x")
    assert cache.entries() == {"kind_a": 3, "kind_b": 1}
    assert cache.size_bytes() > 0
    assert cache.clear() == 4
    assert cache.entries() == {}
    assert cache.size_bytes() == 0


def test_cache_distinct_keys_do_not_collide(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("unit", {"seed": 1}, "one")
    cache.put("unit", {"seed": 2}, "two")
    assert cache.get("unit", {"seed": 1})[0] == "one"
    assert cache.get("unit", {"seed": 2})[0] == "two"


# ------------------------------------------------- cache failure recovery
def _entry_paths(root, kind, key):
    digest = cache_key_hash(key)
    pkl = root / kind / digest[:2] / f"{digest}.pkl"
    return pkl, pkl.with_suffix(".key.json")


def test_cache_truncated_payload_evicts_both_halves(tmp_path):
    stats = RuntimeStats()
    cache = ArtifactCache(tmp_path, stats=stats)
    key = {"artifact": "unit", "x": 3}
    cache.put("unit", key, list(range(100)))
    pkl, sidecar = _entry_paths(tmp_path, "unit", key)
    pkl.write_bytes(pkl.read_bytes()[: pkl.stat().st_size // 2])  # torn write
    obj, hit = cache.get("unit", key)
    assert not hit and obj is None
    assert stats.counters["cache.unit.corrupt"] == 1
    assert not pkl.exists() and not sidecar.exists()  # no half-entry left


def test_cache_bit_flip_is_caught_by_payload_digest(tmp_path):
    """A flipped bit mid-pickle may unpickle *silently wrong*; the sidecar's
    payload hash must catch it before the bytes reach a build."""
    stats = RuntimeStats()
    cache = ArtifactCache(tmp_path, stats=stats)
    key = {"artifact": "unit", "x": 4}
    cache.put("unit", key, np.arange(256, dtype=np.uint8))
    pkl, _sidecar = _entry_paths(tmp_path, "unit", key)
    data = bytearray(pkl.read_bytes())
    data[len(data) // 2] ^= 0x40  # same length, one bad bit
    pkl.write_bytes(bytes(data))
    obj, hit = cache.get("unit", key)
    assert not hit and obj is None
    assert stats.counters["cache.unit.corrupt"] == 1


def test_cache_missing_sidecar_is_a_miss_and_evicts(tmp_path):
    stats = RuntimeStats()
    cache = ArtifactCache(tmp_path, stats=stats)
    key = {"artifact": "unit", "x": 5}
    cache.put("unit", key, "payload")
    pkl, sidecar = _entry_paths(tmp_path, "unit", key)
    sidecar.unlink()
    obj, hit = cache.get("unit", key)
    assert not hit and obj is None
    assert stats.counters["cache.unit.desynced"] == 1
    assert not pkl.exists()


def test_cache_desynced_sidecar_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = {"artifact": "unit", "x": 6}
    cache.put("unit", key, "payload")
    pkl, sidecar = _entry_paths(tmp_path, "unit", key)
    # Sidecar claims a different key: the record lies about the bytes.
    other_doc = ArtifactCache._sidecar_doc(canonical_key({"x": 99}), b"payload")
    sidecar.write_bytes(other_doc)
    assert cache.get("unit", key) == (None, False)
    assert not pkl.exists() and not sidecar.exists()


def test_cache_put_leaves_no_tempfiles(tmp_path):
    cache = ArtifactCache(tmp_path)
    for i in range(5):
        cache.put("unit", {"i": i}, list(range(i)))
    assert not list(tmp_path.rglob("*.tmp"))


def test_gc_orphans_respects_age_guard(tmp_path):
    import os

    cache = ArtifactCache(tmp_path)
    cache.put("unit", {"x": 1}, "v")
    fresh = tmp_path / "unit" / "fresh.tmp"
    stale = tmp_path / "unit" / "stale.tmp"
    fresh.write_bytes(b"x")
    stale.write_bytes(b"x")
    os.utime(stale, (0, 0))  # ancient mtime
    assert cache.gc_orphans(max_age_s=3600.0) == 1  # only the stale one
    assert fresh.exists() and not stale.exists()
    assert cache.gc_orphans(max_age_s=0.0) == 1  # zero age collects the rest
    assert cache.get("unit", {"x": 1})[1]  # real entries untouched


def test_doctor_reports_and_fixes_every_problem_class(tmp_path):
    cache = ArtifactCache(tmp_path)
    for i in range(4):
        cache.put("unit", {"i": i}, list(range(8)))
    healthy = cache.doctor(deep=True)
    assert healthy.problems == 0
    assert healthy.entries == {"unit": 4}
    assert "0 problem(s)" in healthy.report()

    p0, s0 = _entry_paths(tmp_path, "unit", {"i": 0})
    p1, s1 = _entry_paths(tmp_path, "unit", {"i": 1})
    p2, s2 = _entry_paths(tmp_path, "unit", {"i": 2})
    p3, s3 = _entry_paths(tmp_path, "unit", {"i": 3})
    s0.unlink()                                    # payload without sidecar
    p1.unlink()                                    # dangling sidecar
    s2.write_text("{ torn")                        # desynced sidecar
    data = bytearray(p3.read_bytes())
    data[len(data) // 2] ^= 0x01
    p3.write_bytes(bytes(data))                    # silent bit rot
    (tmp_path / "unit" / "x.tmp").write_bytes(b"")  # interrupted write

    shallow = cache.doctor()
    assert len(shallow.missing_sidecars) == 1
    assert len(shallow.dangling_sidecars) == 1
    assert len(shallow.desynced_sidecars) == 1
    assert shallow.corrupt_payloads == []  # bit rot needs the deep audit
    assert len(shallow.orphan_tmps) == 1

    deep = cache.doctor(deep=True)
    assert [p.name for p in deep.corrupt_payloads] == [p3.name]
    assert deep.problems == 5
    assert "desynced sidecar" in deep.report()

    cache.doctor(deep=True, fix=True, tmp_max_age_s=0.0)
    repaired = cache.doctor(deep=True)
    assert repaired.problems == 0
    assert sum(repaired.entries.values()) == 0  # every damaged entry evicted


def test_doctor_ignores_manifests_dir(tmp_path):
    from repro.runtime import ProgressManifest

    cache = ArtifactCache(tmp_path)
    cache.put("unit", {"x": 1}, "v")
    ProgressManifest(tmp_path / "manifests" / "m.json", {"r": 1}).mark_done("s")
    health = cache.doctor(deep=True)
    assert health.problems == 0
    assert health.entries == {"unit": 1}
    assert cache.entries() == {"unit": 1}


# -------------------------------------------------------------- instrument
def test_runtime_stats_timing_counters_and_report():
    stats = RuntimeStats()
    with stats.timed("stage.a"):
        pass
    stats.add_time("stage.a", 1.5)
    stats.count("cache.design.hit", 2)
    stats.count("cache.chunk.miss")
    assert stats.stage_calls["stage.a"] == 2
    assert stats.stage_seconds["stage.a"] >= 1.5
    assert stats.cache_hits == 2 and stats.cache_misses == 1
    text = stats.report()
    assert "stage.a" in text and "cache.design.hit" in text
    stats.clear()
    assert stats.report().endswith("(no recorded activity)")


def test_runtime_stats_merge_and_progress():
    seen = []
    a = RuntimeStats(progress=seen.append)
    a.emit("hello")
    assert seen == ["hello"]
    b = RuntimeStats()
    b.add_time("s", 2.0)
    b.count("n", 3)
    a.add_time("s", 1.0)
    a.merge(b)
    assert a.stage_seconds["s"] == pytest.approx(3.0)
    assert a.stage_calls["s"] == 2
    assert a.counters["n"] == 3


# ------------------------------------------------------------- fingerprints
def test_deterministic_split_is_pure_and_well_formed():
    s1 = deterministic_split(100, seed=0)
    s2 = deterministic_split(100, seed=0)
    assert np.array_equal(s1, s2)
    assert len(s1) == 20  # round(0.2 * 100)
    assert np.array_equal(s1, np.sort(s1))
    assert len(np.unique(s1)) == len(s1)
    assert s1.min() >= 0 and s1.max() < 100
    # Different seed / size → different fold.
    assert not np.array_equal(s1, deterministic_split(100, seed=1))
    assert len(deterministic_split(0)) == 0
    with pytest.raises(ValueError):
        deterministic_split(-1)


def test_dataset_request_is_frozen_and_hashable():
    req = DatasetRequest("bypass", 10, 7)
    assert req.kind == "single" and req.miv_fraction == 0.15
    with pytest.raises(Exception):
        req.seed = 8
    assert hash(req) == hash(DatasetRequest("bypass", 10, 7))
    assert pickle.loads(pickle.dumps(req)) == req
