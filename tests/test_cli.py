"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "AES" in out and "leon3mp" in out


def test_export_verilog(tmp_path, capsys):
    path = tmp_path / "aes.v"
    assert main(["export", "--benchmark", "AES", "--scale", "tiny",
                 "--output", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("module")
    from repro.netlist import loads

    nl = loads(text)
    assert nl.n_gates > 0


def test_export_bench_stdout(capsys):
    assert main(["export", "--benchmark", "Tate", "--scale", "tiny",
                 "--format", "bench"]) == 0
    out = capsys.readouterr().out
    assert "INPUT(" in out and "DFF(" in out


def test_tables_rejects_unknown_ids(capsys):
    assert main(["tables", "--only", "table99"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.slow
def test_tables_single_table(capsys):
    assert main(["tables", "--scale", "tiny", "--samples", "8",
                 "--only", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out
