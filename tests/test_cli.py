"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "AES" in out and "leon3mp" in out


def test_export_verilog(tmp_path, capsys):
    path = tmp_path / "aes.v"
    assert main(["export", "--benchmark", "AES", "--scale", "tiny",
                 "--output", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("module")
    from repro.netlist import loads

    nl = loads(text)
    assert nl.n_gates > 0


def test_export_bench_stdout(capsys):
    assert main(["export", "--benchmark", "Tate", "--scale", "tiny",
                 "--format", "bench"]) == 0
    out = capsys.readouterr().out
    assert "INPUT(" in out and "DFF(" in out


def test_tables_rejects_unknown_ids(capsys):
    assert main(["tables", "--only", "table99"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ------------------------------------------------------------------ doctor
def test_doctor_requires_cache_dir(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["doctor"]) == 2
    assert "no cache directory" in capsys.readouterr().err


def test_doctor_healthy_cache(tmp_path, capsys):
    from repro.runtime import ArtifactCache

    ArtifactCache(tmp_path).put("unit", {"x": 1}, [1, 2, 3])
    assert main(["doctor", "--cache-dir", str(tmp_path), "--deep"]) == 0
    out = capsys.readouterr().out
    assert "1 artifact(s), 0 problem(s)" in out


def test_doctor_reports_then_fixes_problems(tmp_path, capsys):
    from repro.runtime import ArtifactCache, cache_key_hash

    import os

    cache = ArtifactCache(tmp_path)
    cache.put("unit", {"x": 1}, [1, 2, 3])
    digest = cache_key_hash({"x": 1})
    (tmp_path / "unit" / digest[:2] / f"{digest}.key.json").unlink()
    stale = tmp_path / "unit" / "stale.tmp"
    stale.write_bytes(b"")
    os.utime(stale, (0, 0))  # old enough for --fix's tmp age guard

    assert main(["doctor", "--cache-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "2 problem(s)" in out
    assert "payload without sidecar" in out and "orphan tmp file" in out

    assert main(["doctor", "--cache-dir", str(tmp_path), "--fix"]) == 0
    assert "repaired 2 problem(s)" in capsys.readouterr().out
    assert main(["doctor", "--cache-dir", str(tmp_path)]) == 0


def test_doctor_honors_env_cache_dir(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["doctor"]) == 0
    assert "0 problem(s)" in capsys.readouterr().out


@pytest.mark.slow
def test_tables_single_table(capsys):
    assert main(["tables", "--scale", "tiny", "--samples", "8",
                 "--only", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out


# ------------------------------------------------------------------- serve
def test_serve_requires_a_frontend(capsys):
    assert main(["serve"]) == 2
    assert "--http" in capsys.readouterr().err


def test_serve_rejects_empty_config_list(capsys):
    assert main(["serve", "--stdin", "--configs", " , "]) == 2
    assert "at least one" in capsys.readouterr().err


def test_serve_stdin_end_to_end(monkeypatch, capsys):
    """`repro serve --stdin` answers a real datalog and a garbage line."""
    import io
    import json

    from repro import DesignConfig, GeneratorSpec, build_dataset, prepare_design
    from repro.tester.datalog import dumps_datalog

    # The same design the serve command builds for these flags.
    spec = GeneratorSpec("serve-syn-1", "aes_like", 120, 16, 16, 16, seed=7)
    design = prepare_design(
        spec, DesignConfig.standard("Syn-1"), n_chains=4, chains_per_channel=2,
        max_patterns=128,
    )
    chip = build_dataset(design, "bypass", 1, seed=5).items[0]
    submission = {
        "id": "cli0",
        "datalog": dumps_datalog(chip.sample.log, "chip0", design.obsmap("bypass")),
    }
    lines = json.dumps(submission) + "\nnot json at all\n"
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))

    assert main(["serve", "--stdin", "--gates", "120", "--train-samples", "12",
                 "--epochs", "2", "--max-batch", "4"]) == 0
    captured = capsys.readouterr()
    # Response lines only — the runtime's [stage] progress also hits stdout.
    docs = [json.loads(ln) for ln in captured.out.splitlines()
            if ln.startswith("{")]
    assert len(docs) == 2
    assert docs[0]["ok"] and docs[0]["id"] == "cli0" and docs[0]["chip"] == "chip0"
    assert docs[0]["provenance"]["model_version"] == "v1"
    assert not docs[1]["ok"] and docs[1]["error"]["type"] == "bad_json"
    assert "served 2 stdin submission(s)" in captured.err
