"""Property-based tests with seeded hand-rolled generators.

Complements the hypothesis suite in ``test_properties.py`` with
dependency-free randomized sweeps: bit-packing round-trips over ragged
pattern counts (:mod:`repro.sim.bitpack`) and structural invariants of the
heterogeneous graph (:mod:`repro.core.hetgraph`) over generated designs —
every Topedge targets a live node, MIV nodes carry the spanning tier label,
and no edge dangles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hetgraph import NodeKind
from repro.sim.bitpack import (
    WORD_BITS,
    int_to_bits,
    n_words_for,
    pack_patterns,
    rows_to_ints,
    tail_mask,
    unpack_patterns,
)

#: Boundary pattern counts around the 64-bit word size, plus seeded
#: random ragged counts drawn per test.
RAGGED_COUNTS = (1, 2, 63, 64, 65, 127, 128, 129)


def _random_cases(seed: int, n_cases: int):
    """Hand-rolled generator: (rng, shape-prefix, n_patterns) triples."""
    rng = np.random.default_rng(seed)
    for _ in range(n_cases):
        ndim = int(rng.integers(1, 4))
        prefix = tuple(int(rng.integers(1, 5)) for _ in range(ndim - 1))
        n_pat = int(rng.integers(1, 200))
        yield rng, prefix, n_pat


# ------------------------------------------------------------------ bitpack
def test_n_words_and_tail_mask_boundaries():
    assert n_words_for(0) == 1  # always at least one word
    for n in RAGGED_COUNTS:
        assert n_words_for(n) == -(-n // WORD_BITS) or n == 0
        mask = int(tail_mask(n))
        rem = n % WORD_BITS
        assert mask == (2 ** 64 - 1 if rem == 0 else (1 << rem) - 1)


@pytest.mark.parametrize("n_pat", RAGGED_COUNTS)
def test_pack_unpack_roundtrip_ragged(n_pat):
    rng = np.random.default_rng(n_pat)
    values = rng.integers(0, 2, size=(3, n_pat), dtype=np.uint8)
    packed = pack_patterns(values)
    assert packed.shape == (3, n_words_for(n_pat))
    assert packed.dtype == np.uint64
    assert np.array_equal(unpack_patterns(packed, n_pat), values)
    # Tail bits beyond n_patterns are zeroed by pack_patterns.
    assert np.all(packed[:, -1] & ~tail_mask(n_pat) == 0)


def test_pack_unpack_roundtrip_random_shapes():
    for rng, prefix, n_pat in _random_cases(seed=99, n_cases=40):
        values = rng.integers(0, 2, size=prefix + (n_pat,), dtype=np.uint8)
        back = unpack_patterns(pack_patterns(values), n_pat)
        assert back.shape == values.shape
        assert np.array_equal(back, values)


def test_unpack_discards_garbage_tail():
    rng = np.random.default_rng(7)
    for n_pat in (1, 63, 65, 100):
        values = rng.integers(0, 2, size=(2, n_pat), dtype=np.uint8)
        dirty = pack_patterns(values).copy()
        dirty[:, -1] |= ~tail_mask(n_pat)  # wreck the padding bits
        assert np.array_equal(unpack_patterns(dirty, n_pat), values)


def test_bool_input_packs_like_uint8():
    rng = np.random.default_rng(11)
    values = rng.integers(0, 2, size=(4, 77), dtype=np.uint8)
    assert np.array_equal(pack_patterns(values.astype(bool)), pack_patterns(values))


def test_rows_to_ints_bit_layout_and_roundtrip():
    for rng, _prefix, n_pat in _random_cases(seed=123, n_cases=25):
        values = rng.integers(0, 2, size=(3, n_pat), dtype=np.uint8)
        ints = rows_to_ints(pack_patterns(values))
        assert len(ints) == 3
        for row, value in zip(values, ints):
            # Bit p of the big-int is pattern p.
            assert value == sum(int(b) << p for p, b in enumerate(row))
            assert np.array_equal(int_to_bits(value, n_pat), row)


def test_rows_to_ints_accepts_1d_rows():
    values = np.array([1, 0, 1, 1], dtype=np.uint8)
    (as_int,) = rows_to_ints(pack_patterns(values))
    assert as_int == 0b1101
    assert np.array_equal(int_to_bits(as_int, 4), values)


# ----------------------------------------------------------------- hetgraph
@pytest.fixture(params=["aes-Syn-1", "aes-Par"])
def het_design(request, prepared, prepared_par):
    return prepared if request.param == "aes-Syn-1" else prepared_par


def test_hetgraph_no_dangling_edges(het_design):
    het = het_design.het
    src, dst = het.edges
    assert len(src) == len(dst)
    for arr in (src, dst):
        assert arr.min() >= 0 and arr.max() < het.n_nodes
    # No self-loops in the circuit-level graph.
    assert not np.any(src == dst)


def test_hetgraph_miv_nodes_span_tiers(het_design):
    het = het_design.het
    miv_mask = het.kind == NodeKind.MIV
    assert miv_mask.sum() == len(het_design.mivs)
    # MIV nodes carry the spanning tier label; everything else sits on a tier.
    assert np.all(het.tier[miv_mask] == 0.5)
    assert np.all(np.isin(het.tier[~miv_mask], (0.0, 1.0)))
    assert np.all(het.miv_id[miv_mask] >= 0)
    assert np.all(het.miv_id[~miv_mask] == -1)
    assert np.all(het.connects_miv[miv_mask])
    # Every physical MIV resolves to exactly its node.
    for m in het_design.mivs:
        v = het.miv_index[m.id]
        assert het.kind[v] == NodeKind.MIV and het.miv_id[v] == m.id


def test_hetgraph_topedges_target_existing_nodes(het_design):
    het = het_design.het
    assert het.cone_mask.shape == (het.n_topnodes, het.n_nodes)
    assert het.topedge_dist.shape == het.cone_mask.shape
    assert het.topedge_miv.shape == het.cone_mask.shape
    in_cone = het.cone_mask.astype(bool)
    # A Topedge exists exactly where the cone says so, with sane features.
    assert np.all(het.topedge_dist[in_cone] >= 0)
    assert np.all(het.topedge_miv[in_cone] >= 0)
    assert np.all(het.topedge_dist[~in_cone] == -1)
    # Every Topnode observes at least its own observation net's stem.
    for t, obs_net in enumerate(het.topnode_nets):
        assert 0 <= obs_net < het.nl.n_nets
        stem = int(het.stem_of_net[obs_net])
        assert stem >= 0 and in_cone[t, stem]
        assert het.topnode_of_net[obs_net] == t


def test_hetgraph_node_identity_maps_are_consistent(het_design):
    het = het_design.het
    for n in range(het.nl.n_nets):
        v = int(het.stem_of_net[n])
        assert v >= 0
        assert het.kind[v] == NodeKind.STEM and het.net[v] == n
    for (g, p), v in het.branch_index.items():
        assert het.kind[v] == NodeKind.BRANCH
        assert het.gate[v] == g and het.pin[v] == p
        assert het.net[v] == het.nl.gates[g].fanin[p]


def test_hetgraph_invariants_over_random_specs():
    """Seeded sweep over fresh designs (both partitioners, varied sizes)."""
    from repro.data import DesignConfig, prepare_design
    from repro.netlist import GeneratorSpec

    rng = np.random.default_rng(2024)
    for _ in range(2):
        n_gates = int(rng.integers(90, 150))
        seed = int(rng.integers(0, 1000))
        config = "Rand-0" if rng.integers(2) else "Syn-1"
        design = prepare_design(
            GeneratorSpec("prop", "netcard_like", n_gates, 12, 8, 6, seed=seed),
            DesignConfig.standard(config),
            n_chains=3,
            chains_per_channel=3,
            max_patterns=32,
        )
        het = design.het
        src, dst = het.edges
        assert src.min() >= 0 and dst.max() < het.n_nodes
        miv_mask = het.kind == NodeKind.MIV
        assert np.all(het.tier[miv_mask] == 0.5)
        in_cone = het.cone_mask.astype(bool)
        assert np.all(het.topedge_dist[in_cone] >= 0)
        assert np.all(het.topedge_dist[~in_cone] == -1)
