"""Command-line interface.

Installed as the ``repro`` console script::

    repro info                      # library and benchmark-suite overview
    repro demo                      # end-to-end single-chip diagnosis demo
    repro tables --scale tiny ...   # regenerate paper tables/figures
    repro export --benchmark AES    # dump a generated benchmark netlist
    repro cache --cache-dir DIR     # inspect / clear the artifact cache
    repro doctor --cache-dir DIR    # audit / repair artifact-cache health
    repro stats out.json            # render a --stats-out metrics snapshot
    repro serve --http :8341        # diagnosis-as-a-service (batched GNN)
    repro check --self              # repro-lint the package sources
    repro check a.py d.bench p.pkl  # lint sources / DRC netlists & designs
    repro lint ...                  # alias for check

The table runner mirrors the pytest benchmark harness but prints straight to
stdout, which is convenient for quick looks without pytest.  ``demo`` and
``tables`` accept ``--workers N`` / ``--cache-dir DIR`` to fan dataset
generation out over a process pool and persist prepared designs and sample
chunks in the content-addressed artifact cache (results are byte-identical
for any worker count; see ``repro.runtime``).

Long runs are interruption-safe: with a cache directory configured,
``tables`` records each completed table in an atomic progress manifest and
model training checkpoints per stage, so Ctrl-C / SIGTERM tears the worker
pool down promptly, prints a resume hint, and re-running the same command
picks up from the last completed stage.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

__all__ = ["main", "build_parser"]

#: Table/figure ids accepted by ``repro tables --only``.
TABLE_CHOICES = (
    "table2", "table3", "table5", "table6", "table7", "table8",
    "table9", "table10", "table11", "fig5", "fig6", "fig10", "three-tier",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNN-based delay-fault localization for monolithic 3D ICs "
        "(DATE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and benchmark-suite overview")

    def add_runtime_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="dataset-generation worker processes (default: "
                            "$REPRO_WORKERS or 1; results are identical for any N)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed artifact cache directory "
                            "(default: $REPRO_CACHE_DIR or no cache)")
        p.add_argument("--stats-out", default=None, metavar="FILE",
                       help="write a metrics snapshot (span tree, stage "
                            "timings, cache/faulttol counters) on exit — "
                            "JSON by default, Prometheus textfile for "
                            ".prom/.txt; render with `repro stats FILE`")

    demo = sub.add_parser("demo", help="end-to-end single-chip diagnosis demo")
    demo.add_argument("--gates", type=int, default=400, help="design size")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--nn-backend", default=None, metavar="SPEC",
                      help="tensor backend for the GNN models (numpy, torch, "
                           "torch-cpu, torch-cuda, auto); default consults "
                           "$REPRO_NN_BACKEND, then the numpy oracle")
    add_runtime_args(demo)

    tables = sub.add_parser("tables", help="regenerate paper tables/figures")
    tables.add_argument("--scale", choices=("default", "tiny"), default="tiny")
    tables.add_argument("--samples", type=int, default=20, help="test chips per point")
    tables.add_argument(
        "--only",
        default=None,
        help=f"comma-separated subset of: {', '.join(TABLE_CHOICES)}",
    )
    tables.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="ignore (and discard) any checkpoint manifest from an "
             "interrupted run with the same parameters",
    )
    add_runtime_args(tables)

    coordinator = sub.add_parser(
        "coordinator",
        help="run a tables build as a distributed coordinator",
        description="Serve dataset-generation work units to `repro worker` "
        "processes over the lease-based wire protocol while running the "
        "tables build.  Workers may connect at any time (they retry with "
        "backoff); a cluster that stalls or partitions degrades to the "
        "local fault-tolerant executor, so the build always completes — "
        "with fingerprints byte-identical to a serial run.",
    )
    coordinator.add_argument("--scale", choices=("default", "tiny"), default="tiny")
    coordinator.add_argument("--samples", type=int, default=20,
                             help="test chips per point")
    coordinator.add_argument(
        "--only", default=None,
        help=f"comma-separated subset of: {', '.join(TABLE_CHOICES)}",
    )
    coordinator.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="ignore (and discard) any checkpoint manifest from an "
             "interrupted run with the same parameters",
    )
    coordinator.add_argument("--host", default="127.0.0.1",
                             help="listen address (default: 127.0.0.1)")
    coordinator.add_argument("--port", type=int, default=0,
                             help="listen port (default: 0 = pick a free "
                                  "port, printed at startup)")
    coordinator.add_argument("--lease-timeout", type=float, default=10.0,
                             metavar="S",
                             help="lease lifetime without a worker heartbeat")
    coordinator.add_argument("--fallback-after", type=float, default=10.0,
                             metavar="S",
                             help="remote-progress silence before the build "
                                  "degrades to local execution")
    add_runtime_args(coordinator)

    worker = sub.add_parser(
        "worker",
        help="serve work units for a `repro coordinator`",
        description="Connect to a coordinator, lease work units, execute "
        "them, and push results back.  Reconnects with deterministic "
        "seeded backoff; exits 0 on coordinator-initiated shutdown, 3 when "
        "the reconnect budget is exhausted.",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    worker.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="local disk tier for fetched designs "
                             "(default: $REPRO_CACHE_DIR or none)")
    worker.add_argument("--max-reconnects", type=int, default=30, metavar="N",
                        help="consecutive failed connections tolerated "
                             "before giving up (default: 30)")

    export = sub.add_parser("export", help="dump a generated benchmark netlist")
    export.add_argument("--benchmark", choices=("AES", "Tate", "netcard", "leon3mp"),
                        default="AES")
    export.add_argument("--scale", choices=("default", "tiny", "large"),
                        default="default")
    export.add_argument("--format", choices=("verilog", "bench"), default="verilog")
    export.add_argument("--output", default="-", help="file path or - for stdout")

    cache = sub.add_parser("cache", help="inspect or clear the artifact cache")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: $REPRO_CACHE_DIR)")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached artifact")

    stats = sub.add_parser(
        "stats",
        help="render a metrics snapshot written by --stats-out",
        description="Render a JSON metrics document (written by the demo/"
        "tables --stats-out flag): the hierarchical span tree, the top-N "
        "stages by wall-clock, per-kind cache hit ratios, and fault-"
        "tolerance events (retries, timeouts, pool respawns, degradations).",
    )
    stats.add_argument("metrics", metavar="FILE",
                       help="JSON metrics file (--stats-out output)")
    stats.add_argument("--top", type=int, default=10, metavar="N",
                       help="stages to list in the wall-clock ranking "
                            "(default: 10)")

    serve = sub.add_parser(
        "serve",
        help="diagnosis-as-a-service: batched GNN inference over HTTP/stdin",
        description="Run a long-lived diagnosis server.  Failure-log "
        "submissions (JSON with a tester datalog, optionally a precomputed "
        "ATPG candidate list) arrive over HTTP (POST /diagnose, single "
        "object or JSONL) or stdin JSONL; concurrent requests are packed "
        "into block-diagonal GCN forwards by a bounded-queue batcher "
        "(full queue => HTTP 429, explicit backpressure).  Models are "
        "warm-loaded per design config into a versioned registry and can "
        "be swapped atomically via POST /models/activate.  GET /healthz, "
        "/metrics (Prometheus), /models for introspection.",
    )
    serve.add_argument("--http", default=None, metavar="HOST:PORT",
                       help="HTTP listen address (port 0 picks a free port, "
                            "printed at startup)")
    serve.add_argument("--stdin", dest="stdin_mode", action="store_true",
                       help="serve JSONL submissions from stdin, responses "
                            "to stdout (combinable with --http)")
    serve.add_argument("--gates", type=int, default=300, help="design size")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--configs", default="Syn-1", metavar="LIST",
                       help="comma-separated design configs to serve "
                            "(Syn-1, TPI, Syn-2, Par; default: Syn-1)")
    serve.add_argument("--mode", choices=("bypass", "compacted"),
                       default="bypass", help="default observation mode")
    serve.add_argument("--framework", default=None, metavar="FILE.npz",
                       help="warm-load versioned framework weights instead "
                            "of training at startup")
    serve.add_argument("--model-version", default="v1", metavar="TAG",
                       help="version tag for the startup model (default: v1)")
    serve.add_argument("--train-samples", type=int, default=120, metavar="N",
                       help="training chips per config when no --framework "
                            "is given (default: 120)")
    serve.add_argument("--epochs", type=int, default=20)
    serve.add_argument("--max-batch", type=int, default=64, metavar="N",
                       help="most requests packed into one forward pass")
    serve.add_argument("--max-queue", type=int, default=256, metavar="N",
                       help="bounded request-queue capacity (full => 429)")
    serve.add_argument("--flush-interval", type=float, default=0.02,
                       metavar="S", help="batch-thread poll interval")
    serve.add_argument("--nn-backend", default=None, metavar="SPEC",
                       help="tensor backend for the GNN models (numpy, "
                            "torch, torch-cpu, torch-cuda, auto)")
    add_runtime_args(serve)

    doctor = sub.add_parser(
        "doctor",
        help="audit artifact-cache health (orphan tmps, desynced sidecars, "
             "leaked shared-memory segments, stale distributed-tier state)",
        description="Audit the content-addressed cache for damage an "
        "interrupted or faulty run can leave behind: orphaned *.tmp files, "
        "sidecars without payloads, payloads without (or with desynced) "
        "sidecars, and — with --deep — payloads that no longer unpickle.  "
        "Also scans for repro_* shared-memory segments whose owning process "
        "is dead (a crashed parallel build's spill/result planes), stale "
        "distributed-tier state (lease files of dead coordinators, orphaned "
        "result-store entries, stale run markers), and checkpoint manifests "
        "no current run key can match; --fix reaps them.  Exits 0 when "
        "healthy, 1 when problems were found.",
    )
    doctor.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: $REPRO_CACHE_DIR)")
    doctor.add_argument("--deep", action="store_true",
                        help="also unpickle every payload (slow; catches bit rot)")
    doctor.add_argument("--fix", action="store_true",
                        help="evict inconsistent entries and collect orphan tmps")

    check = sub.add_parser(
        "check",
        aliases=["lint"],
        help="static analysis: repro-lint sources, structural DRC on netlists",
        description="Run repro-lint (determinism/cache-safety rules RPL001…), "
        "the backend-purity analyzer (BPL001…), and the resource-lifecycle/"
        "fork-safety analyzer (RCL001…) over Python sources, and the "
        "structural DRC engine (rules DRC001…) over netlists and prepared "
        "designs.  Inline '# repro-lint: disable=' directives and the "
        "baseline file silence findings; dead suppressions surface as "
        "SUP001.  Exits 1 when anything fires.",
    )
    check.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=".py file or directory (repro-lint + purity + lifecycle); "
        ".bench/.v netlist or .pkl pickled Netlist/PreparedDesign (DRC)")
    check.add_argument(
        "--self", dest="check_self", action="store_true",
        help="analyze the installed repro package sources (the CI gate): "
        "repro-lint everywhere, backend purity over nn/, lifecycle over "
        "runtime/, plus the unused-suppression audit")
    check.add_argument(
        "--no-deep", dest="deep", action="store_false",
        help="skip the Topedge re-verification (DRC031) on pickled designs")
    check.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogs and exit")
    check.add_argument(
        "--format", dest="fmt", choices=("text", "json"), default="text",
        help="output format: human-readable text (default) or a JSON "
        "document with structured findings (rule, path, line, col, "
        "message, symbol) for CI annotation")
    check.add_argument(
        "--baseline", default=".repro-baseline.json", metavar="FILE",
        help="baseline file of acknowledged findings (default: "
        ".repro-baseline.json; a missing file is an empty baseline); "
        "baselined findings don't fail the run, stale entries do")
    return parser


def _configure_runtime(workers: Optional[int], cache_dir: Optional[str]):
    """Apply CLI runtime flags to the process-global dataset runtime."""
    from repro.runtime import configure

    rt = configure(workers=workers, cache_dir=cache_dir)
    rt.stats.progress = print  # surface fan-out / cache progress lines
    return rt


def _cmd_info() -> int:
    import repro
    from repro.experiments.benchmarks import BENCHMARKS

    print(f"repro {repro.__version__} — reproduction of Hung et al., DATE 2022")
    print("\nscaled benchmark suite (Syn-1 generation parameters):")
    print(f"{'design':10s} {'scale':8s} {'gates':>6s} {'flops':>6s} {'chains':>7s} {'maxpat':>7s}")
    for scale, suite in BENCHMARKS.items():
        for name, spec in suite.items():
            g = spec.generator
            print(
                f"{name:10s} {scale:8s} {g.n_gates:6d} {g.n_flops:6d} "
                f"{spec.n_chains:7d} {spec.max_patterns:7d}"
            )
    print("\nrun `repro tables --scale tiny` for a quick table sweep,")
    print("or `pytest benchmarks/ --benchmark-only` for the full harness.")
    return 0


def _resume_hint(cache_dir_used: bool) -> str:
    if cache_dir_used:
        return ("interrupted — cached artifacts and checkpoints are intact; "
                "re-run the same command to resume from the last completed stage")
    return ("interrupted — re-run with --cache-dir DIR to make the next "
            "interruption resumable")


def _write_stats_out(rt, stats_out: Optional[str]) -> None:
    """Export the run's metrics snapshot (JSON or Prometheus textfile)."""
    if not stats_out:
        return
    from repro.obs import write_metrics

    out = write_metrics(stats_out, rt.stats, rt.tracer)
    print(f"wrote metrics snapshot to {out}", file=sys.stderr)


def _interrupted(rt, stats_out: Optional[str]) -> int:
    """Shared Ctrl-C/SIGTERM epilogue: clean the cache, flush metrics.

    The worker pool is already torn down by the time the interrupt
    propagates here (``run_units`` terminates it in its own handler), so no
    concurrent writer can own an in-flight tempfile: collect *all* ``*.tmp``
    leftovers (age 0) rather than stranding this run's until the next
    ``repro doctor``.  The metrics snapshot is still written — an
    interrupted run is exactly the one whose timings need inspecting.
    """
    if rt.cache is not None:
        removed = rt.cache.gc_orphans(0.0)
        if removed:
            print(f"collected {removed} orphaned tmp file(s)", file=sys.stderr)
    _write_stats_out(rt, stats_out)
    print(f"\n{_resume_hint(rt.cache is not None)}", file=sys.stderr)
    return 130


def _cmd_demo(gates: int, seed: int, workers: Optional[int] = None,
              cache_dir: Optional[str] = None,
              stats_out: Optional[str] = None,
              nn_backend: Optional[str] = None) -> int:
    from repro.runtime import handle_termination

    rt = _configure_runtime(workers, cache_dir)
    try:
        with handle_termination(), rt.tracer.span("demo"):
            code = _demo_body(rt, gates, seed, nn_backend)
    except KeyboardInterrupt:
        return _interrupted(rt, stats_out)
    _write_stats_out(rt, stats_out)
    return code


def _demo_body(rt, gates: int, seed: int, nn_backend: Optional[str] = None) -> int:
    from repro import (
        DesignConfig,
        EffectCauseDiagnoser,
        GeneratorSpec,
        M3DDiagnosisFramework,
        first_hit_index,
        report_is_accurate,
    )

    t0 = time.perf_counter()
    spec = GeneratorSpec("demo", "aes_like", gates, max(16, gates // 8), 16, 16, seed=seed)
    design = rt.prepare(spec, DesignConfig.standard("Syn-1"), n_chains=4,
                        chains_per_channel=2, max_patterns=128)
    print(f"prepared {design.nl} with {len(design.mivs)} MIVs "
          f"({time.perf_counter() - t0:.1f}s)")
    train = rt.build_dataset(design, "bypass", 120, seed=0)
    chip = rt.build_dataset(design, "bypass", 1, seed=999).items[0]
    print(f"injected {chip.faults[0].label}; "
          f"{len(chip.sample.log)} failing responses")

    diag = EffectCauseDiagnoser(design.nl, design.obsmap("bypass"), design.patterns,
                                mivs=design.mivs, sim=design.sim)
    report = diag.diagnose(chip.sample.log)
    fw = M3DDiagnosisFramework(epochs=20, seed=0, nn_backend=nn_backend)
    fw.fit([train], stats_sink=rt.stats, tracer=rt.tracer)
    result = fw.diagnose(design, "bypass", chip.sample.log, report, graph=chip.graph)
    print(f"ATPG report: {report.resolution} candidates; after policy "
          f"({result.action}): {result.report.resolution}")
    print(f"accurate={report_is_accurate(result.report, chip.faults)} "
          f"first-hit={first_hit_index(result.report, chip.faults)} "
          f"predicted tier={result.predicted_tier} (p={result.confidence:.2f})")
    report_text = rt.stats.report()
    if report_text:
        print(f"\n{report_text}")
    return 0


def _cmd_tables(scale: str, samples: int, only: Optional[str],
                workers: Optional[int] = None, cache_dir: Optional[str] = None,
                resume: bool = True, stats_out: Optional[str] = None) -> int:
    from repro.runtime import handle_termination

    rt = _configure_runtime(workers, cache_dir)
    try:
        with handle_termination(), rt.tracer.span("tables"):
            code = _tables_body(rt, scale, samples, only, resume)
    except KeyboardInterrupt:
        return _interrupted(rt, stats_out)
    _write_stats_out(rt, stats_out)
    return code


def _tables_body(rt, scale: str, samples: int, only: Optional[str],
                 resume: bool) -> int:
    from repro import experiments as ex
    from repro.experiments.three_tier import format_three_tier, three_tier_study
    from repro.runtime import ProgressManifest, manifest_path

    wanted = set(only.split(",")) if only else set(TABLE_CHOICES)
    unknown = wanted - set(TABLE_CHOICES)
    if unknown:
        print(f"unknown table ids: {sorted(unknown)}", file=sys.stderr)
        return 2

    # With a cache configured, each completed table is recorded in an
    # atomic progress manifest keyed by the run parameters: an interrupted
    # run re-invoked identically replays finished tables from the manifest
    # instead of regenerating them.
    manifest: Optional[ProgressManifest] = None
    if rt.cache is not None:
        run_key = {"command": "tables", "scale": scale, "samples": samples,
                   "only": sorted(wanted)}
        manifest = ProgressManifest(
            manifest_path(rt.cache.root, "tables", run_key), run_key,
            name="tables",
        )
        if not resume:
            manifest.discard()
        elif manifest.done_stages():
            print(f"[resume] {len(manifest.done_stages())} stage(s) already "
                  f"complete: {', '.join(manifest.done_stages())}")

    def run(tid: str, fn) -> None:
        if tid not in wanted:
            return
        if manifest is not None and manifest.is_done(tid):
            print(f"\n================ {tid} ================")
            payload = manifest.result(tid)
            if payload:
                print(payload)
            print(f"[{tid}: resumed from checkpoint]")
            return
        t0 = time.perf_counter()
        print(f"\n================ {tid} ================")
        with rt.tracer.span(tid):
            text = fn()
        print(text)
        print(f"[{tid}: {time.perf_counter() - t0:.1f}s]")
        if manifest is not None:
            manifest.mark_done(tid, payload=text)

    run("table3", lambda: ex.format_design_matrix(ex.design_matrix(scale=scale)))
    run("table5", lambda: ex.format_quality(
        ex.atpg_quality("bypass", n_samples=samples, scale=scale),
        "Table V: ATPG report quality (bypass)"))
    run("table6", lambda: ex.format_effectiveness(
        ex.effectiveness("bypass", n_samples=samples, scale=scale),
        "Table VI: effectiveness (bypass)"))
    run("table7", lambda: ex.format_quality(
        ex.atpg_quality("compacted", n_samples=samples, scale=scale),
        "Table VII: ATPG report quality (compacted)"))
    run("table8", lambda: ex.format_effectiveness(
        ex.effectiveness("compacted", n_samples=samples, scale=scale),
        "Table VIII: effectiveness (compacted)"))
    run("table9", lambda: ex.format_runtime(
        ex.runtime_table(n_samples=samples, scale=scale)))
    run("fig10", lambda: ex.format_pfa_savings(
        ex.pfa_savings(ex.runtime_table(n_samples=samples, scale=scale))))
    run("table10", lambda: ex.format_multifault(
        ex.multifault_study(n_test=samples, scale=scale)))
    run("table11", lambda: ex.format_standalone(
        ex.standalone_models(n_samples=samples, scale=scale)))
    run("table2", lambda: ex.format_significance(
        ex.feature_significance(n_samples=samples, scale=scale)))
    run("fig5", lambda: ex.format_pca_study(
        ex.pca_study(n_samples=samples, scale=scale)))
    run("fig6", lambda: ex.format_transferability(
        ex.transferability_study(n_samples=samples, scale=scale), "Tate"))
    run("three-tier", lambda: format_three_tier(
        three_tier_study(n_test=samples, n_train=max(120, samples * 3), scale=scale)))
    report_text = rt.stats.report()
    if report_text:
        print(f"\n================ runtime ================\n{report_text}")
    return 0


def _cmd_coordinator(scale: str, samples: int, only: Optional[str],
                     host: str, port: int, lease_timeout: float,
                     fallback_after: float, workers: Optional[int] = None,
                     cache_dir: Optional[str] = None, resume: bool = True,
                     stats_out: Optional[str] = None) -> int:
    from pathlib import Path

    from repro.runtime import Coordinator, DistPolicy, handle_termination

    rt = _configure_runtime(workers, cache_dir)
    policy = DistPolicy(lease_timeout_s=lease_timeout,
                        fallback_after_s=fallback_after)
    store_dir = Path(rt.cache.root) / "dist" if rt.cache is not None else None
    coordinator = Coordinator(
        host=host, port=port, workers=rt.workers, policy=policy,
        retry=rt.retry, stats=rt.stats, chaos=rt.chaos,
        store_dir=store_dir, tracer=rt.tracer,
    )
    rt.dist = coordinator
    print(f"coordinator listening on "
          f"{coordinator.address[0]}:{coordinator.address[1]}", file=sys.stderr)
    try:
        with handle_termination(), rt.tracer.span("tables"):
            code = _tables_body(rt, scale, samples, only, resume)
    except KeyboardInterrupt:
        coordinator.close()
        return _interrupted(rt, stats_out)
    finally:
        coordinator.close()
    _write_stats_out(rt, stats_out)
    return code


def _cmd_worker(connect: str, cache_dir: Optional[str],
                max_reconnects: int) -> int:
    import os

    from repro.runtime import run_worker

    cache_dir = cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    print(f"worker {os.getpid()} connecting to {connect}", file=sys.stderr)
    code = run_worker(connect, cache_dir=cache_dir,
                      max_reconnects=max_reconnects)
    if code == 0:
        print("worker: coordinator shut the cluster down", file=sys.stderr)
    else:
        print(f"worker: giving up after {max_reconnects} reconnect attempt(s)",
              file=sys.stderr)
    return code


def _cmd_cache(cache_dir: Optional[str], clear: bool) -> int:
    import os

    from repro.runtime import ArtifactCache

    cache_dir = cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        print("no cache directory (pass --cache-dir or set $REPRO_CACHE_DIR)",
              file=sys.stderr)
        return 2
    cache = ArtifactCache(cache_dir)
    by_kind = cache.entries()
    print(f"cache {cache_dir}: {sum(by_kind.values())} artifact(s), "
          f"{cache.size_bytes() / 1e6:.1f} MB")
    for kind in sorted(by_kind):
        print(f"  {kind:14s} {by_kind[kind]}")
    if clear:
        print(f"cleared {cache.clear()} artifact(s)")
    return 0


def _cmd_stats(metrics_file: str, top: int) -> int:
    from repro.obs import load_metrics, render_metrics

    try:
        doc = load_metrics(metrics_file)
    except OSError as exc:
        print(f"{metrics_file}: cannot read: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_metrics(doc, top=top))
    return 0


def _doctor_segments(fix: bool) -> int:
    """Audit (and with ``fix``, reap) orphaned shared-memory segments.

    A crashed run can strand its spill/result segments in ``/dev/shm``;
    they are attributed by the owner pid embedded in the segment name, so
    a *live* run's segments are never touched.  Returns the number of
    orphans found (0 on platforms without a shm file view).
    """
    from repro.runtime import reap_orphan_segments, scan_orphan_segments

    orphans = reap_orphan_segments() if fix else scan_orphan_segments()
    verb = "reaped" if fix else "found"
    total = sum(o.nbytes for o in orphans)
    print(f"shared memory: {verb} {len(orphans)} orphaned segment(s) "
          f"({total} bytes)")
    for o in orphans:
        print(f"  {o.name}  {o.nbytes} bytes  (dead pid {o.pid})")
    return len(orphans)


def _doctor_dist(cache_dir: str, fix: bool) -> int:
    """Audit the distributed tier + checkpoint manifests; returns problems."""
    from pathlib import Path

    from repro.runtime import audit_dist_store, audit_manifests

    dist_health = audit_dist_store(Path(cache_dir) / "dist", fix=fix)
    print("distributed tier:")
    print(dist_health.report())
    manifest_problems = audit_manifests(cache_dir, fix=fix)
    print(f"  unmatchable checkpoint manifests: {len(manifest_problems)}")
    for name, problem in manifest_problems:
        print(f"    manifests/{name}: {problem}")
    return dist_health.problems + len(manifest_problems)


def _cmd_serve(http: Optional[str], stdin_mode: bool, gates: int, seed: int,
               configs: str, mode: str, framework_path: Optional[str],
               model_version: str, train_samples: int, epochs: int,
               max_batch: int, max_queue: int, flush_interval: float,
               nn_backend: Optional[str], workers: Optional[int],
               cache_dir: Optional[str], stats_out: Optional[str]) -> int:
    import threading

    from repro import DesignConfig, GeneratorSpec, M3DDiagnosisFramework
    from repro.runtime import handle_termination
    from repro.serve import (
        DesignContext,
        DiagnosisService,
        ModelRegistry,
        RequestBatcher,
        serve_http,
        serve_stdin,
    )

    if not http and not stdin_mode:
        print("serve: need --http HOST:PORT and/or --stdin", file=sys.stderr)
        return 2
    config_names = [c.strip() for c in configs.split(",") if c.strip()]
    if not config_names:
        print("serve: --configs must name at least one design config",
              file=sys.stderr)
        return 2

    rt = _configure_runtime(workers, cache_dir)
    registry = ModelRegistry()
    designs = {}
    httpd = None
    batcher = None
    try:
        with handle_termination(), rt.tracer.span("serve"):
            for name in config_names:
                t0 = time.perf_counter()
                spec = GeneratorSpec(f"serve-{name.lower()}", "aes_like", gates,
                                     max(16, gates // 8), 16, 16, seed=seed)
                design = rt.prepare(spec, DesignConfig.standard(name),
                                    n_chains=4, chains_per_channel=2,
                                    max_patterns=128)
                designs[name] = DesignContext(
                    name=name, design=design, default_mode=mode
                )
                if framework_path is not None:
                    record = registry.load(name, model_version, framework_path,
                                           backend=nn_backend)
                else:
                    train = rt.build_dataset(design, mode, train_samples, seed=0)
                    fw = M3DDiagnosisFramework(epochs=epochs, seed=0,
                                               nn_backend=nn_backend)
                    fw.fit([train], stats_sink=rt.stats, tracer=rt.tracer)
                    record = registry.register(name, model_version, fw,
                                               source="<trained at startup>")
                print(f"serving {name}: {design.nl} [model {record.version}, "
                      f"backend {record.backend}] "
                      f"({time.perf_counter() - t0:.1f}s)", file=sys.stderr)
            print(f"warmed up {registry.warmup()} model record(s)",
                  file=sys.stderr)

            service = DiagnosisService(registry, designs, stats=rt.stats,
                                       tracer=rt.tracer)
            batcher = RequestBatcher(service.process_batch,
                                     max_batch=max_batch, max_queue=max_queue,
                                     flush_interval_s=flush_interval,
                                     stats=rt.stats).start()
            if http:
                host, _, port_s = http.partition(":")
                httpd = serve_http(service, batcher, host or "127.0.0.1",
                                   int(port_s or 0))
                bound = httpd.server_address
                # The ready line smoke clients wait for — stdout, flushed.
                print(f"listening on http://{bound[0]}:{bound[1]}", flush=True)
            if stdin_mode:
                if httpd is not None:
                    threading.Thread(target=httpd.serve_forever,
                                     name="repro-serve-http",
                                     daemon=True).start()
                n = serve_stdin(batcher, sys.stdin, sys.stdout)
                print(f"served {n} stdin submission(s)", file=sys.stderr)
            elif httpd is not None:
                httpd.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        if httpd is not None:
            httpd.server_close()
        if batcher is not None:
            batcher.close(drain=False)
    _write_stats_out(rt, stats_out)
    return 0


def _cmd_doctor(cache_dir: Optional[str], deep: bool, fix: bool) -> int:
    import os

    from repro.runtime import ArtifactCache

    cache_dir = cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        print("no cache directory (pass --cache-dir or set $REPRO_CACHE_DIR)",
              file=sys.stderr)
        return 2
    cache = ArtifactCache(cache_dir)
    health = cache.doctor(deep=deep, fix=fix)
    print(f"cache {cache_dir}:")
    print(health.report())
    orphan_segments = _doctor_segments(fix)
    dist_problems = _doctor_dist(cache_dir, fix)
    problems = health.problems + orphan_segments + dist_problems
    if fix and problems:
        print(f"repaired {problems} problem(s)")
        return 0
    return 1 if problems else 0


def _check_netlist_file(path: str, deep: bool) -> List[str]:
    """DRC a ``.bench``/``.v`` netlist file; returns violation strings."""
    from repro.analysis import run_drc
    from repro.netlist import loads, loads_bench

    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        if path.endswith(".bench"):
            nl = loads_bench(text, name=path)
        else:
            nl = loads(text)
    except ValueError as exc:
        return [f"unloadable netlist: {exc}"]
    return [str(v) for v in run_drc(nl, deep=deep)]


def _check_pickle_file(path: str, deep: bool) -> List[str]:
    """DRC a pickled Netlist / PreparedDesign / {nl, mivs, het} bundle."""
    import pickle

    from repro.analysis import run_drc
    from repro.netlist import Netlist

    with open(path, "rb") as fh:
        obj = pickle.load(fh)
    if isinstance(obj, dict):
        nl, mivs, het = obj.get("nl"), obj.get("mivs"), obj.get("het")
    elif isinstance(obj, Netlist):
        nl, mivs, het = obj, None, None
    else:
        nl = getattr(obj, "nl", None)
        mivs = getattr(obj, "mivs", None)
        het = getattr(obj, "het", None)
    if nl is None:
        return [f"unrecognized pickle payload {type(obj).__name__!r}: "
                "expected a Netlist, a PreparedDesign, or a dict with 'nl'"]
    return [str(v) for v in run_drc(nl, mivs=mivs, het=het, deep=deep)]


def _cmd_check(paths: List[str], check_self: bool, deep: bool, rules: bool,
               fmt: str = "text",
               baseline_path: str = ".repro-baseline.json") -> int:
    import json as _json
    import os

    import repro
    from repro.analysis import (
        DRC_RULES,
        LIFECYCLE_RULES,
        LINT_RULES,
        PURITY_RULES,
        UNUSED_SUPPRESSION_RULE,
        Baseline,
        Finding,
        analyze_lifecycle_source,
        analyze_purity_source,
        iter_python_files,
        lint_source,
        parse_suppressions,
        unused_suppressions,
    )
    from repro.analysis.lifecycle import iter_lifecycle_targets
    from repro.analysis.purity import iter_purity_targets

    if rules:
        catalog = {
            **LINT_RULES, **PURITY_RULES, **LIFECYCLE_RULES, **DRC_RULES,
            UNUSED_SUPPRESSION_RULE:
                "inline suppression whose rule never fires (dead directive)",
        }
        for rid, text in catalog.items():
            print(f"{rid}  {text}")
        return 0

    try:
        baseline = Baseline.load(baseline_path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    findings: List[Finding] = []
    n_targets = 0

    # Netlist / pickle targets run the DRC engine; violations become
    # Finding records (line 0 anchors the file as a whole) so one report
    # format serves both source and design targets.
    lint_roots: List[str] = []
    for path in paths:
        if path.endswith((".bench", ".v", ".pkl", ".pickle")):
            n_targets += 1
            checker = (
                _check_netlist_file
                if path.endswith((".bench", ".v"))
                else _check_pickle_file
            )
            try:
                msgs = checker(path, deep)
            except OSError as exc:
                print(f"{path}: cannot read: {exc}", file=sys.stderr)
                return 2
            for msg in msgs:
                rule, _, rest = msg.partition(": ")
                if rule not in DRC_RULES:
                    rule, rest = "DRC000", msg
                findings.append(Finding(
                    rule=rule, path=path, line=0, col=0, message=rest,
                    symbol="<file>",
                ))
        else:
            lint_roots.append(path)

    # Source targets: every file gets repro-lint; the contract analyzers
    # attach where their contracts live (under --self: purity over nn/,
    # lifecycle over runtime/) and everywhere for explicit paths.
    engines: dict = {}

    def _attach(root, name, it) -> None:
        for f in it(root):
            engines.setdefault(f, set()).add(name)

    if check_self:
        n_targets += 1
        pkg = os.path.dirname(os.path.abspath(repro.__file__))
        _attach(pkg, "lint", iter_python_files)
        _attach(os.path.join(pkg, "nn"), "purity", iter_purity_targets)
        _attach(os.path.join(pkg, "runtime"), "lifecycle",
                iter_lifecycle_targets)
    for root in lint_roots:
        n_targets += 1
        _attach(root, "lint", iter_python_files)
        _attach(root, "purity", iter_purity_targets)
        _attach(root, "lifecycle", iter_lifecycle_targets)

    if not n_targets:
        print("nothing to check (pass paths or --self)", file=sys.stderr)
        return 2

    runners = {
        "lint": lint_source,
        "purity": analyze_purity_source,
        "lifecycle": analyze_lifecycle_source,
    }
    for f in sorted(engines):
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"{f}: cannot read: {exc}", file=sys.stderr)
            return 2
        raw: List[Finding] = []
        try:
            for name in sorted(engines[f]):
                raw.extend(runners[name](source, str(f), suppress=False))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="RPL000", path=str(f), line=exc.lineno or 1,
                col=exc.offset or 0, message=f"syntax error: {exc.msg}",
            ))
            continue
        raw.sort(key=lambda v: (v.line, v.col, v.rule))
        findings.extend(parse_suppressions(source).apply(raw))
        findings.extend(unused_suppressions(source, str(f), raw))

    new, baselined = baseline.split(findings)
    stale = baseline.unused_entries(findings)
    n_problems = len(new) + len(stale)

    if fmt == "json":
        doc = {
            "findings": [v.to_json() for v in new],
            "baselined": [v.to_json() for v in baselined],
            "unused_baseline_entries": [
                {"rule": e.rule, "path": e.path, "symbol": e.symbol,
                 "reason": e.reason}
                for e in stale
            ],
            "problems": n_problems,
            "targets": n_targets,
        }
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        for v in new:
            print(v)
        for e in stale:
            print(f"{baseline_path}: stale baseline entry {e.rule} {e.path} "
                  f"({e.symbol}) matches nothing — delete it")
        if baselined:
            print(f"{len(baselined)} baselined finding(s) suppressed by "
                  f"{baseline_path}")
        print(f"repro check: {n_problems} problem(s) in {n_targets} target(s)")
    return 1 if n_problems else 0


def _cmd_export(benchmark_name: str, scale: str, fmt: str, output: str) -> int:
    from repro.experiments.benchmarks import benchmark
    from repro.netlist import dumps, dumps_bench, generate
    from repro.synth import resynthesize

    nl = generate(benchmark(benchmark_name, scale).generator)
    if fmt == "verilog":
        text = dumps(nl)
    else:
        # .bench cannot express MUX/AOI/OAI: flatten first.
        text = dumps_bench(resynthesize(nl, seed=0, rewrite_probability=1.0))
    if output == "-":
        sys.stdout.write(text)
    else:
        with open(output, "w") as fh:
            fh.write(text)
        print(f"wrote {output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "demo":
        return _cmd_demo(args.gates, args.seed, args.workers, args.cache_dir,
                         args.stats_out, args.nn_backend)
    if args.command == "tables":
        return _cmd_tables(args.scale, args.samples, args.only,
                           args.workers, args.cache_dir, args.resume,
                           args.stats_out)
    if args.command == "coordinator":
        return _cmd_coordinator(args.scale, args.samples, args.only,
                                args.host, args.port, args.lease_timeout,
                                args.fallback_after, args.workers,
                                args.cache_dir, args.resume, args.stats_out)
    if args.command == "worker":
        return _cmd_worker(args.connect, args.cache_dir, args.max_reconnects)
    if args.command == "export":
        return _cmd_export(args.benchmark, args.scale, args.format, args.output)
    if args.command == "cache":
        return _cmd_cache(args.cache_dir, args.clear)
    if args.command == "stats":
        return _cmd_stats(args.metrics, args.top)
    if args.command == "serve":
        return _cmd_serve(args.http, args.stdin_mode, args.gates, args.seed,
                          args.configs, args.mode, args.framework,
                          args.model_version, args.train_samples, args.epochs,
                          args.max_batch, args.max_queue, args.flush_interval,
                          args.nn_backend, args.workers, args.cache_dir,
                          args.stats_out)
    if args.command == "doctor":
        return _cmd_doctor(args.cache_dir, args.deep, args.fix)
    if args.command in ("check", "lint"):
        return _cmd_check(args.paths, args.check_self, args.deep, args.rules,
                          args.fmt, args.baseline)
    return 2


if __name__ == "__main__":
    sys.exit(main())
