"""repro — GNN-based delay-fault localization for monolithic 3D ICs.

A full offline reproduction of Hung et al., "Transferable Graph Neural
Network-based Delay-Fault Localization for Monolithic 3D ICs" (DATE 2022 /
journal extension), including every substrate the paper depends on: netlist
infrastructure, bit-parallel logic/fault simulation, TDF ATPG, scan and
response compaction, M3D tier partitioning with MIV extraction, an
effect-cause diagnosis tool stand-in, a pure-numpy GCN stack, and the
paper's tier-level fault-localization framework with its candidate pruning
and reordering policy.

Quickstart::

    from repro import (GeneratorSpec, DesignConfig, prepare_design,
                       build_dataset, M3DDiagnosisFramework)

    spec = GeneratorSpec("aes", "aes_like", 900, 96, 32, 32, seed=1)
    design = prepare_design(spec, DesignConfig.standard("Syn-1"))
    train = build_dataset(design, "bypass", 150, seed=0)
    framework = M3DDiagnosisFramework()
    framework.fit([train])
"""

from .netlist import GeneratorSpec, Netlist, NetlistBuilder, generate, toy_netlist
from .atpg import Fault, FaultSite, Polarity, generate_tdf_patterns
from .sim import CompiledSimulator, FaultMachine
from .m3d import (
    DefectSampler,
    MIV,
    apply_partition,
    extract_mivs,
    mincut_bipartition,
    random_bipartition,
    spectral_bipartition,
)
from .dft import ObservationMap, ScanConfig, build_scan_chains
from .tester import FailureLog, InjectionCampaign, Sample
from .diagnosis import (
    DiagnosisReport,
    EffectCauseDiagnoser,
    PadreLikeFilter,
    first_hit_index,
    report_is_accurate,
    summarize_reports,
)
from .core import (
    BackupDictionary,
    FeatureExtractor,
    HetGraph,
    M3DDiagnosisFramework,
    MivPinpointer,
    PruneReorderClassifier,
    PruneReorderPolicy,
    TierPredictor,
    backtrace,
)
from .data import DesignConfig, PreparedDesign, build_dataset, prepare_design

__version__ = "1.0.0"

__all__ = [
    "GeneratorSpec",
    "Netlist",
    "NetlistBuilder",
    "generate",
    "toy_netlist",
    "Fault",
    "FaultSite",
    "Polarity",
    "generate_tdf_patterns",
    "CompiledSimulator",
    "FaultMachine",
    "DefectSampler",
    "MIV",
    "apply_partition",
    "extract_mivs",
    "mincut_bipartition",
    "random_bipartition",
    "spectral_bipartition",
    "ObservationMap",
    "ScanConfig",
    "build_scan_chains",
    "FailureLog",
    "InjectionCampaign",
    "Sample",
    "DiagnosisReport",
    "EffectCauseDiagnoser",
    "PadreLikeFilter",
    "first_hit_index",
    "report_is_accurate",
    "summarize_reports",
    "BackupDictionary",
    "FeatureExtractor",
    "HetGraph",
    "M3DDiagnosisFramework",
    "MivPinpointer",
    "PruneReorderClassifier",
    "PruneReorderPolicy",
    "TierPredictor",
    "backtrace",
    "DesignConfig",
    "PreparedDesign",
    "build_dataset",
    "prepare_design",
    "__version__",
]
