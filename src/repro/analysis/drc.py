"""Structural design-rule checks for netlists, MIV lists, and HetGraphs.

Grown out of the original 72-line ``repro.netlist.validate``: the same
single-driver/arity/sink-consistency rules, plus combinational-loop naming
via Tarjan's SCC algorithm, dead-logic reachability, positional-id
assertions, tier/MIV consistency, and HetGraph (Table I) invariants.  Every
rule has a stable id so the mutation-test harness and CI can assert exactly
which rule fires:

=========  ============================================================
rule       violation
=========  ============================================================
DRC001     combinational loop (Tarjan SCC over the gate graph)
DRC002     floating net: no driver and not a PI / flop Q output
DRC003     driver mismatch / multi-driven net
DRC004     dangling gate output (no sinks, never observed)
DRC005     gate fanin arity differs from its cell definition
DRC006     reference to an out-of-range net / gate id
DRC007     net sink list disagrees with gate fanin pins
DRC008     ids are not positional (``nets[i].id != i`` …)
DRC009     unreachable gate: output reaches no observation point
DRC020     partial tier assignment (mix of assigned and -1)
DRC021     tier-crossing (net, far tier) has no MIV
DRC022     MIV does not cross tiers (intra-tier or spurious)
DRC023     MIV direction/sink/observability mismatch with signal flow
DRC024     duplicate MIV for one (net, target tier) / non-positional id
DRC030     Topnode list differs from the design's observation points
DRC031     Topedge D_top / N_MIV features disagree with netlist BFS
DRC032     cone mask inconsistent with Topedge feature sentinels
DRC033     HetGraph node/edge identity arrays malformed
=========  ============================================================

``run_drc`` never raises on malformed inputs — reporting the breakage *is*
its job — so every rule guards its own index accesses and rules that need a
sane id space are skipped (with the DRC006/DRC008 findings explaining why).

This module deliberately imports nothing from the rest of the package at
module level (``repro.netlist`` re-exports ``check``/``validate`` from
here, so a top-level import either way would be circular) and touches
numpy only inside the HetGraph rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..core.hetgraph import HetGraph
    from ..m3d.miv import MIV
    from ..netlist.netlist import Netlist

__all__ = [
    "DRC_RULES",
    "DrcError",
    "DrcViolation",
    "NetlistError",
    "assert_clean",
    "check_netlist",
    "run_drc",
    "validate_netlist",
]

#: Rule id → one-line description (the DRC engine's public catalog).
DRC_RULES: Dict[str, str] = {
    "DRC001": "combinational loop in the gate graph",
    "DRC002": "floating net without a driver",
    "DRC003": "driver mismatch or multi-driven net",
    "DRC004": "dangling (unobserved, sink-less) gate output",
    "DRC005": "gate fanin arity differs from cell definition",
    "DRC006": "out-of-range net or gate reference",
    "DRC007": "net sink list inconsistent with gate fanin pins",
    "DRC008": "non-positional net/gate/flop ids",
    "DRC009": "gate output reaches no observation point",
    "DRC020": "partial tier assignment",
    "DRC021": "tier-crossing net without an MIV",
    "DRC022": "MIV that does not cross tiers",
    "DRC023": "MIV direction/sink/observability mismatch",
    "DRC024": "duplicate or non-positionally-numbered MIV",
    "DRC030": "Topnodes differ from the design's observation points",
    "DRC031": "Topedge D_top/N_MIV features inconsistent with the netlist",
    "DRC032": "cone mask inconsistent with Topedge sentinels",
    "DRC033": "malformed HetGraph node/edge identity arrays",
}


class NetlistError(ValueError):
    """A structural violation found by the DRC engine.

    Kept under its historical name — the original ``netlist.validate``
    module raised it — and aliased as :data:`DrcError` for new code.
    """


DrcError = NetlistError


@dataclass(frozen=True)
class DrcViolation:
    """One finding of the structural DRC engine."""

    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.message}"


# ---------------------------------------------------------------- helpers
def _external_driver() -> int:
    from ..netlist.netlist import EXTERNAL_DRIVER

    return EXTERNAL_DRIVER


def _tarjan_sccs(n: int, adj: Sequence[Sequence[int]]) -> List[List[int]]:
    """Strongly connected components, iteratively (no recursion limit).

    Returns components in reverse-topological discovery order; vertices
    inside a component keep discovery order, which makes reports stable.
    """
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Each frame: (vertex, iterator position into adj[vertex]).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            for next_pi in range(pi, len(adj[v])):
                w = adj[v][next_pi]
                if index[w] == -1:
                    work[-1] = (v, next_pi + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                comp: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp[::-1])
            if work:
                u, _ = work[-1]
                low[u] = min(low[u], low[v])
    return sccs


# ----------------------------------------------------------- core netlist
def _check_ids_and_refs(nl: "Netlist", out: List[DrcViolation]) -> bool:
    """DRC006 + DRC008.  Returns True when the id space is sane enough for
    the graph-walking rules to run without guarding every index."""
    ok = True
    for i, net in enumerate(nl.nets):
        if net.id != i:
            out.append(DrcViolation(
                "DRC008", f"net {net.name!r} has id {net.id} at position {i}"))
            ok = False
    for i, g in enumerate(nl.gates):
        if g.id != i:
            out.append(DrcViolation(
                "DRC008", f"gate {g.name!r} has id {g.id} at position {i}"))
            ok = False
    for i, f in enumerate(nl.flops):
        if f.id != i:
            out.append(DrcViolation(
                "DRC008", f"flop {f.name!r} has id {f.id} at position {i}"))
            ok = False

    n_nets, n_gates = nl.n_nets, nl.n_gates
    for g in nl.gates:
        for pin, nid in enumerate(g.fanin):
            if not 0 <= nid < n_nets:
                out.append(DrcViolation(
                    "DRC006", f"gate {g.name!r} pin {pin} references bad net {nid}"))
                ok = False
        if not 0 <= g.out < n_nets:
            out.append(DrcViolation(
                "DRC006", f"gate {g.name!r} output references bad net {g.out}"))
            ok = False
    external = _external_driver()
    for net in nl.nets:
        if net.driver != external and not 0 <= net.driver < n_gates:
            out.append(DrcViolation(
                "DRC006", f"net {net.name!r} references bad driver gate {net.driver}"))
            ok = False
        for gate_id, _pin in net.sinks:
            if not 0 <= gate_id < n_gates:
                out.append(DrcViolation(
                    "DRC006", f"net {net.name!r} sink references bad gate {gate_id}"))
                ok = False
    for f in nl.flops:
        if not 0 <= f.d_net < n_nets or not 0 <= f.q_net < n_nets:
            out.append(DrcViolation("DRC006", f"flop {f.name!r} references bad nets"))
            ok = False
    for nid in list(nl.primary_inputs) + list(nl.primary_outputs):
        if not 0 <= nid < n_nets:
            out.append(DrcViolation("DRC006", f"primary I/O references bad net {nid}"))
            ok = False
    return ok


def _check_structure(nl: "Netlist", out: List[DrcViolation]) -> None:
    """DRC002..DRC005 + DRC007: local single-driver/arity/sink consistency."""
    external = _external_driver()
    external_nets = set(nl.primary_inputs) | {f.q_net for f in nl.flops}

    driven_by: Dict[int, List[int]] = {}
    for g in nl.gates:
        driven_by.setdefault(g.out, []).append(g.id)

    for net in nl.nets:
        if net.driver == external and net.id not in external_nets:
            if net.id in driven_by:
                out.append(DrcViolation(
                    "DRC003",
                    f"net {net.name!r} claims no driver but gate "
                    f"{nl.gates[driven_by[net.id][0]].name!r} drives it"))
            else:
                out.append(DrcViolation(
                    "DRC002", f"net {net.name!r} ({net.id}) has no driver"))
        if net.driver != external:
            g = nl.gates[net.driver]
            if g.out != net.id:
                out.append(DrcViolation(
                    "DRC003",
                    f"net {net.name!r} claims driver gate {g.name!r} "
                    f"but that gate drives net {g.out}"))
        drivers = driven_by.get(net.id, [])
        if len(drivers) > 1:
            names = ", ".join(repr(nl.gates[d].name) for d in drivers)
            out.append(DrcViolation(
                "DRC003", f"net {net.name!r} is multi-driven by gates {names}"))

    for g in nl.gates:
        if len(g.fanin) != g.cell.n_inputs:
            out.append(DrcViolation(
                "DRC005",
                f"gate {g.name!r} has {len(g.fanin)} fanins for cell {g.cell.name}"))
        for pin, nid in enumerate(g.fanin):
            if (g.id, pin) not in nl.nets[nid].sinks:
                out.append(DrcViolation(
                    "DRC007",
                    f"sink list of net {nid} is missing gate {g.name!r} pin {pin}"))
    for net in nl.nets:
        for gate_id, pin in net.sinks:
            g = nl.gates[gate_id]
            if pin >= len(g.fanin) or g.fanin[pin] != net.id:
                out.append(DrcViolation(
                    "DRC007",
                    f"net {net.name!r} lists stale sink (gate {g.name!r}, pin {pin})"))

    observed = set(nl.observed_nets)
    for g in nl.gates:
        net = nl.nets[g.out]
        if not net.sinks and net.id not in observed:
            out.append(DrcViolation(
                "DRC004", f"gate {g.name!r} output net {net.name!r} dangles"))


def _check_loops(nl: "Netlist", out: List[DrcViolation]) -> None:
    """DRC001 via Tarjan SCC: name the gates on every combinational cycle."""
    adj: List[List[int]] = [[] for _ in range(nl.n_gates)]
    for g in nl.gates:
        for sink_gate, _pin in nl.nets[g.out].sinks:
            adj[g.id].append(sink_gate)
    for comp in _tarjan_sccs(nl.n_gates, adj):
        cyclic = len(comp) > 1 or comp[0] in adj[comp[0]]
        if cyclic:
            names = ", ".join(nl.gates[gid].name for gid in comp[:6])
            more = f" (+{len(comp) - 6} more)" if len(comp) > 6 else ""
            out.append(DrcViolation(
                "DRC001",
                f"combinational loop through {len(comp)} gate(s): {names}{more}"))


def _check_reachability(nl: "Netlist", out: List[DrcViolation]) -> None:
    """DRC009: gates whose output cannot reach any observation point."""
    external = _external_driver()
    live_nets: Set[int] = set()
    stack = [n for n in nl.observed_nets if 0 <= n < nl.n_nets]
    live_nets.update(stack)
    while stack:
        cur = stack.pop()
        drv = nl.nets[cur].driver
        if drv == external:
            continue
        for nid in nl.gates[drv].fanin:
            if nid not in live_nets:
                live_nets.add(nid)
                stack.append(nid)
    observed = set(nl.observed_nets)
    for g in nl.gates:
        if g.out in live_nets:
            continue
        if not nl.nets[g.out].sinks and g.out not in observed:
            continue  # already reported as dangling (DRC004)
        out.append(DrcViolation(
            "DRC009",
            f"gate {g.name!r} output net {nl.nets[g.out].name!r} "
            "reaches no observation point"))


# ------------------------------------------------------------- tiers/MIVs
def _expected_crossings(
    nl: "Netlist",
) -> Dict[Tuple[int, int], Tuple[int, Tuple[Tuple[int, int], ...], bool]]:
    """(net, target tier) → (source tier, far sinks, observed_faulty).

    The ground-truth crossing set, recomputed from tier assignments alone —
    the reference any claimed MIV list is judged against.  Mirrors the
    semantics of :func:`repro.m3d.miv.extract_mivs` by construction.
    """
    d_tier: Dict[int, List[int]] = {}
    for f in nl.flops:
        d_tier.setdefault(f.d_net, []).append(f.tier)
    pos = set(nl.primary_outputs)

    expected: Dict[Tuple[int, int], Tuple[int, Tuple[Tuple[int, int], ...], bool]] = {}
    for net in nl.nets:
        src = nl.net_tier(net.id)
        far_by_tier: Dict[int, List[Tuple[int, int]]] = {}
        for gate_id, pin in net.sinks:
            t = nl.gates[gate_id].tier
            if t != src:
                far_by_tier.setdefault(t, []).append((gate_id, pin))
        observed_tiers = {t for t in d_tier.get(net.id, ()) if t != src}
        if net.id in pos and src != 0:
            observed_tiers.add(0)
        for t in sorted(set(far_by_tier) | observed_tiers):
            expected[(net.id, t)] = (
                src,
                tuple(far_by_tier.get(t, ())),
                t in observed_tiers,
            )
    return expected


def _check_tiers_and_mivs(
    nl: "Netlist", mivs: Optional[Sequence["MIV"]], out: List[DrcViolation]
) -> None:
    """DRC020..DRC024: tier-assignment and MIV-list consistency."""
    tiers = [g.tier for g in nl.gates] + [f.tier for f in nl.flops]
    if not tiers:
        return
    n_unassigned = sum(1 for t in tiers if t < 0)
    if n_unassigned == len(tiers):
        return  # 2D netlist: tier rules do not apply
    if n_unassigned:
        out.append(DrcViolation(
            "DRC020",
            f"partial tier assignment: {n_unassigned} of {len(tiers)} "
            "gates/flops have no tier"))
        return
    if mivs is None:
        return

    expected = _expected_crossings(nl)
    claimed: Dict[Tuple[int, int], "MIV"] = {}
    for i, m in enumerate(mivs):
        if m.id != i:
            out.append(DrcViolation(
                "DRC024", f"MIV at position {i} has non-positional id {m.id}"))
        key = (m.net, m.target_tier)
        if key in claimed:
            out.append(DrcViolation(
                "DRC024",
                f"duplicate MIV for net {nl.nets[m.net].name!r} "
                f"target tier {m.target_tier}"))
            continue
        claimed[key] = m
        if key not in expected:
            kind = "intra-tier" if m.target_tier == nl.net_tier(m.net) else "spurious"
            out.append(DrcViolation(
                "DRC022",
                f"{kind} MIV {m.id} on net {nl.nets[m.net].name!r} "
                f"(source tier {m.source_tier}, target tier {m.target_tier}) "
                "crosses no tier boundary"))
            continue
        src, far_sinks, observed_faulty = expected[key]
        if m.source_tier != src:
            out.append(DrcViolation(
                "DRC023",
                f"MIV {m.id} on net {nl.nets[m.net].name!r} claims source tier "
                f"{m.source_tier} but the net is driven from tier {src}"))
        if tuple(sorted(m.far_sinks)) != tuple(sorted(far_sinks)):
            out.append(DrcViolation(
                "DRC023",
                f"MIV {m.id} on net {nl.nets[m.net].name!r} far-sink set "
                f"{sorted(m.far_sinks)} does not match the tier-"
                f"{m.target_tier} sinks {sorted(far_sinks)}"))
        if bool(m.observed_faulty) != observed_faulty:
            out.append(DrcViolation(
                "DRC023",
                f"MIV {m.id} on net {nl.nets[m.net].name!r} observability flag "
                f"{m.observed_faulty} disagrees with the tier-{m.target_tier} "
                "observation points"))
    for key in expected:
        if key not in claimed:
            net_id, t = key
            out.append(DrcViolation(
                "DRC021",
                f"net {nl.nets[net_id].name!r} crosses from tier "
                f"{expected[key][0]} to tier {t} without an MIV"))


# --------------------------------------------------------------- HetGraph
def _check_hetgraph(
    nl: "Netlist",
    mivs: Optional[Sequence["MIV"]],
    het: "HetGraph",
    deep: bool,
    out: List[DrcViolation],
) -> None:
    """DRC030..DRC033: Table I invariants of a built heterogeneous graph."""
    import numpy as np

    from ..core.hetgraph import NodeKind

    # DRC030 — Topnodes must be exactly the observation points, in order.
    if list(het.topnode_nets) != list(nl.observed_nets):
        out.append(DrcViolation(
            "DRC030",
            f"Topnode nets {list(het.topnode_nets)[:8]}… differ from the "
            f"design's observation points (POs + flop D nets)"))

    n_nodes = het.n_nodes
    n_nets = nl.n_nets

    # DRC033 — identity arrays well-formed.
    aligned = {
        "kind": het.kind, "net": het.net, "gate": het.gate, "pin": het.pin,
        "miv_id": het.miv_id, "tier": het.tier, "level": het.level,
        "is_output": het.is_output, "connects_miv": het.connects_miv,
    }
    for name, arr in aligned.items():
        if len(arr) != n_nodes:
            out.append(DrcViolation(
                "DRC033", f"node column {name!r} has length {len(arr)}, "
                f"expected {n_nodes}"))
            return  # nothing below is meaningful on ragged columns
    bad_kind = ~np.isin(het.kind, (NodeKind.STEM, NodeKind.BRANCH, NodeKind.MIV))
    if bad_kind.any():
        out.append(DrcViolation(
            "DRC033", f"{int(bad_kind.sum())} node(s) have an unknown kind code"))
    bad_net = (het.net < 0) | (het.net >= n_nets)
    if bad_net.any():
        out.append(DrcViolation(
            "DRC033", f"{int(bad_net.sum())} node(s) reference out-of-range nets"))
    src, dst = het.edges
    if len(src) != len(dst):
        out.append(DrcViolation(
            "DRC033", "edge source/destination arrays have different lengths"))
    else:
        bad_edges = ((src < 0) | (src >= n_nodes) | (dst < 0) | (dst >= n_nodes))
        if len(src) and bad_edges.any():
            out.append(DrcViolation(
                "DRC033",
                f"{int(bad_edges.sum())} edge endpoint(s) out of range"))
    if len(het.stem_of_net) != n_nets:
        out.append(DrcViolation(
            "DRC033", f"stem_of_net covers {len(het.stem_of_net)} nets, "
            f"expected {n_nets}"))
    else:
        for nid in range(n_nets):
            v = int(het.stem_of_net[nid])
            if not 0 <= v < n_nodes or int(het.kind[v]) != NodeKind.STEM \
                    or int(het.net[v]) != nid:
                out.append(DrcViolation(
                    "DRC033", f"net {nid} has no valid stem node"))
                break

    # DRC032 — cone mask and the -1 sentinels must tell the same story.
    shapes_ok = (
        het.cone_mask.shape == het.topedge_dist.shape == het.topedge_miv.shape
        and het.cone_mask.shape == (len(het.topnode_nets), n_nodes)
    )
    if not shapes_ok:
        out.append(DrcViolation(
            "DRC032",
            f"cone/Topedge arrays have shapes {het.cone_mask.shape}, "
            f"{het.topedge_dist.shape}, {het.topedge_miv.shape}; expected "
            f"({len(het.topnode_nets)}, {n_nodes})"))
    else:
        dist_mismatch = het.cone_mask != (het.topedge_dist >= 0)
        miv_mismatch = het.cone_mask != (het.topedge_miv >= 0)
        if dist_mismatch.any() or miv_mismatch.any():
            n_bad = int((dist_mismatch | miv_mismatch).sum())
            out.append(DrcViolation(
                "DRC032",
                f"{n_bad} Topedge entr(ies) where the cone mask and the -1 "
                "feature sentinels disagree"))

    if deep and shapes_ok and mivs is not None:
        _check_topedges_deep(nl, mivs, het, out)


def _check_topedges_deep(
    nl: "Netlist",
    mivs: Sequence["MIV"],
    het: "HetGraph",
    out: List[DrcViolation],
) -> None:
    """DRC031: recompute every Topedge feature from the netlist and compare.

    This re-runs the per-Topnode backward BFS — the same O(n_top · (V+E))
    the graph build paid — so it is only on in ``deep`` mode (``repro check``
    and the mutation harness), not in the fail-fast pipeline pass.
    """
    import numpy as np

    from ..core.hetgraph import NodeKind
    from ..m3d.miv import miv_net_set
    from ..netlist.topology import bfs_distance_from_observation

    miv_nets = miv_net_set(mivs)
    miv_index = {m.id: i for i, m in enumerate(mivs)}
    n_nets = nl.n_nets
    kind_arr = np.asarray(het.kind)
    gate_arr = np.asarray(het.gate)
    node_net = np.asarray(het.net)
    connects = np.asarray(het.connects_miv)
    gate_out = np.asarray([g.out for g in nl.gates] + [0], dtype=np.int64)

    mismatches = 0
    first: Optional[str] = None
    for t_idx, obs_net in enumerate(het.topnode_nets):
        if not 0 <= obs_net < n_nets:
            out.append(DrcViolation(
                "DRC031", f"Topnode {t_idx} observes out-of-range net {obs_net}"))
            return
        dist_net, miv_cnt = bfs_distance_from_observation(nl, obs_net, miv_nets)
        dist_arr = np.full(n_nets, -1, dtype=np.int64)
        miv_arr = np.full(n_nets, -1, dtype=np.int64)
        for k, v in dist_net.items():
            dist_arr[k] = v
        for k, v in miv_cnt.items():
            miv_arr[k] = v

        want_dist = np.full(het.n_nodes, -1, dtype=np.int64)
        want_miv = np.full(het.n_nodes, -1, dtype=np.int64)
        stems = kind_arr == NodeKind.STEM
        nd = dist_arr[node_net]
        sel = stems & (nd >= 0)
        want_dist[sel] = nd[sel]
        want_miv[sel] = miv_arr[node_net][sel]

        branches = kind_arr == NodeKind.BRANCH
        b_out = gate_out[np.where(branches, gate_arr, -1)]
        bd = dist_arr[b_out]
        sel = branches & (bd >= 0)
        want_dist[sel] = bd[sel] + 1
        want_miv[sel] = miv_arr[b_out][sel] + connects[sel]

        for m in mivs:
            v = het.miv_index.get(m.id)
            if v is None:
                continue
            best: Optional[Tuple[int, int]] = None
            for gid, _pin in m.far_sinks:
                o = nl.gates[gid].out
                if dist_arr[o] >= 0:
                    cand = (int(dist_arr[o]) + 1, int(miv_arr[o]) + 1)
                    if best is None or cand[0] < best[0]:
                        best = cand
            if m.observed_faulty and obs_net == m.net:
                best = (0, 1)
            if best is not None:
                want_dist[v], want_miv[v] = best

        got_dist = np.asarray(het.topedge_dist[t_idx], dtype=np.int64)
        got_miv = np.asarray(het.topedge_miv[t_idx], dtype=np.int64)
        bad = (got_dist != want_dist) | (got_miv != want_miv)
        if bad.any():
            mismatches += int(bad.sum())
            if first is None:
                v = int(np.argmax(bad))
                first = (
                    f"Topnode {t_idx} (net {obs_net}) node {v}: stored "
                    f"(D_top={int(got_dist[v])}, N_MIV={int(got_miv[v])}) vs "
                    f"recomputed ({int(want_dist[v])}, {int(want_miv[v])})"
                )
    if mismatches:
        out.append(DrcViolation(
            "DRC031",
            f"{mismatches} Topedge feature(s) disagree with the netlist BFS; "
            f"first: {first}"))

    unknown = set(miv_index) ^ set(het.miv_index)
    if unknown:
        out.append(DrcViolation(
            "DRC031",
            f"HetGraph MIV nodes and the MIV list disagree on ids {sorted(unknown)[:6]}"))


# ------------------------------------------------------------- entry points
def run_drc(
    nl: "Netlist",
    mivs: Optional[Sequence["MIV"]] = None,
    het: Optional["HetGraph"] = None,
    deep: bool = False,
) -> List[DrcViolation]:
    """Run every applicable design-rule check; return all findings.

    Args:
        nl: The netlist under test.
        mivs: Its claimed MIV list, enabling the DRC02x rules (requires a
            fully tier-assigned netlist).
        het: Its built heterogeneous graph, enabling the DRC03x rules.
        deep: Also recompute every Topedge feature from scratch (DRC031) —
            as expensive as the graph build itself; used by ``repro check``
            and the mutation harness, not the fail-fast pipeline pass.
    """
    out: List[DrcViolation] = []
    refs_ok = _check_ids_and_refs(nl, out)
    if not refs_ok:
        return out  # graph-walking rules would chase the bad ids reported above
    _check_structure(nl, out)
    _check_loops(nl, out)
    _check_reachability(nl, out)
    _check_tiers_and_mivs(nl, mivs, out)
    if het is not None:
        _check_hetgraph(nl, mivs, het, deep, out)
    return out


def assert_clean(
    nl: "Netlist",
    mivs: Optional[Sequence["MIV"]] = None,
    het: Optional["HetGraph"] = None,
    deep: bool = False,
    context: str = "",
) -> None:
    """Raise :class:`DrcError` when :func:`run_drc` finds any violation."""
    problems = run_drc(nl, mivs=mivs, het=het, deep=deep)
    if problems:
        where = f" in {context}" if context else ""
        listed = "; ".join(str(p) for p in problems[:10])
        more = f" (+{len(problems) - 10} more)" if len(problems) > 10 else ""
        raise DrcError(f"DRC failed{where}: {listed}{more}")


def check_netlist(
    nl: "Netlist",
    mivs: Optional[Sequence["MIV"]] = None,
    het: Optional["HetGraph"] = None,
) -> List[str]:
    """Human-readable messages for every structural violation.

    The string-level front-end ``repro.netlist`` re-exports as ``check``
    (formerly ``repro.netlist.validate.check``); use :func:`run_drc` for
    structured :class:`DrcViolation` records.
    """
    return [str(v) for v in run_drc(nl, mivs=mivs, het=het)]


def validate_netlist(
    nl: "Netlist",
    mivs: Optional[Sequence["MIV"]] = None,
    het: Optional["HetGraph"] = None,
) -> None:
    """Raise :class:`NetlistError` on any structural violation.

    Re-exported by ``repro.netlist`` as ``validate`` (formerly
    ``repro.netlist.validate.validate``).
    """
    problems = check_netlist(nl, mivs=mivs, het=het)
    if problems:
        raise NetlistError("; ".join(problems[:10]))
