"""Shared suppression and baseline layer for every analysis engine.

All three source-level engines (:mod:`repro.analysis.replint`,
:mod:`repro.analysis.purity`, :mod:`repro.analysis.lifecycle`) emit
:class:`Finding` records and honor the same two silencing mechanisms:

* **inline suppressions** — ``# repro-lint: disable=BPL001`` on the
  finding's line (comma-separate several ids), or ``# repro-lint:
  disable-file=BPL001`` anywhere for a whole file.  Meant to carry a
  justification in a neighbouring comment; a per-line suppression whose
  rule never fires on that line is *dead* and reported as ``SUP001`` by
  :func:`unused_suppressions` (the CLI runs that audit under
  ``repro check --self``).

* **a baseline file** — a checked-in JSON inventory of pre-existing debt.
  Each entry names a ``rule``, a ``path`` (suffix-matched so the file works
  from any checkout root), the enclosing ``symbol`` (function/class
  qualname, so entries survive unrelated line churn), and a ``reason``.
  Findings matching an entry are demoted from failures to an informational
  count; entries matching nothing are reported so the baseline can only
  shrink.  An empty ``entries`` list is the healthy steady state: new debt
  either gets fixed or gets an inline suppression with a justification.

The layer is pure stdlib so ``repro check --self`` stays runnable in
environments without the numeric stack.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Suppressions",
    "UNUSED_SUPPRESSION_RULE",
    "parse_suppressions",
    "unused_suppressions",
]

#: Synthetic rule id for dead inline suppressions (see the CLI self-audit).
UNUSED_SUPPRESSION_RULE = "SUP001"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<ids>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


@dataclass(frozen=True)
class Finding:
    """One finding of a source-level analysis engine.

    ``symbol`` is the enclosing function/class qualname (``<module>`` at
    top level) — the stable anchor baseline entries match against.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = "<module>"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        """Machine-readable record for ``repro check --format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class Suppressions:
    """Inline ``# repro-lint: disable=`` directives of one source file."""

    #: line → rule ids suppressed on that line.
    per_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: Rule ids suppressed for the whole file.
    per_file: Set[str] = field(default_factory=set)

    def hides(self, rule: str, line: int) -> bool:
        return rule in self.per_file or rule in self.per_line.get(line, ())

    def apply(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings with every suppressed record dropped."""
        return [f for f in findings if not self.hides(f.rule, f.line)]


def _comment_lines(source: str) -> Iterable[Tuple[int, str]]:
    """(lineno, text) for every ``#`` comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps directive text
    quoted inside strings/docstrings — like the examples in this module's
    own docs — from registering as live suppressions.  Falls back to the
    raw lines when the source does not tokenize; the engines only analyze
    parseable files, so the fallback is a formality.
    """
    import io
    import tokenize

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        yield from enumerate(source.splitlines(), start=1)


def parse_suppressions(source: str) -> Suppressions:
    """Collect every inline suppression directive in ``source``."""
    sup = Suppressions()
    for lineno, line in _comment_lines(source):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        ids = {part.strip() for part in m.group("ids").split(",")}
        if m.group("scope"):
            sup.per_file |= ids
        else:
            sup.per_line.setdefault(lineno, set()).update(ids)
    return sup


def unused_suppressions(
    source: str, path: str, raw_findings: Sequence[Finding]
) -> List[Finding]:
    """Dead inline suppressions, as synthetic ``SUP001`` findings.

    ``raw_findings`` must be the *unsuppressed* union from every engine
    that analyzed the file: a per-line directive is dead when none of its
    ids fire on its line, a file-wide directive when none fire anywhere in
    the file.  Dead suppressions are how contract rot starts — the
    directive outlives the code it excused — so the self-audit flags them.
    """
    sup = parse_suppressions(source)
    fired_by_line: Dict[int, Set[str]] = {}
    fired_anywhere: Set[str] = set()
    for f in raw_findings:
        fired_by_line.setdefault(f.line, set()).add(f.rule)
        fired_anywhere.add(f.rule)

    out: List[Finding] = []
    for line in sorted(sup.per_line):
        for rule in sorted(sup.per_line[line] - fired_by_line.get(line, set())):
            out.append(Finding(
                rule=UNUSED_SUPPRESSION_RULE, path=path, line=line, col=0,
                message=f"unused suppression: {rule} never fires on this line",
            ))
    for rule in sorted(sup.per_file - fired_anywhere):
        out.append(Finding(
            rule=UNUSED_SUPPRESSION_RULE, path=path, line=1, col=0,
            message=f"unused suppression: {rule} never fires in this file",
        ))
    return out


# ------------------------------------------------------------------ baseline
@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged pre-existing finding.

    ``path`` matches by suffix (``/``-normalized) so one baseline file
    serves every checkout; ``symbol`` anchors the entry to the enclosing
    definition instead of a line number.
    """

    rule: str
    path: str
    symbol: str
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule or self.symbol != finding.symbol:
            return False
        normalized = finding.path.replace("\\", "/")
        want = self.path.replace("\\", "/")
        return normalized == want or normalized.endswith("/" + want)


class Baseline:
    """The checked-in inventory of acknowledged findings.

    A missing file behaves as an empty baseline, so ``repro check`` needs
    no flag day: the file only exists once there is debt to record.
    """

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: Union[str, Path, None]) -> "Baseline":
        if path is None:
            return cls()
        p = Path(path)
        if not p.is_file():
            return cls()
        doc = json.loads(p.read_text(encoding="utf-8"))
        if not isinstance(doc, dict) or doc.get("version") != 1:
            raise ValueError(f"{p}: not a version-1 repro baseline file")
        entries = []
        for raw in doc.get("entries", []):
            try:
                entries.append(BaselineEntry(
                    rule=raw["rule"], path=raw["path"],
                    symbol=raw.get("symbol", "<module>"),
                    reason=raw.get("reason", ""),
                ))
            except (KeyError, TypeError) as exc:
                raise ValueError(f"{p}: malformed baseline entry {raw!r}") from exc
        return cls(entries)

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, baselined)."""
        new: List[Finding] = []
        old: List[Finding] = []
        for f in findings:
            (old if any(e.matches(f) for e in self.entries) else new).append(f)
        return new, old

    def unused_entries(self, findings: Sequence[Finding]) -> List[BaselineEntry]:
        """Entries that matched no finding — stale debt records to delete."""
        return [
            e for e in self.entries if not any(e.matches(f) for f in findings)
        ]
