"""Resource-lifecycle & fork-safety analyzer for the runtime (``RCL001``…).

The worker-pool layer (PR 6) manages POSIX shared-memory segments with
*explicit* lifetimes — the ``resource_tracker`` is deliberately silenced, so
nothing cleans up after a code path that drops a segment on the floor.  A
segment acquired with ``create=True`` carries two obligations: the handle
must be **closed** and the segment **unlinked** (or its name handed to an
owner that will unlink it) on *every* path out of the function, including
the exception paths.  A plain attach carries only the close obligation.
The analyzer builds a statement-level CFG per function — with exception
edges, ``finally`` duplication per continuation, and loop back-edges — and
runs a worklist dataflow over the set of outstanding obligations:

=========  ============================================================
rule       contract
=========  ============================================================
RCL001     a shared-memory segment can leak on an **exception** path
           (close/unlink obligation outstanding at an exceptional exit)
RCL002     a segment is not released on a **normal** exit path
RCL003     a fork-hostile value (lambda, lock, pool, tracer, open file,
           multiprocessing primitive) is captured into a pickled unit
           payload, ``pickle.dumps``, or ``apply_async`` arguments
RCL004     a multiprocessing primitive is created *after* a pool fork
           point in the same function (workers fork without it — the
           primitive silently fails to synchronize anything)
RCL005     a socket / accepted connection is not closed on every CFG
           path (close obligation outstanding at any exit)
=========  ============================================================

Sockets (PR 9's distributed runtime) carry a single *close* obligation,
imposed by ``socket.socket(...)``, ``socket.create_connection(...)``, or a
tuple-unpacked ``listener.accept()``.  The wire helpers
(``send_frame`` / ``recv_frame`` / ``recv_frame_poll``) are part of the
lifecycle protocol: passing a socket to them is *use*, not an ownership
transfer — only storing the handle, returning it, or handing it whole to
other code discharges the obligation.  A socket assigned directly into an
attribute or container escapes at birth and imposes nothing here.

Obligation discharge is ownership-aware: unlink is considered satisfied
when the segment *name* escapes the function (returned, stored into an
attribute/container, or passed to a non-lifecycle call) — that is the
module's "deterministic names + sweeper" protocol, where the caller
(``sweep_results`` / ``fetch_result``) owns the unlink.  The analysis is
therefore a *may-leak* check: a finding means some path drops the segment
with no owner left holding its name.

Intentional leak-on-raise sites (e.g. the mid-write chaos window in
``ship_result``, reclaimed by ``sweep_results`` enumerating deterministic
attempt names) carry justified inline suppressions rather than baseline
entries, so the reasoning lives next to the code.  Pure stdlib, like every
engine behind ``repro check --self``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .suppress import Finding, parse_suppressions

__all__ = [
    "LIFECYCLE_RULES",
    "analyze_lifecycle_file",
    "analyze_lifecycle_paths",
    "analyze_lifecycle_source",
    "iter_lifecycle_targets",
]

#: Rule id → one-line description (the lifecycle engine's public catalog).
LIFECYCLE_RULES: Dict[str, str] = {
    "RCL001": "shared-memory segment can leak on an exception path",
    "RCL002": "shared-memory segment not released on a normal exit path",
    "RCL003": "fork-hostile value captured into a pickled unit payload",
    "RCL004": "multiprocessing primitive created after a pool fork point",
    "RCL005": "socket/connection not closed on every CFG path",
}

#: The two obligations a segment acquire can impose.
_CLOSE = "close"
_UNLINK = "unlink"

#: Functions that open a segment (first arg / ``name=`` is the name).
_ACQUIRE_FUNCS = {"_open_shm", "SharedMemory"}

#: Calls that are part of the lifecycle protocol itself — a segment name
#: (or a socket) passed to one of these is *not* an ownership transfer.
_LIFECYCLE_CALLS = {
    "_open_shm", "SharedMemory", "_unlink_segment",
    "send_frame", "recv_frame", "recv_frame_poll",
}

#: Qualified constructors that impose a socket close obligation.
_SOCK_ACQUIRE_QUALS = {"socket.socket", "socket.create_connection"}

#: Constructors whose results must never ride in a pickled payload.
_FORK_HOSTILE_QUALS = {
    f"{mod}.{name}"
    for mod in ("threading", "multiprocessing")
    for name in (
        "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
        "Event", "Barrier",
    )
} | {
    "multiprocessing.Queue", "multiprocessing.SimpleQueue",
    "multiprocessing.JoinableQueue", "multiprocessing.Value",
    "multiprocessing.Array", "multiprocessing.Manager",
    "multiprocessing.Pool", "multiprocessing.pool.Pool",
}
_FORK_HOSTILE_NAMES = {"SpanTracer", "get_tracer", "open"}

#: Multiprocessing primitives whose creation after a fork point is RCL004.
_MP_PRIMITIVE_QUALS = {
    q for q in _FORK_HOSTILE_QUALS if q.startswith("multiprocessing.")
}

_EXIT = 0      # normal function exit
_EXC_EXIT = 1  # exceptional function exit


@dataclass(frozen=True)
class _Site:
    """One resource-acquire site (shared-memory segment or socket)."""

    sid: int
    line: int
    col: int
    handle: Optional[str]    # local var bound to the resource handle
    name_var: Optional[str]  # local var holding the segment name (shm only)
    obligations: FrozenSet[str]
    kind: str = "shm"        # "shm" or "sock"


class _Cfg:
    """A statement-level CFG with separate normal and exception edges."""

    def __init__(self) -> None:
        # Nodes 0/1 are the exit sentinels and carry no statement.
        self.stmts: List[Optional[ast.stmt]] = [None, None]
        self.succ: List[Set[int]] = [set(), set()]
        self.exc: List[Set[int]] = [set(), set()]

    def new(self, stmt: Optional[ast.stmt]) -> int:
        self.stmts.append(stmt)
        self.succ.append(set())
        self.exc.append(set())
        return len(self.stmts) - 1


def _handler_is_catchall(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = [t] if not isinstance(t, ast.Tuple) else list(t.elts)
    for n in names:
        base = n.attr if isinstance(n, ast.Attribute) else (
            n.id if isinstance(n, ast.Name) else ""
        )
        if base in ("BaseException", "Exception"):
            return True
    return False


class _CfgBuilder:
    """Builds the CFG for one function body.

    ``finally`` blocks are duplicated per continuation (normal, exception,
    return, break, continue) — the standard lowering, and cheap at the size
    of the functions this runs over.
    """

    def __init__(self, cfg: _Cfg) -> None:
        self.cfg = cfg

    def build(
        self,
        body: Sequence[ast.stmt],
        nxt: int,
        exc: FrozenSet[int],
        brk: Optional[int],
        cont: Optional[int],
        ret: int,
    ) -> int:
        """Wire ``body`` and return its entry node."""
        entry = nxt
        for stmt in reversed(body):
            entry = self._stmt(stmt, entry, exc, brk, cont, ret)
        return entry

    def _simple(self, stmt: ast.stmt, nxt: int, exc: FrozenSet[int]) -> int:
        node = self.cfg.new(stmt)
        self.cfg.succ[node].add(nxt)
        self.cfg.exc[node] |= exc
        return node

    def _stmt(
        self,
        stmt: ast.stmt,
        nxt: int,
        exc: FrozenSet[int],
        brk: Optional[int],
        cont: Optional[int],
        ret: int,
    ) -> int:
        cfg = self.cfg
        if isinstance(stmt, ast.Return):
            node = cfg.new(stmt)
            cfg.succ[node].add(ret)
            cfg.exc[node] |= exc
            return node
        if isinstance(stmt, ast.Raise):
            node = cfg.new(stmt)
            cfg.exc[node] |= exc
            # A raise has no normal successor.
            return node
        if isinstance(stmt, ast.Break) and brk is not None:
            node = cfg.new(stmt)
            cfg.succ[node].add(brk)
            return node
        if isinstance(stmt, ast.Continue) and cont is not None:
            node = cfg.new(stmt)
            cfg.succ[node].add(cont)
            return node
        if isinstance(stmt, ast.If):
            node = cfg.new(stmt)
            cfg.exc[node] |= exc
            cfg.succ[node].add(self.build(stmt.body, nxt, exc, brk, cont, ret))
            cfg.succ[node].add(
                self.build(stmt.orelse, nxt, exc, brk, cont, ret)
                if stmt.orelse else nxt
            )
            return node
        if isinstance(stmt, (ast.While, ast.For)):
            node = cfg.new(stmt)
            cfg.exc[node] |= exc
            after = (
                self.build(stmt.orelse, nxt, exc, brk, cont, ret)
                if stmt.orelse else nxt
            )
            body_entry = self.build(stmt.body, node, exc, after, node, ret)
            cfg.succ[node].add(body_entry)
            cfg.succ[node].add(after)
            return node
        if isinstance(stmt, ast.With):
            node = cfg.new(stmt)
            cfg.exc[node] |= exc
            cfg.succ[node].add(self.build(stmt.body, nxt, exc, brk, cont, ret))
            return node
        if isinstance(stmt, ast.Try):
            return self._try(stmt, nxt, exc, brk, cont, ret)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are analyzed separately; the def itself
            # is a no-op for this function's resources.
            node = cfg.new(None)
            cfg.succ[node].add(nxt)
            return node
        return self._simple(stmt, nxt, exc)

    def _try(
        self,
        stmt: ast.Try,
        nxt: int,
        exc: FrozenSet[int],
        brk: Optional[int],
        cont: Optional[int],
        ret: int,
    ) -> int:
        fin = stmt.finalbody

        def through_finally(target: int, kind: str) -> int:
            if not fin:
                return target
            return self.build(fin, target, exc, None, None, ret if kind == "ret" else target)

        fin_nxt = through_finally(nxt, "nxt")
        fin_ret = through_finally(ret, "ret")
        fin_brk = through_finally(brk, "brk") if brk is not None else None
        fin_cont = through_finally(cont, "cont") if cont is not None else None
        if fin:
            fin_exc: FrozenSet[int] = frozenset(
                self.build(fin, e, exc, None, None, ret) for e in exc
            )
        else:
            fin_exc = exc

        handler_entries = [
            self.build(h.body, fin_nxt, fin_exc, fin_brk, fin_cont, fin_ret)
            for h in stmt.handlers
        ]
        body_exc = frozenset(handler_entries) | (
            frozenset()
            if any(_handler_is_catchall(h) for h in stmt.handlers)
            else fin_exc
        )
        orelse_entry = (
            self.build(stmt.orelse, fin_nxt, fin_exc, fin_brk, fin_cont, fin_ret)
            if stmt.orelse else fin_nxt
        )
        return self.build(
            stmt.body, orelse_entry, body_exc or fin_exc, fin_brk, fin_cont, fin_ret
        )


@dataclass
class _Effects:
    """What one CFG node does to the obligation state."""

    acquires: List[_Site] = field(default_factory=list)
    #: (site id, obligation) pairs discharged by this statement.
    discharges: Set[Tuple[int, str]] = field(default_factory=set)


class _FunctionAnalysis:
    """RCL001/RCL002 dataflow over one function."""

    def __init__(
        self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        path: str, qualname: str, aliases: Dict[str, str],
    ) -> None:
        self.func = func
        self.path = path
        self.qualname = qualname
        self.aliases = aliases
        self.sites: List[_Site] = []

    # -------------------------------------------------------- acquire model
    def _qualname_of(self, node: ast.AST) -> str:
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return ""
        parts.append(self.aliases.get(cur.id, cur.id))
        return ".".join(reversed(parts))

    def _acquire_call(self, call: ast.Call) -> Optional[Tuple[bool, Optional[str]]]:
        """``(creates, name_var)`` when ``call`` opens a segment, else None."""
        fn = call.func
        base = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else ""
        )
        if base not in _ACQUIRE_FUNCS:
            return None
        creates = False
        for kw in call.keywords:
            if kw.arg == "create":
                creates = bool(
                    isinstance(kw.value, ast.Constant) and kw.value.value
                )
        name_expr: Optional[ast.expr] = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "name":
                name_expr = kw.value
        name_var = name_expr.id if isinstance(name_expr, ast.Name) else None
        return creates, name_var

    def _extract_acquire(
        self, stmt: ast.stmt
    ) -> Optional[Tuple[str, Optional[str], Optional[str], FrozenSet[str]]]:
        """``(kind, handle, name_var, obligations)`` when ``stmt`` acquires.

        Covers segment opens (``kind="shm"``), socket constructors, and
        tuple-unpacked ``listener.accept()`` (``kind="sock"``).  A socket
        bound straight into an attribute or container escapes at birth
        and yields no site.
        """
        if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
            return None
        call = stmt.value
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        plain_handle = target.id if isinstance(target, ast.Name) else None

        acq = self._acquire_call(call)
        if acq is not None:
            creates, name_var = acq
            return "shm", plain_handle, name_var, frozenset(
                (_CLOSE, _UNLINK) if creates else (_CLOSE,)
            )
        if self._qualname_of(call.func) in _SOCK_ACQUIRE_QUALS:
            if plain_handle is None:
                return None
            return "sock", plain_handle, None, frozenset({_CLOSE})
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "accept"
            and not call.args
            and isinstance(target, ast.Tuple)
            and target.elts
            and isinstance(target.elts[0], ast.Name)
        ):
            return "sock", target.elts[0].id, None, frozenset({_CLOSE})
        return None

    def _attr_bases(self, expr: ast.expr) -> Set[int]:
        """ids of Name nodes that only serve as attribute bases.

        ``shm.buf[:8]`` *reads through* the handle; only a bare ``shm``
        reference (returned, stored, passed whole) transfers ownership.
        """
        out: Set[int] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                out.add(id(node.value))
        return out

    def _is_pure_release(self, stmt: Optional[ast.stmt]) -> bool:
        """True for statements that only release (modeled as non-throwing).

        Without this, the ``shm.close()`` inside a ``finally`` block would
        manufacture an exception path on which the close "failed" and every
        later discharge is unreachable — pure noise, releases don't raise.
        """
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return False
        fn = stmt.value.func
        if isinstance(fn, ast.Attribute) and fn.attr in ("close", "unlink"):
            return True
        base = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else ""
        )
        return base == "_unlink_segment"

    def _node_exprs(self, stmt: ast.stmt) -> List[ast.expr]:
        """The expressions *belonging to* a CFG node (no nested bodies)."""
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, ast.For):
            return [stmt.iter]
        if isinstance(stmt, ast.With):
            return [i.context_expr for i in stmt.items]
        out: List[ast.expr] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                out.append(child)
        return out

    def _effects(self, stmt: Optional[ast.stmt]) -> _Effects:
        eff = _Effects()
        if stmt is None:
            return eff
        exprs = self._node_exprs(stmt)

        # Acquires: ``handle = _open_shm(...)`` / ``= SharedMemory(...)`` /
        # socket constructors / ``conn, addr = listener.accept()``.
        acq = self._extract_acquire(stmt)
        if acq is not None:
            kind, handle, name_var, obligations = acq
            eff.acquires.append(_Site(
                sid=len(self.sites), line=stmt.lineno, col=stmt.col_offset,
                handle=handle, name_var=name_var, obligations=obligations,
                kind=kind,
            ))

        by_handle: Dict[str, List[_Site]] = {}
        by_name: Dict[str, List[_Site]] = {}
        for s in self.sites:
            if s.handle:
                by_handle.setdefault(s.handle, []).append(s)
            if s.name_var:
                by_name.setdefault(s.name_var, []).append(s)

        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    fn = node.func
                    # handle.close() / handle.unlink()
                    if (
                        isinstance(fn, ast.Attribute)
                        and isinstance(fn.value, ast.Name)
                        and fn.value.id in by_handle
                    ):
                        if fn.attr == "close":
                            eff.discharges |= {
                                (s.sid, _CLOSE) for s in by_handle[fn.value.id]
                            }
                        elif fn.attr == "unlink":
                            eff.discharges |= {
                                (s.sid, _UNLINK) for s in by_handle[fn.value.id]
                            }
                        continue
                    # _unlink_segment(name) — by segment name.
                    base = fn.attr if isinstance(fn, ast.Attribute) else (
                        fn.id if isinstance(fn, ast.Name) else ""
                    )
                    if base == "_unlink_segment":
                        for arg in node.args:
                            if isinstance(arg, ast.Name) and arg.id in by_name:
                                eff.discharges |= {
                                    (s.sid, _UNLINK) for s in by_name[arg.id]
                                }
                        continue
                    # Ownership transfer: the name (or the handle itself)
                    # passed to a non-lifecycle call escapes the function's
                    # responsibility.
                    if base not in _LIFECYCLE_CALLS:
                        for arg in [*node.args, *[k.value for k in node.keywords]]:
                            bases = self._attr_bases(arg)
                            for leaf in ast.walk(arg):
                                if not isinstance(leaf, ast.Name) or id(leaf) in bases:
                                    continue
                                if leaf.id in by_name:
                                    eff.discharges |= {
                                        (s.sid, _UNLINK) for s in by_name[leaf.id]
                                    }
                                if leaf.id in by_handle:
                                    eff.discharges |= {
                                        (s.sid, ob)
                                        for s in by_handle[leaf.id]
                                        for ob in (_CLOSE, _UNLINK)
                                    }

        # Escapes through returns and stores into attributes/containers.
        escape_exprs: List[ast.expr] = []
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            escape_exprs.append(stmt.value)
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, (ast.Attribute, ast.Subscript)) for t in stmt.targets
        ):
            escape_exprs.append(stmt.value)
        for expr in escape_exprs:
            bases = self._attr_bases(expr)
            for leaf in ast.walk(expr):
                if not isinstance(leaf, ast.Name) or id(leaf) in bases:
                    continue
                if leaf.id in by_name:
                    eff.discharges |= {
                        (s.sid, _UNLINK) for s in by_name[leaf.id]
                    }
                if leaf.id in by_handle:
                    eff.discharges |= {
                        (s.sid, ob)
                        for s in by_handle[leaf.id]
                        for ob in (_CLOSE, _UNLINK)
                    }
        return eff

    # ------------------------------------------------------------- dataflow
    def run(self) -> List[Finding]:
        # Pass 1: collect acquire sites so effect extraction can resolve
        # handle/name bindings anywhere in the function (including releases
        # that appear before the acquire in source order, e.g. in loops).
        for stmt in ast.walk(self.func):
            if isinstance(stmt, ast.stmt):
                acq = self._extract_acquire(stmt)
                if acq is None:
                    continue
                kind, handle, name_var, obligations = acq
                self.sites.append(_Site(
                    sid=len(self.sites), line=stmt.lineno, col=stmt.col_offset,
                    handle=handle, name_var=name_var, obligations=obligations,
                    kind=kind,
                ))
        if not self.sites:
            return []

        cfg = _Cfg()
        builder = _CfgBuilder(cfg)
        entry = builder.build(
            list(self.func.body), _EXIT, frozenset({_EXC_EXIT}), None, None, _EXIT
        )

        effects = [self._node_effects_for(cfg.stmts[i]) for i in range(len(cfg.stmts))]

        # Worklist: node → set of outstanding (site, obligation) pairs that
        # *may* hold on entry.
        n = len(cfg.stmts)
        state_in: List[Optional[FrozenSet[Tuple[int, str]]]] = [None] * n
        state_in[entry] = frozenset()
        work = [entry]
        while work:
            node = work.pop()
            inc = state_in[node]
            assert inc is not None
            eff = effects[node]
            after_discharge = inc - eff.discharges
            normal_out = after_discharge | {
                (s.sid, ob) for s in eff.acquires for ob in s.obligations
            }
            # Exception edges: the acquire did not take effect (the call
            # raised), but discharges on this statement still count —
            # and pure release statements do not raise at all.
            exc_out = after_discharge
            exc_targets = (
                () if self._is_pure_release(cfg.stmts[node]) else cfg.exc[node]
            )
            for succ, out in (
                *[(t, normal_out) for t in cfg.succ[node]],
                *[(t, exc_out) for t in exc_targets],
            ):
                merged = out if state_in[succ] is None else (state_in[succ] | out)
                if merged != state_in[succ]:
                    state_in[succ] = merged
                    if succ > _EXC_EXIT:
                        work.append(succ)

        findings: List[Finding] = []
        seen: Set[Tuple[int, str]] = set()
        for exit_node, shm_rule in ((_EXC_EXIT, "RCL001"), (_EXIT, "RCL002")):
            outstanding = state_in[exit_node] or frozenset()
            exit_kind = "an exception" if exit_node == _EXC_EXIT else "a normal"
            for sid, ob in sorted(outstanding):
                site = self.sites[sid]
                # Sockets carry one rule regardless of exit flavor: the
                # contract is simply "closed on every CFG path".
                rule = shm_rule if site.kind == "shm" else "RCL005"
                if (sid, rule) in seen:
                    continue
                seen.add((sid, rule))
                if site.kind == "shm":
                    message = (
                        f"segment acquired here may leak on {exit_kind} exit "
                        f"path ('{ob}' obligation never discharged; close "
                        "the handle and unlink the segment — or hand its "
                        "name to an owner — on every path)"
                    )
                else:
                    message = (
                        f"socket acquired here may leak on {exit_kind} exit "
                        "path (never closed; wire helpers do not take "
                        "ownership — close the connection, or hand it whole "
                        "to an owner, on every path)"
                    )
                findings.append(Finding(
                    rule=rule, path=self.path, line=site.line, col=site.col,
                    message=message,
                    symbol=self.qualname,
                ))
        return findings

    def _node_effects_for(self, stmt: Optional[ast.stmt]) -> _Effects:
        eff = self._effects(stmt)
        # Re-key freshly-seen acquires in _effects onto the sites collected
        # in pass 1 (matched by position).
        if eff.acquires:
            eff.acquires = [
                s for s in self.sites
                if any(a.line == s.line and a.col == s.col for a in eff.acquires)
            ]
        return eff


class _LifecycleChecker(ast.NodeVisitor):
    """RCL003/RCL004 scans + per-function RCL001/RCL002 dataflow."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self.aliases: Dict[str, str] = {}
        self._class_stack: List[str] = []

    # -------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            self.aliases[alias.asname or top] = alias.name if alias.asname else top

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    # ---------------------------------------------------------- definitions
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _qual(self, name: str) -> str:
        prefix = ".".join(self._class_stack)
        return f"{prefix}.{name}" if prefix else name

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        qual = self._qual(node.name)
        analysis = _FunctionAnalysis(node, self.path, qual, self.aliases)
        self.findings.extend(analysis.run())
        self._scan_payload_capture(node, qual)
        self._scan_fork_ordering(node, qual)
        # Recurse into nested defs/classes under this function's qualname.
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._class_stack.append(node.name)
                self.visit(stmt)
                self._class_stack.pop()

    # ------------------------------------------------------------- RCL003
    def _qualname_of(self, node: ast.AST) -> str:
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return ""
        parts.append(self.aliases.get(cur.id, cur.id))
        return ".".join(reversed(parts))

    def _is_fork_hostile_call(self, call: ast.Call) -> bool:
        fn = call.func
        if isinstance(fn, ast.Name) and fn.id in _FORK_HOSTILE_NAMES:
            return True
        qn = self._qualname_of(fn)
        return qn in _FORK_HOSTILE_QUALS

    def _scan_payload_capture(
        self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef], qual: str
    ) -> None:
        # Local names bound to fork-hostile values inside this function.
        hostile_names: Set[str] = set()
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign):
                continue
            hostile = (
                isinstance(stmt.value, ast.Lambda)
                or (isinstance(stmt.value, ast.Call)
                    and self._is_fork_hostile_call(stmt.value))
            )
            if hostile:
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        hostile_names.add(t.id)

        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            is_sink = False
            sink = ""
            if isinstance(fn, ast.Name) and (
                fn.id.endswith("Unit") or fn.id.endswith("Payload")
            ):
                is_sink, sink = True, f"{fn.id}(...) payload"
            elif isinstance(fn, ast.Attribute) and fn.attr == "apply_async":
                is_sink, sink = True, "apply_async arguments"
            elif self._qualname_of(fn) == "pickle.dumps":
                is_sink, sink = True, "pickle.dumps"
            if not is_sink:
                continue
            # Flatten container literals: payloads routinely travel as the
            # argument *tuple* of apply_async / pickle.dumps, so a hostile
            # value one level down is just as captured.
            worklist = [*node.args, *[k.value for k in node.keywords]]
            flat: List[ast.expr] = []
            while worklist:
                arg = worklist.pop()
                if isinstance(arg, (ast.Tuple, ast.List, ast.Set)):
                    worklist.extend(arg.elts)
                elif isinstance(arg, ast.Dict):
                    worklist.extend(v for v in arg.values if v is not None)
                elif isinstance(arg, ast.Starred):
                    worklist.append(arg.value)
                else:
                    flat.append(arg)
            for arg in flat:
                hostile_arg = (
                    isinstance(arg, ast.Lambda)
                    or (isinstance(arg, ast.Name) and arg.id in hostile_names)
                    or (isinstance(arg, ast.Call)
                        and self._is_fork_hostile_call(arg))
                    or (isinstance(arg, ast.Name) and arg.id == "tracer")
                    or (isinstance(arg, ast.Attribute) and arg.attr == "tracer")
                )
                if hostile_arg:
                    self.findings.append(Finding(
                        rule="RCL003", path=self.path, line=arg.lineno,
                        col=arg.col_offset,
                        message=(
                            f"fork-hostile value captured into {sink}; unit "
                            "payloads cross process boundaries — ship plain "
                            "data (descriptors, exported spans), never live "
                            "locks/pools/tracers/lambdas"
                        ),
                        symbol=qual,
                    ))

    # ------------------------------------------------------------- RCL004
    def _is_fork_point(self, call: ast.Call) -> bool:
        fn = call.func
        if isinstance(fn, ast.Name) and fn.id == "get_pool":
            return True
        qn = self._qualname_of(fn)
        if qn in ("multiprocessing.Pool", "multiprocessing.pool.Pool"):
            return True
        return (
            isinstance(fn, ast.Attribute)
            and fn.attr == "acquire"
            and isinstance(fn.value, ast.Name)
            and "pool" in fn.value.id.lower()
        )

    def _scan_fork_ordering(
        self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef], qual: str
    ) -> None:
        fork_line: Optional[int] = None
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if self._is_fork_point(node):
                if fork_line is None or node.lineno < fork_line:
                    fork_line = node.lineno
        if fork_line is None:
            return
        for node in ast.walk(func):
            if not isinstance(node, ast.Call) or node.lineno <= fork_line:
                continue
            qn = self._qualname_of(node.func)
            if qn in _MP_PRIMITIVE_QUALS and qn not in (
                "multiprocessing.Pool", "multiprocessing.pool.Pool"
            ):
                self.findings.append(Finding(
                    rule="RCL004", path=self.path, line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"'{qn}' created after the pool fork point at line "
                        f"{fork_line}; already-forked workers never see it — "
                        "create multiprocessing primitives before the pool"
                    ),
                    symbol=qual,
                ))


# -------------------------------------------------------------- entry points
def analyze_lifecycle_source(
    source: str, path: str = "<string>", suppress: bool = True
) -> List[Finding]:
    """Run the lifecycle/fork-safety rules over one source string.

    Raises:
        SyntaxError: when the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    checker = _LifecycleChecker(path)
    checker.visit(tree)
    findings = sorted(checker.findings, key=lambda f: (f.line, f.col, f.rule))
    if suppress:
        findings = parse_suppressions(source).apply(findings)
    return findings


def analyze_lifecycle_file(
    path: Union[str, Path], suppress: bool = True
) -> List[Finding]:
    p = Path(path)
    return analyze_lifecycle_source(
        p.read_text(encoding="utf-8"), path=str(p), suppress=suppress
    )


def iter_lifecycle_targets(runtime_root: Union[str, Path]) -> Iterable[Path]:
    """``.py`` files under a ``runtime/`` tree."""
    root = Path(runtime_root)
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for p in sorted(root.rglob("*.py")):
        if p.is_file():
            yield p


def analyze_lifecycle_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Analyze every ``.py`` file under each path."""
    out: List[Finding] = []
    for root in paths:
        for f in iter_lifecycle_targets(root):
            try:
                out.extend(analyze_lifecycle_file(f))
            except SyntaxError as exc:
                out.append(Finding(
                    rule="RCL000", path=str(f), line=exc.lineno or 1,
                    col=exc.offset or 0, message=f"syntax error: {exc.msg}",
                ))
    return out
