"""repro-lint: AST-based determinism and cache-safety linter.

The dataset runtime (:mod:`repro.runtime`) caches artifacts under
content-addressed keys and promises byte-identical results for any worker
count.  That promise only holds when every generation path is a pure
function of its explicit seeds and inputs.  These rules ban the constructs
that silently break it:

========  =============================================================
rule      contract
========  =============================================================
RPL001    no global-state RNG calls (``random.random()``,
          ``np.random.rand()``, …) — inject a seeded ``random.Random``
          or ``np.random.Generator`` instead
RPL002    no wall-clock/OS entropy (``time.time()``, ``os.urandom()``,
          ``uuid.uuid4()``, ``secrets.*``, ``datetime.now()``) in code
          reachable from runtime work units
RPL003    no order-sensitive iteration over set displays
          (``list({...})``, ``for x in {...}``) — unordered iteration
          leaks ``PYTHONHASHSEED``-dependent order into artifacts
RPL004    no mutable default arguments (shared state across calls)
RPL005    no lambdas stored as instance state (unpicklable: breaks the
          artifact cache and multiprocessing fan-out)
RPL006    no error swallowing — bare ``except:`` (catches SystemExit /
          KeyboardInterrupt), and ``except Exception: pass`` hide the
          failures the fault-tolerance layer must classify (retry,
          evict, degrade, abort); catch specific types, or handle /
          re-raise
========  =============================================================

Any finding can be silenced on its line with ``# repro-lint:
disable=RPL001`` (comma-separate several ids), or for a whole file with
``# repro-lint: disable-file=RPL001`` on any line.  Suppressions are meant
to carry a justification in a neighbouring comment.

The linter is pure stdlib (``ast`` + ``re``) so ``repro check --self``
runs in environments without the numeric stack.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from .suppress import Finding, parse_suppressions

__all__ = [
    "LINT_RULES",
    "LintViolation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Historical name for this engine's finding record; all engines now share
#: :class:`repro.analysis.suppress.Finding` (same fields, plus ``symbol``).
LintViolation = Finding

#: Rule id → one-line description (the linter's public catalog).
LINT_RULES: Dict[str, str] = {
    "RPL001": "global-state RNG call; inject a seeded random.Random / np.random.Generator",
    "RPL002": "wall-clock or OS entropy source in deterministic code",
    "RPL003": "order-sensitive iteration over an unordered set display",
    "RPL004": "mutable default argument",
    "RPL005": "lambda stored as instance state (unpicklable)",
    "RPL006": "error swallowing: bare except / broad except with pass-only body",
}

#: ``random.<attr>`` accesses that construct isolated RNGs (allowed).
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: ``numpy.random.<attr>`` accesses that construct isolated RNGs (allowed).
_NP_RANDOM_ALLOWED = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # legacy, but instance-scoped when constructed explicitly
}

#: Fully-qualified callables banned by RPL002 (exact match).
_ENTROPY_BANNED = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Module prefixes banned wholesale by RPL002.
_ENTROPY_BANNED_PREFIXES = ("secrets.",)

#: Wrappers whose output order follows the input iterable's order (RPL003).
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "iter", "enumerate", "reversed"}

def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that are syntactically unordered sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Checker(ast.NodeVisitor):
    """Single-pass visitor implementing every RPL rule."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[LintViolation] = []
        #: Local name → fully-qualified module/object path it is bound to.
        self.aliases: Dict[str, str] = {}
        #: Enclosing definition names, for the finding's baseline symbol.
        self._symbols: List[str] = []

    # ------------------------------------------------------------- plumbing
    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            LintViolation(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                symbol=".".join(self._symbols) or "<module>",
            )
        )

    def _qualname(self, node: ast.AST) -> str:
        """Resolve ``np.random.rand`` → ``"numpy.random.rand"`` (or "")."""
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return ""
        root = self.aliases.get(cur.id)
        if root is None:
            return ""
        parts.append(root)
        return ".".join(reversed(parts))

    # -------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                full = f"{node.module}.{alias.name}"
                self.aliases[alias.asname or alias.name] = full
                # RPL001 fires at the import when a global-state function is
                # pulled out of random / numpy.random by name.
                if node.module == "random" and alias.name not in _RANDOM_ALLOWED:
                    self._add(
                        "RPL001",
                        node,
                        f"from-import of global-state 'random.{alias.name}'; "
                        "inject a seeded random.Random instead",
                    )
                elif node.module == "numpy.random" and alias.name not in _NP_RANDOM_ALLOWED:
                    self._add(
                        "RPL001",
                        node,
                        f"from-import of global-state 'numpy.random.{alias.name}'; "
                        "inject a seeded np.random.Generator instead",
                    )
        self.generic_visit(node)

    # ----------------------------------------------------- RPL001 / RPL002
    def visit_Attribute(self, node: ast.Attribute) -> None:
        qn = self._qualname(node)
        if qn:
            head, _, tail = qn.rpartition(".")
            if head == "random" and tail not in _RANDOM_ALLOWED:
                self._add(
                    "RPL001",
                    node,
                    f"global-state RNG '{qn}'; inject a seeded random.Random instead",
                )
            elif head == "numpy.random" and tail not in _NP_RANDOM_ALLOWED:
                self._add(
                    "RPL001",
                    node,
                    f"global-state RNG '{qn}'; inject a seeded np.random.Generator instead",
                )
            elif qn in _ENTROPY_BANNED or qn.startswith(_ENTROPY_BANNED_PREFIXES):
                self._add(
                    "RPL002",
                    node,
                    f"entropy source '{qn}' breaks determinism; derive values "
                    "from seeds (repro.runtime.seeds.derive_seed)",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # A from-imported entropy function called by bare name.
        if isinstance(node.func, ast.Name):
            qn = self.aliases.get(node.func.id, "")
            if qn in _ENTROPY_BANNED or (qn and qn.startswith(_ENTROPY_BANNED_PREFIXES)):
                self._add(
                    "RPL002",
                    node,
                    f"entropy source '{qn}' breaks determinism; derive values "
                    "from seeds (repro.runtime.seeds.derive_seed)",
                )
            # RPL003: order-sensitive wrappers over a set display.
            if (
                node.func.id in _ORDER_SENSITIVE_WRAPPERS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                self._add(
                    "RPL003",
                    node,
                    f"'{node.func.id}()' over a set has PYTHONHASHSEED-dependent "
                    "order; use sorted(...) before it leaks into artifacts",
                )
        # RPL003: "sep".join({...}) serializes unordered content.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._add(
                "RPL003",
                node,
                "str.join over a set has PYTHONHASHSEED-dependent order; "
                "use sorted(...) first",
            )
        self.generic_visit(node)

    # ---------------------------------------------------------------- RPL003
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._add(
                "RPL003",
                node,
                "iterating a set display has PYTHONHASHSEED-dependent order; "
                "use sorted(...)",
            )
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if _is_set_expr(node.iter):
            self._add(
                "RPL003",
                node.iter,
                "comprehension over a set display has PYTHONHASHSEED-dependent "
                "order; use sorted(...)",
            )
        self.generic_visit(node)

    # ---------------------------------------------------------------- RPL004
    def _check_defaults(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                           ast.DictComp, ast.SetComp))
            if not mutable and isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
                mutable = default.func.id in ("list", "dict", "set", "bytearray")
            if mutable:
                self._add(
                    "RPL004",
                    default,
                    f"mutable default argument in '{node.name}()' is shared "
                    "across calls; default to None and construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    # ---------------------------------------------------------------- RPL006
    @staticmethod
    def _catches_everything(expr: ast.expr) -> bool:
        """True for ``Exception`` / ``BaseException`` (alone or in a tuple)."""
        names = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        return any(
            isinstance(n, ast.Name) and n.id in ("Exception", "BaseException")
            for n in names
        )

    @staticmethod
    def _is_trivial_body(body: List[ast.stmt]) -> bool:
        """True when a handler body only passes/continues (swallows)."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            ):
                continue
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                "RPL006",
                node,
                "bare 'except:' also swallows SystemExit/KeyboardInterrupt; "
                "catch specific exception types and re-raise what you cannot "
                "handle",
            )
        elif self._catches_everything(node.type) and self._is_trivial_body(node.body):
            self._add(
                "RPL006",
                node,
                "broad exception handler with a pass-only body swallows every "
                "error; classify it — handle, record, or re-raise",
            )
        self.generic_visit(node)

    # ---------------------------------------------------------------- RPL005
    def _check_self_lambda(self, target: ast.expr, value: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and isinstance(value, ast.Lambda)
        ):
            self._add(
                "RPL005",
                value,
                f"lambda stored on 'self.{target.attr}' is unpicklable and "
                "breaks the artifact cache / process fan-out; use a bound "
                "method or module-level function",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_self_lambda(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_self_lambda(node.target, node.value)
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", suppress: bool = True
) -> List[LintViolation]:
    """Lint one Python source string; returns findings sorted by position.

    ``suppress=False`` skips the inline ``# repro-lint: disable=`` layer
    and returns the raw findings (the unused-suppression audit needs them).

    Raises:
        SyntaxError: when the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    checker = _Checker(path)
    checker.visit(tree)
    kept = sorted(checker.violations, key=lambda v: (v.line, v.col, v.rule))
    if suppress:
        kept = parse_suppressions(source).apply(kept)
    return kept


def lint_file(path: Union[str, Path], suppress: bool = True) -> List[LintViolation]:
    """Lint one ``.py`` file."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), path=str(p), suppress=suppress)


def iter_python_files(root: Union[str, Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``root`` (or ``root`` itself), sorted."""
    p = Path(root)
    if p.is_file():
        if p.suffix == ".py":
            yield p
        return
    yield from sorted(q for q in p.rglob("*.py") if q.is_file())


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[LintViolation]:
    """Lint every ``.py`` file under each of ``paths``.

    Unparseable files surface as a synthetic ``RPL000`` finding rather than
    aborting the run, so one bad file cannot hide the rest of the report.
    """
    out: List[LintViolation] = []
    for root in paths:
        for f in iter_python_files(root):
            try:
                out.extend(lint_file(f))
            except SyntaxError as exc:
                out.append(
                    LintViolation(
                        rule="RPL000",
                        path=str(f),
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}",
                    )
                )
    return out
