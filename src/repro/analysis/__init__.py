"""Static-analysis subsystem: linting, DRC, and contract analyzers.

Four engines back the ``repro check`` CLI command (and its ``repro lint``
alias):

* :mod:`repro.analysis.replint` — *repro-lint*, an AST-based linter that
  enforces the repository's determinism and cache-safety contracts
  (rules ``RPL001``…; see :data:`repro.analysis.replint.LINT_RULES`).
  These contracts are what make the content-addressed artifact cache of
  :mod:`repro.runtime` sound: every generation path must be a pure
  function of its seeds and inputs.

* :mod:`repro.analysis.drc` — structural design-rule checks over
  :class:`~repro.netlist.netlist.Netlist`, MIV lists, and
  :class:`~repro.core.hetgraph.HetGraph` bundles (rules ``DRC001``…; see
  :data:`repro.analysis.drc.DRC_RULES`).  ``prepare_design`` runs the
  cheap tier of these as a fail-fast pass on every prepared design.

* :mod:`repro.analysis.purity` — backend-purity dataflow over the nn
  stack (rules ``BPL001``…): raw numpy/scipy/torch must never touch a
  backend tensor outside ``nn/backends/``, math stays float64, and
  checkpoints stay host numpy.  This is the static half of PR 7's
  oracle-differential contract.

* :mod:`repro.analysis.lifecycle` — CFG-based resource-lifecycle and
  fork-safety checks over the runtime (rules ``RCL001``…): shared-memory
  acquire/release pairing on all paths including exceptions, no
  fork-hostile values in pickled unit payloads, no multiprocessing
  primitives created after a pool fork point.

All source-level engines emit :class:`~repro.analysis.suppress.Finding`
records and share one suppression/baseline layer
(:mod:`repro.analysis.suppress`): inline ``# repro-lint: disable=``
directives, a checked-in ``.repro-baseline.json`` debt inventory, and the
``SUP001`` unused-suppression audit.

Every engine is importable without numpy/scipy so ``repro check --self``
stays runnable in minimal environments.
"""

from .drc import (
    DRC_RULES,
    DrcError,
    DrcViolation,
    NetlistError,
    assert_clean,
    check_netlist,
    run_drc,
    validate_netlist,
)
from .lifecycle import (
    LIFECYCLE_RULES,
    analyze_lifecycle_paths,
    analyze_lifecycle_source,
)
from .purity import (
    PURITY_RULES,
    analyze_purity_paths,
    analyze_purity_source,
)
from .replint import (
    LINT_RULES,
    LintViolation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .suppress import (
    UNUSED_SUPPRESSION_RULE,
    Baseline,
    BaselineEntry,
    Finding,
    parse_suppressions,
    unused_suppressions,
)

__all__ = [
    "DRC_RULES",
    "DrcError",
    "DrcViolation",
    "NetlistError",
    "assert_clean",
    "check_netlist",
    "run_drc",
    "validate_netlist",
    "LIFECYCLE_RULES",
    "analyze_lifecycle_paths",
    "analyze_lifecycle_source",
    "PURITY_RULES",
    "analyze_purity_paths",
    "analyze_purity_source",
    "LINT_RULES",
    "LintViolation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "UNUSED_SUPPRESSION_RULE",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "parse_suppressions",
    "unused_suppressions",
]
