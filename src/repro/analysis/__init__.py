"""Static-analysis subsystem: determinism linting and structural DRC.

Two engines back the ``repro check`` CLI command (and its ``repro lint``
alias):

* :mod:`repro.analysis.replint` — *repro-lint*, an AST-based linter that
  enforces the repository's determinism and cache-safety contracts
  (rules ``RPL001``…; see :data:`repro.analysis.replint.LINT_RULES`).
  These contracts are what make the content-addressed artifact cache of
  :mod:`repro.runtime` sound: every generation path must be a pure
  function of its seeds and inputs.

* :mod:`repro.analysis.drc` — structural design-rule checks over
  :class:`~repro.netlist.netlist.Netlist`, MIV lists, and
  :class:`~repro.core.hetgraph.HetGraph` bundles (rules ``DRC001``…; see
  :data:`repro.analysis.drc.DRC_RULES`).  ``prepare_design`` runs the
  cheap tier of these as a fail-fast pass on every prepared design.

Both engines are importable without numpy/scipy so ``repro check --self``
stays runnable in minimal environments.
"""

from .drc import (
    DRC_RULES,
    DrcError,
    DrcViolation,
    NetlistError,
    assert_clean,
    run_drc,
)
from .replint import (
    LINT_RULES,
    LintViolation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "DRC_RULES",
    "DrcError",
    "DrcViolation",
    "NetlistError",
    "assert_clean",
    "run_drc",
    "LINT_RULES",
    "LintViolation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
