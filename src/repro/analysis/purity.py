"""Backend-purity analyzer for the nn stack (rules ``BPL001``…).

PR 7 rebuilt the GNN models on a pluggable :class:`repro.nn.backends.base.
TensorBackend`: the numpy engine is the bitwise oracle, and every other
engine is differential-tested against it.  That contract only holds while
the model code stays *backend-neutral* — the moment a raw ``np.`` call
touches a backend tensor, the numpy path silently keeps working while every
other backend either crashes on a foreign tensor type or, worse, takes a
host round-trip that changes accumulation order and breaks the
differential tolerances.  The runtime differential tests catch such a
regression only on hosts where a second backend is installed; this
analyzer catches it on every host, at lint time.

The engine runs an **intraprocedural taint dataflow** over each function:
values returned by backend ops, ``Parameter.data`` fields (``.value`` /
``.grad``), module ``forward``/``backward`` calls, and saved forward caches
are *backend tensors*; taint propagates through arithmetic, slicing, and
attribute access, and is cleared by the sanctioned host escapes
(``to_numpy`` / ``_to_host`` / ``to_scalar``).  On that lattice:

=========  ============================================================
rule       contract
=========  ============================================================
BPL001     no raw ``numpy``/``scipy`` operation applied to a backend
           tensor — route it through the ``TensorBackend`` op set
BPL002     no reduced-precision dtype (``float32``/``float16``/…)
           entering tensor math: state and math are float64 by contract
BPL003     no ``to_numpy`` → ``asarray`` host round-trip inside a
           ``forward``/``backward`` hot path (kills the GPU backends and
           perturbs accumulation order)
BPL004     ``state_dict`` values must be host numpy arrays — return
           ``backend.to_numpy(p.value)``, never the live tensor
BPL005     no direct ``torch`` import/use outside ``nn/backends/``
=========  ============================================================

Inline ``# repro-lint: disable=BPL001`` suppressions and the baseline file
work as for every engine (:mod:`repro.analysis.suppress`).  The analyzer is
pure stdlib; it is pointed at ``src/repro/nn/`` excluding ``nn/backends/``
(the backends *are* the boundary — raw numpy/torch is their job).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Union

from .suppress import Finding, parse_suppressions

__all__ = [
    "PURITY_RULES",
    "analyze_purity_file",
    "analyze_purity_paths",
    "analyze_purity_source",
    "iter_purity_targets",
]

#: Rule id → one-line description (the purity engine's public catalog).
PURITY_RULES: Dict[str, str] = {
    "BPL001": "raw numpy/scipy operation applied to a backend tensor",
    "BPL002": "reduced-precision dtype entering tensor math (contract: float64)",
    "BPL003": "to_numpy→asarray host round-trip inside forward/backward",
    "BPL004": "state_dict value is a live backend tensor, not a host numpy array",
    "BPL005": "direct torch import/use outside nn/backends/",
}

#: Backend methods whose result is host-side (clears tensor taint).
_HOST_ESCAPES = {"to_numpy", "_to_host", "to_scalar", "dtype_of"}

#: Free functions that return host arrays from tensors (loss.py helper).
_HOST_ESCAPE_FUNCS = {"_host"}

#: Functions producing a backend object.
_BACKEND_PRODUCERS = {"get_backend", "infer_backend"}

#: Attribute accesses on a tensor that yield host-side metadata, not data.
_TENSOR_META_ATTRS = {"shape", "ndim", "dtype", "size"}

#: Reduced-precision dtypes banned by BPL002 (qualified numpy names).
_BANNED_DTYPES = {
    "numpy.float32", "numpy.float16", "numpy.single", "numpy.half",
}
_BANNED_DTYPE_STRS = {"float32", "float16", "single", "half", "f4", "f2"}

#: Hot-path method names where a host round-trip is a BPL003 finding.
_HOT_PATHS = {"forward", "backward"}

# Taint kinds.
_TENSOR = "tensor"       # lives on a backend
_HOST_COPY = "hostcopy"  # host numpy copied off a backend tensor


class _Scope:
    """Per-function taint environment."""

    def __init__(self, name: str, qualname: str) -> None:
        self.name = name
        self.qualname = qualname
        #: local name → taint kind (_TENSOR / _HOST_COPY).
        self.taint: Dict[str, str] = {}
        #: local names bound to backend objects.
        self.backends: Set[str] = set()


class _PurityChecker(ast.NodeVisitor):
    """Single-pass visitor running the taint rules over one module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: import alias → fully-qualified module path.
        self.aliases: Dict[str, str] = {}
        self._scopes: List[_Scope] = [_Scope("<module>", "<module>")]
        self._class_stack: List[str] = []

    # ------------------------------------------------------------- plumbing
    @property
    def scope(self) -> _Scope:
        return self._scopes[-1]

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=self.scope.qualname,
        ))

    def _qualname(self, node: ast.AST) -> str:
        """Resolve ``np.linalg.svd`` → ``"numpy.linalg.svd"`` (or "")."""
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return ""
        root = self.aliases.get(cur.id)
        if root is None:
            return ""
        parts.append(root)
        return ".".join(reversed(parts))

    # -------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            self.aliases[alias.asname or top] = alias.name if alias.asname else top
            if top == "torch":
                self._add(
                    "BPL005", node,
                    "direct torch import outside nn/backends/; go through "
                    "the TensorBackend interface",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            if node.module.split(".")[0] == "torch":
                self._add(
                    "BPL005", node,
                    "direct torch import outside nn/backends/; go through "
                    "the TensorBackend interface",
                )
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # ---------------------------------------------------------- definitions
    def _enter_function(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        prefix = ".".join(self._class_stack)
        qual = f"{prefix}.{node.name}" if prefix else node.name
        scope = _Scope(node.name, qual)
        self._scopes.append(scope)
        for stmt in node.body:
            self._exec_stmt(stmt)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    # ---------------------------------------------------- statement walking
    def _exec_stmt(self, stmt: ast.stmt) -> None:
        """Execute one statement against the current taint environment."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._enter_function(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            self.visit_ClassDef(stmt)
            return
        if isinstance(stmt, ast.Assign):
            kind = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, kind)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            kind = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prior = self.scope.taint.get(stmt.target.id)
                merged = _TENSOR if _TENSOR in (kind, prior) else (kind or prior)
                if merged:
                    self.scope.taint[stmt.target.id] = merged
            else:
                self._eval(stmt.target)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if self.scope.name == "state_dict":
                    self._check_state_dict_return(stmt.value)
                self._eval(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            for s in [*stmt.body, *stmt.orelse]:
                self._exec_stmt(s)
            return
        if isinstance(stmt, ast.For):
            kind = self._eval(stmt.iter)
            self._bind(stmt.target, kind)
            for s in [*stmt.body, *stmt.orelse]:
                self._exec_stmt(s)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                kind = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, kind)
            for s in stmt.body:
                self._exec_stmt(s)
            return
        if isinstance(stmt, ast.Try):
            for s in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self._exec_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self._exec_stmt(s)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        # Remaining simple statements (pass, raise, assert, del, …): just
        # evaluate any embedded expressions for their findings.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child)

    def _bind(self, target: ast.expr, kind: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            if kind is None:
                self.scope.taint.pop(target.id, None)
                self.scope.backends.discard(target.id)
            elif kind == "backend":
                self.scope.backends.add(target.id)
                self.scope.taint.pop(target.id, None)
            else:
                self.scope.taint[target.id] = kind
                self.scope.backends.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                # Tuple taint is not tracked element-wise; distribute.
                self._bind(elt, kind if kind != "backend" else None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval(target.value)

    # ------------------------------------------------------------ expression
    def _is_backend_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.scope.backends or node.id == "backend"
        if isinstance(node, ast.Attribute):
            return node.attr == "backend"
        if isinstance(node, ast.Call):
            fn = node.func
            return isinstance(fn, ast.Name) and fn.id in _BACKEND_PRODUCERS
        return False

    def _eval(self, node: ast.expr) -> Optional[str]:
        """Taint kind of ``node`` (side effect: records findings)."""
        if isinstance(node, ast.Name):
            if node.id in self.scope.backends:
                return "backend"
            return self.scope.taint.get(node.id)

        if isinstance(node, ast.Attribute):
            if self._is_backend_expr(node):
                self._eval_children_of_attr(node)
                return "backend"
            base = self._eval(node.value)
            # Parameter fields are live backend tensors wherever they occur.
            if node.attr in ("value", "grad") and not isinstance(node.value, ast.Constant):
                return _TENSOR
            # Saved forward caches hold the forward pass's tensors.
            if node.attr == "_cache":
                return _TENSOR
            if base == _TENSOR and node.attr in _TENSOR_META_ATTRS:
                return None
            return base if base in (_TENSOR, _HOST_COPY) else None

        if isinstance(node, ast.Call):
            return self._eval_call(node)

        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            for k in (_TENSOR, _HOST_COPY):
                if k in (left, right):
                    return k
            return None

        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)

        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return None

        if isinstance(node, ast.BoolOp):
            kinds = [self._eval(v) for v in node.values]
            for k in (_TENSOR, _HOST_COPY):
                if k in kinds:
                    return k
            return None

        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            a, b = self._eval(node.body), self._eval(node.orelse)
            for k in (_TENSOR, _HOST_COPY):
                if k in (a, b):
                    return k
            return None

        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice)
            return base if base in (_TENSOR, _HOST_COPY) else None

        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            kinds = [self._eval(e) for e in node.elts]
            for k in (_TENSOR, _HOST_COPY):
                if k in kinds:
                    return k
            return None

        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                kind = self._eval(gen.iter)
                self._bind(gen.target, kind)
            return self._eval(node.elt)

        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self._bind(gen.target, self._eval(gen.iter))
            self._eval(node.key)
            return self._eval(node.value)

        if isinstance(node, ast.Dict):
            kinds = [self._eval(v) for v in node.values if v is not None]
            return _TENSOR if _TENSOR in kinds else None

        if isinstance(node, ast.Starred):
            return self._eval(node.value)

        if isinstance(node, ast.Lambda):
            return None

        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value)
            return None

        return None

    def _eval_children_of_attr(self, node: ast.Attribute) -> None:
        """Evaluate the base of a backend attribute chain for findings."""
        if isinstance(node.value, ast.expr):
            self._eval(node.value)

    def _arg_kinds(self, node: ast.Call) -> List[Optional[str]]:
        kinds = [self._eval(a) for a in node.args]
        kinds.extend(self._eval(kw.value) for kw in node.keywords)
        return kinds

    def _eval_call(self, node: ast.Call) -> Optional[str]:
        self._check_dtype_literals(node)
        fn = node.func

        # Backend method calls: be.<op>(...)
        if isinstance(fn, ast.Attribute) and self._is_backend_expr(fn.value):
            self._eval_children_of_attr(fn)
            kinds = self._arg_kinds(node)
            if fn.attr in _HOST_ESCAPES:
                return _HOST_COPY if fn.attr in ("to_numpy", "_to_host") else None
            if fn.attr == "asarray" and self.scope.name in _HOT_PATHS:
                if _HOST_COPY in kinds:
                    self._add(
                        "BPL003", node,
                        "to_numpy→asarray host round-trip inside "
                        f"'{self.scope.qualname}'; keep the value on its "
                        "backend (the round-trip serializes every GPU op "
                        "and perturbs accumulation order)",
                    )
            return _TENSOR

        # Raw numpy/scipy call: flag when a backend tensor flows in.
        qn = self._qualname(fn) if isinstance(fn, (ast.Attribute, ast.Name)) else ""
        kinds = self._arg_kinds(node)
        if qn.split(".")[0] in ("numpy", "scipy") and _TENSOR in kinds:
            self._add(
                "BPL001", node,
                f"raw '{qn}' applied to a backend tensor; use the "
                "TensorBackend op set (numpy semantics are only valid on "
                "the numpy oracle)",
            )
            return _TENSOR
        if qn.split(".")[0] == "torch":
            self._add(
                "BPL005", node,
                f"direct torch call '{qn}' outside nn/backends/",
            )
            return _TENSOR

        if isinstance(fn, ast.Name):
            if fn.id in _BACKEND_PRODUCERS:
                return "backend"
            if fn.id in _HOST_ESCAPE_FUNCS:
                return _HOST_COPY
            if fn.id in ("float", "int", "bool", "len"):
                return None
            # A local helper: conservatively forward the strongest arg kind.
            for k in (_TENSOR, _HOST_COPY):
                if k in kinds:
                    return k
            return None

        if isinstance(fn, ast.Attribute):
            base = self._eval(fn.value)
            if fn.attr in ("forward", "backward"):
                return _TENSOR
            if fn.attr in _HOST_ESCAPES:
                return _HOST_COPY if fn.attr in ("to_numpy", "_to_host") else None
            if base in (_TENSOR, _HOST_COPY):
                # Method on a tainted value (t.sum(), t.copy(), …) stays
                # on the same side of the boundary.
                return base
            return None

        self._eval(fn)
        return None

    # ------------------------------------------------------------ BPL002
    def _check_dtype_literals(self, node: ast.Call) -> None:
        candidates: List[ast.expr] = [
            kw.value for kw in node.keywords if kw.arg == "dtype"
        ]
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr == "astype" and node.args:
            candidates.append(node.args[0])
        for expr in candidates:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                if expr.value in _BANNED_DTYPE_STRS:
                    self._add(
                        "BPL002", expr,
                        f"reduced-precision dtype {expr.value!r}; nn state "
                        "and math are float64 by contract",
                    )
            else:
                qn = self._qualname(expr)
                if qn in _BANNED_DTYPES:
                    self._add(
                        "BPL002", expr,
                        f"reduced-precision dtype '{qn}'; nn state and "
                        "math are float64 by contract",
                    )

    # ------------------------------------------------------------ BPL004
    def _check_state_dict_return(self, expr: ast.expr, wrapped: bool = False) -> None:
        """Flag live ``.value``/``.grad`` tensors escaping ``state_dict``."""
        if isinstance(expr, ast.Call):
            fn = expr.func
            escapes = isinstance(fn, ast.Attribute) and fn.attr in _HOST_ESCAPES
            for child in [*expr.args, *[kw.value for kw in expr.keywords]]:
                self._check_state_dict_return(child, wrapped=wrapped or escapes)
            if isinstance(fn, ast.Attribute):
                self._check_state_dict_return(fn.value, wrapped=wrapped)
            return
        if isinstance(expr, ast.Attribute):
            if expr.attr in ("value", "grad") and not wrapped:
                self._add(
                    "BPL004", expr,
                    f"state_dict returns live tensor '.{expr.attr}'; wrap "
                    "it in backend.to_numpy(...) so checkpoints stay "
                    "host float64 numpy on every backend",
                )
            self._check_state_dict_return(expr.value, wrapped=wrapped)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._check_state_dict_return(child, wrapped=wrapped)
            elif isinstance(child, ast.comprehension):
                self._check_state_dict_return(child.iter, wrapped=wrapped)


# -------------------------------------------------------------- entry points
def analyze_purity_source(
    source: str, path: str = "<string>", suppress: bool = True
) -> List[Finding]:
    """Run the backend-purity rules over one source string.

    Args:
        source: Python source text.
        path: Reported in findings.
        suppress: Honor inline ``# repro-lint: disable=`` directives; pass
            ``False`` to get the raw findings (the unused-suppression audit
            needs them).

    Raises:
        SyntaxError: when the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    checker = _PurityChecker(path)
    checker.visit(tree)
    findings = sorted(checker.findings, key=lambda f: (f.line, f.col, f.rule))
    if suppress:
        findings = parse_suppressions(source).apply(findings)
    return findings


def analyze_purity_file(path: Union[str, Path], suppress: bool = True) -> List[Finding]:
    p = Path(path)
    return analyze_purity_source(
        p.read_text(encoding="utf-8"), path=str(p), suppress=suppress
    )


def iter_purity_targets(nn_root: Union[str, Path]) -> Iterator[Path]:
    """``.py`` files under an ``nn/`` tree, excluding ``backends/``.

    The backends are the sanctioned numpy/torch boundary; everything above
    them must be backend-neutral.
    """
    root = Path(nn_root)
    if root.is_file():
        if root.suffix == ".py" and "backends" not in root.parts:
            yield root
        return
    for p in sorted(root.rglob("*.py")):
        if p.is_file() and "backends" not in p.relative_to(root).parts:
            yield p


def analyze_purity_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Analyze every eligible file under each path (see the file filter)."""
    out: List[Finding] = []
    for root in paths:
        for f in iter_purity_targets(root):
            try:
                out.extend(analyze_purity_file(f))
            except SyntaxError as exc:
                out.append(Finding(
                    rule="BPL000", path=str(f), line=exc.lineno or 1,
                    col=exc.offset or 0, message=f"syntax error: {exc.msg}",
                ))
    return out
