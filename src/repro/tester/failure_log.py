"""Tester failure logs.

A :class:`FailureLog` is the per-chip datalog a tester emits: which pattern
failed at which observation.  It is one of only two inputs the diagnosis
framework needs (the other being the netlist), mirroring the paper's "the
proposed framework simply utilizes the circuit netlist and failure log files
from the tester".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

import numpy as np

from ..dft.observation import ObservationMap

__all__ = ["FailEntry", "FailureLog"]


@dataclass(frozen=True)
class FailEntry:
    """One erroneous tester response: pattern index + observation id."""

    pattern: int
    observation: int


@dataclass
class FailureLog:
    """All erroneous responses of one failing chip.

    Attributes:
        entries: Failing (pattern, observation) pairs, sorted.
        compacted: Whether responses went through the compactor.
    """

    entries: List[FailEntry]
    compacted: bool = False

    @classmethod
    def from_detections(
        cls, obsmap: ObservationMap, detections: Dict[int, np.ndarray]
    ) -> "FailureLog":
        """Build the log a tester would record for given per-net differences."""
        fail_masks = obsmap.fail_masks(detections)
        entries = [
            FailEntry(pattern=int(p), observation=obs_id)
            for obs_id, mask in fail_masks.items()
            for p in np.nonzero(mask)[0]
        ]
        entries.sort(key=lambda e: (e.pattern, e.observation))
        return cls(entries=entries, compacted=obsmap.compacted)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[FailEntry]:
        return iter(self.entries)

    @property
    def failing_patterns(self) -> List[int]:
        """Distinct failing pattern indices, sorted."""
        return sorted({e.pattern for e in self.entries})

    def observations_of_pattern(self, pattern: int) -> List[int]:
        """Observation ids failing under one pattern."""
        return sorted({e.observation for e in self.entries if e.pattern == pattern})

    def by_pattern(self) -> Dict[int, List[int]]:
        """Pattern index → failing observation ids."""
        out: Dict[int, List[int]] = {}
        for e in self.entries:
            out.setdefault(e.pattern, []).append(e.observation)
        return out
