"""Text datalog serialization for failure logs.

Real testers emit per-chip datalogs as text; this module round-trips
:class:`~repro.tester.failure_log.FailureLog` through a STIL-flavored
line format so logs can be archived, diffed, and re-diagnosed offline::

    # repro failure datalog v1
    CHIP lot7_wafer3_die42
    MODE compacted
    FAIL pattern=17 obs=ch2.p5 id=83
    FAIL pattern=23 obs=po1 id=1

The observation *label* is included for human readability; parsing trusts
the numeric id (labels are validated against the observation map when one
is supplied).
"""

from __future__ import annotations

import re
from typing import Optional, TextIO, Tuple

from ..dft.observation import ObservationMap
from .failure_log import FailEntry, FailureLog

__all__ = ["dumps_datalog", "loads_datalog", "write_datalog", "read_datalog"]

_HEADER = "# repro failure datalog v1"
_FAIL_RE = re.compile(
    r"^FAIL\s+pattern=(?P<pattern>\d+)\s+obs=(?P<label>\S+)\s+id=(?P<id>\d+)\s*$"
)


def dumps_datalog(
    log: FailureLog, chip_id: str = "chip0", obsmap: Optional[ObservationMap] = None
) -> str:
    """Serialize one chip's failure log to datalog text."""
    lines = [_HEADER, f"CHIP {chip_id}", f"MODE {'compacted' if log.compacted else 'bypass'}"]
    for e in log.entries:
        label = (
            obsmap.observations[e.observation].label
            if obsmap is not None and e.observation < len(obsmap.observations)
            else f"obs{e.observation}"
        )
        lines.append(f"FAIL pattern={e.pattern} obs={label} id={e.observation}")
    return "\n".join(lines) + "\n"


def loads_datalog(
    text: str, obsmap: Optional[ObservationMap] = None
) -> Tuple[str, FailureLog]:
    """Parse datalog text into (chip id, failure log).

    Raises:
        ValueError: on a missing header, malformed lines, or (when an
            observation map is given) label/id mismatches.
    """
    lines = text.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise ValueError("not a repro failure datalog (missing header)")
    chip_id = "chip0"
    compacted = False
    entries = []
    for raw in lines[1:]:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("CHIP "):
            chip_id = line[5:].strip()
            continue
        if line.startswith("MODE "):
            compacted = line[5:].strip() == "compacted"
            continue
        m = _FAIL_RE.match(line)
        if not m:
            raise ValueError(f"malformed datalog line: {raw!r}")
        obs_id = int(m.group("id"))
        if obsmap is not None:
            if obs_id >= len(obsmap.observations):
                raise ValueError(f"observation id {obs_id} out of range")
            expected = obsmap.observations[obs_id].label
            if m.group("label") != expected:
                raise ValueError(
                    f"label mismatch for observation {obs_id}: "
                    f"{m.group('label')!r} != {expected!r}"
                )
        entries.append(FailEntry(pattern=int(m.group("pattern")), observation=obs_id))
    entries.sort(key=lambda e: (e.pattern, e.observation))
    return chip_id, FailureLog(entries=entries, compacted=compacted)


def write_datalog(
    log: FailureLog, fh: TextIO, chip_id: str = "chip0",
    obsmap: Optional[ObservationMap] = None,
) -> None:
    """Write one failure log as datalog text."""
    fh.write(dumps_datalog(log, chip_id, obsmap))


def read_datalog(fh: TextIO, obsmap: Optional[ObservationMap] = None) -> Tuple[str, FailureLog]:
    """Read a datalog from an open text file."""
    return loads_datalog(fh.read(), obsmap)
