"""Tester substrate: failure logs, datalogs, and fault-injection campaigns."""

from .failure_log import FailEntry, FailureLog
from .injection import InjectionCampaign, Sample
from .datalog import dumps_datalog, loads_datalog, read_datalog, write_datalog

__all__ = [
    "FailEntry",
    "FailureLog",
    "InjectionCampaign",
    "Sample",
    "dumps_datalog",
    "loads_datalog",
    "read_datalog",
    "write_datalog",
]
