"""Fault-injection campaigns.

Reproduces the dataset-creation step of the paper's Fig. 4: inject one TDF
(or a tier-systematic cluster) into the design, run logic simulation with the
TDF patterns, and collect the erroneous responses into a failure log.  Chips
whose fault escapes the pattern set (no failing response) are skipped — only
failing chips reach diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..atpg.faults import Fault
from ..dft.observation import ObservationMap
from ..m3d.defects import DefectSampler
from ..sim.faultsim import FaultMachine
from ..sim.logicsim import TwoPatternResult
from .failure_log import FailureLog

__all__ = ["Sample", "InjectionCampaign"]


@dataclass(frozen=True)
class Sample:
    """One failing chip: the injected fault(s) and the tester's failure log."""

    faults: Tuple[Fault, ...]
    log: FailureLog


class InjectionCampaign:
    """Generates failing-chip samples for a prepared design.

    Args:
        machine: Fault machine over the design's compiled simulator.
        good: Good-machine values for the design's TDF pattern set.
        obsmap: Observation map (bypass or compacted).
        sampler: Seeded defect sampler.
        max_attempts_factor: Injections attempted per requested sample before
            giving up (undetectable faults are re-drawn).
    """

    def __init__(
        self,
        machine: FaultMachine,
        good: TwoPatternResult,
        obsmap: ObservationMap,
        sampler: DefectSampler,
        max_attempts_factor: int = 8,
    ) -> None:
        self.machine = machine
        self.good = good
        self.obsmap = obsmap
        self.sampler = sampler
        self.max_attempts_factor = max_attempts_factor

    def _log_of(self, faults: Sequence[Fault]) -> Optional[FailureLog]:
        if len(faults) == 1:
            detections = self.machine.propagate(faults[0], self.good)
        else:
            detections = self.machine.propagate_multi(list(faults), self.good)
        if not detections:
            return None
        log = FailureLog.from_detections(self.obsmap, detections)
        return log if len(log) else None

    def single_fault_samples(self, n: int, miv_fraction: float = 0.15) -> List[Sample]:
        """``n`` failing chips with one injected TDF each.

        ``miv_fraction`` of the injections target MIVs, the defect class M3D
        manufacturing makes most likely.
        """
        out: List[Sample] = []
        attempts = 0
        budget = max(1, n) * self.max_attempts_factor
        while len(out) < n and attempts < budget:
            attempts += 1
            fault = self.sampler.sample_single(miv_fraction)
            log = self._log_of([fault])
            if log is not None:
                out.append(Sample(faults=(fault,), log=log))
        return out

    def multi_fault_samples(self, n: int, n_min: int = 2, n_max: int = 5) -> List[Sample]:
        """``n`` failing chips with a tier-systematic multi-fault cluster each."""
        out: List[Sample] = []
        attempts = 0
        budget = max(1, n) * self.max_attempts_factor
        while len(out) < n and attempts < budget:
            attempts += 1
            faults = self.sampler.sample_tier_systematic(n_min, n_max)
            log = self._log_of(faults)
            if log is not None:
                out.append(Sample(faults=tuple(faults), log=log))
        return out

    def miv_fault_samples(self, n: int) -> List[Sample]:
        """``n`` failing chips whose single injected TDF sits in an MIV."""
        out: List[Sample] = []
        attempts = 0
        budget = max(1, n) * self.max_attempts_factor
        while len(out) < n and attempts < budget:
            attempts += 1
            fault = self.sampler.sample_miv_fault()
            log = self._log_of([fault])
            if log is not None:
                out.append(Sample(faults=(fault,), log=log))
        return out
