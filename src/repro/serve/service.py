"""The diagnosis service: datalog → back-trace → batched GNN → response.

:class:`DiagnosisService` is the batch processor behind both front-ends
(HTTP and stdin-JSONL).  One call receives a mixed slice of queued
submissions, validates each one independently (malformed requests become
structured error responses, never exceptions), groups the valid ones by
(design, mode), and runs **one** ``diagnose_batch`` per group — which packs
every request sub-graph of the group into one block-diagonal GCN forward
per model.

Per-request provenance records exactly which artifacts answered: the model
version and design config from the registry, the tensor backend, the batch
size the request rode in, and span timings (queue wait, ATPG, batched
inference).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.pipeline import BackupDictionary
from ..data.datagen import PreparedDesign
from ..diagnosis.effect_cause import EffectCauseDiagnoser
from ..obs import SpanTracer
from ..runtime.instrument import RuntimeStats
from ..tester.datalog import loads_datalog
from .batcher import BatchItem
from .protocol import (
    ProtocolError,
    Submission,
    error_response,
    parse_submission,
    result_response,
)
from .registry import ModelRegistry, UnknownModelError

__all__ = ["DesignContext", "DiagnosisService"]


@dataclass
class DesignContext:
    """One served design: the prepared bundle plus its diagnosis tooling."""

    name: str
    design: PreparedDesign
    default_mode: str = "bypass"
    backup: Optional[BackupDictionary] = None
    _diagnosers: Dict[str, EffectCauseDiagnoser] = field(
        default_factory=dict, repr=False
    )

    @property
    def config_name(self) -> str:
        """The design-configuration name models are registered under."""
        return self.design.config.name

    def diagnoser(self, mode: str) -> EffectCauseDiagnoser:
        """The (lazily built, cached) effect-cause diagnoser for one mode."""
        diag = self._diagnosers.get(mode)
        if diag is None:
            diag = EffectCauseDiagnoser(
                self.design.nl,
                self.design.obsmap(mode),
                self.design.patterns,
                mivs=self.design.mivs,
                sim=self.design.sim,
            )
            self._diagnosers[mode] = diag
        return diag


class DiagnosisService:
    """Registry + designs + the batch-processing callback.

    Args:
        registry: Versioned model store; requests resolve the *active*
            record for their design's configuration at batch time.
        designs: Served designs by name.
        stats: Counter/timing sink shared with the front-ends.
        tracer: Span sink (``serve.batch`` / ``serve.atpg`` /
            ``serve.infer``).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        designs: Dict[str, DesignContext],
        stats: Optional[RuntimeStats] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if not designs:
            raise ValueError("a diagnosis service needs at least one design")
        self.registry = registry
        self.designs = dict(designs)
        self.stats = stats if stats is not None else RuntimeStats()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self._default_design = next(iter(designs)) if len(designs) == 1 else None

    # ------------------------------------------------------------ validation
    def _resolve(self, submission: Submission) -> Tuple[DesignContext, str]:
        """Pick the design context and mode, or raise a protocol error."""
        name = submission.design or self._default_design
        if name is None:
            raise ProtocolError(
                "bad_request",
                f"'design' is required (serving: {', '.join(sorted(self.designs))})",
            )
        ctx = self.designs.get(name)
        if ctx is None:
            raise ProtocolError(
                "unknown_design",
                f"unknown design {name!r} (serving: {', '.join(sorted(self.designs))})",
            )
        mode = submission.mode or ctx.default_mode
        if mode not in ctx.design.obsmaps:
            raise ProtocolError(
                "unknown_mode",
                f"unknown mode {mode!r} for design {name!r} "
                f"(have: {', '.join(sorted(ctx.design.obsmaps))})",
            )
        return ctx, mode

    # ---------------------------------------------------------- batch entry
    def process_batch(self, items: List[BatchItem]) -> List[Dict[str, Any]]:
        """Turn one drained queue slice into one response per item."""
        t_batch = time.perf_counter()
        with self.tracer.span("serve.batch"):
            responses = self._process_batch_impl(items, t_batch)
        self.stats.add_time("serve.batch", time.perf_counter() - t_batch)
        return responses

    def _process_batch_impl(
        self, items: List[BatchItem], t_batch: float
    ) -> List[Dict[str, Any]]:
        n = len(items)
        responses: List[Optional[Dict[str, Any]]] = [None] * n

        # Validate each submission independently; parse failures become
        # structured per-request errors and drop out of the batch.
        parsed: Dict[int, Tuple[Submission, DesignContext, str, str, Any]] = {}
        groups: Dict[Tuple[str, str], List[int]] = {}
        for i, item in enumerate(items):
            try:
                submission = (
                    item.payload
                    if isinstance(item.payload, Submission)
                    else parse_submission(item.payload)
                )
                ctx, mode = self._resolve(submission)
                chip_id, log = loads_datalog(
                    submission.datalog, ctx.design.obsmap(mode)
                )
            except ProtocolError as exc:
                self.stats.count("serve.rejected.bad_request")
                responses[i] = error_response(exc.kind, str(exc), _rid(item))
                continue
            except ValueError as exc:
                self.stats.count("serve.rejected.bad_datalog")
                responses[i] = error_response("bad_datalog", str(exc), _rid(item))
                continue
            parsed[i] = (submission, ctx, mode, chip_id, log)
            groups.setdefault((ctx.name, mode), []).append(i)

        # One diagnose_batch per (design, mode) group: the whole group's
        # sub-graphs share a block-diagonal forward per model.
        for (design_name, mode), members in groups.items():
            ctx = self.designs[design_name]
            try:
                record = self.registry.active(ctx.config_name)
            except UnknownModelError as exc:
                for i in members:
                    self.stats.count("serve.rejected.no_model")
                    responses[i] = error_response(
                        "no_model", str(exc), parsed[i][0].request_id
                    )
                continue

            logs = [parsed[i][4] for i in members]
            reports = []
            with self.tracer.span("serve.atpg"):
                t0 = time.perf_counter()
                for i in members:
                    submission = parsed[i][0]
                    if submission.report is not None:
                        reports.append(submission.report)
                    else:
                        reports.append(ctx.diagnoser(mode).diagnose(parsed[i][4]))
                atpg_s = time.perf_counter() - t0
            self.stats.add_time("serve.atpg", atpg_s)

            with self.tracer.span("serve.infer"):
                t0 = time.perf_counter()
                results = record.framework.diagnose_batch(
                    ctx.design, mode, logs, reports,
                    backup=ctx.backup,
                    chip_ids=[parsed[i][3] for i in members],
                    stats=self.stats,
                )
                infer_s = time.perf_counter() - t0
            self.stats.add_time("serve.infer", infer_s)

            for i, result in zip(members, results):
                submission, ctx_i, mode_i, chip_id, _log = parsed[i]
                provenance = {
                    "design": ctx_i.name,
                    "config": ctx_i.config_name,
                    "mode": mode_i,
                    "model_version": record.version,
                    "nn_backend": record.backend,
                    "batch_size": n,
                    "timings": {
                        "queue_s": round(t_batch - items[i].enqueued_at, 6),
                        "atpg_s": round(atpg_s, 6),
                        "infer_s": round(infer_s, 6),
                    },
                }
                responses[i] = result_response(
                    result, submission.request_id, chip_id, provenance
                )
                self.stats.count("serve.responses")

        # Every slot is filled by construction; make that an invariant.
        return [
            r if r is not None else error_response("internal", "unprocessed request")
            for r in responses
        ]


def _rid(item: BatchItem) -> Optional[str]:
    """Best-effort request id from an unvalidated payload (for error echo)."""
    payload = item.payload
    if isinstance(payload, Submission):
        return payload.request_id
    if isinstance(payload, dict):
        rid = payload.get("id")
        if isinstance(rid, (str, int)):
            return str(rid)
    return None
