"""Versioned model registry with atomic activation.

The registry holds every framework the server may answer with, keyed by
design-configuration name (Syn-1 / TPI / Syn-2 / Par / ...) and version
string.  Exactly one version per config is *active* at a time; activation is
an atomic pointer swap under a lock, so in-flight request batches keep the
record they resolved and later batches see the new one — never a half-
swapped mix.

Weights are *warm-loaded*: :meth:`ModelRegistry.load` deserializes the
``.npz`` checkpoint (``repro.core.io.load_framework``) at registration time,
and :meth:`warmup` runs one throwaway forward per model so the first real
request never pays lazy-initialization cost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..core.io import load_framework
from ..core.pipeline import M3DDiagnosisFramework
from ..nn.backends import get_backend
from ..nn.data import GraphData

__all__ = ["ModelRecord", "ModelRegistry", "UnknownModelError"]


class UnknownModelError(KeyError):
    """No such config, or no such version for the config."""


@dataclass(frozen=True)
class ModelRecord:
    """One immutable registry entry: a loaded framework plus identity."""

    config: str
    version: str
    framework: M3DDiagnosisFramework
    source: str

    @property
    def backend(self) -> str:
        """Resolved tensor-backend spec the framework runs on."""
        return get_backend(self.framework.nn_backend).spec

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary (the ``GET /models`` row)."""
        fw = self.framework
        return {
            "config": self.config,
            "version": self.version,
            "source": self.source,
            "backend": self.backend,
            "tp_threshold": float(fw.tp_threshold),
            "n_tiers": fw.n_tiers,
            "has_miv_pinpointer": fw.miv_pinpointer is not None,
            "has_classifier": fw.classifier is not None,
        }


class ModelRegistry:
    """Thread-safe (config, version) → framework store with active pointers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: Dict[str, Dict[str, ModelRecord]] = {}
        self._active: Dict[str, ModelRecord] = {}

    # ------------------------------------------------------------ mutation
    def register(
        self,
        config: str,
        version: str,
        framework: M3DDiagnosisFramework,
        source: str = "<memory>",
        activate: bool = True,
    ) -> ModelRecord:
        """Add an already-loaded framework; optionally make it active."""
        if not framework._fitted:
            raise ValueError(
                f"refusing to register unfitted framework {config}:{version}"
            )
        record = ModelRecord(
            config=config, version=version, framework=framework, source=source
        )
        with self._lock:
            self._versions.setdefault(config, {})[version] = record
            if activate or config not in self._active:
                self._active[config] = record
        return record

    def load(
        self,
        config: str,
        version: str,
        path: Union[str, Path],
        backend: Optional[str] = None,
        activate: bool = True,
    ) -> ModelRecord:
        """Warm-load versioned weights from an ``.npz`` checkpoint."""
        framework = load_framework(path, backend=backend)
        return self.register(
            config, version, framework, source=str(path), activate=activate
        )

    def activate(self, config: str, version: str) -> ModelRecord:
        """Atomically swap the active version for one config."""
        with self._lock:
            versions = self._versions.get(config)
            if versions is None:
                raise UnknownModelError(f"unknown design config {config!r}")
            record = versions.get(version)
            if record is None:
                raise UnknownModelError(
                    f"unknown version {version!r} for config {config!r} "
                    f"(have: {', '.join(sorted(versions))})"
                )
            self._active[config] = record
        return record

    # -------------------------------------------------------------- lookup
    def active(self, config: str) -> ModelRecord:
        """The record requests against ``config`` are served with."""
        with self._lock:
            record = self._active.get(config)
        if record is None:
            raise UnknownModelError(f"no active model for design config {config!r}")
        return record

    def configs(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready registry listing (the ``GET /models`` document)."""
        with self._lock:
            versions = {
                config: sorted(records)
                for config, records in self._versions.items()
            }
            active = {
                config: record.describe() for config, record in self._active.items()
            }
        return {
            "configs": {
                config: {
                    "versions": versions[config],
                    "active": active.get(config, {}).get("version"),
                }
                for config in sorted(versions)
            },
            "active": {k: active[k] for k in sorted(active)},
        }

    # -------------------------------------------------------------- warmup
    def warmup(self) -> int:
        """Run one throwaway forward per registered model; returns the count.

        The dummy sub-graph is two connected nodes with the standard feature
        width — enough to touch every layer (tier, MIV, classifier) so lazy
        allocations and code paths are resident before traffic arrives.
        """
        from ..core.features import N_FEATURES

        graph = GraphData(
            x=np.zeros((2, N_FEATURES)),
            edges=(np.asarray([0]), np.asarray([1])),
            node_mask=np.asarray([True, False]),
        )
        with self._lock:
            records = [
                record
                for versions in self._versions.values()
                for record in versions.values()
            ]
        for record in records:
            fw = record.framework
            fw.tier_predictor.predict_proba([graph])
            if fw.miv_pinpointer is not None:
                fw.miv_pinpointer.predict_node_proba_batch([graph])
            if fw.classifier is not None:
                fw.classifier.prune_probability([graph])
        return len(records)
