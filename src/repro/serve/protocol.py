"""Serving wire protocol: submissions, responses, canonical JSON.

One *submission* is a JSON object carrying a tester datalog (and optionally
a precomputed ATPG candidate list) for one failing chip::

    {"id": "lot7_wafer3_die42",      # optional client request id
     "design": "demo",               # optional when the server holds one design
     "mode": "bypass",               # optional, defaults to the design's mode
     "datalog": "# repro failure datalog v1\\nCHIP ...\\nFAIL ...",
     "report": [{...candidate...}]}  # optional; omitted -> server-side ATPG

The *response* mirrors :class:`repro.core.PolicyResult` plus per-request
provenance (model version, design config, tensor backend, span timings)::

    {"id": ..., "chip": ..., "ok": true, "action": "prune",
     "predicted_tier": 0, "confidence": 0.97, "faulty_mivs": [3],
     "candidates": [...], "pruned": [...],
     "provenance": {"design": ..., "config": ..., "model_version": ...,
                    "nn_backend": ..., "batch_size": ..., "timings": {...}}}

Failures are structured, never exceptions on the wire::

    {"id": ..., "ok": false, "error": {"type": "bad_request", "message": ...}}

Float fields that cross the wire are canonicalized to 12 significant digits
(:func:`canonical_float`).  Block-diagonal batching is bitwise through the
sparse ops and pooling but carries a documented BLAS-ulp caveat on dense
logits (see DESIGN 5.5), so canonicalization is what makes a batched
serving response *byte-identical* to the offline ``pipeline.diagnose``
serialization of the same log.  :func:`canonical_response` additionally
strips the volatile provenance (timings, batch size) for such diffs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..atpg.faults import FaultSite, Polarity
from ..core.policy import PolicyResult
from ..diagnosis.report import Candidate, DiagnosisReport

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Submission",
    "candidate_from_json",
    "candidate_to_json",
    "canonical_float",
    "canonical_response",
    "dumps_response",
    "error_response",
    "parse_submission",
    "result_response",
]

#: Hard cap on one JSONL submission line; over-long lines are rejected with
#: a structured error instead of being buffered (backpressure applies to
#: memory, not just queue slots).
MAX_LINE_BYTES = 1_000_000


class ProtocolError(ValueError):
    """A malformed submission, carrying a machine-readable error type."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


def canonical_float(x: float) -> float:
    """Round to 12 significant digits — the wire precision of scores.

    The serving batch packs a request with arbitrary neighbours, and dense
    GEMMs may differ from the offline batch-of-one by a few ulp (the PR 7
    caveat).  12 significant digits is far above the 1e-12 documented bound
    and far below any decision threshold, so canonicalized responses are
    byte-stable across batch compositions.
    """
    return float(f"{float(x):.12g}")


# ----------------------------------------------------------- candidates
def candidate_to_json(cand: Candidate) -> Dict[str, Any]:
    """One report candidate as a JSON-ready dict."""
    return {
        "kind": cand.site.kind,
        "net": int(cand.site.net),
        "sinks": [[int(g), int(p)] for g, p in cand.site.sinks],
        "observed_faulty": bool(cand.site.observed_faulty),
        "miv_id": int(cand.site.miv_id),
        "label": cand.site.label,
        "polarity": cand.polarity.value,
        "score": canonical_float(cand.score),
        "tier": None if cand.tier is None else int(cand.tier),
        "tfsf": int(cand.tfsf),
        "tfsp": int(cand.tfsp),
        "tpsf": int(cand.tpsf),
    }


def candidate_from_json(doc: Dict[str, Any]) -> Candidate:
    """Parse one candidate dict (raises :class:`ProtocolError`)."""
    try:
        site = FaultSite(
            kind=doc["kind"],
            net=int(doc["net"]),
            sinks=tuple((int(g), int(p)) for g, p in doc.get("sinks", ())),
            observed_faulty=bool(doc.get("observed_faulty", False)),
            miv_id=int(doc.get("miv_id", -1)),
            label=str(doc.get("label", "")),
        )
        tier = doc.get("tier")
        return Candidate(
            site=site,
            polarity=Polarity(doc.get("polarity", "STR")),
            score=float(doc.get("score", 0.0)),
            tier=None if tier is None else int(tier),
            tfsf=int(doc.get("tfsf", 0)),
            tfsp=int(doc.get("tfsp", 0)),
            tpsf=int(doc.get("tpsf", 0)),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("bad_candidate", f"malformed candidate: {exc}") from exc


# ----------------------------------------------------------- submissions
@dataclass
class Submission:
    """One validated diagnosis request (pre-datalog-parse).

    Attributes:
        request_id: Client-chosen id echoed back; None falls back to the
            datalog's CHIP id.
        design: Served design name (None = the server's only design).
        mode: Observation mode override (None = the design's default).
        datalog: The raw datalog text.
        report: Precomputed ATPG report, or None for server-side diagnosis.
    """

    request_id: Optional[str]
    design: Optional[str]
    mode: Optional[str]
    datalog: str
    report: Optional[DiagnosisReport]


def parse_submission(doc: Any) -> Submission:
    """Validate one submission object (raises :class:`ProtocolError`)."""
    if not isinstance(doc, dict):
        raise ProtocolError(
            "bad_request", f"submission must be a JSON object, got {type(doc).__name__}"
        )
    datalog = doc.get("datalog")
    if not isinstance(datalog, str) or not datalog.strip():
        raise ProtocolError("bad_request", "missing or empty 'datalog' field")
    request_id = doc.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("bad_request", "'id' must be a string or integer")
    for key in ("design", "mode"):
        if doc.get(key) is not None and not isinstance(doc[key], str):
            raise ProtocolError("bad_request", f"'{key}' must be a string")
    report: Optional[DiagnosisReport] = None
    raw_report = doc.get("report")
    if raw_report is not None:
        if not isinstance(raw_report, list):
            raise ProtocolError("bad_request", "'report' must be a candidate list")
        report = DiagnosisReport(
            candidates=[candidate_from_json(c) for c in raw_report]
        )
    return Submission(
        request_id=None if request_id is None else str(request_id),
        design=doc.get("design"),
        mode=doc.get("mode"),
        datalog=datalog,
        report=report,
    )


# ------------------------------------------------------------- responses
def result_response(
    result: PolicyResult,
    request_id: Optional[str],
    chip_id: str,
    provenance: Dict[str, Any],
) -> Dict[str, Any]:
    """A success response document for one diagnosed submission."""
    return {
        "id": request_id if request_id is not None else chip_id,
        "chip": chip_id,
        "ok": True,
        "action": result.action,
        "predicted_tier": int(result.predicted_tier),
        "confidence": canonical_float(result.confidence),
        "faulty_mivs": [int(m) for m in result.faulty_mivs],
        "candidates": [candidate_to_json(c) for c in result.report.candidates],
        "pruned": [candidate_to_json(c) for c in result.pruned],
        "provenance": provenance,
    }


def error_response(
    kind: str, message: str, request_id: Optional[str] = None
) -> Dict[str, Any]:
    """A structured failure response (per line / per request, never fatal)."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }


def dumps_response(doc: Dict[str, Any]) -> str:
    """One response as a single compact JSON line (no trailing newline)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def canonical_response(doc: Dict[str, Any]) -> Dict[str, Any]:
    """A response stripped of volatile provenance, for byte-for-byte diffs.

    Serving responses carry per-request timings and the observed batch size;
    those legitimately differ between a live server and an offline rerun of
    the same logs.  Everything else — the science — must not.
    """
    out = dict(doc)
    prov = dict(out.get("provenance") or {})
    prov.pop("timings", None)
    prov.pop("batch_size", None)
    out["provenance"] = prov
    return out
