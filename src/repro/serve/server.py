"""Serving front-ends: HTTP and stdin-JSONL, one batcher behind both.

The HTTP front-end is a stdlib :class:`ThreadingHTTPServer` — one thread per
connection parks on its request future while the single batch thread packs
everything waiting into block-diagonal forwards.  Routes:

* ``POST /diagnose`` — one JSON submission or a JSONL stream of them; JSONL
  responses come back line-for-line in submission order, malformed lines as
  structured error lines.  A full queue answers 429 (single) or a
  ``queue_full`` error line (JSONL) — backpressure is explicit, nothing
  buffers unboundedly.
* ``GET /healthz`` — liveness plus queue depth and served designs.
* ``GET /metrics`` — Prometheus exposition of the runtime stats.
* ``GET /models`` — the registry listing (versions + active records).
* ``POST /models/activate`` — atomic active-version swap.

The stdin front-end (:func:`serve_stdin`) reads JSONL submissions, submits
each line eagerly so the batcher can coalesce, and writes responses in input
order.  Its backpressure is the pipe itself: when the queue is full the
reader stops consuming stdin until a slot frees.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, IO, List, Optional, Tuple

from ..obs import metrics_document, render_prometheus
from .batcher import QueueFullError, RequestBatcher
from .protocol import MAX_LINE_BYTES, dumps_response, error_response
from .registry import UnknownModelError
from .service import DiagnosisService

__all__ = ["DiagnosisHTTPServer", "serve_http", "serve_stdin"]

#: Hard cap on one HTTP request body; large batches should stream JSONL
#: requests instead of growing a single body without bound.
MAX_BODY_BYTES = 64 * MAX_LINE_BYTES


def _parse_line(raw: str) -> Tuple[bool, Any]:
    """(ok, payload-or-error-doc) for one non-blank JSONL submission line."""
    if len(raw.encode("utf-8", errors="replace")) > MAX_LINE_BYTES:
        return False, error_response(
            "line_too_long",
            f"submission line exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        return True, json.loads(raw)
    except json.JSONDecodeError as exc:
        return False, error_response("bad_json", f"invalid JSON: {exc}")


class DiagnosisHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to one service + batcher pair."""

    daemon_threads = True
    # The stdlib default backlog (5) resets connections under the
    # concurrent-client load this server exists for.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: DiagnosisService,
        batcher: RequestBatcher,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.batcher = batcher


class _Handler(BaseHTTPRequestHandler):
    server: DiagnosisHTTPServer
    protocol_version = "HTTP/1.1"

    # Route tables keep do_GET/do_POST flat.
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        if self.path == "/healthz":
            self._send_json(200, self._healthz())
        elif self.path == "/metrics":
            self._send_metrics()
        elif self.path == "/models":
            self._send_json(200, self.server.service.registry.describe())
        else:
            self._send_json(404, error_response("not_found", self.path))

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/diagnose":
            self._diagnose()
        elif self.path == "/models/activate":
            self._activate()
        else:
            self._send_json(404, error_response("not_found", self.path))

    # ------------------------------------------------------------- endpoints
    def _healthz(self) -> Dict[str, Any]:
        service = self.server.service
        return {
            "ok": True,
            "queue_depth": self.server.batcher.queue_depth,
            "max_queue": self.server.batcher.max_queue,
            "max_batch": self.server.batcher.max_batch,
            "designs": sorted(service.designs),
            "configs": service.registry.configs(),
        }

    def _send_metrics(self) -> None:
        service = self.server.service
        doc = metrics_document(service.stats, service.tracer)
        body = render_prometheus(doc).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _activate(self) -> None:
        doc = self._read_json_body()
        if doc is None:
            return
        config = doc.get("config") if isinstance(doc, dict) else None
        version = doc.get("version") if isinstance(doc, dict) else None
        if not isinstance(config, str) or not isinstance(version, str):
            self._send_json(
                400,
                error_response(
                    "bad_request", "expected {'config': str, 'version': str}"
                ),
            )
            return
        try:
            record = self.server.service.registry.activate(config, version)
        except UnknownModelError as exc:
            self._send_json(404, error_response("unknown_model", str(exc)))
            return
        self._send_json(200, {"ok": True, "active": record.describe()})

    def _diagnose(self) -> None:
        body = self._read_body()
        if body is None:
            return
        text = body.decode("utf-8", errors="replace")
        stripped = [ln for ln in text.splitlines() if ln.strip()]
        if not stripped:
            self._send_json(
                400, error_response("bad_json", "expected a JSON object or JSONL")
            )
        elif len(stripped) == 1:
            self._diagnose_single(stripped[0])
        else:
            self._diagnose_jsonl(stripped)

    def _diagnose_single(self, raw: str) -> None:
        ok, payload = _parse_line(raw)
        if not ok:
            self._send_json(400, payload)
            return
        try:
            future = self.server.batcher.submit(payload)
        except QueueFullError as exc:
            self._send_json(429, error_response("queue_full", str(exc)))
            return
        response = future.result()
        status = 200 if response.get("ok") else 400
        self._send_json(status, response)

    def _diagnose_jsonl(self, lines: List[str]) -> None:
        # Submit every line before waiting on any: the point of the batcher
        # is that concurrent submissions share one forward pass.
        slots: List[Tuple[Optional["Future[Any]"], Optional[Dict[str, Any]]]] = []
        for raw in lines:
            ok, payload = _parse_line(raw)
            if not ok:
                slots.append((None, payload))
                continue
            try:
                slots.append((self.server.batcher.submit(payload), None))
            except QueueFullError as exc:
                slots.append((None, error_response("queue_full", str(exc))))
        out_lines = []
        for future, err in slots:
            doc = err if future is None else future.result()
            out_lines.append(dumps_response(doc))
        body = ("\n".join(out_lines) + "\n").encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # --------------------------------------------------------------- plumbing
    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(
                413,
                error_response(
                    "body_too_large",
                    f"request body must be 0..{MAX_BODY_BYTES} bytes",
                ),
            )
            return None
        return self.rfile.read(length)

    def _read_json_body(self) -> Optional[Any]:
        body = self._read_body()
        if body is None:
            return None
        try:
            return json.loads(body.decode("utf-8", errors="replace") or "{}")
        except json.JSONDecodeError as exc:
            self._send_json(400, error_response("bad_json", f"invalid JSON: {exc}"))
            return None

    def _send_json(self, status: int, doc: Dict[str, Any]) -> None:
        body = (dumps_response(doc) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to stats instead of stderr noise."""
        self.server.service.stats.count("serve.http_requests")


def serve_http(
    service: DiagnosisService,
    batcher: RequestBatcher,
    host: str = "127.0.0.1",
    port: int = 0,
) -> DiagnosisHTTPServer:
    """Bind (not yet serving) an HTTP front-end; port 0 picks a free port."""
    return DiagnosisHTTPServer((host, port), service, batcher)


def serve_stdin(
    batcher: RequestBatcher,
    lines_in: IO[str],
    out: IO[str],
) -> int:
    """Serve JSONL submissions from a text stream until EOF.

    Responses are written to ``out`` in input order, one JSON line each,
    flushed per line so a piped client sees results as they complete.  The
    reader thread submits eagerly (so the batcher can coalesce) and blocks
    when the queue is full — the pipe is the backpressure.  Returns the
    number of response lines written.
    """
    done = object()
    pending: "deque[Any]" = deque()
    ready = threading.Condition()

    def reader() -> None:
        for raw in lines_in:
            if not raw.strip():
                continue
            ok, payload = _parse_line(raw)
            if ok:
                # block=True: stop consuming the pipe until a slot frees.
                item: Any = batcher.submit(payload, block=True)
            else:
                item = payload
            with ready:
                pending.append(item)
                ready.notify()
        with ready:
            pending.append(done)
            ready.notify()

    def next_item() -> Any:
        with ready:
            while not pending:
                ready.wait()
            return pending.popleft()

    thread = threading.Thread(target=reader, name="repro-serve-stdin", daemon=True)
    thread.start()
    written = 0
    while True:
        item = next_item()
        if item is done:
            break
        doc = item.result() if isinstance(item, Future) else item
        out.write(dumps_response(doc) + "\n")
        out.flush()
        written += 1
    thread.join()
    return written
