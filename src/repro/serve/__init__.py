"""Diagnosis-as-a-service: ``repro serve``.

A long-lived server around the fitted :class:`~repro.core.M3DDiagnosisFramework`:
failure-log submissions arrive over HTTP or stdin-JSONL, ride a bounded
queue into a single batch thread, and come back as ranked candidate lists
with per-request provenance.  The batcher packs concurrent requests into
block-diagonal :class:`~repro.nn.data.GraphBatch` forwards — one SpMM pass
answers the whole slice — and a versioned model registry warm-loads
framework weights per design config and swaps them atomically.

Layout:

* :mod:`~repro.serve.protocol` — wire format (submissions, responses,
  canonical floats, structured errors);
* :mod:`~repro.serve.batcher` — bounded-queue batching executor with
  explicit backpressure (:class:`QueueFullError` → HTTP 429);
* :mod:`~repro.serve.registry` — versioned (config, version) → framework
  store with atomic activation and warmup forwards;
* :mod:`~repro.serve.service` — datalog → back-trace → batched GNN →
  response, grouped per (design, mode);
* :mod:`~repro.serve.server` — HTTP (ThreadingHTTPServer) and stdin-JSONL
  front-ends;
* :mod:`~repro.serve.client` — stdlib concurrent client with 429 retry,
  used by the bench and the CI smoke job.
"""

from .batcher import BatchItem, QueueFullError, RequestBatcher
from .client import FiredRequest, ServeClient, fire_concurrent, percentile
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Submission,
    candidate_from_json,
    candidate_to_json,
    canonical_float,
    canonical_response,
    dumps_response,
    error_response,
    parse_submission,
    result_response,
)
from .registry import ModelRecord, ModelRegistry, UnknownModelError
from .server import DiagnosisHTTPServer, serve_http, serve_stdin
from .service import DesignContext, DiagnosisService

__all__ = [
    "BatchItem",
    "DesignContext",
    "DiagnosisHTTPServer",
    "DiagnosisService",
    "FiredRequest",
    "MAX_LINE_BYTES",
    "ModelRecord",
    "ModelRegistry",
    "ProtocolError",
    "QueueFullError",
    "RequestBatcher",
    "ServeClient",
    "Submission",
    "UnknownModelError",
    "candidate_from_json",
    "candidate_to_json",
    "canonical_float",
    "canonical_response",
    "dumps_response",
    "error_response",
    "fire_concurrent",
    "parse_submission",
    "percentile",
    "result_response",
    "serve_http",
    "serve_stdin",
]
