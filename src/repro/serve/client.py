"""Concurrent serving client: urllib in threads, retry-on-429, latency stats.

:class:`ServeClient` is a thin stdlib HTTP client for one ``repro serve``
endpoint.  :func:`fire_concurrent` drives it the way a tester floor would —
many datalogs in flight at once — recording per-request wall-clock so the
bench and the CI smoke job can report p50/p99 and throughput.

Backpressure-aware by design: a 429 (queue full) is retried with bounded
linear backoff, and the retry count is part of the returned stats — a run
that spent its life being told to slow down should say so.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Sequence

__all__ = ["FiredRequest", "ServeClient", "fire_concurrent", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ranked = sorted(values)
    rank = min(len(ranked) - 1, max(0, round(q / 100.0 * (len(ranked) - 1))))
    return ranked[rank]


@dataclass
class FiredRequest:
    """Outcome of one submission: the response document plus timing."""

    response: Dict[str, Any]
    latency_s: float
    retries: int = 0


@dataclass
class ServeClient:
    """Blocking client for one serving endpoint.

    Args:
        base_url: ``http://host:port`` of a running ``repro serve``.
        timeout_s: Per-HTTP-call timeout.
        max_retries: How many 429s to absorb before giving up.
        backoff_s: Sleep after the k-th 429 is ``backoff_s * (k + 1)``.
    """

    base_url: str
    timeout_s: float = 60.0
    max_retries: int = 20
    backoff_s: float = 0.05

    def _post(self, path: str, body: bytes, content_type: str) -> Any:
        request = urllib.request.Request(
            self.base_url.rstrip("/") + path,
            data=body,
            headers={"Content-Type": content_type},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def _get(self, path: str) -> Any:
        with urllib.request.urlopen(
            self.base_url.rstrip("/") + path, timeout=self.timeout_s
        ) as resp:
            return resp.read().decode("utf-8")

    # -------------------------------------------------------------- endpoints
    def healthz(self) -> Dict[str, Any]:
        return json.loads(self._get("/healthz"))

    def metrics(self) -> str:
        return self._get("/metrics")

    def models(self) -> Dict[str, Any]:
        return json.loads(self._get("/models"))

    def activate(self, config: str, version: str) -> Dict[str, Any]:
        body = json.dumps({"config": config, "version": version}).encode("utf-8")
        return self._post("/models/activate", body, "application/json")

    def diagnose(self, submission: Dict[str, Any]) -> FiredRequest:
        """Submit one datalog; absorbs 429 backpressure with bounded retry."""
        body = json.dumps(submission).encode("utf-8")
        t0 = time.perf_counter()
        retries = 0
        while True:
            try:
                doc = self._post("/diagnose", body, "application/json")
                return FiredRequest(
                    response=doc,
                    latency_s=time.perf_counter() - t0,
                    retries=retries,
                )
            except urllib.error.HTTPError as exc:
                payload = exc.read().decode("utf-8", errors="replace")
                if exc.code == 429 and retries < self.max_retries:
                    retries += 1
                    time.sleep(self.backoff_s * retries)
                    continue
                try:
                    doc = json.loads(payload)
                except json.JSONDecodeError:
                    doc = {
                        "ok": False,
                        "error": {"type": f"http_{exc.code}", "message": payload},
                    }
                return FiredRequest(
                    response=doc,
                    latency_s=time.perf_counter() - t0,
                    retries=retries,
                )
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                # Transient transport failure (reset under load, refused
                # during startup) — retry on the same budget as 429s.
                if retries < self.max_retries:
                    retries += 1
                    time.sleep(self.backoff_s * retries)
                    continue
                return FiredRequest(
                    response={
                        "ok": False,
                        "error": {"type": "transport", "message": str(exc)},
                    },
                    latency_s=time.perf_counter() - t0,
                    retries=retries,
                )


def fire_concurrent(
    client: ServeClient,
    submissions: Sequence[Dict[str, Any]],
    concurrency: int = 32,
) -> Dict[str, Any]:
    """Fire submissions with ``concurrency`` in flight; return latency stats.

    The returned document carries every response (input order) plus p50/p99
    latency, throughput, and total 429 retries — the shape both
    ``benchmarks/bench_serving.py`` and the CI smoke client consume.
    """
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max(1, concurrency)) as pool:
        fired = list(pool.map(client.diagnose, submissions))
    wall_s = time.perf_counter() - t0
    latencies = [f.latency_s for f in fired]
    ok = sum(1 for f in fired if f.response.get("ok"))
    return {
        "n_requests": len(fired),
        "n_ok": ok,
        "n_errors": len(fired) - ok,
        "retries_429": sum(f.retries for f in fired),
        "wall_s": round(wall_s, 6),
        "throughput_rps": round(len(fired) / wall_s, 3) if wall_s > 0 else None,
        "latency_p50_s": round(percentile(latencies, 50), 6) if latencies else None,
        "latency_p99_s": round(percentile(latencies, 99), 6) if latencies else None,
        "latency_max_s": round(max(latencies), 6) if latencies else None,
        "responses": [f.response for f in fired],
    }
