"""Bounded-queue request batcher feeding block-diagonal GCN forwards.

Concurrent submissions land in one bounded queue; a single batch thread
drains up to ``max_batch`` of them at a time and hands the slice to the
processing callback (the diagnosis service), which packs every request's
sub-graph into one :class:`repro.nn.data.GraphBatch` forward pass.  Under
load the queue naturally accumulates while a forward is in flight, so batch
size tracks concurrency without any tuning.

Backpressure is explicit and total: the queue is bounded, a full queue
rejects the submission *immediately* (:class:`QueueFullError` → HTTP 429),
and nothing in the pipeline buffers unboundedly.  The batch loop survives
anything the callback raises — the failure lands on that batch's futures,
the loop keeps serving.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..runtime.instrument import RuntimeStats

__all__ = ["BatchItem", "QueueFullError", "RequestBatcher"]


class QueueFullError(RuntimeError):
    """The bounded request queue is at capacity (reject with 429)."""


@dataclass
class BatchItem:
    """One queued submission: the payload, its future, and queue timing."""

    payload: Any
    future: "Future[Any]"
    enqueued_at: float


class RequestBatcher:
    """Single-consumer batching executor with a bounded submission queue.

    Args:
        process: Callback receiving a non-empty list of :class:`BatchItem`;
            must return one result per item (in order).  Per-item failures
            should be encoded in the results (structured error responses);
            an exception fails the whole batch's futures but never the loop.
        max_batch: Most items handed to one ``process`` call.
        max_queue: Queue capacity; submissions beyond it raise
            :class:`QueueFullError` instead of growing memory.
        flush_interval_s: Longest the batch thread idles between queue
            polls; bounds shutdown latency, not request latency (a waiting
            request is picked up as soon as the thread is free).
        stats: Optional counter sink (``serve.batches``, ``serve.batched``,
            ``serve.rejected.queue_full``, batch-size histogram buckets).
    """

    def __init__(
        self,
        process: Callable[[List[BatchItem]], Sequence[Any]],
        max_batch: int = 64,
        max_queue: int = 256,
        flush_interval_s: float = 0.05,
        stats: Optional[RuntimeStats] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._process = process
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.flush_interval_s = flush_interval_s
        self.stats = stats if stats is not None else RuntimeStats()
        self._queue: "queue.Queue[BatchItem]" = queue.Queue(maxsize=max_queue)
        self._closing = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "RequestBatcher":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop the batch thread; with ``drain`` finish queued work first."""
        if not self._started:
            return
        self._closing.set()
        self._thread.join()
        # Whatever is still queued after the thread exits (drain=False, or
        # racing submitters) must not strand its waiters.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if drain:
                self._run_batch([item])
            else:
                item.future.set_exception(RuntimeError("server shutting down"))

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------ submission
    def submit(self, payload: Any, block: bool = False) -> "Future[Any]":
        """Enqueue one request; returns its future or raises when full.

        With ``block=True`` a full queue waits for a slot instead of
        raising — the stdin front-end's backpressure, where not reading the
        pipe is the rejection signal.  HTTP submissions keep the default
        fail-fast behaviour (429).
        """
        future: "Future[Any]" = Future()
        item = BatchItem(payload=payload, future=future, enqueued_at=time.perf_counter())
        try:
            self._queue.put(item, block=block)
        except queue.Full:
            self.stats.count("serve.rejected.queue_full")
            raise QueueFullError(
                f"request queue full ({self.max_queue} pending)"
            ) from None
        self.stats.count("serve.accepted")
        return future

    # ------------------------------------------------------------ batch loop
    def _drain(self) -> List[BatchItem]:
        """Block for the first item (bounded), then take whatever is ready."""
        try:
            first = self._queue.get(timeout=self.flush_interval_s)
        except queue.Empty:
            return []
        batch = [first]
        while len(batch) < self.max_batch:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return batch

    def _run_batch(self, batch: List[BatchItem]) -> None:
        self.stats.count("serve.batches")
        self.stats.count("serve.batched", len(batch))
        try:
            results = self._process(batch)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch processor returned {len(results)} result(s) "
                    f"for {len(batch)} item(s)"
                )
        except Exception as exc:
            # A processing bug fails this batch's futures, never the loop:
            # the server must keep answering subsequent requests.
            self.stats.count("serve.batch_errors")
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, result in zip(batch, results):
            item.future.set_result(result)

    def _run(self) -> None:
        while not self._closing.is_set() or not self._queue.empty():
            batch = self._drain()
            if batch:
                self._run_batch(batch)
