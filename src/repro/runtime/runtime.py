"""Parallel, cached dataset-generation runtime.

The Fig. 4 flow (netlist → M3D → DfT → ATPG → per-sample graph
construction) decomposes into two kinds of work unit:

* **design points** — one :func:`repro.data.prepare_design` call per
  (benchmark, configuration); independent of each other;
* **sample chunks** — fixed-size slices of an injected dataset, each with a
  seed derived from its identity (:mod:`repro.runtime.seeds`); independent
  of each other *and* of the worker count.

:class:`DatasetRuntime` executes both kinds with an optional
``multiprocessing`` pool and an optional content-addressed on-disk cache
(:mod:`repro.runtime.cache`), and records per-stage wall-clock plus cache
hit/miss counters (:mod:`repro.runtime.instrument`).  Results are
byte-identical across ``workers=1``, ``workers=N``, and warm-cache reloads —
the determinism test harness asserts exactly that.

A process-global runtime (:func:`get_runtime` / :func:`configure`)
lets every experiment runner and the CLI share one pool and cache;
``REPRO_WORKERS`` and ``REPRO_CACHE_DIR`` set its defaults.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .cache import CODE_VERSION, ArtifactCache
from .instrument import RuntimeStats
from .seeds import DEFAULT_CHUNK_SIZE, chunk_plan

# The data layer imports repro.runtime.seeds for its chunk grid, so the
# runtime imports the data layer lazily (inside functions) to stay
# cycle-free no matter which package loads first.
if TYPE_CHECKING:  # pragma: no cover
    from ..data.datagen import DesignConfig, PreparedDesign
    from ..data.datasets import LabeledSample, SampleSet
    from ..netlist.generators import GeneratorSpec

__all__ = [
    "DatasetRequest",
    "DatasetRuntime",
    "configure",
    "get_runtime",
    "reset_runtime",
]


@dataclass(frozen=True)
class DatasetRequest:
    """One injected-dataset build order for an already-prepared design."""

    mode: str
    n_samples: int
    seed: int
    kind: str = "single"
    miv_fraction: float = 0.15


# ----------------------------------------------------------------- workers
# Worker-side state is installed once per process by the pool initializer
# (cheap under fork, pickled once per worker under spawn), so per-task
# payloads are three small ints.

_CHUNK_STATE: Optional[List[Tuple["PreparedDesign", DatasetRequest]]] = None


def _init_chunk_worker(state: Optional[List[Tuple["PreparedDesign", DatasetRequest]]]) -> None:
    global _CHUNK_STATE
    _CHUNK_STATE = state


def _run_chunk(task: Tuple[int, int, int]):
    from ..data.datasets import build_dataset_chunk

    pair_index, chunk_index, chunk_n = task
    design, req = _CHUNK_STATE[pair_index]
    t0 = time.perf_counter()
    items = build_dataset_chunk(
        design, req.mode, chunk_index, chunk_n, req.seed, req.kind, req.miv_fraction
    )
    return pair_index, chunk_index, items, time.perf_counter() - t0


def _prepare_point(point: Tuple["GeneratorSpec", "DesignConfig", Dict[str, object]]):
    from ..data.datagen import prepare_design

    spec, config, kwargs = point
    t0 = time.perf_counter()
    design = prepare_design(spec, config, **kwargs)
    return design, time.perf_counter() - t0


class DatasetRuntime:
    """Executes dataset-generation work units with caching and fan-out.

    Args:
        workers: Worker processes for fan-out; 1 runs everything inline.
        cache_dir: Root of the content-addressed artifact cache; ``None``
            disables on-disk caching.
        chunk_size: Samples per injection work unit.  Part of the dataset
            definition — see :data:`repro.runtime.seeds.DEFAULT_CHUNK_SIZE`.
        stats: Shared stats sink; a fresh one is created when omitted.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        stats: Optional[RuntimeStats] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.chunk_size = int(chunk_size)
        self.stats = stats if stats is not None else RuntimeStats()
        self.cache: Optional[ArtifactCache] = (
            ArtifactCache(cache_dir, stats=self.stats) if cache_dir else None
        )

    # ----------------------------------------------------------------- keys
    @staticmethod
    def _design_key(provenance: Dict[str, object]) -> Dict[str, object]:
        return {"artifact": "design", "version": CODE_VERSION, **provenance}

    def _chunk_key(
        self,
        design: PreparedDesign,
        req: DatasetRequest,
        chunk_index: int,
        chunk_n: int,
    ) -> Optional[Dict[str, object]]:
        if not design.provenance:
            return None  # hand-built bundle: not content-addressable
        return {
            "artifact": "sample_chunk",
            "version": CODE_VERSION,
            "design": self._design_key(design.provenance),
            "mode": req.mode,
            "dataset_kind": req.kind,
            "seed": req.seed,
            "miv_fraction": req.miv_fraction,
            "chunk_size": self.chunk_size,
            "chunk_index": chunk_index,
            "chunk_n": chunk_n,
        }

    # -------------------------------------------------------------- prepare
    def prepare(
        self, spec: GeneratorSpec, config: DesignConfig, **kwargs: object
    ) -> PreparedDesign:
        """Cache-aware :func:`repro.data.prepare_design` for one point."""
        return self.prepare_many([(spec, config, dict(kwargs))])[0]

    def prepare_many(
        self,
        points: Sequence[Tuple[GeneratorSpec, DesignConfig, Dict[str, object]]],
    ) -> List[PreparedDesign]:
        """Prepare several design points, fanning the misses over workers.

        Args:
            points: ``(spec, config, prepare_design-kwargs)`` triples.

        Returns:
            Bundles in input order; cache hits load from disk, misses build
            (in parallel when ``workers > 1``) and are stored back.
        """
        results: List[Optional[PreparedDesign]] = [None] * len(points)
        keys: List[Dict[str, object]] = []
        missing: List[int] = []
        for i, (spec, config, kwargs) in enumerate(points):
            key = self._design_key(
                {"spec": spec, "config": config, **_full_prepare_kwargs(kwargs)}
            )
            keys.append(key)
            if self.cache is not None:
                design, hit = self.cache.get("design", key)
                if hit:
                    results[i] = design
                    continue
            missing.append(i)

        if missing:
            tasks = [points[i] for i in missing]
            if self.workers > 1 and len(tasks) > 1:
                self.stats.emit(
                    f"[datagen] preparing {len(tasks)} design point(s) "
                    f"on {self.workers} workers"
                )
                with self.stats.timed("prepare.wall"):
                    with multiprocessing.Pool(min(self.workers, len(tasks))) as pool:
                        built = pool.map(_prepare_point, tasks)
            else:
                with self.stats.timed("prepare.wall"):
                    built = [_prepare_point(t) for t in tasks]
            for i, (design, elapsed) in zip(missing, built):
                self.stats.add_time("prepare.build", elapsed)
                self.stats.count("prepare.designs_built")
                results[i] = design
                if self.cache is not None:
                    self.cache.put("design", keys[i], design)
                self.stats.emit(
                    f"[datagen] prepared {design.benchmark}/{design.config.name} "
                    f"({elapsed:.1f}s)"
                )
        return results  # type: ignore[return-value]

    # -------------------------------------------------------------- datasets
    def build_dataset(
        self,
        design: PreparedDesign,
        mode: str,
        n_samples: int,
        seed: int,
        kind: str = "single",
        miv_fraction: float = 0.15,
    ) -> SampleSet:
        """Cache-aware, parallel counterpart of :func:`repro.data.build_dataset`."""
        req = DatasetRequest(mode, n_samples, seed, kind, miv_fraction)
        return self.build_datasets([(design, req)])[0]

    def build_datasets(
        self, orders: Sequence[Tuple[PreparedDesign, DatasetRequest]]
    ) -> List[SampleSet]:
        """Build several datasets, fanning all missing chunks over one pool.

        Every (order, chunk) pair is an independent work unit; chunks from
        different design points interleave freely across workers, so a
        Syn-1/TPI/Syn-2/Par/Rand-k matrix keeps every worker busy.  Results
        are assembled in canonical chunk order regardless of completion
        order, which keeps them byte-identical to the serial build.
        """
        with self.stats.timed("dataset.wall"):
            return self._build_datasets(orders)

    def _build_datasets(
        self, orders: Sequence[Tuple["PreparedDesign", DatasetRequest]]
    ) -> List["SampleSet"]:
        from ..data.datasets import SampleSet

        # chunks[order_index][chunk_index] -> items
        chunks: List[Dict[int, List[LabeledSample]]] = [{} for _ in orders]
        chunk_keys: Dict[Tuple[int, int], Dict[str, object]] = {}
        tasks: List[Tuple[int, int, int]] = []
        for oi, (design, req) in enumerate(orders):
            if req.kind not in ("single", "multi", "miv"):
                raise ValueError(f"unknown dataset kind {req.kind!r}")
            for chunk_index, chunk_n in chunk_plan(req.n_samples, self.chunk_size):
                key = self._chunk_key(design, req, chunk_index, chunk_n)
                if key is not None and self.cache is not None:
                    items, hit = self.cache.get("sample_chunk", key)
                    if hit:
                        chunks[oi][chunk_index] = items
                        continue
                if key is not None:
                    chunk_keys[(oi, chunk_index)] = key
                tasks.append((oi, chunk_index, chunk_n))

        if tasks:
            n_cached = sum(len(c) for c in chunks)
            self.stats.emit(
                f"[datagen] injecting {len(tasks)} chunk(s) "
                f"({n_cached} cached) on {min(self.workers, len(tasks))} worker(s)"
            )
            state = [(design, req) for design, req in orders]
            if self.workers > 1 and len(tasks) > 1:
                with multiprocessing.Pool(
                    min(self.workers, len(tasks)),
                    initializer=_init_chunk_worker,
                    initargs=(state,),
                ) as pool:
                    outcomes = pool.map(_run_chunk, tasks)
            else:
                _init_chunk_worker(state)
                try:
                    outcomes = [_run_chunk(t) for t in tasks]
                finally:
                    _init_chunk_worker(None)
            for oi, chunk_index, items, elapsed in outcomes:
                self.stats.add_time("dataset.inject", elapsed)
                self.stats.count("dataset.chunks_built")
                self.stats.count("dataset.samples", len(items))
                chunks[oi][chunk_index] = items
                key = chunk_keys.get((oi, chunk_index))
                if key is not None and self.cache is not None:
                    self.cache.put("sample_chunk", key, items)

        out: List[SampleSet] = []
        for oi, (design, req) in enumerate(orders):
            items: List[LabeledSample] = []
            for chunk_index, _chunk_n in chunk_plan(req.n_samples, self.chunk_size):
                items.extend(chunks[oi][chunk_index])
            out.append(SampleSet(design=design, mode=req.mode, items=items))
        return out


def _full_prepare_kwargs(kwargs: Dict[str, object]) -> Dict[str, object]:
    """Prepare kwargs with defaults filled in, so keys don't depend on call style.

    The ``drc`` fail-fast flag is excluded: it only decides whether the
    structural checks run, never what the prepared bundle contains, so the
    same artifact must hash to the same cache key either way.
    """
    import inspect

    from ..data.datagen import prepare_design

    defaults = {
        name: p.default
        for name, p in inspect.signature(prepare_design).parameters.items()
        if p.default is not inspect.Parameter.empty
    }
    defaults.update(kwargs)
    defaults.pop("drc", None)
    return defaults


# ------------------------------------------------------------------ global
_GLOBAL_RUNTIME: Optional[DatasetRuntime] = None


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    chunk_size: Optional[int] = None,
    stats: Optional[RuntimeStats] = None,
) -> DatasetRuntime:
    """Install (and return) the process-global runtime.

    Unspecified parameters fall back to the ``REPRO_WORKERS`` /
    ``REPRO_CACHE_DIR`` environment variables, then to serial/uncached.
    Call before any experiment helper touches the pipeline — the experiment
    layer memoizes prepared designs per process.
    """
    global _GLOBAL_RUNTIME
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1"))
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    _GLOBAL_RUNTIME = DatasetRuntime(
        workers=workers,
        cache_dir=cache_dir,
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        stats=stats,
    )
    return _GLOBAL_RUNTIME


def get_runtime() -> DatasetRuntime:
    """The process-global runtime (created from the environment on first use)."""
    global _GLOBAL_RUNTIME
    if _GLOBAL_RUNTIME is None:
        configure()
    return _GLOBAL_RUNTIME


def reset_runtime() -> None:
    """Drop the process-global runtime (tests use this to isolate state)."""
    global _GLOBAL_RUNTIME
    _GLOBAL_RUNTIME = None
