"""Length-prefixed, digest-framed wire protocol for the distributed runtime.

One frame on the wire is::

    MAGIC(4) | header_len(4, BE) | header JSON | payload_len(8, BE) | payload
    | sha256(header + payload)(32)

The header is a small JSON document ``{"kind": ..., "seq": ..., "meta":
{...}}``; the payload is opaque bytes (pickled work units / results — the
protocol is for *trusted* hosts of one build cluster, exactly like the
multiprocessing pipes it extends).  Every frame is integrity-checked: a
short read raises :class:`ConnectionError` (peer died mid-frame), a magic
or digest mismatch raises :class:`FrameError` (stream corruption — the
receiver must drop the connection, resynchronizing mid-stream is not
attempted).

Chaos injection lives in :func:`send_frame`: when a :class:`ChaosPlan`
with network fault rates is passed alongside a unit token, the frame may
be deterministically dropped (never sent), duplicated (sent twice), or
truncated (half the bytes written, then the connection cut).  Faults fire
on a frame's first send only, so ack-driven resends always go out clean.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from typing import Any, Dict, NamedTuple, Optional, Tuple

from ..chaos import ChaosPlan

__all__ = ["Frame", "FrameError", "recv_frame", "recv_frame_poll", "send_frame"]

#: Frame magic: "RePro Dist, protocol 1".
MAGIC = b"RPD1"

#: Hard cap on header/payload sizes — a corrupted length prefix must fail
#: fast, not allocate gigabytes.
_MAX_HEADER = 1 << 20
_MAX_PAYLOAD = 1 << 31


class FrameError(RuntimeError):
    """The byte stream is not a valid frame (corruption or desync)."""


class Frame(NamedTuple):
    """One decoded frame."""

    kind: str
    seq: int
    meta: Dict[str, Any]
    payload: bytes


def _encode(kind: str, seq: int, meta: Optional[Dict[str, Any]],
            payload: bytes) -> bytes:
    header = json.dumps(
        {"kind": kind, "seq": seq, "meta": meta or {}}, sort_keys=True
    ).encode("utf-8")
    digest = hashlib.sha256(header + payload).digest()
    return b"".join((
        MAGIC,
        struct.pack(">I", len(header)),
        header,
        struct.pack(">Q", len(payload)),
        payload,
        digest,
    ))


def send_frame(
    sock: socket.socket,
    kind: str,
    seq: int = 0,
    meta: Optional[Dict[str, Any]] = None,
    payload: bytes = b"",
    chaos: Optional[ChaosPlan] = None,
    token: Tuple[object, ...] = (),
    send_attempt: int = 0,
) -> None:
    """Send one frame, with optional deterministic fault injection.

    Args:
        sock: Connected stream socket.
        kind: Frame kind (protocol message name).
        seq: Sender-side sequence number; replies echo it as ``meta["re"]``
            so a receiver can discard stale duplicates.
        meta: Small JSON-serializable header fields.
        payload: Opaque bytes (may be empty).
        chaos / token / send_attempt: When a chaos plan and a non-empty
            unit token are given, :meth:`ChaosPlan.frame_fault` decides a
            fault for this (token, send_attempt) pair: ``drop`` returns
            without sending, ``dup`` sends the frame twice, ``trunc``
            writes half the bytes and cuts the connection (raising
            :class:`ConnectionError` so the caller reconnects and resends).
    """
    data = _encode(kind, seq, meta, payload)
    fault = (
        chaos.frame_fault(token, send_attempt)
        if chaos is not None and token
        else None
    )
    if fault == "drop":
        return  # the peer sees nothing; the sender's ack timeout recovers
    if fault == "trunc":
        try:
            sock.sendall(data[: max(1, len(data) // 2)])
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # the cut is the point; a dead socket is already cut
        raise ConnectionError(f"chaos: truncated frame {kind!r} {token!r}")
    sock.sendall(data)
    if fault == "dup":
        sock.sendall(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Frame:
    """Receive and verify one frame.

    Raises:
        ConnectionError: Peer closed the stream (cleanly between frames is
            still an error here — callers track shutdown explicitly) or
            died mid-frame; also socket timeouts propagate as
            ``TimeoutError`` (an ``OSError``) for the caller's poll loops.
        FrameError: Magic or digest mismatch — corrupted/desynced stream;
            the connection must be dropped.
    """
    magic = _recv_exact(sock, 4)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    return _recv_body(sock)


def recv_frame_poll(
    sock: socket.socket, idle_timeout: float, frame_timeout: float = 30.0
) -> Optional[Frame]:
    """Poll for one frame; ``None`` when no byte arrives within the idle window.

    The idle timeout applies only to the *first* byte — once a frame has
    started, the receiver switches to ``frame_timeout`` and reads it to the
    end, so a poll can never desynchronize the stream mid-frame.  A peer
    that starts a frame and then stalls past ``frame_timeout`` surfaces as
    ``TimeoutError`` (an ``OSError``), which callers treat as connection
    death.
    """
    sock.settimeout(idle_timeout)
    try:
        first = sock.recv(1)
    except socket.timeout:
        return None
    if not first:
        raise ConnectionError("connection closed while idle")
    sock.settimeout(frame_timeout)
    rest = _recv_exact(sock, 3)
    if first + rest != MAGIC:
        raise FrameError(f"bad frame magic {(first + rest)!r}")
    return _recv_body(sock)


def _recv_body(sock: socket.socket) -> Frame:
    """Receive and verify everything after the (already consumed) magic."""
    (header_len,) = struct.unpack(">I", _recv_exact(sock, 4))
    if header_len > _MAX_HEADER:
        raise FrameError(f"implausible header length {header_len}")
    header_bytes = _recv_exact(sock, header_len)
    (payload_len,) = struct.unpack(">Q", _recv_exact(sock, 8))
    if payload_len > _MAX_PAYLOAD:
        raise FrameError(f"implausible payload length {payload_len}")
    payload = _recv_exact(sock, payload_len)
    digest = _recv_exact(sock, 32)
    if hashlib.sha256(header_bytes + payload).digest() != digest:
        raise FrameError("frame digest mismatch (corrupted stream)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except ValueError as exc:
        raise FrameError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict) or "kind" not in header:
        raise FrameError("frame header missing 'kind'")
    return Frame(
        kind=str(header["kind"]),
        seq=int(header.get("seq", 0)),
        meta=dict(header.get("meta") or {}),
        payload=payload,
    )
