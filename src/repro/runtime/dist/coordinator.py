"""Lease-based coordinator for the distributed work-unit runtime.

One :class:`Coordinator` owns a listening socket, a set of worker
sessions (one daemon thread per connection), and at most one active unit
*batch* at a time.  Workers pull work: each sends ``lease`` requests and
receives a ``grant`` carrying one pickled :class:`~repro.runtime.runtime.
ChunkUnit` / ``PrepareUnit`` payload, executes it, and pushes back a
``result`` frame (acknowledged, resent until acknowledged).  The
robustness contract mirrors the in-process fault-tolerance layer
(:mod:`repro.runtime.faulttol`), extended across the network boundary:

* **leases, not assignments** — every grant carries a deadline, extended
  by worker heartbeats; a lease that expires (stalled worker, dead
  worker, partition) silently requeues its unit for the next ``lease``
  request, attempt count bumped, bounded by the shared
  :class:`~repro.runtime.faulttol.RetryPolicy`;
* **duplicate-result idempotency** — units are pure functions of their
  identity, so a late result from a reaped lease, a resent frame, or a
  duplicated frame is either accepted (unit still open: identical bytes)
  or counted and dropped (unit done).  Nothing is ever un-done;
* **cache-aware scheduling** — ``lease`` requests advertise the worker's
  resident design tokens; pending units whose design is already warm on
  that worker are granted first (``dist.warm_grants``);
* **widened degradation ladder** — distributed → local-parallel →
  respawn → serial.  When no remote progress happens for
  ``fallback_after_s`` (or the batch is chaos-partitioned), the
  not-yet-done units run locally through
  :func:`repro.runtime.faulttol.run_units`, which carries its own
  parallel → respawn → serial ladder.  A fully partitioned cluster
  completes the build with byte-identical output;
* **checkpoint resume** — completed units persist in the
  :class:`~repro.runtime.dist.store.DistStore` as ``(identity, result)``
  pairs; a coordinator restarted on the same batch preloads them
  (``dist.resumed_units``) and only schedules the remainder.

Everything observable lands in ``dist.*`` counters on the shared
:class:`~repro.runtime.instrument.RuntimeStats`, surfaced by
``repro stats`` next to the ``faulttol.*`` family.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ...obs import SpanTracer
from ..chaos import ChaosPlan, chaos_from_env
from ..faulttol import RetryPolicy, UnitFailedError
from ..faulttol import run_units as _run_units_local
from ..instrument import RuntimeStats
from ..pool import resident_token
from .store import DistStore, run_hash, unit_identity
from .wire import Frame, FrameError, recv_frame_poll, send_frame

__all__ = ["Coordinator", "DistPolicy"]

_PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class DistPolicy:
    """Timing knobs for the coordinator/worker protocol.

    Attributes:
        heartbeat_s: Interval at which workers beat for a leased unit
            (shipped to workers in the ``welcome`` frame).
        lease_timeout_s: Lease lifetime without a heartbeat; an expired
            lease requeues its unit.
        poll_s: Coordinator poll granularity (session recv windows and
            the build thread's wait step).
        fallback_after_s: Remote-progress silence that triggers the local
            fallback rung of the degradation ladder.
        ack_timeout_s: How long a worker waits for a result ack before
            resending the frame.
        io_timeout_s: Mid-frame read deadline; a peer that stalls inside
            a frame this long is treated as dead.
    """

    heartbeat_s: float = 2.0
    lease_timeout_s: float = 10.0
    poll_s: float = 0.2
    fallback_after_s: float = 10.0
    ack_timeout_s: float = 5.0
    io_timeout_s: float = 30.0


class _Batch:
    """Mutable state of one ``run_units`` call (guarded by the coordinator lock)."""

    def __init__(self, label: str, units: List[Any], identities: List[str],
                 rhash: str, seq: int) -> None:
        self.label = label
        self.units = units
        self.identities = identities
        self.rhash = rhash
        self.seq = seq
        n = len(units)
        #: Per-unit state: pending | leased | local | done.
        self.state: List[str] = ["pending"] * n
        self.attempts: List[int] = [0] * n
        self.results: List[Any] = [None] * n
        #: idx -> (session id, lease id, monotonic deadline, attempt).
        self.leases: Dict[int, Tuple[int, str, float, int]] = {}
        self.failure: Optional[UnitFailedError] = None
        self.partitioned = False
        self.last_progress = time.monotonic()


class Coordinator:
    """Serve work units to socket-connected workers; fall back locally.

    Args:
        host / port: Listen address; port 0 picks a free port (read the
            bound address back from :attr:`address`).
        workers: Pool width for the *local fallback* rung (a partitioned
            or worker-less cluster still builds at this parallelism).
        policy: Protocol timing knobs.
        retry: Shared attempt budget — lease expiries, disconnect
            requeues, and remote unit errors all draw from
            ``retry.max_retries``, exactly like local retries do.
        stats: Sink for ``dist.*`` counters.
        chaos: Failure-injection plan; shipped to workers in ``welcome``
            so one ``REPRO_CHAOS`` plan governs the whole cluster.
        store_dir: Root for the lease/marker/result store (resume +
            ``repro doctor`` audit); ``None`` disables persistence.
        tracer: Span tracer handed to the local-fallback executor.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        policy: Optional[DistPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        stats: Optional[RuntimeStats] = None,
        chaos: Optional[ChaosPlan] = None,
        store_dir: Optional[_PathLike] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.policy = policy if policy is not None else DistPolicy()
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.stats = stats if stats is not None else RuntimeStats()
        self.chaos = chaos if chaos is not None else chaos_from_env()
        self.tracer = tracer
        self.workers = max(1, int(workers))
        self.store: Optional[DistStore] = (
            DistStore(store_dir) if store_dir is not None else None
        )

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._designs: Dict[str, bytes] = {}
        self._batch: Optional[_Batch] = None
        self._batch_seq = 0
        self._sessions: List[threading.Thread] = []
        self._session_seq = 0

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        #: The bound ``(host, port)`` — workers connect here.
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop accepting, tell sessions to shut their workers down."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._listener.close()
        self._accept_thread.join(timeout=5.0)
        for thread in self._sessions:
            thread.join(timeout=2.0)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -------------------------------------------------------------- designs
    def offer_design(self, design: Any) -> str:
        """Make ``design`` fetchable by workers; returns its resident token."""
        token = resident_token(design)
        with self._cond:
            if token not in self._designs:
                self._designs[token] = pickle.dumps(
                    design, protocol=pickle.HIGHEST_PROTOCOL
                )
        return token

    # ------------------------------------------------------------- sessions
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: coordinator shutting down
            self._start_session(conn)

    def _start_session(self, conn: socket.socket) -> None:
        with self._cond:
            self._session_seq += 1
            sid = self._session_seq
            thread = threading.Thread(
                target=self._serve, args=(conn, sid),
                name=f"dist-session-{sid}", daemon=True,
            )
            self._sessions.append(thread)
        thread.start()

    def _serve(self, conn: socket.socket, sid: int) -> None:
        """One worker connection: poll frames, dispatch, reply."""
        wid = f"sid{sid}"
        try:
            while True:
                with self._cond:
                    closed = self._closed
                if closed:
                    try:
                        send_frame(conn, "shutdown")
                    except OSError:
                        pass
                    return
                try:
                    frame = recv_frame_poll(
                        conn, self.policy.poll_s, self.policy.io_timeout_s
                    )
                except (FrameError, OSError):
                    # Corruption, truncation, death, mid-frame stall: the
                    # connection is unusable; leased units requeue below.
                    return
                if frame is None:
                    continue
                if frame.kind == "hello":
                    wid = str(frame.meta.get("wid", wid))
                with self._cond:
                    reply = self._handle(frame, wid, sid)
                if reply is None:
                    continue  # heartbeats are one-way
                kind, meta, payload = reply
                try:
                    send_frame(
                        conn, kind, meta={**meta, "re": frame.seq}, payload=payload
                    )
                except OSError:
                    return
        finally:
            with self._cond:
                self._requeue_session(sid)
            conn.close()

    # ------------------------------------------------------------- protocol
    def _handle(
        self, frame: Frame, wid: str, sid: int
    ) -> Optional[Tuple[str, Dict[str, Any], bytes]]:
        """Dispatch one frame (lock held); returns the reply or None."""
        batch = self._batch
        if frame.kind == "hello":
            self.stats.count("dist.workers_seen")
            meta = {
                "heartbeat_s": self.policy.heartbeat_s,
                "lease_timeout_s": self.policy.lease_timeout_s,
                "ack_timeout_s": self.policy.ack_timeout_s,
            }
            payload = (
                pickle.dumps(self.chaos, protocol=pickle.HIGHEST_PROTOCOL)
                if self.chaos is not None
                else b""
            )
            return ("welcome", meta, payload)

        if frame.kind == "design":
            token = str(frame.meta.get("token", ""))
            payload = self._designs.get(token)
            return ("design", {"ok": payload is not None}, payload or b"")

        if frame.kind == "lease":
            if batch is None or batch.failure is not None or batch.partitioned:
                return ("idle", {}, b"")
            pending = [i for i, s in enumerate(batch.state) if s == "pending"]
            if not pending:
                return ("idle", {}, b"")
            resident = set(frame.meta.get("resident") or ())
            warm = [
                i for i in pending
                if getattr(batch.units[i], "ref", None) is not None
                and batch.units[i].ref.key in resident
            ]
            idx = warm[0] if warm else pending[0]
            if warm:
                self.stats.count("dist.warm_grants")
            attempt = batch.attempts[idx]
            lease_id = f"{batch.rhash}-u{idx}-a{attempt}"
            batch.state[idx] = "leased"
            batch.leases[idx] = (
                sid, lease_id,
                time.monotonic() + self.policy.lease_timeout_s, attempt,
            )
            batch.last_progress = time.monotonic()
            if self.store is not None:
                self.store.write_lease(
                    lease_id,
                    {"wid": wid, "unit": idx, "run": batch.rhash,
                     "attempt": attempt},
                )
            self.stats.count("dist.grants")
            return (
                "grant",
                {"unit": idx, "attempt": attempt, "batch": batch.seq,
                 "label": batch.label},
                pickle.dumps(batch.units[idx], protocol=pickle.HIGHEST_PROTOCOL),
            )

        if frame.kind == "beat":
            if batch is not None and int(frame.meta.get("batch", -1)) == batch.seq:
                idx = int(frame.meta.get("unit", -1))
                lease = batch.leases.get(idx)
                if lease is not None and lease[0] == sid:
                    batch.leases[idx] = (
                        lease[0], lease[1],
                        time.monotonic() + self.policy.lease_timeout_s, lease[3],
                    )
                    batch.last_progress = time.monotonic()
            return None

        if frame.kind == "result":
            idx = int(frame.meta.get("unit", -1))
            if (
                batch is None
                or int(frame.meta.get("batch", -1)) != batch.seq
                or not 0 <= idx < len(batch.units)
            ):
                # A previous batch's late result (reaped lease, resent
                # frame after the batch finished): idempotently ignorable.
                self.stats.count("dist.stale_results")
                return ("ack", {"unit": idx, "accepted": False}, b"")
            if batch.state[idx] == "done":
                # Duplicated frame, or a reassigned unit finishing twice.
                # Content-addressed identity guarantees identical bytes,
                # so acknowledging without storing is safe.
                self.stats.count("dist.duplicate_results")
                return ("ack", {"unit": idx, "accepted": True}, b"")
            try:
                descriptor = pickle.loads(frame.payload)
            except (pickle.UnpicklingError, ValueError, EOFError,
                    AttributeError, ImportError):
                self.stats.count("dist.bad_results")
                return ("ack", {"unit": idx, "accepted": False}, b"")
            self._complete(batch, idx, descriptor, remote=True)
            return ("ack", {"unit": idx, "accepted": True}, b"")

        if frame.kind == "fail":
            idx = int(frame.meta.get("unit", -1))
            if (
                batch is None
                or int(frame.meta.get("batch", -1)) != batch.seq
                or not 0 <= idx < len(batch.units)
                or batch.state[idx] == "done"
            ):
                return ("ack", {"unit": idx, "accepted": False}, b"")
            self._release_lease(batch, idx)
            self.stats.count("dist.unit_errors")
            batch.attempts[idx] += 1
            if batch.attempts[idx] > self.retry.max_retries:
                batch.failure = UnitFailedError(
                    batch.label, batch.units[idx], batch.attempts[idx],
                    RuntimeError(str(frame.meta.get("error", "remote failure"))),
                )
            elif batch.state[idx] == "leased":
                batch.state[idx] = "pending"
            self._cond.notify_all()
            return ("ack", {"unit": idx, "accepted": True}, b"")

        return ("error", {"unknown": frame.kind}, b"")

    # ----------------------------------------------------- state transitions
    def _release_lease(self, batch: _Batch, idx: int) -> None:
        lease = batch.leases.pop(idx, None)
        if lease is not None and self.store is not None:
            self.store.drop_lease(lease[1])

    def _complete(self, batch: _Batch, idx: int, descriptor: Any,
                  remote: bool) -> None:
        self._release_lease(batch, idx)
        batch.results[idx] = descriptor
        batch.state[idx] = "done"
        batch.last_progress = time.monotonic()
        if self.store is not None:
            self.store.put_result(
                batch.rhash, idx, batch.identities[idx], descriptor
            )
        self.stats.count("dist.results_remote" if remote else "dist.fallback_units")
        self._cond.notify_all()

    def _requeue_session(self, sid: int) -> None:
        """A session died: its leased units go back in the queue (lock held)."""
        batch = self._batch
        if batch is None:
            return
        for idx, lease in list(batch.leases.items()):
            if lease[0] != sid or batch.state[idx] != "leased":
                continue
            self._release_lease(batch, idx)
            self.stats.count("dist.disconnect_requeues")
            batch.attempts[idx] += 1
            if batch.attempts[idx] > self.retry.max_retries:
                batch.failure = UnitFailedError(
                    batch.label, batch.units[idx], batch.attempts[idx], None
                )
            else:
                batch.state[idx] = "pending"
        self._cond.notify_all()

    def _reap_leases(self, batch: _Batch, now: float) -> None:
        """Requeue every expired lease (lock held)."""
        for idx, lease in list(batch.leases.items()):
            if now <= lease[2]:
                continue
            self._release_lease(batch, idx)
            if batch.state[idx] != "leased":
                continue
            self.stats.count("dist.lease_expired")
            batch.attempts[idx] += 1
            if batch.attempts[idx] > self.retry.max_retries:
                batch.failure = UnitFailedError(
                    batch.label, batch.units[idx], batch.attempts[idx], None
                )
            else:
                batch.state[idx] = "pending"

    # ------------------------------------------------------------ execution
    def run_units(
        self,
        units: Sequence[Any],
        fn: Callable[[Tuple[Any, int]], Any],
        label: str = "unit",
    ) -> List[Any]:
        """Distribute ``units`` across connected workers; results in order.

        The distributed analogue of :func:`repro.runtime.faulttol.run_units`
        — same purity contract, same ``UnitFailedError`` on budget
        exhaustion, same input-order results.  ``fn`` is only executed
        locally (in the fallback rung); workers map the unit *type* to
        their own copy of the worker function.

        Raises:
            UnitFailedError: A unit exhausted the shared retry budget
                across leases, disconnects, and remote errors.
        """
        if not units:
            return []
        identities = [unit_identity(u) for u in units]
        rhash = run_hash(label, identities)
        with self._cond:
            if self._batch is not None:
                raise RuntimeError("coordinator already has an active batch")
            self._batch_seq += 1
            batch = _Batch(label, list(units), identities, rhash, self._batch_seq)
            if self.chaos is not None and self.chaos.partition_fires(
                (label, batch.seq)
            ):
                batch.partitioned = True
                self.stats.count("dist.partitioned_batches")
                self.stats.emit(
                    f"[dist] {label}: batch {batch.seq} partitioned by chaos; "
                    f"building locally"
                )
            if self.store is not None:
                for idx, desc in self.store.load_results(rhash, identities).items():
                    batch.results[idx] = desc
                    batch.state[idx] = "done"
                    self.stats.count("dist.resumed_units")
                self.store.write_marker(
                    rhash, {"label": label, "units": len(units)}
                )
            self._batch = batch
            self._cond.notify_all()
        try:
            self._drive(batch, fn)
        except BaseException:
            with self._cond:
                open_units = sum(1 for s in batch.state if s != "done")
                if open_units:
                    self.stats.count("dist.aborted_units", open_units)
            raise
        finally:
            with self._cond:
                for idx in list(batch.leases):
                    self._release_lease(batch, idx)
                self._batch = None
                self._cond.notify_all()
        if self.store is not None:
            self.store.finish_run(rhash)
        return list(batch.results)

    def _drive(self, batch: _Batch, fn: Callable[[Tuple[Any, int]], Any]) -> None:
        """Wait for remote completion; reap leases; degrade locally on stall."""
        while True:
            fallback: List[int] = []
            with self._cond:
                while True:
                    if batch.failure is not None:
                        raise batch.failure
                    if all(s == "done" for s in batch.state):
                        return
                    now = time.monotonic()
                    self._reap_leases(batch, now)
                    if batch.failure is not None:
                        raise batch.failure
                    waiting = [
                        i for i, s in enumerate(batch.state)
                        if s in ("pending", "leased")
                    ]
                    stalled = (
                        now - batch.last_progress > self.policy.fallback_after_s
                    )
                    if waiting and (batch.partitioned or stalled):
                        # Next rung of the ladder: pull everything not done
                        # back in-process.  Heartbeating workers keep
                        # last_progress fresh, so live remote work is never
                        # stolen — only silence (or a partition) gets here.
                        for i in waiting:
                            if batch.state[i] == "leased":
                                self._release_lease(batch, i)
                            batch.state[i] = "local"
                        fallback = waiting
                        break
                    self._cond.wait(self.policy.poll_s)
            if not fallback:
                continue
            self.stats.count("dist.fallback_runs")
            if not batch.partitioned:
                self.stats.emit(
                    f"[dist] {batch.label}: no remote progress for "
                    f"{self.policy.fallback_after_s:.0f}s; running "
                    f"{len(fallback)} unit(s) locally"
                )
            outcomes = _run_units_local(
                [batch.units[i] for i in fallback],
                fn,
                workers=self.workers,
                policy=self.retry,
                stats=self.stats,
                label=batch.label,
                tracer=self.tracer,
            )
            with self._cond:
                for i, descriptor in zip(fallback, outcomes):
                    # A late remote result may have raced in; both are
                    # byte-identical, first writer wins.
                    if batch.state[i] != "done":
                        self._complete(batch, i, descriptor, remote=False)
