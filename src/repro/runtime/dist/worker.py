"""Pull-based worker loop for the distributed work-unit runtime.

:func:`run_worker` connects to a coordinator, leases units, executes them
with the same module-level worker functions the in-process pool uses
(``_run_chunk`` / ``_prepare_point``), and pushes results back over the
digest-framed wire protocol.  Robustness mechanisms, worker side:

* **reconnect with seeded backoff** — connection loss (including
  chaos-truncated frames) triggers :meth:`RetryPolicy.backoff_delay`
  waits between reconnect attempts: exponential, capped, deterministic
  jitter, bounded by ``max_reconnects``;
* **acked result delivery** — a ``result`` frame is resent until the
  coordinator acknowledges it (across reconnects if needed); resends go
  out with ``send_attempt > 0`` so chaos frame faults never repeat, and
  the coordinator's idempotent accept makes duplicates harmless;
* **design cache tier** — a granted unit's design resolves against the
  in-process resident registry first, then a local disk cache
  (``<cache_dir>/dist-designs``), and only then a ``design`` fetch from
  the coordinator; fetched designs are pinned and advertised in later
  ``lease`` requests so the coordinator can route warm units here;
* **heartbeats** — a daemon thread beats for the leased unit every
  ``heartbeat_s`` (as told by the ``welcome`` frame), keeping the lease
  alive through long simulations; a chaos-stalled unit skips heartbeats
  so the coordinator reaps and reassigns it.

Exit codes: ``0`` — coordinator sent ``shutdown``; ``3`` — reconnect
budget exhausted (coordinator gone).
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

from ..cache import _atomic_write_bytes
from ..chaos import ChaosPlan, mark_worker
from ..faulttol import RetryPolicy
from ..pool import register_resident, resident_token, resolve_resident
from .wire import Frame, FrameError, recv_frame, send_frame

__all__ = ["run_worker"]

_PICKLE_ERRORS = (OSError, pickle.UnpicklingError, ValueError, EOFError,
                  AttributeError, ImportError)


def _unit_runner(unit: Any) -> Callable[[Tuple[Any, int]], Any]:
    """The worker function for one unit type.

    Imported lazily: the runtime module imports nothing from ``dist``, but
    resolving it at call time keeps this module importable from any
    package-initialization order.
    """
    from ..runtime import _prepare_point, _run_chunk

    runners = {"ChunkUnit": _run_chunk, "PrepareUnit": _prepare_point}
    try:
        return runners[type(unit).__name__]
    except KeyError:
        raise RuntimeError(f"unknown unit type {type(unit).__name__!r}") from None


class _Worker:
    def __init__(
        self,
        addr: Tuple[str, int],
        cache_dir: Optional[Union[str, os.PathLike]],
        policy: RetryPolicy,
        wid: str,
        max_reconnects: int,
    ) -> None:
        self.addr = addr
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.policy = policy
        self.wid = wid
        self.max_reconnects = max_reconnects
        self.send_lock = threading.Lock()
        self.seq = 0
        self.resident: set = set()
        #: An executed-but-unacknowledged result: (meta, payload, chaos
        #: token).  Survives reconnects — delivery is at-least-once, the
        #: coordinator's idempotent accept makes it effectively-once.
        self.pending: Optional[Tuple[dict, bytes, Tuple[object, ...]]] = None
        self.chaos: Optional[ChaosPlan] = None
        self.heartbeat_s = 2.0
        self.ack_timeout_s = 5.0
        self._welcomed = False

    # ------------------------------------------------------------ main loop
    def run(self) -> int:
        reconnects = 0
        while True:
            outcome = self._connect_once()
            if outcome == "shutdown":
                return 0
            if self._welcomed:
                reconnects = 0  # a served connection resets the budget
            reconnects += 1
            if reconnects > self.max_reconnects:
                return 3
            time.sleep(
                max(0.05, self.policy.backoff_delay(
                    min(reconnects, 6), ("connect", self.wid)
                ))
            )

    def _connect_once(self) -> str:
        """One dial + serve cycle; the socket closes on every path out."""
        self._welcomed = False
        try:
            sock = socket.create_connection(self.addr, timeout=10.0)
        except OSError:
            return "refused"
        try:
            return self._serve(sock)
        except (FrameError, OSError):
            return "lost"
        finally:
            sock.close()

    def _serve(self, sock: socket.socket) -> str:
        """One connection's lifetime; returns ``"shutdown"`` or ``"lost"``."""
        welcome = self._request(sock, "hello", {"wid": self.wid}, timeout=10.0)
        if welcome.kind == "shutdown":
            return "shutdown"
        if welcome.kind != "welcome":
            return "lost"
        self.heartbeat_s = float(welcome.meta.get("heartbeat_s", 2.0))
        self.ack_timeout_s = float(welcome.meta.get("ack_timeout_s", 5.0))
        self.chaos = pickle.loads(welcome.payload) if welcome.payload else None
        self._welcomed = True
        if self.pending is not None:
            # Result executed before the previous connection died: deliver
            # it first.  send_attempt starts past 0, so the resend is clean.
            if self._ship(sock, start_attempt=1) == "shutdown":
                return "shutdown"
        while True:
            reply = self._request(
                sock, "lease", {"resident": sorted(self.resident)}, timeout=10.0
            )
            if reply.kind == "shutdown":
                return "shutdown"
            if reply.kind == "idle":
                time.sleep(min(0.1, max(0.02, self.heartbeat_s / 4)))
                continue
            if reply.kind != "grant":
                return "lost"
            if self._execute(sock, reply) == "shutdown":
                return "shutdown"

    # ------------------------------------------------------------- requests
    def _request(
        self,
        sock: socket.socket,
        kind: str,
        meta: dict,
        payload: bytes = b"",
        timeout: float = 10.0,
        chaos_token: Tuple[object, ...] = (),
        send_attempt: int = 0,
    ) -> Frame:
        """Send one frame and wait for its reply (matched on ``meta["re"]``).

        Stale frames (duplicate acks from an earlier chaos-duplicated send)
        are discarded; an unsolicited ``shutdown`` is returned from
        anywhere in the stream.  Socket timeouts propagate for the caller's
        resend logic.
        """
        self.seq += 1
        seq = self.seq
        with self.send_lock:
            send_frame(
                sock, kind, seq=seq, meta=meta, payload=payload,
                chaos=self.chaos, token=chaos_token, send_attempt=send_attempt,
            )
        sock.settimeout(timeout)
        while True:
            frame = recv_frame(sock)
            if frame.kind == "shutdown":
                return frame
            if int(frame.meta.get("re", -1)) == seq:
                return frame

    def _ship(self, sock: socket.socket, start_attempt: int = 0) -> str:
        """Deliver :attr:`pending` until acknowledged; resends are clean."""
        assert self.pending is not None
        meta, payload, token = self.pending
        for send_attempt in range(start_attempt, start_attempt + 4):
            try:
                reply = self._request(
                    sock, "result", meta, payload,
                    timeout=self.ack_timeout_s,
                    chaos_token=token, send_attempt=send_attempt,
                )
            except socket.timeout:
                continue  # dropped frame or lost ack: resend
            self.pending = None
            return "shutdown" if reply.kind == "shutdown" else "ok"
        raise ConnectionError("result unacknowledged after resends")

    # ------------------------------------------------------------ execution
    def _execute(self, sock: socket.socket, grant: Frame) -> str:
        unit = pickle.loads(grant.payload)
        idx = int(grant.meta["unit"])
        attempt = int(grant.meta["attempt"])
        batch = int(grant.meta["batch"])
        label = str(grant.meta.get("label", "unit"))
        token = (label, "unit", idx)
        if self.chaos is not None:
            # Mid-unit death: the lease is already ours, the coordinator
            # sees only silence and a dropped connection.
            self.chaos.maybe_kill_net_worker(token, attempt)
        stalled = self.chaos is not None and self.chaos.stall_fires(token, attempt)
        if stalled:
            # Heartbeat stall: sleep past the lease timeout with no beats,
            # then execute anyway — the late result exercises the
            # duplicate/requeued-result idempotency path.
            time.sleep(self.chaos.hang_seconds)
        self._ensure_design(sock, unit)
        stop = threading.Event()
        beat_thread: Optional[threading.Thread] = None
        if not stalled:
            beat_thread = threading.Thread(
                target=self._heartbeat, args=(sock, idx, batch, stop), daemon=True
            )
            beat_thread.start()
        try:
            try:
                descriptor = _unit_runner(unit)((unit, attempt))
            except Exception as exc:
                self._report_failure(sock, idx, attempt, batch, exc)
                return "ok"
        finally:
            stop.set()
            if beat_thread is not None:
                beat_thread.join(timeout=2.0)
        self.pending = (
            {"unit": idx, "attempt": attempt, "batch": batch},
            pickle.dumps(descriptor, protocol=pickle.HIGHEST_PROTOCOL),
            ("frame", label, idx, attempt),
        )
        return self._ship(sock)

    def _report_failure(self, sock: socket.socket, idx: int, attempt: int,
                        batch: int, exc: Exception) -> None:
        meta = {"unit": idx, "attempt": attempt, "batch": batch,
                "error": f"{type(exc).__name__}: {exc}"}
        try:
            self._request(sock, "fail", meta, timeout=self.ack_timeout_s)
        except socket.timeout:
            # The lease will expire and requeue the unit regardless; the
            # report is an optimization, not a correctness requirement.
            return

    def _heartbeat(self, sock: socket.socket, idx: int, batch: int,
                   stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_s):
            try:
                with self.send_lock:
                    send_frame(sock, "beat", meta={"unit": idx, "batch": batch})
            except OSError:
                return  # connection died; the main loop will notice

    # --------------------------------------------------------------- designs
    def _ensure_design(self, sock: socket.socket, unit: Any) -> None:
        """Resolve the unit's design: resident → disk cache → coordinator."""
        ref = getattr(unit, "ref", None)
        if ref is None:
            return  # PrepareUnit: self-contained payload
        try:
            resolve_resident(ref)
            self.resident.add(ref.key)
            return
        except RuntimeError:
            pass  # not resident here (dist refs never carry spill segments)
        design = self._design_from_disk(ref.key)
        if design is None:
            reply = self._request(
                sock, "design", {"token": ref.key}, timeout=30.0
            )
            if reply.kind != "design" or not reply.meta.get("ok"):
                raise RuntimeError(
                    f"coordinator cannot supply design {ref.key!r}"
                )
            design = pickle.loads(reply.payload)
            if resident_token(design) != ref.key:
                raise RuntimeError(
                    f"design fetched for {ref.key!r} hashes to a different token"
                )
            self._design_to_disk(ref.key, reply.payload)
        register_resident(design)
        self.resident.add(ref.key)

    def _design_from_disk(self, key: str) -> Optional[Any]:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / "dist-designs" / f"{key}.pkl"
        if not path.is_file():
            return None
        try:
            design = pickle.loads(path.read_bytes())
        except _PICKLE_ERRORS:
            return None
        # Token verification makes the disk tier content-addressed: a
        # stale or corrupted file can never impersonate another design.
        return design if resident_token(design) == key else None

    def _design_to_disk(self, key: str, payload: bytes) -> None:
        if self.cache_dir is None:
            return
        ddir = self.cache_dir / "dist-designs"
        try:
            ddir.mkdir(parents=True, exist_ok=True)
            _atomic_write_bytes(ddir / f"{key}.pkl", payload)
        except OSError:
            return  # the disk tier is an optimization; fetch again next time


def run_worker(
    connect: str,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    policy: Optional[RetryPolicy] = None,
    wid: Optional[str] = None,
    max_reconnects: int = 30,
) -> int:
    """Serve one worker process against ``connect`` (``"host:port"``).

    Args:
        connect: Coordinator address, ``host:port``.
        cache_dir: Root for the local design disk cache (the pool cache
            dir on shared hosts); ``None`` disables the disk tier.
        policy: Retry policy supplying the reconnect backoff schedule.
        wid: Worker id advertised to the coordinator (defaults to
            ``w<pid>``).
        max_reconnects: Consecutive failed connections tolerated before
            giving up.

    Returns:
        Process exit code: 0 after a coordinator-initiated shutdown,
        3 when the reconnect budget is exhausted.
    """
    mark_worker(True)  # chaos kills this process hard, never the build
    host, _, port = connect.rpartition(":")
    worker = _Worker(
        addr=(host or "127.0.0.1", int(port)),
        cache_dir=cache_dir,
        policy=policy if policy is not None else RetryPolicy(),
        wid=wid if wid is not None else f"w{os.getpid()}",
        max_reconnects=max_reconnects,
    )
    return worker.run()
