"""Distributed work-unit runtime: coordinator/worker sharding over sockets.

The fourth rung of the execution ladder.  One :class:`Coordinator` serves
``ChunkUnit`` / ``PrepareUnit`` payloads to socket-connected workers
(:func:`run_worker`) over a length-prefixed, digest-framed wire protocol
(:mod:`~repro.runtime.dist.wire`), with lease-based assignment,
heartbeats, cache-aware scheduling, duplicate-result idempotency, and a
persistent result store (:mod:`~repro.runtime.dist.store`) for resume and
``repro doctor`` audits.  A cluster that stops making progress — or is
chaos-partitioned — degrades to the in-process fault-tolerant executor,
so the full ladder reads: distributed → local-parallel → respawn →
serial, with byte-identical output at every rung.
"""

from .coordinator import Coordinator, DistPolicy
from .store import DistHealth, DistStore, audit_dist_store, unit_identity
from .wire import Frame, FrameError, recv_frame, recv_frame_poll, send_frame
from .worker import run_worker

__all__ = [
    "Coordinator",
    "DistHealth",
    "DistPolicy",
    "DistStore",
    "Frame",
    "FrameError",
    "audit_dist_store",
    "recv_frame",
    "recv_frame_poll",
    "run_worker",
    "send_frame",
    "unit_identity",
]
