"""Coordinator-side result store, lease files, and the dist-tier audit.

The coordinator persists three kinds of small files under its store root
(``<cache_dir>/dist`` by default) so that interrupted distributed builds
are resumable and auditable:

* ``runs/<run_hash>.json`` — a marker written when a unit batch is
  installed, recording the coordinator pid and batch shape; removed
  (together with the batch's results) when the batch completes.
* ``results/<run_hash>/u<idx>.pkl`` — one pickled ``(identity, result
  descriptor)`` pair per completed unit, written as results arrive.  A
  coordinator that died mid-batch leaves marker + results behind; the next
  run with the same batch identity preloads them (checkpoint-manifest
  resume for distributed builds).
* ``leases/<lease_id>.json`` — one file per outstanding lease, recording
  the coordinator pid, worker id, and unit index; removed on completion or
  requeue.  A crashed coordinator strands its lease files.

``repro doctor`` audits this tier via :func:`audit_dist_store`: **stale
leases** (owning pid dead), **orphaned result-store entries** (a results
directory with no run marker — the marker deletion committed but the
results sweep did not), and **stale run markers** (dead pid and no results
to resume from).  ``--fix`` reaps all three.  Marker + results pairs from
a dead coordinator are deliberately *not* flagged: they are the resume
state the next run consumes.

Everything is content-addressed: the run hash digests the batch's unit
identities (:func:`unit_identity`), which exclude execution-only fields
(``result_base``, ``chaos``) — so a clean rerun, a chaotic rerun, and a
resumed run all map to the same store entries, and duplicated results are
idempotent overwrites of identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..cache import _atomic_write_bytes

__all__ = ["DistHealth", "DistStore", "audit_dist_store", "unit_identity"]


def unit_identity(unit: Any) -> str:
    """A deterministic identity string for one work unit.

    Excludes execution-only fields (``result_base``, ``chaos``) so the same
    scientific unit hashes identically across serial, pooled, chaotic, and
    distributed runs — the property duplicate-result idempotency and store
    resume both rely on.
    """
    if hasattr(unit, "_asdict"):  # NamedTuple work units
        fields = unit._asdict()
        fields.pop("result_base", None)
        fields.pop("chaos", None)
        return repr(tuple((k, repr(v)) for k, v in sorted(fields.items())))
    return repr(unit)


def run_hash(label: str, identities: Sequence[str]) -> str:
    """Content hash identifying one unit batch (the store's run key)."""
    h = hashlib.sha256()
    h.update(label.encode("utf-8"))
    for ident in identities:
        h.update(b"\x1f")
        h.update(ident.encode("utf-8"))
    return h.hexdigest()[:16]


class DistStore:
    """Filesystem layout + atomic writes for one coordinator store root."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.leases = self.root / "leases"
        self.runs = self.root / "runs"
        self.results = self.root / "results"

    # ------------------------------------------------------------- markers
    def write_marker(self, rhash: str, doc: Dict[str, Any]) -> None:
        self.runs.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(
            self.runs / f"{rhash}.json",
            (json.dumps({"pid": os.getpid(), **doc}, sort_keys=True) + "\n").encode(),
        )

    def drop_marker(self, rhash: str) -> None:
        (self.runs / f"{rhash}.json").unlink(missing_ok=True)

    # -------------------------------------------------------------- leases
    def write_lease(self, lease_id: str, doc: Dict[str, Any]) -> None:
        self.leases.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(
            self.leases / f"{lease_id}.json",
            (json.dumps({"pid": os.getpid(), **doc}, sort_keys=True) + "\n").encode(),
        )

    def drop_lease(self, lease_id: str) -> None:
        (self.leases / f"{lease_id}.json").unlink(missing_ok=True)

    # ------------------------------------------------------------- results
    def put_result(self, rhash: str, idx: int, identity: str, descriptor: Any) -> None:
        """Persist one completed unit (idempotent: identical bytes rewrite)."""
        rdir = self.results / rhash
        rdir.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(
            rdir / f"u{idx}.pkl",
            pickle.dumps((identity, descriptor), protocol=pickle.HIGHEST_PROTOCOL),
        )

    def load_results(self, rhash: str, identities: Sequence[str]) -> Dict[int, Any]:
        """Completed-unit descriptors left by an interrupted run of this batch.

        Entries whose recorded identity does not match the current batch
        (or that fail to unpickle) are ignored — resume must never smuggle
        bytes from a different configuration into a build.
        """
        out: Dict[int, Any] = {}
        rdir = self.results / rhash
        if not rdir.is_dir():
            return out
        for idx in range(len(identities)):
            path = rdir / f"u{idx}.pkl"
            if not path.is_file():
                continue
            try:
                identity, descriptor = pickle.loads(path.read_bytes())
            except (OSError, pickle.UnpicklingError, ValueError, EOFError,
                    AttributeError, ImportError):
                continue  # torn/stale entry: the unit just re-runs
            if identity == identities[idx]:
                out[idx] = descriptor
        return out

    def finish_run(self, rhash: str) -> None:
        """Success cleanup: results first, marker last.

        The inverted order would commit "no marker" while results linger —
        exactly the orphaned-entry state the doctor audit flags.
        """
        shutil.rmtree(self.results / rhash, ignore_errors=True)
        self.drop_marker(rhash)


# ------------------------------------------------------------------- audit
class DistHealth(NamedTuple):
    """One dist-tier audit result (``repro doctor``)."""

    stale_leases: Tuple[str, ...]
    orphaned_results: Tuple[str, ...]
    stale_markers: Tuple[str, ...]

    @property
    def problems(self) -> int:
        return (len(self.stale_leases) + len(self.orphaned_results)
                + len(self.stale_markers))

    def report(self) -> str:
        lines = [
            f"  stale lease files (dead coordinator): {len(self.stale_leases)}",
            f"  orphaned result-store entries: {len(self.orphaned_results)}",
            f"  stale run markers: {len(self.stale_markers)}",
        ]
        for name in (*self.stale_leases, *self.orphaned_results,
                     *self.stale_markers):
            lines.append(f"    {name}")
        return "\n".join(lines)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, different user
        return True
    return True


def _doc_pid(path: Path) -> Optional[int]:
    """The recorded owner pid, or None for unreadable/unparseable docs."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
        return int(doc["pid"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def audit_dist_store(root: Union[str, os.PathLike],
                     fix: bool = False) -> DistHealth:
    """Audit (and with ``fix``, reap) one coordinator store root.

    A missing root is healthy — no distributed build ever ran there.
    Marker + results pairs from a dead coordinator are resume state, not
    problems; only leases of dead pids, results directories with no
    marker, and markers with neither a live pid nor results are flagged.
    """
    store = DistStore(root)
    stale_leases: List[str] = []
    orphaned_results: List[str] = []
    stale_markers: List[str] = []

    if store.leases.is_dir():
        for path in sorted(store.leases.glob("*.json")):
            pid = _doc_pid(path)
            if pid is not None and _pid_alive(pid):
                continue
            stale_leases.append(f"leases/{path.name}")
            if fix:
                path.unlink(missing_ok=True)

    markers = {
        p.stem: p for p in (
            sorted(store.runs.glob("*.json")) if store.runs.is_dir() else []
        )
    }
    if store.results.is_dir():
        for rdir in sorted(p for p in store.results.iterdir() if p.is_dir()):
            if rdir.name in markers:
                continue
            orphaned_results.append(f"results/{rdir.name}/")
            if fix:
                shutil.rmtree(rdir, ignore_errors=True)
    for rhash, path in sorted(markers.items()):
        pid = _doc_pid(path)
        if pid is not None and _pid_alive(pid):
            continue
        if (store.results / rhash).is_dir():
            continue  # dead coordinator, but resumable results exist
        stale_markers.append(f"runs/{path.name}")
        if fix:
            path.unlink(missing_ok=True)

    return DistHealth(
        stale_leases=tuple(stale_leases),
        orphaned_results=tuple(orphaned_results),
        stale_markers=tuple(stale_markers),
    )
