"""Fault-tolerant work-unit execution for the dataset runtime.

The runtime's work units (design preparations, sample chunks) are pure
functions of their identity and derived seed, so any unit can be re-executed
after a failure and produce byte-identical results.  This module supplies
the execution layer that exploits that property:

* **per-unit deadlines** — a unit that neither completes nor fails within
  ``RetryPolicy.deadline`` seconds is declared lost (hung worker, or a
  worker that died and took the in-flight task with it);
* **bounded retries** — lost and crashed units are re-submitted up to
  ``max_retries`` times; exhaustion raises :class:`UnitFailedError` naming
  the unit, never a silent partial result;
* **pool health + respawn** — any deadline expiry marks the pool unhealthy
  (a hung worker occupies its slot forever); the pool is terminated and
  respawned, keeping results already collected;
* **degradation ladder** — after ``max_pool_respawns`` unhealthy pools the
  remaining units run serially in-process (parallel → respawn → serial), so
  a pathological environment degrades to slow, never to broken;
* **signal-safe teardown** — ``KeyboardInterrupt``/``SIGTERM`` terminate
  the pool promptly (``terminate()`` then ``join()``), record the aborted
  units in the stats report, and re-raise, leaving any cache consistent.

Everything here is mechanism, not policy: callers pass a module-level
worker function ``fn((payload, attempt))`` plus the payload list, and get
results back in input order regardless of retries or degradation.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs import SpanTracer
from .instrument import RuntimeStats

if TYPE_CHECKING:  # pragma: no cover
    from .pool import PersistentWorkerPool

__all__ = [
    "RetryPolicy",
    "UnitFailedError",
    "handle_termination",
    "run_units",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadlines and retry budgets for fault-tolerant unit execution.

    Attributes:
        deadline: Seconds a unit may run before being declared lost;
            ``None`` disables deadlines (a hung worker then hangs the build,
            as the pre-fault-tolerance runtime did).
        max_retries: Re-executions allowed per unit after its first attempt.
        max_pool_respawns: Unhealthy-pool teardowns tolerated before the
            runtime degrades to serial in-process execution.
    """

    deadline: Optional[float] = None
    max_retries: int = 2
    max_pool_respawns: int = 2

    @staticmethod
    def from_env() -> "RetryPolicy":
        """Policy with ``REPRO_UNIT_DEADLINE`` (seconds) applied if set."""
        import os

        raw = os.environ.get("REPRO_UNIT_DEADLINE", "").strip()
        return RetryPolicy(deadline=float(raw) if raw else None)


class UnitFailedError(RuntimeError):
    """A work unit failed every allowed attempt.

    Attributes:
        unit: The unit's payload (its identity: pair/chunk indices, spec…).
        attempts: Total attempts made.
        cause: The last failure — an exception instance, or ``None`` when
            every attempt was lost to a timeout/worker death.
    """

    def __init__(self, label: str, unit: Any, attempts: int,
                 cause: Optional[BaseException]) -> None:
        self.unit = unit
        self.attempts = attempts
        self.cause = cause
        why = f"last error: {cause!r}" if cause is not None else "lost to timeout/worker death"
        super().__init__(
            f"{label} unit {unit!r} failed after {attempts} attempt(s); {why}"
        )


def _pool_initializer(initializer: Optional[Callable[..., None]],
                      initargs: Tuple[Any, ...]) -> None:
    """Worker bootstrap: mark the process as a pool worker, then delegate.

    The mark gates chaos crash injection (hard ``_exit`` is only ever issued
    inside a disposable worker); the serial fallback calls ``initializer``
    directly, unmarked, so injected crashes surface as retryable exceptions
    there instead of killing the build process.
    """
    from .chaos import mark_worker

    mark_worker(True)
    if initializer is not None:
        initializer(*initargs)


@contextmanager
def handle_termination() -> Iterator[None]:
    """Convert SIGTERM into ``KeyboardInterrupt`` for the enclosed block.

    Lets one teardown path (terminate pool, flush stats, print the resume
    hint) serve both Ctrl-C and a supervisor's SIGTERM.  Installing signal
    handlers is only legal in the main thread; elsewhere this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum: int, frame: object) -> None:
        raise KeyboardInterrupt(f"terminated by signal {signum}")

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


@contextmanager
def _maybe_span(tracer: Optional[SpanTracer], name: str) -> Iterator[None]:
    """A tracer span, or a no-op when no tracer was supplied."""
    if tracer is None:
        yield
        return
    with tracer.span(name):
        yield


def _run_serial(
    units: Sequence[Any],
    fn: Callable[[Tuple[Any, int]], Any],
    indices: Sequence[int],
    attempts: List[int],
    results: List[Any],
    policy: RetryPolicy,
    stats: RuntimeStats,
    label: str,
) -> None:
    """Execute ``indices`` in-process with the same retry accounting."""
    for i in indices:
        while True:
            try:
                results[i] = fn((units[i], attempts[i]))
                break
            except Exception as exc:
                stats.count(f"faulttol.{label}.unit_errors")
                attempts[i] += 1
                if attempts[i] > policy.max_retries:
                    raise UnitFailedError(label, units[i], attempts[i], exc) from exc
                stats.count(f"faulttol.{label}.retries")


def run_units(
    units: Sequence[Any],
    fn: Callable[[Tuple[Any, int]], Any],
    workers: int,
    policy: RetryPolicy,
    stats: RuntimeStats,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    label: str = "unit",
    tracer: Optional[SpanTracer] = None,
    pool: Optional["PersistentWorkerPool"] = None,
) -> List[Any]:
    """Run ``fn((unit, attempt))`` for every unit; results in input order.

    Args:
        units: Work-unit payloads (small and picklable).
        fn: Module-level worker function taking one ``(payload, attempt)``
            tuple.  Must be deterministic in the payload — a retried unit is
            expected to reproduce the first attempt's bytes.
        workers: Pool width; ``<= 1`` runs serially in-process.
        policy: Deadline / retry / degradation budgets.
        stats: Sink for ``faulttol.*`` counters (retries, timeouts,
            respawns, degradation, aborts).
        initializer / initargs: Pool worker initialization (worker-side
            state, chaos plan).  The initializer also runs before serial
            execution so both paths see identical worker state.  Mutually
            exclusive with ``pool`` — persistent workers outlive any one
            call, so per-call state must ride in the unit payloads instead.
        label: Counter namespace and error-message prefix.
        tracer: Optional span tracer recording ``pool`` (one span per pool
            incarnation) and ``serial`` (the in-process tail) under the
            caller's active span.
        pool: Reuse this :class:`repro.runtime.pool.PersistentWorkerPool`
            instead of spawning an ephemeral pool.  A healthy pool is left
            alive for the next call; an unhealthy (or aborted) one is
            invalidated, which is this layer's respawn.

    Raises:
        UnitFailedError: A unit exhausted ``policy.max_retries``.
        KeyboardInterrupt: Propagated after prompt pool teardown; the
            number of units still outstanding is recorded under
            ``faulttol.<label>.aborted_units``.
    """
    if pool is not None and initializer is not None:
        raise ValueError(
            "run_units: initializer is incompatible with a persistent pool; "
            "ship per-call state in the unit payloads"
        )
    results: List[Any] = [None] * len(units)
    attempts = [0] * len(units)
    remaining = list(range(len(units)))
    if not remaining:
        return results

    serial = workers <= 1 or len(units) == 1
    respawns = 0
    while remaining and not serial:
        span = _maybe_span(tracer, "pool")
        span.__enter__()
        if pool is not None:
            mp_pool = pool.acquire()
        else:
            mp_pool = multiprocessing.Pool(
                min(workers, len(remaining)),
                initializer=_pool_initializer,
                initargs=(initializer, initargs),
            )
        if respawns:
            stats.count(f"faulttol.{label}.pool_respawns")
        healthy = False
        try:
            pending: Dict[int, multiprocessing.pool.AsyncResult] = {
                i: mp_pool.apply_async(fn, ((units[i], attempts[i]),)) for i in remaining
            }
            unhealthy = False
            still_running: List[int] = []
            for i in list(remaining):
                try:
                    # After the first expiry the pool is doomed anyway; only
                    # harvest what is already finished (timeout 0).
                    results[i] = pending[i].get(0 if unhealthy else policy.deadline)
                    remaining.remove(i)
                except multiprocessing.TimeoutError:
                    unhealthy = True
                    still_running.append(i)
                except Exception as exc:
                    # The unit itself raised (or its worker refused it).
                    stats.count(f"faulttol.{label}.unit_errors")
                    attempts[i] += 1
                    if attempts[i] > policy.max_retries:
                        raise UnitFailedError(label, units[i], attempts[i], exc) from exc
                    stats.count(f"faulttol.{label}.retries")
            if not unhealthy:
                healthy = True
                if pool is None:
                    mp_pool.close()
                    mp_pool.join()
                # Units that raised (rare: deterministic bugs, injected
                # serial-path chaos) re-run in the in-process tail below,
                # where a repeat failure is attributed unambiguously.
                break
            # Deadline expiry: hung worker or crash-lost task.  Bill the
            # first expired unit as the likely culprit; units merely queued
            # behind it are resubmitted free of charge.
            stats.count(f"faulttol.{label}.timeouts")
            culprit = still_running[0]
            attempts[culprit] += 1
            if attempts[culprit] > policy.max_retries:
                raise UnitFailedError(label, units[culprit], attempts[culprit], None)
            stats.count(f"faulttol.{label}.retries")
            respawns += 1
            if respawns > policy.max_pool_respawns:
                stats.emit(
                    f"[faulttol] {label}: pool unhealthy {respawns}x; degrading "
                    f"to serial execution of {len(remaining)} unit(s)"
                )
                stats.count(f"faulttol.{label}.degraded_serial")
                serial = True
        except BaseException:
            # KeyboardInterrupt (incl. converted SIGTERM), UnitFailedError,
            # MemoryError…: tear the pool down promptly — terminate() first,
            # close() would wait forever on a hung worker.
            stats.count(f"faulttol.{label}.aborted_units", len(remaining))
            raise
        finally:
            if pool is not None:
                # A healthy persistent pool survives for the next call;
                # anything else (hung workers, aborts) is torn down so the
                # next acquire() forks fresh workers.
                if not healthy:
                    pool.invalidate()
            else:
                mp_pool.terminate()
                mp_pool.join()
            span.__exit__(None, None, None)

    if remaining:
        if initializer is not None:
            initializer(*initargs)
        with _maybe_span(tracer, "serial"):
            _run_serial(units, fn, list(remaining), attempts, results, policy, stats, label)
    return results
