"""Content-addressed on-disk artifact cache.

Artifacts (prepared-design bundles, injected sample chunks) are stored under
the SHA-256 of a *canonical key*: a JSON-serializable dict describing
everything that determines the artifact's content — generator spec,
design configuration, stage parameters, derived seed, and the generation
code version.  Equal inputs hit the same file; any input change (including a
:data:`CODE_VERSION` bump) misses and regenerates.

Layout: ``<cache_dir>/<kind>/<hash[:2]>/<hash>.pkl`` plus a ``.key.json``
sidecar holding the canonical key and the payload's own SHA-256.  Writes
are crash-safe: sidecar first, then payload, each via tempfile → flush →
fsync → atomic rename, so a SIGKILL at any instant leaves either a
complete entry, a payload-less sidecar (read as a miss, collected by
:meth:`doctor`), or an orphaned ``*.tmp`` (collected by
:meth:`gc_orphans`) — never a torn payload served as a hit.  Reads verify
the whole entry: a missing/desynced/unparseable sidecar, a payload whose
bytes no longer hash to the recorded digest (truncation, bit rot — a
flipped bit deep inside a pickled array would otherwise unpickle
*silently wrong*), and an unpicklable payload all evict payload *and*
sidecar together and report a miss, so the entry regenerates instead of
poisoning a build.  Concurrent workers may race to fill the same entry;
the loser simply overwrites the identical bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs import SpanTracer, get_tracer
from .instrument import RuntimeStats

__all__ = [
    "ArtifactCache",
    "CacheHealth",
    "CODE_VERSION",
    "cache_key_hash",
    "canonical_key",
]

#: Version stamp of the dataset-generation code paths baked into every cache
#: key.  Bump whenever :func:`repro.data.prepare_design`, the injection /
#: back-trace / feature code, or the chunking grid changes behaviour, so
#: stale artifacts can never be returned for new code.
CODE_VERSION = 1


def canonical_key(key: Dict[str, Any]) -> str:
    """The canonical JSON form of a cache key (sorted keys, no whitespace).

    Dataclasses (e.g. ``GeneratorSpec``, ``DesignConfig``) are flattened to
    ``{"__type__": name, **fields}`` dicts so keys stay readable and stable.
    """

    def default(obj: Any) -> Any:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            d = {"__type__": type(obj).__name__}
            d.update(dataclasses.asdict(obj))
            return d
        raise TypeError(f"cache keys must be JSON-serializable, got {type(obj).__name__}")

    return json.dumps(key, sort_keys=True, separators=(",", ":"), default=default)


def cache_key_hash(key: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical key."""
    return hashlib.sha256(canonical_key(key).encode()).hexdigest()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tempfile + fsync + atomic rename."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class CacheHealth:
    """One :meth:`ArtifactCache.doctor` audit result.

    Attributes:
        entries: Intact payload count per kind.
        orphan_tmps: Leftover ``*.tmp`` files from interrupted writes.
        dangling_sidecars: ``.key.json`` files whose payload is missing.
        missing_sidecars: Payloads whose ``.key.json`` is missing.
        desynced_sidecars: Payloads whose sidecar hashes to a different
            digest than the filename (the key record lies about the bytes).
        corrupt_payloads: Payloads that fail to unpickle (deep audit only).
    """

    entries: Dict[str, int] = field(default_factory=dict)
    orphan_tmps: List[Path] = field(default_factory=list)
    dangling_sidecars: List[Path] = field(default_factory=list)
    missing_sidecars: List[Path] = field(default_factory=list)
    desynced_sidecars: List[Path] = field(default_factory=list)
    corrupt_payloads: List[Path] = field(default_factory=list)

    @property
    def problems(self) -> int:
        return (len(self.orphan_tmps) + len(self.dangling_sidecars)
                + len(self.missing_sidecars) + len(self.desynced_sidecars)
                + len(self.corrupt_payloads))

    def report(self) -> str:
        """Human-readable audit summary."""
        lines = [f"cache health: {sum(self.entries.values())} artifact(s), "
                 f"{self.problems} problem(s)"]
        for kind in sorted(self.entries):
            lines.append(f"  {kind:14s} {self.entries[kind]}")
        for label, paths in (
            ("orphan tmp file", self.orphan_tmps),
            ("dangling sidecar", self.dangling_sidecars),
            ("payload without sidecar", self.missing_sidecars),
            ("desynced sidecar", self.desynced_sidecars),
            ("corrupt payload", self.corrupt_payloads),
        ):
            for p in paths:
                lines.append(f"  {label}: {p}")
        return "\n".join(lines)


class ArtifactCache:
    """Pickle-backed content-addressed store with hit/miss accounting.

    Args:
        cache_dir: Root directory; created on first write.
        stats: Optional shared :class:`RuntimeStats` receiving
            ``cache.<kind>.hit`` / ``cache.<kind>.miss`` counters and load /
            store stage timings.
        chaos: Optional :class:`repro.runtime.chaos.ChaosPlan`; when set,
            freshly written entries may be deliberately damaged so the
            recovery paths stay exercised.
        tracer: Optional span tracer; ``cache.load`` / ``cache.store``
            spans nest under whatever span is active at call time.
    """

    def __init__(self, cache_dir: Union[str, Path],
                 stats: Optional[RuntimeStats] = None,
                 chaos: Optional[Any] = None,
                 tracer: Optional[SpanTracer] = None) -> None:
        self.root = Path(cache_dir)
        self.stats = stats if stats is not None else RuntimeStats()
        self.chaos = chaos
        self.tracer = tracer if tracer is not None else get_tracer()

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / digest[:2] / f"{digest}.pkl"

    @staticmethod
    def _sidecar(path: Path) -> Path:
        return path.with_suffix(".key.json")

    @staticmethod
    def _sidecar_doc(canonical: str, payload: bytes) -> bytes:
        """Sidecar contents: the canonical key plus payload integrity data."""
        doc = {
            "key": json.loads(canonical),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
        }
        return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode()

    @staticmethod
    def _read_sidecar(sidecar: Path, digest: str) -> Optional[Dict[str, Any]]:
        """The parsed sidecar, or ``None`` when missing/torn/desynced.

        Desynced means the recorded key does not canonicalize back to the
        payload's digest — the key record lies about which entry this is.
        """
        try:
            doc = json.loads(sidecar.read_text(encoding="utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(doc, dict) or not isinstance(doc.get("payload_sha256"), str):
            return None
        canonical = json.dumps(doc.get("key"), sort_keys=True, separators=(",", ":"))
        if hashlib.sha256(canonical.encode()).hexdigest() != digest:
            return None
        return doc

    def _evict(self, path: Path) -> None:
        """Remove a payload and its sidecar (either may already be gone)."""
        self._sidecar(path).unlink(missing_ok=True)
        path.unlink(missing_ok=True)

    # ------------------------------------------------------------------- api
    def get(self, kind: str, key: Dict[str, Any]) -> Tuple[Optional[Any], bool]:
        """Look up one artifact.

        Returns:
            ``(artifact, True)`` on a hit, ``(None, False)`` on a miss.  A
            corrupt or truncated payload, a missing sidecar, and a sidecar
            desynced from the payload's digest are all treated as a miss;
            the offending payload *and* sidecar are evicted together so the
            regenerated artifact replaces a consistent void, not half an
            entry.
        """
        digest = cache_key_hash(key)
        path = self._path(kind, digest)
        if not path.exists():
            self.stats.count(f"cache.{kind}.miss")
            return None, False
        sidecar_doc = self._read_sidecar(self._sidecar(path), digest)
        if sidecar_doc is None:
            self.stats.count(f"cache.{kind}.desynced")
            self.stats.count(f"cache.{kind}.miss")
            self._evict(path)
            return None, False
        try:
            with self.stats.timed(f"cache.{kind}.load"), self.tracer.span("cache.load"):
                with open(path, "rb") as fh:
                    data = fh.read()
                if hashlib.sha256(data).hexdigest() != sidecar_doc["payload_sha256"]:
                    raise ValueError("payload bytes do not match recorded digest")
                artifact = pickle.loads(data)
        except Exception:
            self.stats.count(f"cache.{kind}.corrupt")
            self.stats.count(f"cache.{kind}.miss")
            self._evict(path)
            return None, False
        self.stats.count(f"cache.{kind}.hit")
        return artifact, True

    def put(self, kind: str, key: Dict[str, Any], artifact: Any) -> Path:
        """Store one artifact crash-safely; returns its payload path.

        Write order is sidecar first, payload second (each atomic with
        fsync): a crash in between leaves a sidecar without a payload,
        which reads as a plain miss — the reverse order could leave a
        payload whose key record is missing, indistinguishable from
        sidecar loss.  The sidecar doubles as debuggability — ``repro
        cache`` / ``repro doctor`` and humans can see what each entry is
        without unpickling it.
        """
        digest = cache_key_hash(key)
        path = self._path(kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self.stats.timed(f"cache.{kind}.store"), self.tracer.span("cache.store"):
            payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            sidecar = self._sidecar(path)
            _atomic_write_bytes(sidecar, self._sidecar_doc(canonical_key(key), payload))
            _atomic_write_bytes(path, payload)
        if self.chaos is not None:
            self.chaos.maybe_damage_entry(path, sidecar)
        return path

    # ------------------------------------------------------------ management
    def entries(self) -> Dict[str, int]:
        """Artifact counts per kind."""
        out: Dict[str, int] = {}
        if not self.root.exists():
            return out
        for kind_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            if kind_dir.name == "manifests":
                continue  # progress manifests, not content-addressed artifacts
            out[kind_dir.name] = sum(1 for _ in kind_dir.glob("*/*.pkl"))
        return out

    def size_bytes(self) -> int:
        """Total bytes on disk under the cache root."""
        if not self.root.exists():
            return 0
        return sum(p.stat().st_size for p in self.root.rglob("*") if p.is_file())

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in list(self.root.rglob("*")):
            if path.is_file():
                path.unlink()
                if path.suffix == ".pkl":
                    removed += 1
        for path in sorted((p for p in self.root.rglob("*") if p.is_dir()), reverse=True):
            try:
                path.rmdir()
            except OSError:
                pass
        return removed

    def gc_orphans(self, max_age_s: float = 3600.0) -> int:
        """Remove ``*.tmp`` leftovers older than ``max_age_s`` seconds.

        The age guard keeps a concurrent writer's in-flight tempfile safe;
        pass ``0`` to collect everything (single-writer situations, tests).
        """
        removed = 0
        if not self.root.exists():
            return removed
        cutoff = time.time() - max_age_s  # repro-lint: disable=RPL002
        for tmp in self.root.rglob("*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # vanished mid-scan (concurrent writer finished)
        return removed

    def doctor(self, deep: bool = False, fix: bool = False,
               tmp_max_age_s: float = 3600.0) -> CacheHealth:
        """Audit (and optionally repair) cache health.

        Args:
            deep: Also unpickle every payload to catch silent corruption
                (bit rot) — slow on big caches, default off.
            fix: Evict every inconsistent entry and collect orphan tmps.
            tmp_max_age_s: Age threshold passed to :meth:`gc_orphans` when
                fixing.
        """
        health = CacheHealth(entries=self.entries())
        if not self.root.exists():
            return health
        health.orphan_tmps = sorted(self.root.rglob("*.tmp"))
        for kind_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            if kind_dir.name == "manifests":
                continue
            for sidecar in kind_dir.glob("*/*.key.json"):
                if not sidecar.with_suffix("").with_suffix(".pkl").exists():
                    health.dangling_sidecars.append(sidecar)
            for payload in kind_dir.glob("*/*.pkl"):
                digest = payload.stem
                sidecar = self._sidecar(payload)
                if not sidecar.exists():
                    health.missing_sidecars.append(payload)
                    continue
                doc = self._read_sidecar(sidecar, digest)
                if doc is None:
                    health.desynced_sidecars.append(payload)
                    continue
                if deep:
                    try:
                        data = payload.read_bytes()
                        if hashlib.sha256(data).hexdigest() != doc["payload_sha256"]:
                            raise ValueError("payload digest mismatch")
                        pickle.loads(data)
                    except Exception:
                        health.corrupt_payloads.append(payload)
        if fix:
            for payload in (health.missing_sidecars + health.desynced_sidecars
                            + health.corrupt_payloads):
                self._evict(payload)
            for sidecar in health.dangling_sidecars:
                sidecar.unlink(missing_ok=True)
            self.gc_orphans(tmp_max_age_s)
        return health
