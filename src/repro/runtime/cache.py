"""Content-addressed on-disk artifact cache.

Artifacts (prepared-design bundles, injected sample chunks) are stored under
the SHA-256 of a *canonical key*: a JSON-serializable dict describing
everything that determines the artifact's content — generator spec,
design configuration, stage parameters, derived seed, and the generation
code version.  Equal inputs hit the same file; any input change (including a
:data:`CODE_VERSION` bump) misses and regenerates.

Layout: ``<cache_dir>/<kind>/<hash[:2]>/<hash>.pkl`` with atomic
write-then-rename, so concurrent workers may race to fill the same entry
and the loser simply overwrites the identical bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .instrument import RuntimeStats

__all__ = ["ArtifactCache", "CODE_VERSION", "cache_key_hash", "canonical_key"]

#: Version stamp of the dataset-generation code paths baked into every cache
#: key.  Bump whenever :func:`repro.data.prepare_design`, the injection /
#: back-trace / feature code, or the chunking grid changes behaviour, so
#: stale artifacts can never be returned for new code.
CODE_VERSION = 1


def canonical_key(key: Dict[str, Any]) -> str:
    """The canonical JSON form of a cache key (sorted keys, no whitespace).

    Dataclasses (e.g. ``GeneratorSpec``, ``DesignConfig``) are flattened to
    ``{"__type__": name, **fields}`` dicts so keys stay readable and stable.
    """

    def default(obj: Any) -> Any:
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            d = {"__type__": type(obj).__name__}
            d.update(dataclasses.asdict(obj))
            return d
        raise TypeError(f"cache keys must be JSON-serializable, got {type(obj).__name__}")

    return json.dumps(key, sort_keys=True, separators=(",", ":"), default=default)


def cache_key_hash(key: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical key."""
    return hashlib.sha256(canonical_key(key).encode()).hexdigest()


class ArtifactCache:
    """Pickle-backed content-addressed store with hit/miss accounting.

    Args:
        cache_dir: Root directory; created on first write.
        stats: Optional shared :class:`RuntimeStats` receiving
            ``cache.<kind>.hit`` / ``cache.<kind>.miss`` counters and load /
            store stage timings.
    """

    def __init__(self, cache_dir: Union[str, Path], stats: Optional[RuntimeStats] = None) -> None:
        self.root = Path(cache_dir)
        self.stats = stats if stats is not None else RuntimeStats()

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------- api
    def get(self, kind: str, key: Dict[str, Any]) -> Tuple[Optional[Any], bool]:
        """Look up one artifact.

        Returns:
            ``(artifact, True)`` on a hit, ``(None, False)`` on a miss.  A
            corrupt or unreadable entry is treated as a miss (and removed so
            the regenerated artifact replaces it).
        """
        path = self._path(kind, cache_key_hash(key))
        if not path.exists():
            self.stats.count(f"cache.{kind}.miss")
            return None, False
        try:
            with self.stats.timed(f"cache.{kind}.load"):
                with open(path, "rb") as fh:
                    artifact = pickle.load(fh)
        except Exception:
            self.stats.count(f"cache.{kind}.miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None, False
        self.stats.count(f"cache.{kind}.hit")
        return artifact, True

    def put(self, kind: str, key: Dict[str, Any], artifact: Any) -> Path:
        """Store one artifact atomically; returns its path.

        The key's canonical JSON is stored alongside (``.key.json``) for
        debuggability — ``repro cache --info`` and humans can see what each
        entry is without unpickling it.
        """
        digest = cache_key_hash(key)
        path = self._path(kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self.stats.timed(f"cache.{kind}.store"):
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        path.with_suffix(".key.json").write_text(canonical_key(key) + "\n")
        return path

    # ------------------------------------------------------------ management
    def entries(self) -> Dict[str, int]:
        """Artifact counts per kind."""
        out: Dict[str, int] = {}
        if not self.root.exists():
            return out
        for kind_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            out[kind_dir.name] = sum(1 for _ in kind_dir.glob("*/*.pkl"))
        return out

    def size_bytes(self) -> int:
        """Total bytes on disk under the cache root."""
        if not self.root.exists():
            return 0
        return sum(p.stat().st_size for p in self.root.rglob("*") if p.is_file())

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in list(self.root.rglob("*")):
            if path.is_file():
                path.unlink()
                if path.suffix == ".pkl":
                    removed += 1
        for path in sorted((p for p in self.root.rglob("*") if p.is_dir()), reverse=True):
            try:
                path.rmdir()
            except OSError:
                pass
        return removed
