"""Deterministic per-work-unit seed derivation.

Every (benchmark, configuration, sample-chunk) work unit of the dataset
runtime draws its RNG seed from a SHA-256 hash of its identity, never from
shared sampler state.  Two consequences:

* the dataset is a pure function of the master seed and the unit identity —
  independent of worker count, scheduling order, and ``PYTHONHASHSEED``;
* any unit can be regenerated (or cache-validated) in isolation.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

__all__ = ["derive_seed", "chunk_plan", "DEFAULT_CHUNK_SIZE"]

#: Samples per injection work unit.  Part of the dataset definition: the
#: chunk grid (not the worker count) decides the RNG stream boundaries, so
#: changing it changes the generated datasets.
DEFAULT_CHUNK_SIZE = 16


def derive_seed(master_seed: int, *parts: object) -> int:
    """A 63-bit seed derived from ``master_seed`` and a unit identity.

    Args:
        master_seed: The user-facing dataset seed.
        parts: Hashable identity components (strings, ints, floats); they are
            folded into the digest via their ``repr``.

    Returns:
        A non-negative int < 2**63, stable across processes and platforms.
    """
    h = hashlib.sha256()
    h.update(repr(int(master_seed)).encode())
    for p in parts:
        h.update(b"\x1f")
        h.update(repr(p).encode())
    return int.from_bytes(h.digest()[:8], "little") >> 1


def chunk_plan(n_samples: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> List[Tuple[int, int]]:
    """Split ``n_samples`` into the canonical (index, size) chunk grid.

    The grid depends only on ``n_samples`` and ``chunk_size`` — serial and
    parallel builds iterate the same chunks in the same order, which is what
    makes them byte-identical.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    plan: List[Tuple[int, int]] = []
    start = 0
    index = 0
    while start < n_samples:
        size = min(chunk_size, n_samples - start)
        plan.append((index, size))
        start += size
        index += 1
    return plan
