"""Chaos-injection harness for the dataset-generation runtime.

The fault-tolerance layer (:mod:`repro.runtime.faulttol`, the hardened
:class:`repro.runtime.cache.ArtifactCache`) promises that worker crashes,
hung units, and corrupted cache entries never change the bytes of a built
dataset — they only cost retries.  This module makes that promise testable
by injecting exactly those failures on demand:

* **crash** — the worker process handling a selected unit dies hard
  (``os._exit``), as if OOM-killed;
* **hang** — a selected unit sleeps past its deadline, as if deadlocked;
* **shm_crash** — the worker dies halfway through writing its result into
  a shared-memory segment, leaving a torn segment for the parent's sweep
  (:meth:`repro.runtime.pool.PersistentWorkerPool.sweep_results`) to reap;
* **corrupt** — a just-written cache payload is truncated or bit-flipped,
  as if a crash interrupted an (unsafe) write;
* **drop_sidecar** — a just-written ``.key.json`` sidecar is deleted,
  desyncing the payload from its key record.

The distributed runtime (:mod:`repro.runtime.dist`) adds network fault
kinds on the same deterministic substrate:

* **net_kill** — a remote worker dies hard (``os._exit(72)``) right after
  accepting a lease, mid-unit from the coordinator's point of view;
* **net_drop / net_dup / net_trunc** — a data-plane frame (a unit result)
  is silently dropped, sent twice, or truncated mid-stream with the
  connection cut, exercising ack/resend, duplicate-result idempotency,
  and digest-framed corruption detection respectively;
* **net_stall** — a worker stops heartbeating and sleeps ``hang_seconds``
  before executing, so the coordinator reaps the lease and reassigns the
  unit while the stalled result arrives late (and is ignored);
* **partition** — the coordinator grants no leases at all, as if the
  network partitioned the whole cluster; the build must complete through
  the local-fallback rung of the degradation ladder.

Decisions are *deterministic*: each (unit token, attempt) pair hashes
against the configured rate via :func:`repro.runtime.seeds.derive_seed`,
so a chaos run is reproducible under ``PYTHONHASHSEED`` and worker-count
changes.  Failures fire on attempt 0 only — a retried unit always gets a
clean execution, which is what lets the recovery suite assert fingerprint
identity with non-chaotic builds.

Configuration comes from the ``REPRO_CHAOS`` environment variable
(``"crash=0.3,hang=0.2,corrupt=1,drop_sidecar=0.5,seed=7,hang_s=30"``) or
programmatically via :class:`ChaosPlan`.  The env var reaches worker
processes through the pool initializer, not through inherited state, so it
works under both fork and spawn start methods.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from .seeds import derive_seed

__all__ = ["ChaosError", "ChaosPlan", "chaos_from_env", "in_worker", "mark_worker"]

#: Denominator for rate quantization; rates are exact multiples of 1/2**20.
_RATE_DENOM = 1 << 20

#: Process-local flag: True inside pool worker processes (set by the pool
#: initializer via :func:`mark_worker`).  Crash injection only hard-kills
#: worker processes; in the serial/degraded path it raises instead.
_IN_WORKER = False


def mark_worker(flag: bool = True) -> None:
    """Mark this process as a pool worker (crash injection may ``_exit``)."""
    global _IN_WORKER
    _IN_WORKER = flag


def in_worker() -> bool:
    """True when running inside a pool worker process."""
    return _IN_WORKER


class ChaosError(RuntimeError):
    """Raised by chaos injection in lieu of a hard crash (serial path)."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic failure-injection rates for one runtime.

    Attributes:
        crash: Probability a unit's worker dies hard on attempt 0.
        hang: Probability a unit sleeps ``hang_seconds`` on attempt 0.
        shm_crash: Probability a unit's worker dies mid-write of its
            shared-memory result segment on attempt 0.
        corrupt: Probability a cache payload is damaged right after a put.
        drop_sidecar: Probability a sidecar is deleted right after a put.
        net_kill: Probability a distributed worker dies hard on a unit's
            attempt 0, right after taking its lease.
        net_drop: Probability a result frame's first send is dropped.
        net_dup: Probability a result frame is sent twice.
        net_trunc: Probability a result frame is truncated mid-stream and
            the connection cut.
        net_stall: Probability a worker stalls (no heartbeats, sleeps
            ``hang_seconds``) before executing a leased unit.
        partition: Probability the coordinator refuses every lease for a
            batch (full network partition; forces the local fallback).
        seed: Chaos decision seed (independent of dataset seeds).
        hang_seconds: Sleep injected by a hang/stall (must exceed the
            deadline / lease timeout to be observable).
    """

    crash: float = 0.0
    hang: float = 0.0
    shm_crash: float = 0.0
    corrupt: float = 0.0
    drop_sidecar: float = 0.0
    net_kill: float = 0.0
    net_drop: float = 0.0
    net_dup: float = 0.0
    net_trunc: float = 0.0
    net_stall: float = 0.0
    partition: float = 0.0
    seed: int = 0
    hang_seconds: float = 30.0

    # ------------------------------------------------------------- decisions
    def _fires(self, kind: str, token: Tuple[object, ...], rate: float) -> bool:
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        draw = derive_seed(self.seed, "chaos", kind, *token) % _RATE_DENOM
        return draw < int(rate * _RATE_DENOM)

    def maybe_fail_unit(self, token: Tuple[object, ...], attempt: int) -> None:
        """Inject a crash or hang for one work unit (attempt 0 only).

        Called by worker functions before real work starts.  A crash kills
        the worker process outright (``os._exit(70)``) so the pool loses the
        unit exactly the way an OOM kill would; outside a worker it raises
        :class:`ChaosError` so the serial path exercises the retry loop
        instead of killing the build process.  Hangs only fire inside
        workers — an in-process sleep could not be preempted by the
        deadline, it would only slow the serial path down.
        """
        if attempt != 0:
            return
        if self._fires("crash", token, self.crash):
            if in_worker():
                os._exit(70)  # hard death: no cleanup, no exception, no result
            raise ChaosError(f"injected crash for unit {token!r}")
        if self._fires("hang", token, self.hang) and in_worker():
            import time

            time.sleep(self.hang_seconds)

    def maybe_fail_shm_write(self, token: Tuple[object, ...], attempt: int) -> None:
        """Kill the worker mid-way through a result-segment write (attempt 0).

        Called by :func:`repro.runtime.pool.ship_result` after flushing half
        of the payload, so the surviving segment is exactly the torn shape a
        real mid-write death leaves.  ``os._exit(71)`` distinguishes the
        injection from a unit-body crash (70) in process post-mortems.
        Outside a worker it raises :class:`ChaosError` — the serial path has
        no segment to tear, but still exercises the retry accounting.
        """
        if attempt != 0:
            return
        if self._fires("shm_crash", token, self.shm_crash):
            if in_worker():
                os._exit(71)  # torn segment: written half stays behind
            raise ChaosError(f"injected shm-write crash for unit {token!r}")

    def maybe_damage_entry(self, payload: "os.PathLike[str]", sidecar: "os.PathLike[str]") -> None:
        """Damage a freshly written cache entry (truncate / flip / drop).

        Alternates deterministically between truncation and a single
        bit-flip so both corruption shapes get exercised.
        """
        name = os.fspath(payload)
        if self._fires("corrupt", (name,), self.corrupt):
            with open(name, "r+b") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if derive_seed(self.seed, "corrupt-shape", name) % 2 == 0 or size < 2:
                    fh.truncate(size // 2)  # torn write
                else:
                    fh.seek(size // 2)
                    byte = fh.read(1)
                    fh.seek(size // 2)
                    fh.write(bytes([byte[0] ^ 0x40]))  # silent bit rot
        if self._fires("drop_sidecar", (name,), self.drop_sidecar):
            from pathlib import Path

            Path(os.fspath(sidecar)).unlink(missing_ok=True)

    # ------------------------------------------------------- network faults
    def maybe_kill_net_worker(self, token: Tuple[object, ...], attempt: int) -> None:
        """Kill a distributed worker right after it leased a unit (attempt 0).

        ``os._exit(72)`` distinguishes the injection from a unit-body crash
        (70) and an shm-write crash (71).  Outside a worker process it
        raises :class:`ChaosError` so in-process tests exercise the
        coordinator's requeue accounting without dying.
        """
        if attempt != 0:
            return
        if self._fires("net_kill", token, self.net_kill):
            if in_worker():
                os._exit(72)  # mid-unit death: lease left dangling
            raise ChaosError(f"injected worker kill for unit {token!r}")

    def frame_fault(self, token: Tuple[object, ...], send_attempt: int) -> Optional[str]:
        """Which frame fault (if any) to inject into one data-plane send.

        Returns ``"drop"``, ``"dup"``, ``"trunc"``, or ``None``.  Faults
        fire on a frame's *first* send only — a resend after a missing ack
        or a reconnect always goes out clean, which is what lets the chaos
        suite assert fingerprint identity with fault-free builds.
        """
        if send_attempt != 0:
            return None
        for kind, rate in (("net_drop", self.net_drop),
                           ("net_dup", self.net_dup),
                           ("net_trunc", self.net_trunc)):
            if self._fires(kind, token, rate):
                return kind[len("net_"):]
        return None

    def stall_fires(self, token: Tuple[object, ...], attempt: int) -> bool:
        """True when a leased unit should stall (no heartbeats, attempt 0).

        The stalled worker sleeps ``hang_seconds`` before executing, long
        enough for the coordinator to reap the lease and reassign the unit;
        the stalled result then arrives late and exercises the
        duplicate-result idempotency path.
        """
        return attempt == 0 and self._fires("net_stall", token, self.net_stall)

    def partition_fires(self, token: Tuple[object, ...]) -> bool:
        """True when the coordinator should refuse every lease for a batch."""
        return self._fires("partition", token, self.partition)

    @property
    def active(self) -> bool:
        """True when any injection rate is non-zero."""
        return any(
            r > 0.0
            for r in (self.crash, self.hang, self.shm_crash, self.corrupt,
                      self.drop_sidecar, self.net_kill, self.net_drop,
                      self.net_dup, self.net_trunc, self.net_stall,
                      self.partition)
        )


def chaos_from_env(env: Optional[str] = None) -> Optional[ChaosPlan]:
    """Parse ``REPRO_CHAOS`` into a :class:`ChaosPlan` (None when unset/empty).

    Format: comma-separated ``key=value`` pairs; keys are the
    :class:`ChaosPlan` rates plus ``seed`` and ``hang_s``.  Unknown keys and
    malformed values raise ``ValueError`` — silent misconfiguration of a
    chaos run would make its results meaningless.
    """
    if env is None:
        env = os.environ.get("REPRO_CHAOS", "")
    env = env.strip()
    if not env:
        return None
    fields = {"crash": 0.0, "hang": 0.0, "shm_crash": 0.0, "corrupt": 0.0,
              "drop_sidecar": 0.0, "net_kill": 0.0, "net_drop": 0.0,
              "net_dup": 0.0, "net_trunc": 0.0, "net_stall": 0.0,
              "partition": 0.0, "seed": 0, "hang_s": 30.0}
    for part in env.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in fields:
            raise ValueError(
                f"bad REPRO_CHAOS entry {part!r}: expected key=value with key "
                f"in {sorted(fields)}"
            )
        try:
            fields[key] = int(value) if key == "seed" else float(value)
        except ValueError:
            raise ValueError(
                f"bad REPRO_CHAOS value {part!r}: {key} must be numeric"
            ) from None
    return ChaosPlan(
        crash=fields["crash"],
        hang=fields["hang"],
        shm_crash=fields["shm_crash"],
        corrupt=fields["corrupt"],
        drop_sidecar=fields["drop_sidecar"],
        net_kill=fields["net_kill"],
        net_drop=fields["net_drop"],
        net_dup=fields["net_dup"],
        net_trunc=fields["net_trunc"],
        net_stall=fields["net_stall"],
        partition=fields["partition"],
        seed=int(fields["seed"]),
        hang_seconds=fields["hang_s"],
    )
