"""Persistent worker pools with resident state and shared-memory data planes.

The original fan-out (PR 2) paid two taxes on every work unit: the full
``PreparedDesign`` (netlist, compiled simulator, graphs) was pickled into
each task payload, and every result (pattern/detection arrays, labeled
samples) was pickled back through the pool's result pipe.  At bench scale
the serialization dwarfed the simulation — ``parallel_vs_serial`` came out
*below 1*.  This module removes both taxes:

* **persistent pools** — one :class:`PersistentWorkerPool` per worker count
  survives across ``run_units`` calls (and across runtimes), so worker
  processes, their imports, and their warmed caches are paid for once per
  process, not once per build;
* **resident designs** — each worker keeps an LRU of unpickled
  ``PreparedDesign`` bundles keyed by a *design token* (a hash of the
  design's provenance).  Fork-spawned workers inherit the parent's registry
  outright; workers born later (pool respawns) re-materialize designs from
  a shared-memory *spill* segment written once per design;
* **shared-memory result plane** — workers pickle results into
  ``multiprocessing.shared_memory`` segments and send back a fixed-size
  descriptor ``(name, nbytes, sha256)``; the parent attaches, verifies, and
  unlinks.  Nothing large crosses the multiprocessing result pipe;
* **descriptor payloads** — a dispatched unit is a token + chunk geometry +
  seed, a few hundred bytes regardless of design size.

Determinism is untouched: segments carry *bytes of results*, never RNG
state, and the canonical chunk grid (:mod:`repro.runtime.seeds`) still
defines every unit's seed.  Crash-safety: segment names are deterministic
(``repro_<pid>_<tag><seq>a<attempt>``), so the parent can sweep every name
a unit could have written — including segments half-written by a worker
that died mid-write — and ``repro doctor`` can reap segments whose owning
pid is gone.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import multiprocessing.pool
import os
import pickle
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from .chaos import ChaosPlan, mark_worker

__all__ = [
    "OrphanSegment",
    "PersistentWorkerPool",
    "ResidentRef",
    "auto_batch_size",
    "fetch_result",
    "get_pool",
    "reap_orphan_segments",
    "register_resident",
    "resolve_resident",
    "scan_orphan_segments",
    "ship_result",
    "shutdown_pools",
]

#: Every segment this module creates is named ``repro_<ownerpid>_...`` so
#: leak auditing (``repro doctor``) can attribute segments to processes.
SEGMENT_PREFIX = "repro_"

#: Where POSIX shared memory appears as files on Linux.  Orphan scanning is
#: gated on this directory existing; the data plane itself is portable.
_SHM_DIR = Path("/dev/shm")

#: Worker-side resident designs kept unpickled per process.  Small: each
#: entry is a full PreparedDesign; eight covers a benchmark-suite sweep's
#: working set without letting a long matrix run grow worker RSS unbounded.
_RESIDENT_CAP = 8


def _noop_track(name: str, rtype: str) -> None:
    """Stand-in for tracker register/unregister while touching segments."""


@contextmanager
def _tracker_silenced() -> Iterator[None]:
    """Keep ``resource_tracker`` out of segment create/attach/unlink.

    Python (< 3.13, which added ``track=False``) registers POSIX segments
    with the tracker on *attach* as well as create, so a worker attaching a
    parent-owned segment would mark it for unlink-at-exit — and because
    every forked process reports to one tracker whose name set deduplicates,
    unregistering after the fact races across processes (duplicate
    unregisters crash the tracker loop with ``KeyError``; so does
    ``SharedMemory.unlink()``'s implicit unregister of a never-registered
    name).  Segment lifetimes here are managed explicitly
    (fetch/sweep/shutdown), with ``repro doctor`` as the post-mortem
    backstop, so the tracker must never hear about them at all.  These
    calls are single-threaded within each process.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - no tracker on this platform
        yield
        return
    original = (resource_tracker.register, resource_tracker.unregister)
    resource_tracker.register = _noop_track
    resource_tracker.unregister = _noop_track
    try:
        yield
    finally:
        resource_tracker.register, resource_tracker.unregister = original


def _open_shm(name: str, create: bool = False, size: int = 0) -> Any:
    """Open a segment with tracker bookkeeping suppressed."""
    from multiprocessing import shared_memory

    with _tracker_silenced():
        if create:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        return shared_memory.SharedMemory(name=name)


# --------------------------------------------------------------- residency
class ResidentRef(NamedTuple):
    """Descriptor of a design a worker can resolve without unpickling it.

    Attributes:
        key: Design token (provenance hash, or an anonymous per-process id).
        spill: Shared-memory segment holding the pickled design, or ``None``
            when the design is only reachable through in-process registries
            (serial execution).
        nbytes: Pickled size (segments may be page-rounded).
        digest: SHA-256 of the pickled bytes.
    """

    key: str
    spill: Optional[str]
    nbytes: int
    digest: str


#: Designs registered for in-process (serial) execution.  Never evicted:
#: without a spill segment there is no way to re-materialize them.
_PINNED: Dict[str, Any] = {}

#: LRU of designs materialized from spill segments (worker side) or
#: registered at spill time (parent side, for the degraded-serial path).
_RESIDENT: "OrderedDict[str, Any]" = OrderedDict()

#: Anonymous-design tokens.  Hand-built bundles (no provenance) get a
#: per-process token; the keep-list pins them so ``id()`` reuse can never
#: alias two designs to one token.
_ANON_TOKENS: Dict[int, str] = {}
_ANON_KEEP: List[Any] = []
_ANON_SEQ = itertools.count(1)


def resident_token(design: Any) -> str:
    """Stable token identifying ``design`` across processes.

    Designs with provenance hash to the same token in every process — that
    is what lets a pool reuse one resident copy across configs/runtimes of
    the same design.  Hand-built designs get a process-local token.
    """
    provenance = getattr(design, "provenance", None)
    if provenance:
        from .cache import cache_key_hash

        return cache_key_hash({"resident": "design", **provenance})[:16]
    token = _ANON_TOKENS.get(id(design))
    if token is None:
        token = f"anon{next(_ANON_SEQ)}"
        _ANON_TOKENS[id(design)] = token
        _ANON_KEEP.append(design)
    return token


def _remember(key: str, design: Any) -> None:
    _RESIDENT[key] = design
    _RESIDENT.move_to_end(key)
    while len(_RESIDENT) > _RESIDENT_CAP:
        _RESIDENT.popitem(last=False)


def register_resident(design: Any) -> ResidentRef:
    """Pin ``design`` for in-process execution and return its reference.

    The serial path's counterpart of
    :meth:`PersistentWorkerPool.ensure_resident`: no segment is written, the
    worker function resolves the token straight from this process's
    registry.
    """
    key = resident_token(design)
    _PINNED[key] = design
    return ResidentRef(key, None, 0, "")


def resolve_resident(ref: ResidentRef) -> Any:
    """Materialize the design behind ``ref`` (registry hit or spill attach).

    Resolution order: pinned registry (serial path), the resident LRU
    (earlier resolve, or fork-inherited from the parent), then the spill
    segment.  A spill's bytes are digest-verified before unpickling.
    """
    design = _PINNED.get(ref.key)
    if design is not None:
        return design
    design = _RESIDENT.get(ref.key)
    if design is not None:
        _RESIDENT.move_to_end(ref.key)
        return design
    if ref.spill is None:
        raise RuntimeError(
            f"design {ref.key!r} is not resident and has no spill segment"
        )
    shm = _open_shm(ref.spill)
    try:
        payload = bytes(shm.buf[: ref.nbytes])
    finally:
        shm.close()
    digest = hashlib.sha256(payload).hexdigest()
    if digest != ref.digest:
        raise RuntimeError(
            f"design spill {ref.spill!r} failed verification "
            f"(got {digest[:12]}, want {ref.digest[:12]})"
        )
    design = pickle.loads(payload)
    _remember(ref.key, design)
    return design


# ------------------------------------------------------------- result plane
def ship_result(
    value: Any,
    base: Optional[str],
    attempt: int,
    chaos: Optional[ChaosPlan] = None,
    token: Tuple[object, ...] = (),
) -> Tuple[str, ...]:
    """Publish a unit result; return the small descriptor to send back.

    With ``base`` (pool execution) the pickled result lands in a segment
    named ``{base}a{attempt}`` — deterministic, so the parent can sweep
    every possible name even for attempts that died mid-write — and the
    descriptor is ``("shm", name, nbytes, sha256)``.  Without ``base``
    (serial execution) the value rides the return path as ``("obj", value)``.

    ``chaos.maybe_fail_shm_write`` is invoked *mid-write* (half the payload
    flushed) so the chaos suite exercises exactly the torn-segment shape a
    real worker death would leave.
    """
    if base is None:
        return ("obj", value)
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    name = f"{base}a{attempt}"
    # Leak-on-raise here is intentional, not missed: result-segment names
    # are deterministic (``{base}a{attempt}``), so the parent reclaims every
    # possible name — including ones half-written by a dying worker, which
    # could not run cleanup code anyway — via ``sweep_results``.  Unlinking
    # on the worker side would race the sweeping parent for no benefit.
    try:
        shm = _open_shm(name, create=True, size=max(1, len(payload)))  # repro-lint: disable=RCL001
    except FileExistsError:
        # A resubmitted unit re-ran an attempt whose first worker already
        # created (possibly half-wrote) this segment.  Replace it: the unit
        # is deterministic, so a complete rewrite yields identical bytes.
        stale = _open_shm(name)
        stale.close()
        with _tracker_silenced():
            stale.unlink()
        shm = _open_shm(name, create=True, size=max(1, len(payload)))  # repro-lint: disable=RCL001
    try:
        half = len(payload) // 2
        shm.buf[:half] = payload[:half]
        if chaos is not None:
            chaos.maybe_fail_shm_write(token, attempt)
        shm.buf[half : len(payload)] = payload[half:]
    finally:
        shm.close()
    return ("shm", name, str(len(payload)), hashlib.sha256(payload).hexdigest())


def fetch_result(descriptor: Tuple[str, ...]) -> Any:
    """Consume a :func:`ship_result` descriptor (attach, verify, unlink)."""
    if descriptor[0] == "obj":
        return descriptor[1]
    _kind, name, nbytes, digest = descriptor
    shm = _open_shm(name)
    try:
        payload = bytes(shm.buf[: int(nbytes)])
    finally:
        shm.close()
        try:
            with _tracker_silenced():
                shm.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            pass
    got = hashlib.sha256(payload).hexdigest()
    if got != digest:
        raise RuntimeError(
            f"result segment {name!r} failed verification "
            f"(got {got[:12]}, want {digest[:12]})"
        )
    return pickle.loads(payload)


def _unlink_segment(name: str) -> bool:
    """Best-effort unlink of one segment by name; True when it existed."""
    try:
        shm = _open_shm(name)
    except FileNotFoundError:
        return False
    shm.close()
    try:
        with _tracker_silenced():
            shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        return False
    return True


# ------------------------------------------------------------- chunk batching
def auto_batch_size(n_tasks: int, workers: int, n_gates: int) -> int:
    """Canonical chunks dispatched per work unit.

    The chunk *grid* is part of the dataset definition and never changes;
    batching only groups contiguous grid cells into one dispatch so small
    designs are not drowned in per-unit overhead.  Targets ~4 units per
    worker for load balancing, capped so one unit of a large design stays a
    reasonable retry/deadline quantum (a 100K-gate chunk is already heavy).
    Serial execution always uses batch 1 — identical loop to the reference
    builder.
    """
    if workers <= 1 or n_tasks <= 1:
        return 1
    target_units = workers * 4
    batch = -(-n_tasks // target_units)
    cap = max(1, 50_000 // max(1, n_gates))
    return max(1, min(batch, cap))


def batched(seq: Sequence[Any], size: int) -> Iterable[Sequence[Any]]:
    """Split ``seq`` into contiguous runs of at most ``size`` items."""
    for start in range(0, len(seq), max(1, size)):
        yield seq[start : start + size]


# ---------------------------------------------------------------- the pool
#: Mints per-process-unique segment numbers across every pool instance.
_SEGMENT_SEQ = itertools.count(1)


def _worker_bootstrap() -> None:
    """Initializer for persistent pool workers: mark as disposable."""
    mark_worker(True)


class PersistentWorkerPool:
    """A reusable ``multiprocessing.Pool`` plus its shared-memory segments.

    One instance per worker count lives for the process (see
    :func:`get_pool`).  The inner pool is created lazily on
    :meth:`acquire` — *after* the caller has spilled its designs, so
    fork-spawned workers inherit the parent's resident registry and usually
    never touch a spill segment at all — and is replaced wholesale by
    :meth:`invalidate` when the fault-tolerance layer declares it unhealthy.

    Spill segments are deduplicated by design token and live until
    :meth:`shutdown` (process exit at the latest, via ``atexit``): a pool
    reused across configs of one design pays the spill exactly once.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(2, int(workers))
        self._owner_pid = os.getpid()
        self._inner: Optional[multiprocessing.pool.Pool] = None
        self._spills: Dict[str, ResidentRef] = {}
        #: Pool incarnations torn down as unhealthy (observability only).
        self.invalidations = 0

    # ------------------------------------------------------------ lifecycle
    def acquire(self) -> multiprocessing.pool.Pool:
        """The live inner pool, creating it if needed."""
        if self._inner is None:
            self._inner = multiprocessing.Pool(
                self.workers, initializer=_worker_bootstrap
            )
        return self._inner

    def invalidate(self) -> None:
        """Tear down the inner pool (hung/crashed workers); keep segments.

        The next :meth:`acquire` forks a fresh pool whose workers inherit
        the parent registry as of *now*; anything newer resolves through
        the spill segments, which survive invalidation on purpose.
        """
        if self._inner is not None:
            self._inner.terminate()
            self._inner.join()
            self._inner = None
            self.invalidations += 1

    def shutdown(self) -> None:
        """Release the inner pool and every segment this pool owns."""
        if os.getpid() != self._owner_pid:
            return  # forked child inheriting the registry must not unlink
        if self._inner is not None:
            self._inner.terminate()
            self._inner.join()
            self._inner = None
        for ref in self._spills.values():
            if ref.spill:
                _unlink_segment(ref.spill)
        self._spills.clear()

    # ------------------------------------------------------------ data plane
    def _new_name(self, tag: str) -> str:
        # The sequence is process-global, not per-pool: pools of different
        # worker counts coexist in one process and must never mint the same
        # segment name.
        return f"{SEGMENT_PREFIX}{self._owner_pid}_{tag}{next(_SEGMENT_SEQ)}"

    def ensure_resident(self, design: Any) -> ResidentRef:
        """Spill ``design`` once and return the reference workers resolve.

        Also registers the design in this process's resident LRU so the
        degraded-serial tail of the fault-tolerance ladder resolves it
        without re-attaching the segment.
        """
        key = resident_token(design)
        ref = self._spills.get(key)
        if ref is None:
            payload = pickle.dumps(design, protocol=pickle.HIGHEST_PROTOCOL)
            name = self._new_name("s")
            shm = _open_shm(name, create=True, size=len(payload))
            try:
                shm.buf[: len(payload)] = payload
            except BaseException:
                # The segment's name has not escaped yet: nothing records
                # it in ``_spills``, so ``shutdown`` would never unlink it
                # and it would outlive the process as doctor-only debris.
                # Reclaim it before propagating.
                _unlink_segment(name)
                raise
            finally:
                shm.close()
            ref = ResidentRef(
                key, name, len(payload), hashlib.sha256(payload).hexdigest()
            )
            self._spills[key] = ref
        _remember(key, design)
        return ref

    def result_base(self, tag: str) -> str:
        """A fresh deterministic base name for one unit's result segments."""
        return self._new_name(tag)

    def sweep_results(self, bases: Iterable[Optional[str]], max_retries: int) -> int:
        """Unlink every segment the given units could have written.

        Covers descriptors never fetched (aborted runs) *and* segments a
        worker half-wrote before dying: attempt numbers are bounded by the
        retry budget, so ``{base}a{0..max_retries+1}`` enumerates every
        possible name.  Returns the number of segments actually removed.
        """
        removed = 0
        for base in bases:
            if not base:
                continue
            for attempt in range(max_retries + 2):
                if _unlink_segment(f"{base}a{attempt}"):
                    removed += 1
        return removed


# ------------------------------------------------------------ global registry
_POOLS: Dict[int, PersistentWorkerPool] = {}


def get_pool(workers: int) -> PersistentWorkerPool:
    """The process-wide persistent pool for ``workers`` (created on demand)."""
    pool = _POOLS.get(workers)
    if pool is None or pool._owner_pid != os.getpid():
        pool = PersistentWorkerPool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every pool this process owns (registered via ``atexit``)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


# ------------------------------------------------------------- leak auditing
class OrphanSegment(NamedTuple):
    """One ``repro_*`` shared-memory segment whose owning process is gone."""

    name: str
    nbytes: int
    pid: int


def _segment_owner(name: str) -> Optional[int]:
    """Owning pid parsed from a ``repro_<pid>_...`` segment name."""
    rest = name[len(SEGMENT_PREFIX) :]
    pid_part = rest.split("_", 1)[0]
    return int(pid_part) if pid_part.isdigit() else None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def scan_orphan_segments(shm_dir: Optional[Path] = None) -> List[OrphanSegment]:
    """Find ``repro_*`` segments owned by dead processes.

    Segments of *live* processes (a running build's spills and in-flight
    results) are never reported.  On platforms without a ``/dev/shm``
    file view the scan returns empty — the data plane still cleans up after
    itself there; only the post-mortem audit is Linux-shaped.
    """
    root = _SHM_DIR if shm_dir is None else shm_dir
    if not root.is_dir():
        return []
    orphans: List[OrphanSegment] = []
    for entry in sorted(root.glob(f"{SEGMENT_PREFIX}*")):
        pid = _segment_owner(entry.name)
        if pid is None or _pid_alive(pid):
            continue
        try:
            size = entry.stat().st_size
        except OSError:  # pragma: no cover - raced with cleanup
            continue
        orphans.append(OrphanSegment(entry.name, size, pid))
    return orphans


def reap_orphan_segments(shm_dir: Optional[Path] = None) -> List[OrphanSegment]:
    """Unlink every orphaned segment; returns what was removed."""
    root = _SHM_DIR if shm_dir is None else shm_dir
    reaped: List[OrphanSegment] = []
    for orphan in scan_orphan_segments(root):
        try:
            (root / orphan.name).unlink()
        except FileNotFoundError:  # pragma: no cover - raced with cleanup
            continue
        reaped.append(orphan)
    return reaped
