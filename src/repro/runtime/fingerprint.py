"""Canonical byte-level fingerprints of generated datasets.

The determinism harness asserts that a dataset built serially, built with N
workers, and re-loaded from a warm cache are *byte-identical*.  These
helpers reduce a sample set to one SHA-256 digest over a canonical byte
stream — graph adjacency, node features, labels, masks, injected-fault
identities, failure-log entries, and the deterministic split indices — so
"identical" is a single string comparison with no tolerance.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

from ..nn.data import GraphData
from .seeds import derive_seed

__all__ = [
    "graph_fingerprint",
    "sample_set_fingerprint",
    "deterministic_split",
    "fingerprints_identical",
]


def _feed_array(h: "hashlib._Hash", tag: str, arr: np.ndarray, dtype: str) -> None:
    a = np.ascontiguousarray(np.asarray(arr), dtype=dtype)
    h.update(tag.encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())


def graph_fingerprint(graph: GraphData) -> str:
    """SHA-256 digest of one sub-graph sample's canonical bytes.

    Covers node features (float64 bit pattern), the directed edge lists,
    graph/node labels, the node mask, and the HetGraph node-index map — but
    not free-form ``meta`` payloads beyond it.
    """
    h = hashlib.sha256()
    _feed_array(h, "x", graph.x, "float64")
    src, dst = graph.edges
    _feed_array(h, "src", src, "int64")
    _feed_array(h, "dst", dst, "int64")
    h.update(f"y={int(graph.y)}".encode())
    if graph.node_y is not None:
        _feed_array(h, "node_y", graph.node_y, "float64")
    if graph.node_mask is not None:
        _feed_array(h, "node_mask", graph.node_mask, "uint8")
    if isinstance(graph.meta, dict) and "nodes" in graph.meta:
        _feed_array(h, "nodes", graph.meta["nodes"], "int64")
    return h.hexdigest()


def sample_set_fingerprint(sample_set) -> str:
    """SHA-256 digest of a whole :class:`repro.data.datasets.SampleSet`.

    Chains each item's graph fingerprint with the injected-fault identities
    and the failure-log entries, then the canonical train/val split indices,
    so any divergence anywhere in the dataset changes the digest.
    """
    h = hashlib.sha256()
    h.update(f"mode={sample_set.mode};n={len(sample_set)}".encode())
    for item in sample_set.items:
        h.update(graph_fingerprint(item.graph).encode())
        for fault in item.sample.faults:
            h.update(repr(fault).encode())
        log = item.sample.log
        h.update(f"compacted={log.compacted}".encode())
        for entry in log:
            h.update(f"({entry.pattern},{entry.observation})".encode())
    split = deterministic_split(len(sample_set), seed=0)
    _feed_array(h, "split", split, "int64")
    return h.hexdigest()


def deterministic_split(n_items: int, val_fraction: float = 0.2, seed: int = 0) -> np.ndarray:
    """Validation-set indices as a pure function of ``(n_items, seed)``.

    A seeded permutation (independent of worker count or insertion order)
    whose first ``round(val_fraction * n_items)`` entries form the validation
    fold; callers treat the rest as training.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    rng = np.random.default_rng(derive_seed(seed, "split", n_items))
    perm = rng.permutation(n_items)
    n_val = int(round(val_fraction * n_items))
    return np.sort(perm[:n_val]).astype(np.int64)


def fingerprints_identical(sets: Sequence) -> bool:
    """True when every sample set in ``sets`` fingerprints identically."""
    digests: List[str] = [sample_set_fingerprint(s) for s in sets]
    return len(set(digests)) <= 1
