"""Checkpoint/resume manifests for multi-stage runs.

A long run (``repro tables``, a multi-model ``pipeline.fit``) is a sequence
of named stages whose outputs are pure functions of their inputs.  A
:class:`ProgressManifest` records, per stage, that the stage completed —
optionally with a small result payload (a formatted table, a threshold) —
keyed by a *run key*: the content-addressed identity of everything feeding
the run (scale, sample counts, code version…).  An interrupted run invoked
again with the same inputs resumes from the last completed stage; any input
change rotates the run key and invalidates the whole manifest, so a resume
can never mix stages from different configurations.

Manifests are JSON (human-inspectable, diff-able in bug reports) and every
update is written atomically via the same tempfile + fsync + rename
protocol as the artifact cache, so a SIGKILL mid-write leaves either the
old manifest or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .cache import CODE_VERSION, cache_key_hash

__all__ = ["ProgressManifest", "manifest_path"]

_FORMAT = 1


def manifest_path(root: Union[str, os.PathLike], name: str,
                  run_key: Dict[str, Any]) -> Path:
    """Canonical manifest location for one (name, run key) under ``root``.

    The run-key hash is in the filename, so concurrent runs with different
    parameters never contend for one manifest file.
    """
    digest = cache_key_hash({"manifest": name, "version": CODE_VERSION, **run_key})
    return Path(root) / "manifests" / f"{name}-{digest[:16]}.json"


def _atomic_write_text(path: Path, text: str) -> None:
    import tempfile

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ProgressManifest:
    """Stage-completion record for one resumable run.

    Args:
        path: Manifest file location (see :func:`manifest_path`).
        run_key: Identity of the run's inputs.  A manifest on disk whose
            recorded run key differs is ignored and will be overwritten —
            stale progress must never leak across configurations.
    """

    def __init__(self, path: Union[str, os.PathLike], run_key: Dict[str, Any]) -> None:
        self.path = Path(path)
        self.run_key_hash = cache_key_hash({"version": CODE_VERSION, **run_key})
        self._stages: Dict[str, Dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # torn/corrupt manifest: start over (stages just re-run)
        if (
            isinstance(doc, dict)
            and doc.get("format") == _FORMAT
            and doc.get("run_key_hash") == self.run_key_hash
            and isinstance(doc.get("stages"), dict)
        ):
            self._stages = doc["stages"]

    def _flush(self) -> None:
        doc = {
            "format": _FORMAT,
            "run_key_hash": self.run_key_hash,
            "stages": self._stages,
        }
        _atomic_write_text(self.path, json.dumps(doc, indent=1, sort_keys=True) + "\n")

    # ------------------------------------------------------------------- api
    def is_done(self, stage: str) -> bool:
        """True when ``stage`` completed in this run configuration."""
        return stage in self._stages

    def result(self, stage: str) -> Optional[Any]:
        """The payload recorded with a completed stage (None if absent)."""
        entry = self._stages.get(stage)
        return None if entry is None else entry.get("payload")

    def mark_done(self, stage: str, payload: Optional[Any] = None) -> None:
        """Record one completed stage (atomically persisted immediately)."""
        entry: Dict[str, Any] = {"order": len(self._stages)}
        if payload is not None:
            entry["payload"] = payload
        self._stages[stage] = entry
        self._flush()

    def done_stages(self) -> List[str]:
        """Completed stage names in completion order."""
        return sorted(self._stages, key=lambda s: self._stages[s].get("order", 0))

    def discard(self) -> None:
        """Delete the manifest (used by ``--no-resume`` / successful cleanup)."""
        self._stages = {}
        self.path.unlink(missing_ok=True)
