"""Checkpoint/resume manifests for multi-stage runs.

A long run (``repro tables``, a multi-model ``pipeline.fit``) is a sequence
of named stages whose outputs are pure functions of their inputs.  A
:class:`ProgressManifest` records, per stage, that the stage completed —
optionally with a small result payload (a formatted table, a threshold) —
keyed by a *run key*: the content-addressed identity of everything feeding
the run (scale, sample counts, code version…).  An interrupted run invoked
again with the same inputs resumes from the last completed stage; any input
change rotates the run key and invalidates the whole manifest, so a resume
can never mix stages from different configurations.

Manifests are JSON (human-inspectable, diff-able in bug reports) and every
update is written atomically via the same tempfile + fsync + rename
protocol as the artifact cache, so a SIGKILL mid-write leaves either the
old manifest or the new one, never a torn file.

Format 2 manifests additionally record their *name* and *run key*
verbatim, which makes them auditable: :func:`audit_manifests` (behind
``repro doctor``) re-derives each manifest's canonical filename from its
recorded identity and flags files that no current run key can ever match
— legacy formats, torn files, version-stale digests, renamed files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .cache import CODE_VERSION, cache_key_hash

__all__ = ["ProgressManifest", "audit_manifests", "manifest_path"]

_FORMAT = 2


def manifest_path(root: Union[str, os.PathLike], name: str,
                  run_key: Dict[str, Any]) -> Path:
    """Canonical manifest location for one (name, run key) under ``root``.

    The run-key hash is in the filename, so concurrent runs with different
    parameters never contend for one manifest file.
    """
    digest = cache_key_hash({"manifest": name, "version": CODE_VERSION, **run_key})
    return Path(root) / "manifests" / f"{name}-{digest[:16]}.json"


def _atomic_write_text(path: Path, text: str) -> None:
    import tempfile

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ProgressManifest:
    """Stage-completion record for one resumable run.

    Args:
        path: Manifest file location (see :func:`manifest_path`).
        run_key: Identity of the run's inputs.  A manifest on disk whose
            recorded run key differs is ignored and will be overwritten —
            stale progress must never leak across configurations.
        name: Run name (the same string passed to :func:`manifest_path`);
            recorded in the manifest so :func:`audit_manifests` can verify
            the file still matches a derivable run key.
    """

    def __init__(self, path: Union[str, os.PathLike], run_key: Dict[str, Any],
                 name: Optional[str] = None) -> None:
        self.path = Path(path)
        self.name = name
        self.run_key_hash = cache_key_hash({"version": CODE_VERSION, **run_key})
        try:
            # Stored verbatim for the doctor audit; a run key with
            # non-JSON values simply isn't auditable (and is flagged so).
            self._run_key_json: Optional[Dict[str, Any]] = json.loads(
                json.dumps(run_key)
            )
        except (TypeError, ValueError):
            self._run_key_json = None
        self._stages: Dict[str, Dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # torn/corrupt manifest: start over (stages just re-run)
        if (
            isinstance(doc, dict)
            and doc.get("format") == _FORMAT
            and doc.get("run_key_hash") == self.run_key_hash
            and isinstance(doc.get("stages"), dict)
        ):
            self._stages = doc["stages"]

    def _flush(self) -> None:
        doc = {
            "format": _FORMAT,
            "name": self.name,
            "run_key": self._run_key_json,
            "run_key_hash": self.run_key_hash,
            "stages": self._stages,
        }
        _atomic_write_text(self.path, json.dumps(doc, indent=1, sort_keys=True) + "\n")

    # ------------------------------------------------------------------- api
    def is_done(self, stage: str) -> bool:
        """True when ``stage`` completed in this run configuration."""
        return stage in self._stages

    def result(self, stage: str) -> Optional[Any]:
        """The payload recorded with a completed stage (None if absent)."""
        entry = self._stages.get(stage)
        return None if entry is None else entry.get("payload")

    def mark_done(self, stage: str, payload: Optional[Any] = None) -> None:
        """Record one completed stage (atomically persisted immediately)."""
        entry: Dict[str, Any] = {"order": len(self._stages)}
        if payload is not None:
            entry["payload"] = payload
        self._stages[stage] = entry
        self._flush()

    def done_stages(self) -> List[str]:
        """Completed stage names in completion order."""
        return sorted(self._stages, key=lambda s: self._stages[s].get("order", 0))

    def discard(self) -> None:
        """Delete the manifest (used by ``--no-resume`` / successful cleanup)."""
        self._stages = {}
        self.path.unlink(missing_ok=True)


def audit_manifests(root: Union[str, os.PathLike],
                    fix: bool = False) -> List[Tuple[str, str]]:
    """Find manifests under ``root`` that no current run key can match.

    Flags (and with ``fix``, deletes):

    * unparseable files (torn by something other than the atomic writer);
    * pre-format-2 manifests and manifests without a recorded name/run key
      — nothing can verify them, and no current writer produces them;
    * manifests whose recorded (name, run key) no longer derives their own
      filename, or whose recorded hash doesn't match the recorded run key
      — a code-version bump or a rename stranded them; no invocation will
      ever read them again.

    Returns ``(filename, problem)`` pairs.  Manifests that verify — i.e.
    resumable state for some reachable run key — are never touched.
    """
    mdir = Path(root) / "manifests"
    problems: List[Tuple[str, str]] = []
    if not mdir.is_dir():
        return problems
    for path in sorted(mdir.glob("*.json")):
        problem = _manifest_problem(Path(root), path)
        if problem is None:
            continue
        problems.append((path.name, problem))
        if fix:
            path.unlink(missing_ok=True)
    return problems


def _manifest_problem(root: Path, path: Path) -> Optional[str]:
    """Why ``path`` is unmatchable, or ``None`` when it verifies."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return "unreadable (torn or not JSON)"
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        return f"legacy format {doc.get('format') if isinstance(doc, dict) else '?'}"
    name = doc.get("name")
    run_key = doc.get("run_key")
    if not isinstance(name, str) or not isinstance(run_key, dict):
        return "no recorded run key"
    if manifest_path(root, name, run_key).name != path.name:
        return "filename does not match recorded run key (stale code version?)"
    expected = cache_key_hash({"version": CODE_VERSION, **run_key})
    if doc.get("run_key_hash") != expected:
        return "run-key hash mismatch"
    return None
