"""Timing and progress instrumentation for the dataset-generation runtime.

Self-contained (no :mod:`repro` imports) so any layer — the runtime, the
training pipeline, the CLI — can record into one :class:`RuntimeStats`
without import cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

__all__ = ["RuntimeStats", "null_progress"]


def null_progress(message: str) -> None:
    """Default progress sink: discard."""


@dataclass
class RuntimeStats:
    """Per-stage wall-clock totals plus cache hit/miss counters.

    Attributes:
        stage_seconds: Accumulated wall-clock per stage name.  Stage names
            are dotted paths (``"prepare.build"``, ``"dataset.inject"``) so
            reports group naturally.
        stage_calls: Number of timed intervals per stage.
        counters: Free-form event counters (cache hits/misses, samples,
            chunks, workers used).
        progress: Callable invoked with one-line progress messages.
    """

    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_calls: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    progress: Callable[[str], None] = field(default=null_progress, repr=False)

    @contextmanager
    def timed(self, stage: str) -> Iterator[None]:
        """Context manager accumulating the enclosed wall-clock into ``stage``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(stage, time.perf_counter() - t0)

    def add_time(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self.stage_calls[stage] = self.stage_calls.get(stage, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def emit(self, message: str) -> None:
        """Send one progress line to the configured sink."""
        self.progress(message)

    # -------------------------------------------------------------- pickling
    # Stats ride along in multiprocessing payloads (worker merges); the
    # progress sink may be a lambda or bound method, which does not pickle.
    # Drop it on the wire and restore the null sink on the far side — a
    # worker has no terminal to print to anyway.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["progress"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        if self.__dict__.get("progress") is None:
            self.__dict__["progress"] = null_progress

    # ------------------------------------------------------------- reporting
    @property
    def cache_hits(self) -> int:
        """Total artifact-cache hits (``cache.<kind>.hit`` counters only)."""
        return sum(
            v for k, v in self.counters.items()
            if k.startswith("cache.") and k.endswith(".hit")
        )

    @property
    def cache_misses(self) -> int:
        """Total artifact-cache misses (``cache.<kind>.miss`` counters only)."""
        return sum(
            v for k, v in self.counters.items()
            if k.startswith("cache.") and k.endswith(".miss")
        )

    def merge(self, other: "RuntimeStats") -> None:
        """Fold another stats object (e.g. from a worker) into this one."""
        for k, v in other.stage_seconds.items():
            self.stage_seconds[k] = self.stage_seconds.get(k, 0.0) + v
        for k, v in other.stage_calls.items():
            self.stage_calls[k] = self.stage_calls.get(k, 0) + v
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0) + v

    def report(self) -> str:
        """Human-readable multi-line summary (stages then counters)."""
        lines = ["runtime stats:"]
        # Size the name column to the longest key so dotted span-style paths
        # (easily past 28 chars) cannot shove the value columns out of line.
        keys = list(self.stage_seconds) + list(self.counters)
        width = max([28, *(len(k) for k in keys)]) if keys else 28
        for stage in sorted(self.stage_seconds):
            lines.append(
                f"  {stage:{width}s} {self.stage_seconds[stage]:8.2f}s"
                f"  ({self.stage_calls.get(stage, 0)} calls)"
            )
        for name in sorted(self.counters):
            lines.append(f"  {name:{width}s} {self.counters[name]:8d}")
        if len(lines) == 1:
            lines.append("  (no recorded activity)")
        return "\n".join(lines)

    def clear(self) -> None:
        self.stage_seconds.clear()
        self.stage_calls.clear()
        self.counters.clear()
