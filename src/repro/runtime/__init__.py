"""Parallel, cached dataset-generation runtime with determinism guarantees.

Public surface:

* :class:`DatasetRuntime` — cache-aware, multi-process executor for design
  preparation and injected-dataset construction;
* :func:`configure` / :func:`get_runtime` — the process-global runtime every
  experiment runner and the CLI share (``REPRO_WORKERS`` /
  ``REPRO_CACHE_DIR`` set its defaults);
* :class:`ArtifactCache` — the content-addressed on-disk store;
* :mod:`~repro.runtime.seeds` helpers — deterministic per-unit seed
  derivation and the canonical chunk grid;
* :mod:`~repro.runtime.fingerprint` helpers — byte-level dataset digests
  used by the determinism test harness;
* :mod:`~repro.runtime.faulttol` — per-unit deadlines, bounded retries,
  pool respawn, the parallel → respawn → serial degradation ladder, and
  signal-safe teardown;
* :mod:`~repro.runtime.checkpoint` — atomic progress manifests that let
  interrupted ``tables`` / ``fit`` runs resume from the last completed
  stage;
* :mod:`~repro.runtime.chaos` — deterministic failure injection
  (``REPRO_CHAOS``) proving every recovery path preserves dataset
  fingerprints;
* :mod:`~repro.runtime.pool` — persistent worker pools with resident
  designs and shared-memory data planes (spill segments in, result
  segments out), plus the orphan-segment audit ``repro doctor`` uses;
* :mod:`~repro.runtime.dist` — the distributed rung: a lease-based
  coordinator serving work units to socket-connected workers over a
  digest-framed wire protocol, degrading to the local ladder when the
  cluster stalls or partitions, with byte-identical output throughout.
"""

from .cache import ArtifactCache, CacheHealth, CODE_VERSION, cache_key_hash, canonical_key
from .chaos import ChaosError, ChaosPlan, chaos_from_env
from .checkpoint import ProgressManifest, audit_manifests, manifest_path
from .dist import Coordinator, DistPolicy, audit_dist_store, run_worker
from .faulttol import RetryPolicy, UnitFailedError, handle_termination, run_units
from .pool import (
    PersistentWorkerPool,
    get_pool,
    reap_orphan_segments,
    scan_orphan_segments,
    shutdown_pools,
)
from .fingerprint import (
    deterministic_split,
    fingerprints_identical,
    graph_fingerprint,
    sample_set_fingerprint,
)
from .instrument import RuntimeStats
from .runtime import (
    DatasetRequest,
    DatasetRuntime,
    configure,
    get_runtime,
    reset_runtime,
)
from .seeds import DEFAULT_CHUNK_SIZE, chunk_plan, derive_seed

__all__ = [
    "ArtifactCache",
    "CODE_VERSION",
    "CacheHealth",
    "ChaosError",
    "ChaosPlan",
    "Coordinator",
    "DatasetRequest",
    "DatasetRuntime",
    "DEFAULT_CHUNK_SIZE",
    "DistPolicy",
    "PersistentWorkerPool",
    "ProgressManifest",
    "RetryPolicy",
    "RuntimeStats",
    "UnitFailedError",
    "audit_dist_store",
    "audit_manifests",
    "cache_key_hash",
    "canonical_key",
    "chaos_from_env",
    "chunk_plan",
    "configure",
    "derive_seed",
    "deterministic_split",
    "fingerprints_identical",
    "get_pool",
    "get_runtime",
    "graph_fingerprint",
    "handle_termination",
    "manifest_path",
    "reap_orphan_segments",
    "reset_runtime",
    "run_units",
    "run_worker",
    "sample_set_fingerprint",
    "scan_orphan_segments",
    "shutdown_pools",
]
