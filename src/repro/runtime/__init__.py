"""Parallel, cached dataset-generation runtime with determinism guarantees.

Public surface:

* :class:`DatasetRuntime` — cache-aware, multi-process executor for design
  preparation and injected-dataset construction;
* :func:`configure` / :func:`get_runtime` — the process-global runtime every
  experiment runner and the CLI share (``REPRO_WORKERS`` /
  ``REPRO_CACHE_DIR`` set its defaults);
* :class:`ArtifactCache` — the content-addressed on-disk store;
* :mod:`~repro.runtime.seeds` helpers — deterministic per-unit seed
  derivation and the canonical chunk grid;
* :mod:`~repro.runtime.fingerprint` helpers — byte-level dataset digests
  used by the determinism test harness.
"""

from .cache import ArtifactCache, CODE_VERSION, cache_key_hash, canonical_key
from .fingerprint import (
    deterministic_split,
    fingerprints_identical,
    graph_fingerprint,
    sample_set_fingerprint,
)
from .instrument import RuntimeStats
from .runtime import (
    DatasetRequest,
    DatasetRuntime,
    configure,
    get_runtime,
    reset_runtime,
)
from .seeds import DEFAULT_CHUNK_SIZE, chunk_plan, derive_seed

__all__ = [
    "ArtifactCache",
    "CODE_VERSION",
    "DatasetRequest",
    "DatasetRuntime",
    "DEFAULT_CHUNK_SIZE",
    "RuntimeStats",
    "cache_key_hash",
    "canonical_key",
    "chunk_plan",
    "configure",
    "derive_seed",
    "deterministic_split",
    "fingerprints_identical",
    "get_runtime",
    "graph_fingerprint",
    "reset_runtime",
    "sample_set_fingerprint",
]
