"""Diagnosis substrate: effect-cause tool stand-in, reports, 2D baseline."""

from .report import (
    Candidate,
    DiagnosisReport,
    ReportQuality,
    first_hit_index,
    report_is_accurate,
    site_key,
    sites_match,
    summarize_reports,
)
from .effect_cause import EffectCauseDiagnoser
from .baseline import PadreLikeFilter
from .dictionary import FaultDictionary
from .equivalence import (
    EquivalenceClass,
    class_first_hit,
    class_resolution,
    group_candidates,
)

__all__ = [
    "Candidate",
    "DiagnosisReport",
    "ReportQuality",
    "first_hit_index",
    "report_is_accurate",
    "site_key",
    "sites_match",
    "summarize_reports",
    "EffectCauseDiagnoser",
    "PadreLikeFilter",
    "FaultDictionary",
    "EquivalenceClass",
    "class_first_hit",
    "class_resolution",
    "group_candidates",
]
