"""Diagnostic equivalence classes over report candidates.

Two candidates are *diagnostically equivalent* for a given failure log when
the tester could never tell them apart — they predict the same failing
(pattern, observation) set.  PFA engineers reason in equivalence classes:
a report with 8 candidates in 2 classes needs at most 2 probe targets, so
class-level resolution is the fairer quality measure for physically-aware
flows (and is how PADRE-style tools report).

This module groups candidates by their match statistics (an inexpensive
proxy for the full signature: candidates with identical TFSF/TFSP/TPSF
against the same log are behaviourally indistinguishable at the tester) and
offers class-level metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .report import Candidate, DiagnosisReport

__all__ = ["EquivalenceClass", "group_candidates", "class_resolution", "class_first_hit"]


@dataclass
class EquivalenceClass:
    """One group of tester-indistinguishable candidates.

    Attributes:
        members: Candidates in report order (first = representative).
        signature: The shared (tfsf, tfsp, tpsf) match statistics.
    """

    members: List[Candidate]
    signature: Tuple[int, int, int]

    @property
    def representative(self) -> Candidate:
        return self.members[0]

    @property
    def tiers(self) -> set:
        return {c.tier for c in self.members}


def group_candidates(report: DiagnosisReport) -> List[EquivalenceClass]:
    """Group a report's candidates into equivalence classes, rank-ordered.

    Classes inherit the position of their first member, so the class list
    preserves the report's ranking.
    """
    by_sig: Dict[Tuple[int, int, int], EquivalenceClass] = {}
    ordered: List[EquivalenceClass] = []
    for cand in report.candidates:
        sig = (cand.tfsf, cand.tfsp, cand.tpsf)
        cls = by_sig.get(sig)
        if cls is None:
            cls = EquivalenceClass(members=[], signature=sig)
            by_sig[sig] = cls
            ordered.append(cls)
        cls.members.append(cand)
    return ordered


def class_resolution(report: DiagnosisReport) -> int:
    """Number of equivalence classes (the PFA-relevant resolution)."""
    return len(group_candidates(report))


def class_first_hit(report: DiagnosisReport, truths) -> int:
    """1-based rank of the first equivalence class containing a truth site.

    Returns 0 when no class contains the ground truth.
    """
    from .report import site_key

    truth_keys = {site_key(t.site) for t in truths}
    for rank, cls in enumerate(group_candidates(report), start=1):
        if any(site_key(c.site) in truth_keys for c in cls.members):
            return rank
    return 0
