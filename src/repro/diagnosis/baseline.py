"""PADRE-style first-level candidate filtering (the paper's 2D baseline [11]).

PADRE (Xue et al., ITC 2013) enhances diagnostic resolution by learning,
without supervision, which candidates of a report look like real defects and
which are artifacts.  The paper compares against PADRE's *first-level
classifier* only, the conservative stage chosen "to prevent a large loss of
accuracy".

This implementation builds a per-candidate feature vector from the match
statistics and netlist context, clusters the report's candidates with 2-means,
and keeps the cluster that explains the failure log better.  A separation
guard keeps the whole report when the two clusters are not clearly distinct,
which is what makes the filter accuracy-preserving.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..netlist.netlist import Netlist
from .report import Candidate, DiagnosisReport

__all__ = ["PadreLikeFilter"]


class PadreLikeFilter:
    """Unsupervised candidate filter over diagnosis reports.

    Args:
        nl: The design (provides structural candidate features).
        min_candidates: Reports at or below this size pass through untouched.
        separation: Minimum normalized centroid distance required before the
            weak cluster is dropped.
        iterations: 2-means refinement iterations (deterministic init).
    """

    def __init__(
        self,
        nl: Netlist,
        min_candidates: int = 3,
        separation: float = 0.45,
        iterations: int = 25,
    ) -> None:
        self.nl = nl
        self.min_candidates = min_candidates
        self.separation = separation
        self.iterations = iterations
        self._levels = nl.net_levels()
        self._max_level = max(self._levels) or 1

    def _features(self, cands: List[Candidate]) -> np.ndarray:
        rows = []
        for c in cands:
            explained = c.tfsf / (c.tfsf + c.tfsp) if (c.tfsf + c.tfsp) else 0.0
            mispredict = c.tpsf / (c.tfsf + 1.0)
            fanout = len(self.nl.nets[c.site.net].sinks)
            level = self._levels[c.site.net] / self._max_level
            rows.append([c.score, explained, mispredict, fanout, level])
        x = np.asarray(rows, dtype=float)
        mu = x.mean(axis=0)
        sd = x.std(axis=0)
        sd[sd == 0] = 1.0
        return (x - mu) / sd

    def _two_means(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Deterministic 2-means: seeds at the best- and worst-score points."""
        c0 = x[0].copy()
        c1 = x[-1].copy()
        assign = np.zeros(len(x), dtype=int)
        for _ in range(self.iterations):
            d0 = np.linalg.norm(x - c0, axis=1)
            d1 = np.linalg.norm(x - c1, axis=1)
            new_assign = (d1 < d0).astype(int)
            if np.array_equal(new_assign, assign) and _ > 0:
                break
            assign = new_assign
            if (assign == 0).any():
                c0 = x[assign == 0].mean(axis=0)
            if (assign == 1).any():
                c1 = x[assign == 1].mean(axis=0)
        return assign, np.stack([c0, c1])

    def filter(self, report: DiagnosisReport) -> DiagnosisReport:
        """Return the report with the weak candidate cluster removed.

        The incoming ranking is preserved among the kept candidates.
        """
        cands = report.candidates
        if len(cands) <= self.min_candidates:
            return DiagnosisReport(candidates=list(cands))
        x = self._features(cands)
        assign, centroids = self._two_means(x)
        if (assign == 0).all() or (assign == 1).all():
            return DiagnosisReport(candidates=list(cands))
        # Which cluster explains the log better? Judge on raw score means.
        scores = np.asarray([c.score for c in cands])
        mean0 = scores[assign == 0].mean()
        mean1 = scores[assign == 1].mean()
        strong = 0 if mean0 >= mean1 else 1
        dist = float(np.linalg.norm(centroids[0] - centroids[1])) / np.sqrt(x.shape[1])
        if dist < self.separation:
            return DiagnosisReport(candidates=list(cands))
        kept = [c for c, a in zip(cands, assign) if a == strong]
        if not kept:
            return DiagnosisReport(candidates=list(cands))
        return DiagnosisReport(candidates=kept)
