"""Fault-dictionary (cause-effect) diagnosis.

The classic alternative to effect-cause analysis: simulate every fault once
against the production pattern set, store each fault's failure signature,
and diagnose a chip by ranking dictionary entries against its observed
failure log.  Dictionaries trade a large one-time simulation and memory cost
for very fast per-chip lookups; the paper's runtime discussion (Section
VI-B) is exactly about avoiding this per-chip simulate-and-match cost, so
this module doubles as the comparison point for that claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..atpg.faults import Fault, enumerate_faults, site_tier
from ..atpg.patterns import PatternSet
from ..dft.observation import ObservationMap
from ..m3d.miv import MIV, miv_fault_sites
from ..netlist.netlist import Netlist
from ..sim.faultsim import FaultMachine
from ..sim.logicsim import CompiledSimulator
from ..tester.failure_log import FailureLog
from .report import Candidate, DiagnosisReport

__all__ = ["FaultDictionary"]

Signature = FrozenSet[Tuple[int, int]]


@dataclass
class _Entry:
    fault: Fault
    signature: Signature


class FaultDictionary:
    """Precomputed fault → failure-signature dictionary.

    Args:
        nl: Tier-assigned design.
        obsmap: Observation map the tester uses.
        patterns: Production TDF pattern set.
        mivs: MIVs (adds MIV entries).
        include_branches: Include branch faults (larger dictionary).
        sim: Optional shared compiled simulator.
    """

    def __init__(
        self,
        nl: Netlist,
        obsmap: ObservationMap,
        patterns: PatternSet,
        mivs: Sequence[MIV] = (),
        include_branches: bool = True,
        sim: Optional[CompiledSimulator] = None,
    ) -> None:
        self.nl = nl
        self.obsmap = obsmap
        self.sim = sim or CompiledSimulator(nl)
        machine = FaultMachine(self.sim)
        good = self.sim.simulate_pair(patterns.v1, patterns.v2)
        self.entries: List[_Entry] = []
        faults = enumerate_faults(
            nl, mivs=miv_fault_sites(nl, mivs), include_branches=include_branches
        )
        for fault in faults:
            detections = machine.propagate(fault, good)
            if not detections:
                continue
            signature: set = set()
            for obs_id, mask in obsmap.fail_masks(detections).items():
                for p in np.nonzero(mask)[0]:
                    signature.add((int(p), obs_id))
            if signature:
                self.entries.append(_Entry(fault=fault, signature=frozenset(signature)))

    def __len__(self) -> int:
        return len(self.entries)

    def size_bytes(self) -> int:
        """Approximate dictionary memory footprint."""
        return sum(16 * len(e.signature) + 64 for e in self.entries)

    def diagnose(
        self, log: FailureLog, max_candidates: int = 20, min_score: float = 0.1
    ) -> DiagnosisReport:
        """Rank dictionary entries by Jaccard match with the failure log."""
        actual = frozenset((e.pattern, e.observation) for e in log.entries)
        if not actual:
            return DiagnosisReport(candidates=[])
        scored: List[Candidate] = []
        for entry in self.entries:
            inter = len(entry.signature & actual)
            if inter == 0:
                continue
            union = len(entry.signature | actual)
            score = inter / union
            if score < min_score:
                continue
            scored.append(
                Candidate(
                    site=entry.fault.site,
                    polarity=entry.fault.polarity,
                    score=score,
                    tier=site_tier(self.nl, entry.fault.site),
                    tfsf=inter,
                    tfsp=len(actual - entry.signature),
                    tpsf=len(entry.signature - actual),
                )
            )
        scored.sort(key=lambda c: (-c.score, c.site.label))
        # Collapse both polarities of one site into its best entry.
        seen: set = set()
        kept: List[Candidate] = []
        for c in scored:
            key = (c.site.kind, c.site.net, c.site.sinks, c.site.miv_id)
            if key in seen:
                continue
            seen.add(key)
            kept.append(c)
            if len(kept) >= max_candidates:
                break
        return DiagnosisReport(candidates=kept)
