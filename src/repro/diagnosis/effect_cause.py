"""Effect-cause TDF diagnosis — the commercial ATPG-diagnosis stand-in.

The classic multi-phase algorithm behind production diagnosis tools
(Huang, *VLSI Test Principles and Architectures*, ch. 7):

1. **Candidate extraction.**  For every erroneous response the defect must
   lie in the fan-in cone of the failing observation *and* switch under the
   failing pattern (TDF launch condition).  Nets are scored by how many
   erroneous responses they can explain; nets explaining (nearly) all of
   them become suspects.  Using a coverage count instead of a strict
   intersection keeps the tool usable for multi-fault chips and for
   compaction aliasing, mirroring commercial behaviour.

2. **Net screening.**  Every suspect net is fault-simulated once (stem
   fault) against a reduced pattern sample (the failing patterns plus a
   seeded sample of passing patterns) and ranked by match score.

3. **Candidate simulation.**  All fault sites (stem, branches, MIVs) on the
   top-ranked nets are fault-simulated for both polarities; predicted and
   observed failure logs are compared into TFSF / TFSP / TPSF counts and a
   match score.  Candidates are ranked and pruned to the near-best band,
   producing the ranked report the GNN framework post-processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..atpg.faults import Fault, FaultSite, Polarity, branch_site, site_tier, stem_site
from ..atpg.patterns import PatternSet
from ..dft.observation import ObservationMap
from ..m3d.miv import MIV, miv_fault_sites
from ..netlist.netlist import Netlist
from ..netlist.topology import fanin_cone_nets
from ..sim.faultsim import FaultMachine
from ..sim.logicsim import CompiledSimulator, TwoPatternResult
from ..tester.failure_log import FailureLog
from .report import Candidate, DiagnosisReport

__all__ = ["EffectCauseDiagnoser"]


class EffectCauseDiagnoser:
    """Ranked-candidate TDF diagnosis for one prepared design.

    Args:
        nl: Tier-assigned design.
        obsmap: Observation map the failure logs were recorded under.
        patterns: The TDF pattern set applied on the tester.
        mivs: The design's MIVs (adds MIV candidate sites).
        sim: Optional pre-compiled simulator to share.
        keep_ratio: Candidates scoring below ``keep_ratio * best`` are
            dropped from the report.
        max_detail_nets: Suspect nets surviving screening into per-site
            simulation.
        max_candidates: Cap on report length.
        explain_fraction: Relaxed suspect threshold (fraction of the best
            explained-response count) used when no net explains everything.
        n_passing_sample: Passing patterns sampled into the scoring subset.
        seed: Seed for the passing-pattern sample.
    """

    def __init__(
        self,
        nl: Netlist,
        obsmap: ObservationMap,
        patterns: PatternSet,
        mivs: Sequence[MIV] = (),
        sim: Optional[CompiledSimulator] = None,
        keep_ratio: float = 0.45,
        max_detail_nets: int = 64,
        max_candidates: int = 80,
        explain_fraction: float = 0.85,
        n_passing_sample: int = 16,
        seed: int = 0,
    ) -> None:
        self.nl = nl
        self.obsmap = obsmap
        self.sim = sim or CompiledSimulator(nl)
        self.machine = FaultMachine(self.sim)
        self.good = self.sim.simulate_pair(patterns.v1, patterns.v2)
        self.transitions = self.good.transitions()
        self.keep_ratio = keep_ratio
        self.max_detail_nets = max_detail_nets
        self.max_candidates = max_candidates
        self.explain_fraction = explain_fraction
        self.n_passing_sample = n_passing_sample
        self.seed = seed
        self._cone_cache: Dict[int, Set[int]] = {}
        self._miv_sites_by_net: Dict[int, List[FaultSite]] = {}
        for s in miv_fault_sites(nl, mivs):
            self._miv_sites_by_net.setdefault(s.net, []).append(s)
        self._observed = set(nl.observed_nets)

    # ------------------------------------------------------------ phase one
    def _cone(self, obs_net: int) -> Set[int]:
        cone = self._cone_cache.get(obs_net)
        if cone is None:
            cone = fanin_cone_nets(self.nl, obs_net)
            self._cone_cache[obs_net] = cone
        return cone

    def suspect_nets(self, log: FailureLog) -> List[int]:
        """Nets that can explain (nearly) every erroneous response."""
        explain_count: Dict[int, int] = {}
        n_entries = len(log.entries)
        for entry in log.entries:
            pattern = entry.pattern
            union: Set[int] = set()
            for obs_net in self.obsmap.observations[entry.observation].nets:
                union.update(self._cone(obs_net))
            for net in union:
                if self.transitions[net, pattern]:
                    explain_count[net] = explain_count.get(net, 0) + 1
        if not explain_count:
            return []
        best = max(explain_count.values())
        threshold = n_entries if best == n_entries else max(
            1, int(np.ceil(self.explain_fraction * best))
        )
        return sorted(net for net, c in explain_count.items() if c >= threshold)

    # ------------------------------------------------------------ sub-sample
    def _pattern_subset(self, log: FailureLog) -> Tuple[np.ndarray, TwoPatternResult]:
        """Failing patterns plus a seeded sample of passing ones."""
        n_pat = self.good.n_patterns
        failing = np.asarray(log.failing_patterns, dtype=int)
        passing = np.setdiff1d(np.arange(n_pat), failing)
        rng = np.random.default_rng(self.seed + len(log.entries))
        if len(passing) > self.n_passing_sample:
            passing = np.sort(rng.choice(passing, self.n_passing_sample, replace=False))
        cols = np.concatenate([failing, passing])
        # subset() keeps the parent's representation: with the packed engine
        # the selected columns are re-packed once here, so every per-site
        # propagate below runs word-parallel.
        sub = self.good.subset(cols)
        return cols, sub

    def _predicted_fails(
        self, fault: Fault, sub: TwoPatternResult, cols: np.ndarray
    ) -> Set[Tuple[int, int]]:
        detections = self.machine.propagate(fault, sub)
        predicted: Set[Tuple[int, int]] = set()
        for obs_id, mask in self.obsmap.fail_masks(detections).items():
            for p in np.nonzero(mask)[0]:
                predicted.add((int(cols[p]), obs_id))
        return predicted

    @staticmethod
    def _match(
        predicted: Set[Tuple[int, int]], actual: Set[Tuple[int, int]]
    ) -> Tuple[float, int, int, int]:
        tfsf = len(predicted & actual)
        tfsp = len(actual - predicted)
        tpsf = len(predicted - actual)
        denom = tfsf + tfsp + tpsf
        return (tfsf / denom if denom else 0.0), tfsf, tfsp, tpsf

    # ------------------------------------------------------------ phase 2+3
    def _sites_of_net(self, net_id: int) -> List[FaultSite]:
        net = self.nl.nets[net_id]
        sites = [stem_site(self.nl, net_id)]
        n_dest = len(net.sinks) + (1 if net_id in self._observed else 0)
        if n_dest > 1:
            for gate_id, pin in net.sinks:
                sites.append(branch_site(self.nl, gate_id, pin))
        sites.extend(self._miv_sites_by_net.get(net_id, ()))
        return sites

    def _score_site(
        self,
        site: FaultSite,
        sub: TwoPatternResult,
        cols: np.ndarray,
        actual: Set[Tuple[int, int]],
    ) -> Optional[Candidate]:
        best: Optional[Candidate] = None
        for polarity in (Polarity.SLOW_TO_RISE, Polarity.SLOW_TO_FALL):
            predicted = self._predicted_fails(Fault(site, polarity), sub, cols)
            score, tfsf, tfsp, tpsf = self._match(predicted, actual)
            if tfsf == 0:
                continue
            cand = Candidate(
                site=site,
                polarity=polarity,
                score=score,
                tier=site_tier(self.nl, site),
                tfsf=tfsf,
                tfsp=tfsp,
                tpsf=tpsf,
            )
            if best is None or (cand.score, -cand.tpsf) > (best.score, -best.tpsf):
                best = cand
        return best

    def diagnose(self, log: FailureLog) -> DiagnosisReport:
        """Produce the ranked candidate report for one failure log."""
        if not log.entries:
            return DiagnosisReport(candidates=[])
        cols, sub = self._pattern_subset(log)
        col_set = set(int(c) for c in cols)
        actual = {
            (e.pattern, e.observation) for e in log.entries if e.pattern in col_set
        }
        suspects = self.suspect_nets(log)

        # Phase 2: one stem simulation per suspect net, rank nets by how many
        # observed fails they explain (recall first — a stem over-predicts for
        # branch defects, so precision would unfairly drop the true net).
        stem_cand: Dict[int, Candidate] = {}
        net_rank: List[Tuple[Tuple[int, int, float], int]] = []
        for net_id in suspects:
            cand = self._score_site(stem_site(self.nl, net_id), sub, cols, actual)
            if cand is not None:
                stem_cand[net_id] = cand
                net_rank.append(((-cand.tfsf, cand.tpsf, -cand.score), net_id))
        net_rank.sort()
        detail_nets = [net_id for _key, net_id in net_rank[: self.max_detail_nets]]

        # Phase 3: per-site scoring on the surviving nets (stems reuse phase 2).
        candidates: List[Candidate] = []
        for net_id in detail_nets:
            for site in self._sites_of_net(net_id):
                if site.kind == "stem":
                    candidates.append(stem_cand[net_id])
                    continue
                cand = self._score_site(site, sub, cols, actual)
                if cand is not None:
                    candidates.append(cand)
        if not candidates:
            return DiagnosisReport(candidates=[])
        # Rank in coarse confidence bands (commercial tools report equal-
        # confidence groups; ordering within a band is arbitrary), then trim
        # to the near-best band by raw score.
        candidates.sort(key=lambda c: (-self._band(c.score), c.site.label))
        best = max(c.score for c in candidates)
        kept = [c for c in candidates if c.score >= self.keep_ratio * best]
        return DiagnosisReport(candidates=kept[: self.max_candidates])

    @staticmethod
    def _band(score: float) -> int:
        """Quantize a match score into a ranking confidence band."""
        return int(score / 0.25)
