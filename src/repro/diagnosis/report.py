"""Diagnosis reports and their quality metrics.

The three measures of Section II-B:

* **Diagnostic resolution** — the number of candidates in the report
  (smaller is better, ideally 1).
* **Accuracy** — whether some candidate pinpoints the ground-truth defect.
* **First-hit index (FHI)** — 1-based rank of the first ground-truth
  candidate in the report (smaller is better).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..atpg.faults import Fault, FaultSite, Polarity

__all__ = [
    "Candidate",
    "DiagnosisReport",
    "site_key",
    "sites_match",
    "report_is_accurate",
    "first_hit_index",
    "ReportQuality",
    "summarize_reports",
]


def site_key(site: FaultSite) -> Tuple:
    """Hashable identity of a fault site (kind, net, sink set, MIV id)."""
    return (site.kind, site.net, tuple(sorted(site.sinks)), site.miv_id)


def sites_match(candidate: FaultSite, truth: FaultSite) -> bool:
    """Whether a candidate pinpoints the ground-truth defect location.

    Exact site identity — the candidate universe contains every injectable
    site, so diagnosis can in principle name the exact pin or MIV.
    """
    return site_key(candidate) == site_key(truth)


@dataclass
class Candidate:
    """One ranked entry of a diagnosis report.

    Attributes:
        site: The suspected fault site.
        polarity: Suspected TDF polarity (best-matching one).
        score: Match quality in [0, 1] (1 = explains the whole failure log
            without mispredictions).
        tier: Tier of the site, or None for MIVs.
        tfsf / tfsp / tpsf: Tester-fail-sim-fail / tester-fail-sim-pass /
            tester-pass-sim-fail counts behind the score.
    """

    site: FaultSite
    polarity: Polarity
    score: float
    tier: Optional[int]
    tfsf: int = 0
    tfsp: int = 0
    tpsf: int = 0

    @property
    def is_miv(self) -> bool:
        return self.site.kind == "miv"


@dataclass
class DiagnosisReport:
    """A ranked candidate list for one failing chip."""

    candidates: List[Candidate]

    @property
    def resolution(self) -> int:
        """Diagnostic resolution = number of candidates."""
        return len(self.candidates)

    def truncated(self, n: int) -> "DiagnosisReport":
        return DiagnosisReport(self.candidates[:n])

    def __iter__(self):
        return iter(self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)


def report_is_accurate(report: DiagnosisReport, truths: Sequence[Fault]) -> bool:
    """True when *every* injected fault site appears among the candidates.

    With a single injected fault this is the paper's accuracy; for the
    multiple-fault study (Table X) "a diagnosis report is counted as accurate
    if all injected faults ... are included in the candidate list".
    """
    keys = {site_key(c.site) for c in report.candidates}
    return all(site_key(t.site) in keys for t in truths)


def first_hit_index(report: DiagnosisReport, truths: Sequence[Fault]) -> Optional[int]:
    """1-based rank of the first candidate matching any injected fault."""
    truth_keys = {site_key(t.site) for t in truths}
    for rank, cand in enumerate(report.candidates, start=1):
        if site_key(cand.site) in truth_keys:
            return rank
    return None


@dataclass
class ReportQuality:
    """Aggregate quality over a set of diagnosed samples (one table row)."""

    accuracy: float
    mean_resolution: float
    std_resolution: float
    mean_fhi: float
    std_fhi: float
    n_samples: int

    def as_row(self) -> Tuple[float, float, float, float, float]:
        return (
            self.accuracy,
            self.mean_resolution,
            self.std_resolution,
            self.mean_fhi,
            self.std_fhi,
        )


def summarize_reports(
    pairs: Iterable[Tuple[DiagnosisReport, Sequence[Fault]]]
) -> ReportQuality:
    """Accuracy / resolution / FHI statistics over (report, truth) pairs.

    FHI statistics are computed over accurate reports only (a miss has no
    first hit).
    """
    import numpy as np

    accs: List[bool] = []
    resolutions: List[int] = []
    fhis: List[int] = []
    for report, truths in pairs:
        acc = report_is_accurate(report, truths)
        accs.append(acc)
        resolutions.append(report.resolution)
        fhi = first_hit_index(report, truths)
        if fhi is not None:
            fhis.append(fhi)
    n = len(accs)
    return ReportQuality(
        accuracy=float(np.mean(accs)) if n else 0.0,
        mean_resolution=float(np.mean(resolutions)) if n else 0.0,
        std_resolution=float(np.std(resolutions)) if n else 0.0,
        mean_fhi=float(np.mean(fhis)) if fhis else 0.0,
        std_fhi=float(np.std(fhis)) if fhis else 0.0,
        n_samples=n,
    )
