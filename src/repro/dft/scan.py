"""Scan-chain construction.

Flops are stitched into ``n_chains`` balanced chains; chains are grouped into
output channels for EDT-style response compaction (``chains_per_channel`` is
the paper's compaction ratio, 20x there, smaller in the scaled benchmarks).
A bypass mode that scans uncompressed responses out directly — the paper's
"bypass signals" — is modeled by building the observation map in bypass mode
(see :mod:`repro.dft.observation`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..netlist.netlist import Netlist

__all__ = ["ScanChain", "ScanConfig", "build_scan_chains"]


@dataclass(frozen=True)
class ScanChain:
    """One scan chain: flop ids ordered scan-in → scan-out."""

    id: int
    flops: tuple


@dataclass(frozen=True)
class ScanConfig:
    """Scan architecture of a design.

    Attributes:
        chains: The scan chains.
        channels: Chain-id groups per output channel (compaction groups).
        chain_length: Maximum chain length (shift depth).
    """

    chains: tuple
    channels: tuple

    @property
    def n_chains(self) -> int:
        return len(self.chains)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    @property
    def chain_length(self) -> int:
        return max((len(c.flops) for c in self.chains), default=0)


def build_scan_chains(
    nl: Netlist,
    n_chains: int,
    chains_per_channel: int = 4,
    seed: int = 0,
    shuffle: bool = True,
    rng: Optional[random.Random] = None,
) -> ScanConfig:
    """Stitch flops into balanced chains and group chains into channels.

    Args:
        nl: The design (its flops are stitched).
        n_chains: Number of scan chains.
        chains_per_channel: Compaction ratio (chains XOR-ed per channel).
        seed: Order shuffle seed; real tools stitch by placement proximity,
            which on a synthetic design is equivalent to a seeded shuffle.
        shuffle: Disable to stitch flops in id order (deterministic layouts).
        rng: Pre-seeded generator used for the shuffle instead of
            ``random.Random(seed)``; the caller owns its state.
    """
    if n_chains < 1:
        raise ValueError("need at least one chain")
    flop_ids = [f.id for f in nl.flops]
    if shuffle:
        (rng if rng is not None else random.Random(seed)).shuffle(flop_ids)
    chains: List[ScanChain] = []
    for cid in range(n_chains):
        members = tuple(flop_ids[cid::n_chains])
        chains.append(ScanChain(id=cid, flops=members))
    channels = tuple(
        tuple(range(start, min(start + chains_per_channel, n_chains)))
        for start in range(0, n_chains, chains_per_channel)
    )
    return ScanConfig(chains=tuple(chains), channels=channels)
