"""Design-for-test substrate: scan chains and response compaction."""

from .scan import ScanChain, ScanConfig, build_scan_chains
from .observation import Observation, ObservationMap

__all__ = [
    "ScanChain",
    "ScanConfig",
    "build_scan_chains",
    "Observation",
    "ObservationMap",
]
