"""Observation-point mapping, with and without response compaction.

An :class:`Observation` is one value the tester compares per pattern.  In
*bypass* mode every primary output and every scan flop is its own
observation.  In *compacted* mode an XOR spatial compactor merges the flops
at the same shift position across all chains of a channel into a single
observation, so a failing observation only implicates a *set* of flops —
exactly the resolution loss the paper studies (Tables VII/VIII).

Because the XOR compactor is linear, a faulty response differs from the good
response at a compacted observation iff an *odd* number of member flops
differ (fault aliasing under even parity is modeled for free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..netlist.netlist import Netlist
from .scan import ScanConfig

__all__ = ["Observation", "ObservationMap"]


@dataclass(frozen=True)
class Observation:
    """One tester-visible compare point.

    Attributes:
        id: Dense observation index.
        kind: ``"po"``, ``"flop"``, ``"channel"``, or ``"misr"``.
        nets: Observed net ids merged into this observation (one for
            ``po``/``flop``; the member flops' D nets for ``channel``; every
            flop D net for ``misr``).
        label: Human-readable id for failure logs.
        combine: How member differences merge into a fail — ``"xor"`` for a
            spatial parity compactor (even differences alias), ``"or"`` for
            a signature register (any difference flips the signature;
            signature aliasing at 2^-width is neglected).
    """

    id: int
    kind: str
    nets: Tuple[int, ...]
    label: str
    combine: str = "xor"


class ObservationMap:
    """The set of observations of a design under a given scan/compaction mode."""

    def __init__(self, nl: Netlist, observations: List[Observation], compacted: bool) -> None:
        self.nl = nl
        self.observations = observations
        self.compacted = compacted
        self._by_net: Dict[int, List[int]] = {}
        for obs in observations:
            for net in obs.nets:
                self._by_net.setdefault(net, []).append(obs.id)

    # ------------------------------------------------------------ construct
    @classmethod
    def bypass(cls, nl: Netlist, scan: ScanConfig) -> "ObservationMap":
        """Uncompressed observation per PO and per scan flop."""
        obs: List[Observation] = []
        for i, net in enumerate(nl.primary_outputs):
            obs.append(Observation(len(obs), "po", (net,), f"po{i}"))
        for chain in scan.chains:
            for pos, fid in enumerate(chain.flops):
                f = nl.flops[fid]
                obs.append(
                    Observation(len(obs), "flop", (f.d_net,), f"c{chain.id}.p{pos}")
                )
        return cls(nl, obs, compacted=False)

    @classmethod
    def compacted(cls, nl: Netlist, scan: ScanConfig) -> "ObservationMap":
        """XOR-compacted observation per (channel, shift position), POs direct."""
        obs: List[Observation] = []
        for i, net in enumerate(nl.primary_outputs):
            obs.append(Observation(len(obs), "po", (net,), f"po{i}"))
        for ch_id, chain_ids in enumerate(scan.channels):
            depth = max(len(scan.chains[c].flops) for c in chain_ids)
            for pos in range(depth):
                nets = tuple(
                    nl.flops[scan.chains[c].flops[pos]].d_net
                    for c in chain_ids
                    if pos < len(scan.chains[c].flops)
                )
                if nets:
                    obs.append(
                        Observation(len(obs), "channel", nets, f"ch{ch_id}.p{pos}")
                    )
        return cls(nl, obs, compacted=True)

    @classmethod
    def misr(cls, nl: Netlist, scan: ScanConfig) -> "ObservationMap":
        """Signature-register compaction: one observation over all flops.

        A MISR accumulates every scan cell into one signature per pattern;
        the tester only learns *which patterns* failed, not where.  This is
        the harshest diagnosis environment (maximum search-space inflation)
        and complements the paper's bypass/XOR modes.
        """
        obs: List[Observation] = []
        for i, net in enumerate(nl.primary_outputs):
            obs.append(Observation(len(obs), "po", (net,), f"po{i}"))
        all_flops = tuple(
            nl.flops[fid].d_net for chain in scan.chains for fid in chain.flops
        )
        if all_flops:
            obs.append(Observation(len(obs), "misr", all_flops, "misr", combine="or"))
        return cls(nl, obs, compacted=True)

    # --------------------------------------------------------------- queries
    @property
    def n_observations(self) -> int:
        return len(self.observations)

    def observations_of_net(self, net_id: int) -> List[int]:
        """Observation ids that include a given observed net."""
        return list(self._by_net.get(net_id, ()))

    def fail_masks(self, detections: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Tester-visible failures from per-net detection masks.

        Args:
            detections: Net id → boolean per-pattern difference mask (from
                :meth:`repro.sim.FaultMachine.propagate`).

        Returns:
            Observation id → boolean per-pattern fail mask (odd parity of
            member-net differences), only for observations that fail.
        """
        out: Dict[int, np.ndarray] = {}
        for obs in self.observations:
            acc = None
            for net in obs.nets:
                diff = detections.get(net)
                if diff is None:
                    continue
                if acc is None:
                    acc = diff.copy()
                elif obs.combine == "or":
                    acc |= diff
                else:
                    acc ^= diff
            if acc is not None and acc.any():
                out[obs.id] = acc
        return out

    def good_responses(self, net_values: np.ndarray) -> np.ndarray:
        """Expected tester responses (n_observations x n_patterns).

        For compacted observations this is the XOR of member-flop values —
        what the tester's expect-data would hold.
        """
        n_pat = net_values.shape[1]
        resp = np.zeros((self.n_observations, n_pat), dtype=np.uint8)
        for obs in self.observations:
            acc = np.zeros(n_pat, dtype=np.uint8)
            for net in obs.nets:
                acc ^= net_values[net]
            resp[obs.id] = acc
        return resp
