"""Random-partition data augmentation (paper Section IV).

The transferable models are trained on samples from the baseline (Syn-1)
netlist *plus* randomly-partitioned copies of it.  Random partitions vary the
spatial distribution of gates over tiers, diversifying the training set so
the GNN models do not overfit any one partitioner and transfer to TPI /
Syn-2 / Par configurations without retraining.
"""

from __future__ import annotations

from typing import List, Sequence

from ..nn.data import GraphData
from ..data.datagen import DesignConfig, PreparedDesign
from ..data.datasets import SampleSet

__all__ = ["augmentation_configs", "build_training_sets", "collect_graphs"]


def augmentation_configs(n_random: int = 2) -> List[DesignConfig]:
    """Syn-1 plus ``n_random`` randomly-partitioned variants."""
    configs = [DesignConfig.standard("Syn-1")]
    for k in range(n_random):
        configs.append(DesignConfig.standard(f"Rand-{k}"))
    return configs


def build_training_sets(
    designs: Sequence[PreparedDesign],
    mode: str,
    n_per_design: int,
    seed: int = 1000,
    miv_fraction: float = 0.15,
    runtime=None,
) -> List[SampleSet]:
    """One injected dataset per prepared (augmentation) design.

    Goes through the dataset runtime so every (design, chunk) work unit of
    the whole augmentation matrix fans out over one worker pool and lands in
    the artifact cache; ``runtime=None`` uses the process-global runtime
    (serial and uncached unless configured otherwise), which produces
    byte-identical sets to a plain :func:`repro.data.build_dataset` loop.
    """
    from ..runtime import DatasetRequest, get_runtime

    rt = runtime if runtime is not None else get_runtime()
    orders = [
        (design, DatasetRequest(mode, n_per_design, seed + i, "single", miv_fraction))
        for i, design in enumerate(designs)
    ]
    return rt.build_datasets(orders)


def collect_graphs(sets: Sequence[SampleSet]) -> List[GraphData]:
    """Flatten sample sets into one training graph list."""
    graphs: List[GraphData] = []
    for s in sets:
        graphs.extend(s.graphs)
    return graphs
