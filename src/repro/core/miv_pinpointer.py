"""MIV-pinpointer: GCN node classifier flagging defective MIVs.

Node classification rather than graph pooling — the paper notes that local
information near candidate MIVs matters more than global features for this
task.  Only MIV nodes carry labels/loss (``node_mask``); a node whose
defect probability exceeds the decision threshold is reported faulty.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.data import GraphData, build_batch, split_node_values
from ..nn.model import NodeClassifier
from .features import N_FEATURES, StandardScaler
from .training import train_node_classifier

__all__ = ["MivPinpointer"]


class MivPinpointer:
    """Trainable defective-MIV detector.

    Args:
        hidden: GCN layer widths.
        threshold: Defect-probability cutoff for reporting an MIV faulty.
        epochs / batch_size / lr: Training hyperparameters.
        seed: Weight-init and shuffling seed.
        backend: nn tensor backend ("numpy", "torch", ...); None consults
            ``$REPRO_NN_BACKEND`` and falls back to the numpy oracle.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (32, 32),
        threshold: float = 0.5,
        epochs: int = 40,
        batch_size: int = 32,
        lr: float = 1e-2,
        weight_decay: float = 1e-4,
        seed: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        self.hidden = tuple(hidden)
        self.threshold = threshold
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.seed = seed
        self.backend = backend
        self.scaler = StandardScaler()
        self.model = NodeClassifier(N_FEATURES, hidden=self.hidden, seed=seed, backend=backend)
        self._fitted = False

    def fit(self, graphs: Sequence[GraphData]) -> List[float]:
        """Train on sub-graphs whose ``node_y`` marks the faulty MIV node(s)."""
        usable = [g for g in graphs if g.node_y is not None and g.node_mask is not None]
        usable = [g for g in usable if g.node_mask.any()]
        if not usable:
            raise ValueError("no graphs with MIV nodes to train on")
        normed = self.scaler.fit_transform(usable)
        n_pos = sum(float(g.node_y[g.node_mask].sum()) for g in normed)
        n_all = sum(int(g.node_mask.sum()) for g in normed)
        pos_weight = max(1.0, (n_all - n_pos) / max(n_pos, 1.0))
        history = train_node_classifier(
            self.model,
            normed,
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            weight_decay=self.weight_decay,
            pos_weight=pos_weight,
            seed=self.seed,
        )
        self._fitted = True
        self._calibrate_threshold(graphs)
        return history

    def _calibrate_threshold(self, graphs: Sequence[GraphData]) -> None:
        """Raise the decision threshold until healthy MIVs rarely trip it.

        The class-weighted loss makes raw probabilities trigger-happy; the
        policy needs high precision (a falsely flagged MIV is protected from
        pruning and promoted in the report), so the threshold is placed at
        the 99th percentile of healthy-MIV-node probabilities seen in
        training, floored at the nominal 0.5.
        """
        healthy: List[float] = []
        for g in graphs:
            if g.node_mask is None or not g.node_mask.any():
                continue
            probs = self.predict_node_proba(g)
            labels = g.node_y if g.node_y is not None else np.zeros(g.n_nodes)
            sel = g.node_mask & (labels < 0.5)
            healthy.extend(probs[sel].tolist())
        if healthy:
            self.threshold = float(max(0.5, np.quantile(np.asarray(healthy), 0.99)))

    def predict_node_proba_batch(
        self, graphs: Sequence[GraphData]
    ) -> List[np.ndarray]:
        """Per-node defect probabilities for many sub-graphs at once.

        All sub-graphs share one block-diagonal forward pass; the flat
        per-node output is split back into one array per input graph.  The
        single-graph :meth:`predict_node_proba` is this with a batch of one,
        so batched (serving) and per-graph (offline) inference are the same
        code path.
        """
        if not self._fitted:
            raise RuntimeError("MivPinpointer is not fitted")
        if not graphs:
            return []
        batch = build_batch(self.scaler.transform(list(graphs)))
        return split_node_values(batch, self.model.predict_proba(batch))

    def predict_node_proba(self, graph: GraphData) -> np.ndarray:
        """Defect probability per sub-graph node (meaningful on MIV nodes)."""
        return self.predict_node_proba_batch([graph])[0]

    def _pick_faulty(self, graph: GraphData, probs: np.ndarray) -> List[int]:
        """HetGraph node ids whose defect probability clears the threshold."""
        nodes = graph.meta["nodes"] if graph.meta else np.arange(graph.n_nodes)
        mask = graph.node_mask if graph.node_mask is not None else np.zeros(graph.n_nodes, bool)
        picks = np.nonzero(mask & (probs > self.threshold))[0]
        return [int(nodes[i]) for i in picks]

    def predict_faulty_mivs_batch(
        self, graphs: Sequence[GraphData]
    ) -> List[List[int]]:
        """Faulty-MIV node ids per sub-graph, from one batched forward."""
        return [
            self._pick_faulty(g, probs)
            for g, probs in zip(graphs, self.predict_node_proba_batch(graphs))
        ]

    def predict_faulty_mivs(self, graph: GraphData) -> List[int]:
        """HetGraph node ids of MIVs predicted faulty in this sub-graph."""
        return self.predict_faulty_mivs_batch([graph])[0]

    def sample_accuracy(self, graphs: Sequence[GraphData]) -> float:
        """Localization accuracy over samples that contain an MIV fault.

        A sample counts as correct when the highest-probability MIV node in
        its sub-graph is the faulty one (the Fig. 6 metric).  Samples
        without MIV faults are skipped — see :meth:`specificity` for them.
        """
        hits = 0
        total = 0
        for g in graphs:
            if g.node_y is None or g.node_y.sum() == 0:
                continue
            mask = g.node_mask if g.node_mask is not None else np.zeros(g.n_nodes, bool)
            if not mask.any():
                continue
            total += 1
            probs = self.predict_node_proba(g)
            miv_idx = np.nonzero(mask)[0]
            top = miv_idx[int(np.argmax(probs[miv_idx]))]
            hits += int(g.node_y[top] > 0.5)
        return hits / total if total else 0.0

    def specificity(self, graphs: Sequence[GraphData]) -> float:
        """Fraction of MIV-fault-free samples with no MIV flagged."""
        clean = 0
        total = 0
        for g in graphs:
            if g.node_y is not None and g.node_y.sum() > 0:
                continue
            mask = g.node_mask if g.node_mask is not None else np.zeros(g.n_nodes, bool)
            if not mask.any():
                continue
            total += 1
            probs = self.predict_node_proba(g)
            clean += int((probs[np.nonzero(mask)[0]] <= self.threshold).all())
        return clean / total if total else 1.0
