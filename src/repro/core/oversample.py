"""Dummy-buffer graph oversampling (paper Section V-C).

Euclidean oversamplers (SMOTE etc.) cannot be applied to graphs without a
lossy conversion, so the paper balances the Classifier's training set by
inserting *dummy buffers*: for a minority-class sample, a buffer node is
appended at the output of one node at a time, yielding synthetic graphs that
are functionally identical to the original circuit but structurally distinct.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..nn.data import GraphData

__all__ = ["insert_dummy_buffer", "oversample_minority"]


def insert_dummy_buffer(graph: GraphData, node: int) -> GraphData:
    """A copy of ``graph`` with a buffer appended at ``node``'s output.

    The buffer takes over the node's outgoing edges (``node → buffer → old
    successors``).  Its feature row is copied from the host node with the
    degree columns adjusted to a buffer's (one fan-in, inherited fan-out),
    so the synthetic sample stays on the data manifold.
    """
    n = graph.n_nodes
    if not 0 <= node < n:
        raise ValueError(f"node {node} out of range for graph with {n} nodes")
    src, dst = graph.edges
    src = np.asarray(src).copy()
    dst = np.asarray(dst).copy()
    buf = n
    moved = src == node
    src[moved] = buf
    src = np.append(src, node)
    dst = np.append(dst, buf)

    row = graph.x[node].copy()
    # Feature columns 0/1 are circuit fan-in/fan-out, 7/8 sub-graph degrees
    # (see repro.core.features.FEATURE_NAMES); a buffer has exactly one input.
    if len(row) >= 9:
        row[0] = 1.0
        row[7] = 1.0
    x = np.vstack([graph.x, row[None, :]])

    node_y = None
    if graph.node_y is not None:
        node_y = np.append(np.asarray(graph.node_y, dtype=float), 0.0)
    node_mask = None
    if graph.node_mask is not None:
        node_mask = np.append(np.asarray(graph.node_mask, dtype=bool), False)
    meta = dict(graph.meta) if isinstance(graph.meta, dict) else {"orig_meta": graph.meta}
    meta["synthetic"] = True
    return GraphData(x=x, edges=(src, dst), y=graph.y, node_y=node_y, node_mask=node_mask, meta=meta)


def oversample_minority(
    majority: Sequence[GraphData],
    minority: Sequence[GraphData],
    seed: int = 0,
    max_ratio: float = 1.0,
) -> List[GraphData]:
    """Balance the minority class with dummy-buffer synthetics.

    For each minority sample, buffers are appended at the output of each
    node, one at a time (then with consecutive buffers on already-augmented
    samples) until the minority population reaches ``max_ratio`` times the
    majority size.

    Returns:
        The augmented minority list (originals first, synthetics after).
    """
    if not minority:
        return []
    rng = np.random.default_rng(seed)
    target = max(len(minority), int(max_ratio * len(majority)))
    out: List[GraphData] = list(minority)
    frontier = list(minority)
    cursor = 0
    while len(out) < target and frontier:
        base = frontier[cursor % len(frontier)]
        node = int(rng.integers(0, base.n_nodes))
        synth = insert_dummy_buffer(base, node)
        out.append(synth)
        frontier.append(synth)  # consecutive buffers on later rounds
        cursor += 1
    return out
