"""Back-tracing (paper Section III-B, Fig. 3).

For every erroneous tester response, collect the nodes that (a) lie in the
fan-in cone of a Topnode connected to the failing test output and (b) switch
under the failing pattern; the intersection of these suspect sets across all
erroneous responses is the candidate list, extracted as a circuit-level
sub-graph for the GNN models.

The top level of the heterogeneous graph (precomputed cone masks) makes each
response an O(n) boolean operation, realizing the paper's O(n_e * n_G)
complexity.

One robustness extension over the paper's pseudo-code: when the strict
intersection is empty (multi-fault chips, compactor aliasing), the trace
falls back to the nodes explaining the largest number of responses, so the
GNN models still receive a meaningful sub-graph.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..dft.observation import ObservationMap
from ..tester.failure_log import FailureLog
from .hetgraph import HetGraph

__all__ = ["backtrace"]


def backtrace(
    het: HetGraph,
    obsmap: ObservationMap,
    log: FailureLog,
    fallback_fraction: float = 0.999,
) -> np.ndarray:
    """Candidate node mask for one failure log (Fig. 3).

    Args:
        het: The design's heterogeneous graph.
        obsmap: Observation map the log was recorded under; a failing
            compacted observation maps to all Topnodes XOR-ed into it.
        log: The failure log under diagnosis.
        fallback_fraction: When the strict intersection is empty, keep nodes
            whose support reaches this fraction of the maximum support.

    Returns:
        Boolean mask over circuit-level nodes (the sub-graph membership V').
    """
    n_nodes = het.n_nodes
    if not log.entries:
        return np.zeros(n_nodes, dtype=bool)

    candidate = np.ones(n_nodes, dtype=bool)
    support = np.zeros(n_nodes, dtype=np.int32)
    n_responses = 0
    for entry in log.entries:
        tops = [
            het.topnode_of_net[net]
            for net in obsmap.observations[entry.observation].nets
            if net in het.topnode_of_net
        ]
        if not tops:
            continue
        n_responses += 1
        suspect = het.cone_mask[tops[0]].copy()
        for t in tops[1:]:
            suspect |= het.cone_mask[t]
        suspect &= het.node_transitions(entry.pattern)
        candidate &= suspect
        support += suspect

    if candidate.any() or n_responses == 0:
        return candidate
    best = int(support.max())
    if best == 0:
        return candidate
    threshold = max(1, int(np.ceil(fallback_fraction * best)))
    return support >= threshold
