"""Tier-predictor: GCN graph classifier over back-trace sub-graphs.

Predicts which device tier contains the delay defect from the sub-graph a
failure log back-traces to.  The graph representation after mean pooling is
the paper's ``[p_top, p_bottom]`` probability vector; the class count
generalizes to designs with more than two tiers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.data import GraphData, build_batch
from ..nn.model import GraphClassifier
from .features import N_FEATURES, StandardScaler
from .training import train_graph_classifier

__all__ = ["TierPredictor"]


class TierPredictor:
    """Trainable faulty-tier predictor.

    Args:
        n_tiers: Number of device tiers (output classes).
        hidden: GCN layer widths.
        epochs / batch_size / lr: Training hyperparameters.
        seed: Weight-init and shuffling seed.
        backend: nn tensor backend ("numpy", "torch", ...); None consults
            ``$REPRO_NN_BACKEND`` and falls back to the numpy oracle.
    """

    def __init__(
        self,
        n_tiers: int = 2,
        hidden: Sequence[int] = (32, 32),
        epochs: int = 40,
        batch_size: int = 32,
        lr: float = 1e-2,
        weight_decay: float = 1e-4,
        seed: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        self.n_tiers = n_tiers
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.seed = seed
        self.backend = backend
        self.scaler = StandardScaler()
        self.model = GraphClassifier(
            N_FEATURES, n_tiers, hidden=self.hidden, seed=seed, backend=backend
        )
        self._fitted = False

    def fit(self, graphs: Sequence[GraphData]) -> List[float]:
        """Train on labeled sub-graphs (``g.y`` = faulty tier).

        Returns the per-epoch loss history.
        """
        labeled = [g for g in graphs if g.y >= 0]
        if not labeled:
            raise ValueError("no labeled graphs to train on")
        normed = self.scaler.fit_transform(labeled)
        counts = np.bincount([g.y for g in normed], minlength=self.n_tiers).astype(float)
        counts[counts == 0] = 1.0
        class_weights = counts.sum() / (self.n_tiers * counts)
        history = train_graph_classifier(
            self.model,
            normed,
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            weight_decay=self.weight_decay,
            class_weights=class_weights,
            seed=self.seed,
        )
        self._fitted = True
        return history

    def predict_proba(self, graphs: Sequence[GraphData]) -> np.ndarray:
        """Per-graph tier probabilities ``[p_tier0, p_tier1, ...]``."""
        if not self._fitted:
            raise RuntimeError("TierPredictor is not fitted")
        if not graphs:
            return np.zeros((0, self.n_tiers))
        batch = build_batch(self.scaler.transform(list(graphs)))
        return self.model.predict_proba(batch)

    def predict(self, graphs: Sequence[GraphData]) -> np.ndarray:
        """Predicted faulty tier per graph."""
        return np.argmax(self.predict_proba(graphs), axis=1)

    def confidence(self, graphs: Sequence[GraphData]) -> np.ndarray:
        """``max(p_top, p_bottom)`` — the policy's confidence score ``p``."""
        return self.predict_proba(graphs).max(axis=1)

    def accuracy(self, graphs: Sequence[GraphData]) -> float:
        """Fraction of graphs whose predicted tier matches ``g.y``."""
        labeled = [g for g in graphs if g.y >= 0]
        if not labeled:
            return 0.0
        preds = self.predict(labeled)
        return float(np.mean(preds == np.asarray([g.y for g in labeled])))
