"""Sub-graph node features (paper Table II) and extraction to GNN inputs.

Thirteen features per node — seven global circuit-level descriptors, two
sub-graph-local degrees, and four statistics over the node's Topedges that
fold the top level of the heterogeneous graph into numerical features:

====  =================================================  =========
idx   description                                        type
====  =================================================  =========
0     number of fan-in edges in the circuit              numerical
1     number of fan-out edges in the circuit             numerical
2     number of Topedges connected                       numerical
3     tier-level location                                binary
4     level in topological order                         numerical
5     whether it is a gate output                        binary
6     whether it connects to an MIV                      binary
7     number of fan-in edges in the sub-graph            numerical
8     number of fan-out edges in the sub-graph           numerical
9     mean length of Topedges connected                  numerical
10    std of length of Topedges connected                numerical
11    mean number of MIVs passed through by Topedges     numerical
12    std of number of MIVs passed through by Topedges   numerical
====  =================================================  =========
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.data import GraphData
from .hetgraph import HetGraph

__all__ = ["FEATURE_NAMES", "FeatureExtractor", "StandardScaler", "graph_feature_vector"]

FEATURE_NAMES = (
    "n_fanin_circuit",
    "n_fanout_circuit",
    "n_topedges",
    "tier_location",
    "topo_level",
    "is_gate_output",
    "connects_miv",
    "n_fanin_subgraph",
    "n_fanout_subgraph",
    "mean_topedge_length",
    "std_topedge_length",
    "mean_topedge_mivs",
    "std_topedge_mivs",
)

N_FEATURES = len(FEATURE_NAMES)


def _masked_stats(values: np.ndarray, mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Column-wise mean/std of ``values`` over rows where ``mask`` is True."""
    counts = mask.sum(axis=0).astype(float)
    safe = np.maximum(counts, 1.0)
    v = np.where(mask, values, 0.0)
    mean = v.sum(axis=0) / safe
    var = (np.where(mask, (values - mean[None, :]) ** 2, 0.0)).sum(axis=0) / safe
    mean[counts == 0] = 0.0
    var[counts == 0] = 0.0
    return mean, np.sqrt(var)


class FeatureExtractor:
    """Builds Table II feature matrices and GNN sub-graphs for one design."""

    def __init__(self, het: HetGraph) -> None:
        self.het = het
        n = het.n_nodes
        src, dst = het.edges
        fanin = np.bincount(dst, minlength=n).astype(float)
        fanout = np.bincount(src, minlength=n).astype(float)
        ntop = het.cone_mask.sum(axis=0).astype(float)
        d_mean, d_std = _masked_stats(het.topedge_dist.astype(float), het.cone_mask)
        m_mean, m_std = _masked_stats(het.topedge_miv.astype(float), het.cone_mask)
        max_level = float(het.level.max()) or 1.0
        self.global_features = np.stack(
            [
                fanin,
                fanout,
                ntop,
                het.tier.astype(float),
                het.level / max_level,
                het.is_output.astype(float),
                het.connects_miv.astype(float),
            ],
            axis=1,
        )
        self.topedge_stats = np.stack([d_mean, d_std, m_mean, m_std], axis=1)

    def subgraph(
        self,
        mask: np.ndarray,
        y: int = -1,
        node_y: Optional[np.ndarray] = None,
        meta: Optional[dict] = None,
    ) -> GraphData:
        """Extract the induced sub-graph for a back-trace candidate mask.

        Args:
            mask: Boolean node-membership mask from
                :func:`repro.core.backtrace.backtrace`.
            y: Graph-level label (faulty tier) or -1.
            node_y: Optional labels over the *original* node index space
                (e.g. 1 for the faulty MIV node); sliced down to the
                sub-graph here.
            meta: Extra payload stored on the GraphData (merged with the
                node index map).

        Returns:
            GraphData with the 13-column feature matrix, induced edges, and
            ``meta['nodes']`` mapping sub-graph rows back to HetGraph nodes.
        """
        nodes = np.nonzero(mask)[0]
        if len(nodes) == 0:
            raise ValueError("empty sub-graph: back-trace produced no candidates")
        pos = np.full(self.het.n_nodes, -1, dtype=np.int64)
        pos[nodes] = np.arange(len(nodes))
        src, dst = self.het.edges
        keep = mask[src] & mask[dst]
        sub_src = pos[src[keep]]
        sub_dst = pos[dst[keep]]

        sub_fanin = np.bincount(sub_dst, minlength=len(nodes)).astype(float)
        sub_fanout = np.bincount(sub_src, minlength=len(nodes)).astype(float)
        x = np.concatenate(
            [
                self.global_features[nodes],
                np.stack([sub_fanin, sub_fanout], axis=1),
                self.topedge_stats[nodes],
            ],
            axis=1,
        )
        full_meta = {"nodes": nodes}
        if meta:
            full_meta.update(meta)
        return GraphData(
            x=x,
            edges=(sub_src, sub_dst),
            y=y,
            node_y=None if node_y is None else np.asarray(node_y, dtype=float)[nodes],
            node_mask=(self.het.kind[nodes] == 2),  # MIV nodes
            meta=full_meta,
        )


class StandardScaler:
    """Per-feature z-normalization fitted on training sub-graphs."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, graphs) -> "StandardScaler":
        stacked = np.concatenate([g.x for g in graphs], axis=0)
        self.mean_ = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        std[std == 0] = 1.0
        self.std_ = std
        return self

    def transform(self, graphs) -> list:
        """Return new GraphData objects with normalized features."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        out = []
        for g in graphs:
            scaled = GraphData(
                x=(g.x - self.mean_) / self.std_,
                edges=g.edges,
                y=g.y,
                node_y=g.node_y,
                node_mask=g.node_mask,
                meta=g.meta,
            )
            # Feature scaling leaves the topology untouched, so the copy can
            # share the source graph's normalized adjacency.  Materializing it
            # on the source means every model transforming the same sub-graph
            # (tier, MIV, classifier) reuses one matrix instead of paying the
            # sparse construction three times per request.
            scaled._a_hat = g.a_hat()
            out.append(scaled)
        return out

    def fit_transform(self, graphs) -> list:
        return self.fit(graphs).transform(graphs)


def graph_feature_vector(graph: GraphData) -> np.ndarray:
    """Mean node-feature vector of a sub-graph (the Fig. 5 PCA input)."""
    return graph.x.mean(axis=0)
