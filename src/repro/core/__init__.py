"""The paper's contribution: heterogeneous graphs, back-tracing, GNN models,
PR-threshold selection, pruning/reordering policy, end-to-end framework."""

from .hetgraph import HetGraph, NodeKind
from .backtrace import backtrace
from .features import FEATURE_NAMES, N_FEATURES, FeatureExtractor, StandardScaler, graph_feature_vector
from .tier_predictor import TierPredictor
from .miv_pinpointer import MivPinpointer
from .classifier import PruneReorderClassifier
from .pr_curve import PRPoint, precision_recall_curve, select_threshold
from .oversample import insert_dummy_buffer, oversample_minority
from .augment import augmentation_configs, build_training_sets, collect_graphs
from .policy import PolicyResult, PruneReorderPolicy
from .pipeline import BackupDictionary, M3DDiagnosisFramework
from .io import load_framework, save_framework
from .training import train_graph_classifier, train_node_classifier

__all__ = [
    "HetGraph",
    "NodeKind",
    "backtrace",
    "FEATURE_NAMES",
    "N_FEATURES",
    "FeatureExtractor",
    "StandardScaler",
    "graph_feature_vector",
    "TierPredictor",
    "MivPinpointer",
    "PruneReorderClassifier",
    "PRPoint",
    "precision_recall_curve",
    "select_threshold",
    "insert_dummy_buffer",
    "oversample_minority",
    "augmentation_configs",
    "build_training_sets",
    "collect_graphs",
    "PolicyResult",
    "PruneReorderPolicy",
    "BackupDictionary",
    "load_framework",
    "save_framework",
    "M3DDiagnosisFramework",
    "train_graph_classifier",
    "train_node_classifier",
]
