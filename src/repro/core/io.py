"""Serialization of trained frameworks.

Saves/loads the three GNN models, their input scalers, and the PR threshold
``Tp`` in a single ``.npz`` archive, so a framework trained once can be
deployed on new failure logs (or new design configurations — the whole point
of transferability) without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .classifier import PruneReorderClassifier
from .miv_pinpointer import MivPinpointer
from .pipeline import M3DDiagnosisFramework
from .tier_predictor import TierPredictor

__all__ = ["save_framework", "load_framework"]

_FORMAT_VERSION = 1


def _pack(prefix: str, arrays: Dict[str, np.ndarray], state: List[np.ndarray]) -> None:
    for i, a in enumerate(state):
        arrays[f"{prefix}_p{i}"] = a


def _unpack(prefix: str, data) -> List[np.ndarray]:
    out: List[np.ndarray] = []
    i = 0
    while f"{prefix}_p{i}" in data:
        out.append(data[f"{prefix}_p{i}"])
        i += 1
    return out


def save_framework(fw: M3DDiagnosisFramework, path: Union[str, Path]) -> None:
    """Serialize a fitted framework to ``path`` (``.npz``).

    Raises:
        RuntimeError: if the framework has not been fitted.
    """
    if not fw._fitted:
        raise RuntimeError("cannot save an unfitted framework")
    arrays: Dict[str, np.ndarray] = {}
    meta = {
        "version": _FORMAT_VERSION,
        "tp_threshold": fw.tp_threshold,
        "min_precision": fw.min_precision,
        "hidden": list(fw.hidden),
        "epochs": fw.epochs,
        "seed": fw.seed,
        "n_tiers": fw.tier_predictor.n_tiers,
        "has_miv": fw.miv_pinpointer is not None,
        "has_classifier": fw.classifier is not None,
        "miv_threshold": fw.miv_pinpointer.threshold if fw.miv_pinpointer else 0.5,
    }
    _pack("tier", arrays, fw.tier_predictor.model.state_dict())
    arrays["tier_scaler_mean"] = fw.tier_predictor.scaler.mean_
    arrays["tier_scaler_std"] = fw.tier_predictor.scaler.std_
    if fw.miv_pinpointer is not None:
        _pack("miv", arrays, fw.miv_pinpointer.model.state_dict())
        arrays["miv_scaler_mean"] = fw.miv_pinpointer.scaler.mean_
        arrays["miv_scaler_std"] = fw.miv_pinpointer.scaler.std_
    if fw.classifier is not None:
        _pack("clf", arrays, fw.classifier.model.state_dict())
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(Path(path), **arrays)


def load_framework(
    path: Union[str, Path], backend: Optional[str] = None
) -> M3DDiagnosisFramework:
    """Load a framework saved by :func:`save_framework`.

    The returned framework is ready for :meth:`policy_for`/:meth:`diagnose`.
    Saved weights are backend-neutral numpy, so ``backend`` freely re-homes a
    framework trained on one backend onto another (e.g. train on torch-cuda,
    deploy on the numpy oracle).
    """
    data = np.load(Path(path))
    meta = json.loads(bytes(data["meta_json"]).decode())
    if meta["version"] != _FORMAT_VERSION:
        raise ValueError(f"unsupported framework format version {meta['version']}")

    fw = M3DDiagnosisFramework(
        min_precision=meta["min_precision"],
        hidden=tuple(meta["hidden"]),
        epochs=meta["epochs"],
        seed=meta["seed"],
        use_miv_pinpointer=meta["has_miv"],
        use_classifier=meta["has_classifier"],
        n_tiers=meta["n_tiers"],
        nn_backend=backend,
    )
    fw.tp_threshold = float(meta["tp_threshold"])

    fw.tier_predictor = TierPredictor(
        n_tiers=meta["n_tiers"], hidden=tuple(meta["hidden"]), seed=meta["seed"], backend=backend
    )
    fw.tier_predictor.model.load_state_dict(_unpack("tier", data))
    fw.tier_predictor.scaler.mean_ = data["tier_scaler_mean"]
    fw.tier_predictor.scaler.std_ = data["tier_scaler_std"]
    fw.tier_predictor._fitted = True

    if meta["has_miv"]:
        fw.miv_pinpointer = MivPinpointer(
            hidden=tuple(meta["hidden"]), seed=meta["seed"] + 1, backend=backend
        )
        fw.miv_pinpointer.model.load_state_dict(_unpack("miv", data))
        fw.miv_pinpointer.scaler.mean_ = data["miv_scaler_mean"]
        fw.miv_pinpointer.scaler.std_ = data["miv_scaler_std"]
        fw.miv_pinpointer.threshold = float(meta["miv_threshold"])
        fw.miv_pinpointer._fitted = True
    else:
        fw.miv_pinpointer = None

    if meta["has_classifier"]:
        clf = PruneReorderClassifier(fw.tier_predictor, seed=meta["seed"] + 2, backend=backend)
        clf.model.load_state_dict(_unpack("clf", data))
        clf._fitted = True
        fw.classifier = clf
    fw._fitted = True
    return fw
