"""Prune/reorder Classifier (paper Section V-C).

A GCN graph classifier that decides, for samples where the Tier-predictor is
confident (*Predicted Positive*), whether the tier prediction can be trusted
enough to *prune* the fault-free tier from the report (True Positive) or
whether the report should only be *reordered* (False Positive).

Network-based deep transfer learning: the model reuses the Tier-predictor's
pre-trained GCN layers frozen, with fresh trainable classification layers
and pooling on top.  The heavily imbalanced TP:FP training set (≈ 90:1 in
the paper) is balanced with dummy-buffer oversampling.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence

import numpy as np

from ..nn.data import GraphData, build_batch
from ..nn.model import GraphClassifier
from .features import StandardScaler
from .oversample import oversample_minority
from .tier_predictor import TierPredictor
from .training import train_graph_classifier

__all__ = ["PruneReorderClassifier"]

#: Class ids of the prune/reorder decision.
REORDER, PRUNE = 0, 1


class PruneReorderClassifier:
    """Transfer-learned prune-vs-reorder decision model.

    Args:
        tier_predictor: Trained Tier-predictor to transfer the encoder from.
        head_hidden: Widths of the trainable classification layers.
        epochs / batch_size / lr: Training hyperparameters.
        oversample_seed: Dummy-buffer oversampling seed.
        seed: Head weight-init seed.
        backend: nn tensor backend for this model; None inherits the
            Tier-predictor's (the transferred encoder is migrated when the
            backends differ — weights carry over exactly).
    """

    def __init__(
        self,
        tier_predictor: TierPredictor,
        head_hidden: Sequence[int] = (16,),
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 5e-3,
        oversample_seed: int = 0,
        seed: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.oversample_seed = oversample_seed
        self.seed = seed
        self.backend = backend
        # Share the Tier-predictor's input normalization and freeze a deep
        # copy of its encoder (training the Classifier must not disturb the
        # Tier-predictor).
        self.scaler: StandardScaler = tier_predictor.scaler
        encoder = copy.deepcopy(tier_predictor.model.encoder)
        self.model = GraphClassifier(
            n_features=0,  # unused when an encoder is supplied
            n_classes=2,
            encoder=encoder,
            freeze_encoder=True,
            head_hidden=tuple(head_hidden),
            seed=seed,
            backend=backend,
        )
        self._fitted = False

    def fit(
        self,
        true_positive: Sequence[GraphData],
        false_positive: Sequence[GraphData],
    ) -> List[float]:
        """Train on Predicted Positive sub-graphs split by tier correctness.

        Args:
            true_positive: Sub-graphs where the confident tier prediction was
                correct (label: PRUNE).
            false_positive: Sub-graphs where it was wrong (label: REORDER);
                oversampled with dummy buffers to balance.
        """
        if not true_positive:
            raise ValueError("no True Positive graphs to train on")
        minority = oversample_minority(
            list(true_positive), list(false_positive), seed=self.oversample_seed
        )
        graphs: List[GraphData] = []
        for g in true_positive:
            graphs.append(self._relabel(g, PRUNE))
        for g in minority:
            graphs.append(self._relabel(g, REORDER))
        normed = self.scaler.transform(graphs)
        history = train_graph_classifier(
            self.model,
            normed,
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed,
        )
        self._fitted = True
        return history

    @staticmethod
    def _relabel(g: GraphData, label: int) -> GraphData:
        return GraphData(
            x=g.x, edges=g.edges, y=label, node_y=g.node_y, node_mask=g.node_mask, meta=g.meta
        )

    def prune_probability(self, graphs: Sequence[GraphData]) -> np.ndarray:
        """Probability that pruning is safe, per sub-graph."""
        if not self._fitted:
            raise RuntimeError("Classifier is not fitted")
        if not graphs:
            return np.zeros(0)
        batch = build_batch(self.scaler.transform(list(graphs)))
        return self.model.predict_proba(batch)[:, PRUNE]

    def should_prune_batch(
        self, graphs: Sequence[GraphData], threshold: float = 0.5
    ) -> List[bool]:
        """Prune-vs-reorder decisions for many samples from one forward."""
        return [bool(p > threshold) for p in self.prune_probability(list(graphs))]

    def should_prune(self, graph: GraphData, threshold: float = 0.5) -> bool:
        """The policy's prune-vs-reorder decision for one sample."""
        return self.should_prune_batch([graph], threshold)[0]
