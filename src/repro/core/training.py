"""Shared mini-batch training loops for the framework's GCN models."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.data import GraphData, build_batch
from ..nn.loss import bce_with_logits, softmax_cross_entropy
from ..nn.model import GraphClassifier, NodeClassifier
from ..nn.optim import Adam

__all__ = ["train_graph_classifier", "train_node_classifier"]


def _batches(
    graphs: Sequence[GraphData], batch_size: int, rng: np.random.Generator
) -> List[List[GraphData]]:
    order = rng.permutation(len(graphs))
    return [
        [graphs[i] for i in order[start : start + batch_size]]
        for start in range(0, len(graphs), batch_size)
    ]


def train_graph_classifier(
    model: GraphClassifier,
    graphs: Sequence[GraphData],
    epochs: int = 40,
    batch_size: int = 32,
    lr: float = 5e-3,
    weight_decay: float = 1e-5,
    class_weights: Optional[np.ndarray] = None,
    seed: int = 0,
    callback: Optional[Callable[[int, float], None]] = None,
    val_graphs: Optional[Sequence[GraphData]] = None,
    patience: Optional[int] = None,
) -> List[float]:
    """Train a graph classifier with Adam + softmax cross-entropy.

    Args:
        val_graphs: Optional held-out graphs; when given with ``patience``,
            training stops after that many epochs without a validation-
            accuracy improvement and the best weights are restored.

    Returns:
        Per-epoch mean training losses.
    """
    rng = np.random.default_rng(seed)
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    history: List[float] = []
    best_acc = -1.0
    best_state: Optional[List[np.ndarray]] = None
    stale = 0
    val_batch = build_batch(list(val_graphs)) if val_graphs else None
    for epoch in range(epochs):
        losses: List[float] = []
        for chunk in _batches(graphs, batch_size, rng):
            batch = build_batch(chunk)
            logits = model.forward(batch)
            loss, dlogits = softmax_cross_entropy(logits, batch.y, class_weights)
            opt.zero_grad()
            model.backward(dlogits)
            opt.step()
            losses.append(loss)
        mean_loss = float(np.mean(losses))
        history.append(mean_loss)
        if callback is not None:
            callback(epoch, mean_loss)
        if val_batch is not None and patience is not None:
            val_logits = model.backend.to_numpy(model.forward(val_batch))
            preds = np.argmax(val_logits, axis=1)
            acc = float(np.mean(preds == val_batch.y))
            if acc > best_acc:
                best_acc = acc
                best_state = model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= patience:
                    break
    if best_state is not None:
        model.load_state_dict(best_state)
    return history


def train_node_classifier(
    model: NodeClassifier,
    graphs: Sequence[GraphData],
    epochs: int = 40,
    batch_size: int = 32,
    lr: float = 5e-3,
    weight_decay: float = 1e-5,
    pos_weight: float = 1.0,
    seed: int = 0,
) -> List[float]:
    """Train a node classifier with masked binary cross-entropy.

    Only nodes where ``node_mask`` is True (MIV nodes) contribute to the
    loss; ``pos_weight`` counteracts the faulty/healthy imbalance.
    """
    rng = np.random.default_rng(seed)
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    history: List[float] = []
    for _epoch in range(epochs):
        losses: List[float] = []
        for chunk in _batches(graphs, batch_size, rng):
            batch = build_batch(chunk)
            if not batch.node_mask.any():
                continue
            logits = model.forward(batch)
            loss, dlogits = bce_with_logits(
                logits, batch.node_y, mask=batch.node_mask, pos_weight=pos_weight
            )
            opt.zero_grad()
            model.backward(dlogits)
            opt.step()
            losses.append(loss)
        if losses:
            history.append(float(np.mean(losses)))
    return history
