"""Precision-recall analysis for the Tier-predictor (paper Section V-B).

Samples are *Actual Positive* when the predicted tier equals the ground
truth and *Predicted Positive* when the prediction confidence exceeds the
classification threshold.  The pruning threshold ``Tp`` is the minimum
threshold on the training PR curve with precision ≥ the target (99%), which
bounds the accuracy the pruning step can lose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["PRPoint", "precision_recall_curve", "select_threshold"]


@dataclass(frozen=True)
class PRPoint:
    """One PR-curve point: threshold, precision, recall."""

    threshold: float
    precision: float
    recall: float


def precision_recall_curve(
    confidences: Sequence[float], correct: Sequence[bool]
) -> List[PRPoint]:
    """PR points over every distinct confidence threshold.

    Args:
        confidences: Tier-predictor confidence ``max(p_top, p_bottom)`` per
            sample.
        correct: Whether the predicted tier matched the ground truth
            (Actual Positive).

    Returns:
        Points sorted by increasing threshold.  Precision at a threshold
        counts samples with confidence strictly above it; at the highest
        point (no predicted positives) precision is defined as 1.0.
    """
    conf = np.asarray(confidences, dtype=float)
    corr = np.asarray(correct, dtype=bool)
    if conf.shape != corr.shape:
        raise ValueError("confidences and correctness must align")
    thresholds = np.unique(np.concatenate([[0.0], conf]))
    points: List[PRPoint] = []
    n_pos = int(corr.sum())
    for t in thresholds:
        predicted = conf > t
        tp = int((predicted & corr).sum())
        fp = int((predicted & ~corr).sum())
        fn = int((~predicted & corr).sum())
        precision = tp / (tp + fp) if (tp + fp) else 1.0
        recall = tp / (tp + fn) if (tp + fn) else (1.0 if n_pos == 0 else 0.0)
        points.append(PRPoint(threshold=float(t), precision=precision, recall=recall))
    return points


def select_threshold(
    points: Sequence[PRPoint], min_precision: float = 0.99
) -> float:
    """The paper's ``Tp``: minimum threshold with precision ≥ ``min_precision``.

    Falls back to the highest-precision point when no threshold reaches the
    target (then pruning is effectively disabled for low-confidence samples).
    """
    qualifying = [p for p in points if p.precision >= min_precision]
    if qualifying:
        return min(p.threshold for p in qualifying)
    return max(points, key=lambda p: p.precision).threshold
