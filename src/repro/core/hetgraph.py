"""Heterogeneous graph construction (paper Section III-A, Table I).

Circuit level: one node per fault site — every gate pin (stem nodes for
driver/output pins, branch nodes for input pins) plus one node per MIV.
Edges are input-pin→output-pin (inside gates) and stem→branch (along nets),
routed stem→MIV→branch when the sink sits on the other tier.

Top level: one *Topnode* per observation point (scan-flop D input or primary
output), with a *Topedge* to every circuit node in its fan-in cone carrying
two features — the shortest distance between the ends (``D_top``) and the
number of MIVs along that shortest path (``N_MIV``).  As in the paper, the
top level exists to accelerate back-tracing and is folded into numerical
node features (see :mod:`repro.core.features`); the sub-graphs handed to the
GNNs are circuit-level only.

Construction cost is O(|V| + |E|) per Topnode BFS and is paid once per
design; every failure log reuses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..atpg.faults import FaultSite
from ..m3d.miv import MIV, miv_net_set
from ..netlist.netlist import EXTERNAL_DRIVER, Netlist
from ..netlist.topology import bfs_distance_from_observation

__all__ = ["NodeKind", "HetGraph"]


class NodeKind:
    """Circuit-level node type codes."""

    STEM = 0
    BRANCH = 1
    MIV = 2


@dataclass
class HetGraph:
    """The built heterogeneous graph of one prepared design.

    Node arrays are aligned: index ``v`` describes one circuit-level node.

    Attributes:
        nl: The underlying design.
        kind / net / gate / pin / miv_id: Node identity columns.
        tier: Node tier (0/1; 0.5 for MIV nodes which span tiers).
        level: Topological level of the node's net.
        is_output: Whether the node is a gate output pin.
        connects_miv: Whether the node touches an MIV.
        edges: Circuit-level directed edge arrays (src, dst).
        topnode_nets: Observation net per Topnode.
        cone_mask: (n_topnodes, n_nodes) fan-in cone membership.
        topedge_dist / topedge_miv: Topedge features (-1 outside the cone).
        transitions: (n_nets, n_patterns) per-net transition mask used to
            memorize which nodes switch under each TDF pattern.
    """

    nl: Netlist
    kind: np.ndarray
    net: np.ndarray
    gate: np.ndarray
    pin: np.ndarray
    miv_id: np.ndarray
    tier: np.ndarray
    level: np.ndarray
    is_output: np.ndarray
    connects_miv: np.ndarray
    edges: Tuple[np.ndarray, np.ndarray]
    topnode_nets: List[int]
    cone_mask: np.ndarray
    topedge_dist: np.ndarray
    topedge_miv: np.ndarray
    transitions: np.ndarray
    stem_of_net: np.ndarray
    branch_index: Dict[Tuple[int, int], int]
    miv_index: Dict[int, int]
    topnode_of_net: Dict[int, int]

    @property
    def n_nodes(self) -> int:
        return len(self.kind)

    @property
    def n_topnodes(self) -> int:
        return len(self.topnode_nets)

    def node_transitions(self, pattern: int) -> np.ndarray:
        """Per-node transition mask under one pattern."""
        return self.transitions[self.net, pattern]

    def node_of_site(self, site: FaultSite) -> Optional[int]:
        """Circuit-level node corresponding to a fault site."""
        if site.kind == "stem":
            v = int(self.stem_of_net[site.net])
            return v if v >= 0 else None
        if site.kind == "branch":
            return self.branch_index.get(site.sinks[0])
        return self.miv_index.get(site.miv_id)

    def site_of_node(self, v: int) -> Tuple[str, int, Tuple[Tuple[int, int], ...]]:
        """(kind name, net, sinks) identity triple of a node."""
        k = int(self.kind[v])
        if k == NodeKind.STEM:
            return ("stem", int(self.net[v]), tuple(self.nl.nets[int(self.net[v])].sinks))
        if k == NodeKind.BRANCH:
            return ("branch", int(self.net[v]), ((int(self.gate[v]), int(self.pin[v])),))
        return ("miv", int(self.net[v]), ())

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        nl: Netlist,
        mivs: Sequence[MIV],
        transitions: np.ndarray,
    ) -> "HetGraph":
        """Construct the heterogeneous graph for a tier-assigned design.

        Args:
            nl: The design.
            mivs: Its MIVs (from :func:`repro.m3d.extract_mivs`).
            transitions: (n_nets, n_patterns) transition matrix from the
                good-machine simulation of the TDF pattern set.
        """
        n_nets = nl.n_nets
        levels = np.asarray(nl.net_levels(), dtype=np.int32)
        miv_nets = miv_net_set(mivs)
        miv_by_net: Dict[int, MIV] = {m.net: m for m in mivs}
        far_pins = {
            (g, p): m.id for m in mivs for (g, p) in m.far_sinks
        }

        kind: List[int] = []
        net: List[int] = []
        gate: List[int] = []
        pin: List[int] = []
        miv_id: List[int] = []
        tier: List[float] = []
        is_output: List[bool] = []
        connects: List[bool] = []

        stem_of_net = np.full(n_nets, -1, dtype=np.int64)
        branch_index: Dict[Tuple[int, int], int] = {}
        miv_index: Dict[int, int] = {}

        def add_node(k: int, n: int, g: int, p: int, m: int, t: float, out: bool, cm: bool) -> int:
            v = len(kind)
            kind.append(k)
            net.append(n)
            gate.append(g)
            pin.append(p)
            miv_id.append(m)
            tier.append(t)
            is_output.append(out)
            connects.append(cm)
            return v

        for n in nl.nets:
            driven = n.driver != EXTERNAL_DRIVER
            t = nl.net_tier(n.id)
            stem_of_net[n.id] = add_node(
                NodeKind.STEM, n.id, n.driver, -1, -1, float(t), driven, n.id in miv_nets
            )
        for g in nl.gates:
            for p, nid in enumerate(g.fanin):
                via_miv = (g.id, p) in far_pins
                branch_index[(g.id, p)] = add_node(
                    NodeKind.BRANCH, nid, g.id, p, -1, float(g.tier), False, via_miv
                )
        for m in mivs:
            miv_index[m.id] = add_node(
                NodeKind.MIV, m.net, -1, -1, m.id, 0.5, False, True
            )

        src: List[int] = []
        dst: List[int] = []
        for g in nl.gates:
            out_stem = int(stem_of_net[g.out])
            for p, nid in enumerate(g.fanin):
                b = branch_index[(g.id, p)]
                mid = far_pins.get((g.id, p))
                if mid is None:
                    src.append(int(stem_of_net[nid]))
                    dst.append(b)
                else:
                    mv = miv_index[mid]
                    src.append(int(stem_of_net[nid]))
                    dst.append(mv)
                    src.append(mv)
                    dst.append(b)
                src.append(b)
                dst.append(out_stem)
        # MIVs that only feed a far-tier observation still hang off the stem.
        for m in mivs:
            if not m.far_sinks:
                src.append(int(stem_of_net[m.net]))
                dst.append(miv_index[m.id])

        edges = (np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64))
        # Deduplicate stem→MIV multi-edges.
        pairs = np.stack(edges, axis=1)
        pairs = np.unique(pairs, axis=0)
        edges = (pairs[:, 0], pairs[:, 1])

        node_net = np.asarray(net, dtype=np.int64)
        node_level = levels[node_net]

        # ------------------------------------------------- top-level graph
        topnode_nets = list(nl.observed_nets)
        topnode_of_net = {n: i for i, n in enumerate(topnode_nets)}
        n_nodes = len(kind)
        n_top = len(topnode_nets)
        cone_mask = np.zeros((n_top, n_nodes), dtype=bool)
        topedge_dist = np.full((n_top, n_nodes), -1, dtype=np.int32)
        topedge_miv = np.full((n_top, n_nodes), -1, dtype=np.int32)

        kind_arr = np.asarray(kind, dtype=np.int8)
        gate_arr = np.asarray(gate, dtype=np.int64)

        gate_out = np.asarray(
            [g.out for g in nl.gates] + [0], dtype=np.int64
        )  # sentinel for -1

        for t_idx, obs_net in enumerate(topnode_nets):
            dist_net, miv_cnt = bfs_distance_from_observation(nl, obs_net, miv_nets)
            dist_arr = np.full(n_nets, -1, dtype=np.int32)
            miv_arr = np.full(n_nets, -1, dtype=np.int32)
            for k, v in dist_net.items():
                dist_arr[k] = v
            for k, v in miv_cnt.items():
                miv_arr[k] = v

            # Stems: direct net-level values.
            stems = kind_arr == NodeKind.STEM
            nd = dist_arr[node_net]
            nm = miv_arr[node_net]
            sel = stems & (nd >= 0)
            cone_mask[t_idx, sel] = True
            topedge_dist[t_idx, sel] = nd[sel]
            topedge_miv[t_idx, sel] = nm[sel]

            # Branches: reach the observation through their gate's output.
            branches = kind_arr == NodeKind.BRANCH
            b_out = gate_out[np.where(branches, gate_arr, -1)]
            bd = dist_arr[b_out]
            bm = miv_arr[b_out]
            sel = branches & (bd >= 0)
            cone_mask[t_idx, sel] = True
            topedge_dist[t_idx, sel] = bd[sel] + 1
            # A branch fed through an MIV adds one more crossing on its path.
            topedge_miv[t_idx, sel] = bm[sel] + np.asarray(connects)[sel]

            # MIV nodes: through any far sink's gate, or the observation itself.
            for m in mivs:
                v = miv_index[m.id]
                best_d = None
                best_m = None
                for (gid, _p) in m.far_sinks:
                    out = nl.gates[gid].out
                    if dist_arr[out] >= 0:
                        d = int(dist_arr[out]) + 1
                        mc = int(miv_arr[out]) + 1
                        if best_d is None or d < best_d:
                            best_d, best_m = d, mc
                if m.observed_faulty and obs_net == m.net:
                    best_d, best_m = 0, 1
                if best_d is not None:
                    cone_mask[t_idx, v] = True
                    topedge_dist[t_idx, v] = best_d
                    topedge_miv[t_idx, v] = best_m

        return cls(
            nl=nl,
            kind=kind_arr,
            net=node_net,
            gate=gate_arr,
            pin=np.asarray(pin, dtype=np.int32),
            miv_id=np.asarray(miv_id, dtype=np.int64),
            tier=np.asarray(tier, dtype=np.float64),
            level=node_level.astype(np.float64),
            is_output=np.asarray(is_output, dtype=bool),
            connects_miv=np.asarray(connects, dtype=bool),
            edges=edges,
            topnode_nets=topnode_nets,
            cone_mask=cone_mask,
            topedge_dist=topedge_dist,
            topedge_miv=topedge_miv,
            transitions=np.asarray(transitions, dtype=bool),
            stem_of_net=stem_of_net,
            branch_index=branch_index,
            miv_index=miv_index,
            topnode_of_net=topnode_of_net,
        )
