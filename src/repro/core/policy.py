"""Candidate pruning and reordering policy (paper Section V, Figs. 7 and 8).

Given an ATPG diagnosis report and the GNN predictions for the same failure
log:

1. Candidates equivalent to MIVs the MIV-pinpointer flags as faulty move to
   the top of the report (and become unprunable — this is what recovers the
   accuracy the Tier-predictor alone would lose, Section VII-B).
2. The Tier-predictor's confidence ``p = max(p_top, p_bottom)`` is compared
   against the PR-curve threshold ``Tp``:

   * low confidence → *reorder*: candidates in the predicted faulty tier
     move to the top;
   * high confidence → the transfer-learned Classifier picks *prune*
     (drop all candidates in the tier predicted fault-free) or *reorder*.

3. Pruned candidates are recorded in a backup dictionary so a failed PFA can
   fall back to them, guaranteeing ATPG-level accuracy at a small memory
   cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from ..diagnosis.report import Candidate, DiagnosisReport
from ..m3d.miv import MIV
from ..nn.data import GraphData
from .classifier import PruneReorderClassifier
from .hetgraph import HetGraph
from .miv_pinpointer import MivPinpointer
from .tier_predictor import TierPredictor

__all__ = ["PolicyResult", "PruneReorderPolicy"]


@dataclass
class PolicyResult:
    """Outcome of applying the policy to one report.

    Attributes:
        report: The final (pruned/reordered) report.
        action: "prune", "reorder", or "reorder_lowconf".
        pruned: Candidates removed (the backup-dictionary entry).
        predicted_tier: Tier-predictor's faulty-tier prediction.
        confidence: Tier-predictor confidence ``p``.
        faulty_mivs: MIV ids the MIV-pinpointer flagged.
    """

    report: DiagnosisReport
    action: str
    pruned: List[Candidate]
    predicted_tier: int
    confidence: float
    faulty_mivs: List[int] = field(default_factory=list)


class PruneReorderPolicy:
    """Applies the GNN predictions to ATPG reports.

    Args:
        tier_predictor: Trained Tier-predictor.
        miv_pinpointer: Trained MIV-pinpointer (optional; None disables MIV
            prioritization — the Table XI ablation).
        classifier: Trained prune/reorder Classifier (optional; when None a
            confident tier prediction always prunes).
        het: The design's heterogeneous graph (maps MIV nodes to nets).
        tp_threshold: The PR-curve threshold ``Tp``.
        use_tier: Disable to ablate the Tier-predictor (Table XI).
    """

    def __init__(
        self,
        tier_predictor: Optional[TierPredictor],
        miv_pinpointer: Optional[MivPinpointer],
        classifier: Optional[PruneReorderClassifier],
        het: HetGraph,
        tp_threshold: float = 0.9,
        use_tier: bool = True,
    ) -> None:
        self.tier_predictor = tier_predictor
        self.miv_pinpointer = miv_pinpointer
        self.classifier = classifier
        self.het = het
        self.tp_threshold = tp_threshold
        self.use_tier = use_tier and tier_predictor is not None

    # ------------------------------------------------------------ MIV logic
    def _predicted_faulty_mivs(self, graph: GraphData) -> List[int]:
        if self.miv_pinpointer is None:
            return []
        nodes = self.miv_pinpointer.predict_faulty_mivs(graph)
        return [int(self.het.miv_id[v]) for v in nodes]

    def _equivalent_to_mivs(self, cand: Candidate, miv_ids: Sequence[int]) -> bool:
        """A candidate is equivalent to a flagged MIV when it names the MIV
        itself or any site on the MIV's net."""
        if not miv_ids:
            return False
        if cand.site.kind == "miv":
            return cand.site.miv_id in set(miv_ids)
        flagged_nets = {int(self.het.net[self.het.miv_index[m]]) for m in miv_ids
                        if m in self.het.miv_index}
        return cand.site.net in flagged_nets

    # --------------------------------------------------------------- policy
    def _assemble(
        self,
        report: DiagnosisReport,
        miv_ids: List[int],
        tier: int,
        p: float,
        clf_prune: Optional[bool],
    ) -> PolicyResult:
        """Turn one report's predictions into the final candidate ordering.

        Pure post-processing — every GNN forward has already happened (in a
        batch shared with the other reports), so this stays identical
        whether the report arrived alone or packed with a thousand others.
        """
        protected = [c for c in report.candidates if self._equivalent_to_mivs(c, miv_ids)]
        rest = [c for c in report.candidates if not self._equivalent_to_mivs(c, miv_ids)]

        if not self.use_tier:
            return PolicyResult(
                report=DiagnosisReport(candidates=protected + rest),
                action="reorder",
                pruned=[],
                predicted_tier=-1,
                confidence=0.0,
                faulty_mivs=miv_ids,
            )

        prune = False
        if p > self.tp_threshold:
            action = "prune"
            if self.classifier is not None:
                prune = bool(clf_prune)
                action = "prune" if prune else "reorder"
            else:
                prune = True
        else:
            action = "reorder_lowconf"

        if prune:
            kept = [c for c in rest if c.tier is None or c.tier == tier]
            pruned = [c for c in rest if not (c.tier is None or c.tier == tier)]
            final = protected + kept
        else:
            pruned = []
            in_tier = [c for c in rest if c.tier == tier]
            out_tier = [c for c in rest if c.tier != tier]
            final = protected + in_tier + out_tier

        return PolicyResult(
            report=DiagnosisReport(candidates=final),
            action=action,
            pruned=pruned,
            predicted_tier=tier,
            confidence=p,
            faulty_mivs=miv_ids,
        )

    def apply_batch(
        self, reports: Sequence[DiagnosisReport], graphs: Sequence[GraphData]
    ) -> List[PolicyResult]:
        """Prune/reorder many ATPG reports with batched GNN forwards.

        All sub-graphs are packed into one block-diagonal batch per model:
        one MIV-pinpointer forward, one Tier-predictor forward, and one
        Classifier forward over just the confident sub-set — three forwards
        total for the whole request batch instead of three per report.
        :meth:`apply` is this with a batch of one, so serving (batched) and
        offline (per-report) diagnosis share this single code path.
        """
        if len(reports) != len(graphs):
            raise ValueError(
                f"{len(reports)} report(s) but {len(graphs)} graph(s)"
            )
        if not graphs:
            return []
        graphs = list(graphs)

        if self.miv_pinpointer is not None:
            flagged = self.miv_pinpointer.predict_faulty_mivs_batch(graphs)
            miv_ids_per = [
                [int(self.het.miv_id[v]) for v in nodes] for nodes in flagged
            ]
        else:
            miv_ids_per = [[] for _ in graphs]

        if not self.use_tier:
            return [
                self._assemble(report, miv_ids, -1, 0.0, None)
                for report, miv_ids in zip(reports, miv_ids_per)
            ]

        proba = self.tier_predictor.predict_proba(graphs)
        tiers = np.argmax(proba, axis=1)
        confs = proba[np.arange(len(graphs)), tiers]

        # The Classifier only sees the confident ("Predicted Positive")
        # sub-set, again as one batch.
        prune_flags: dict = {}
        if self.classifier is not None:
            confident = [i for i in range(len(graphs)) if confs[i] > self.tp_threshold]
            if confident:
                decisions = self.classifier.should_prune_batch(
                    [graphs[i] for i in confident]
                )
                prune_flags = dict(zip(confident, decisions))

        return [
            self._assemble(
                report, miv_ids_per[i], int(tiers[i]), float(confs[i]),
                prune_flags.get(i),
            )
            for i, report in enumerate(reports)
        ]

    def apply(self, report: DiagnosisReport, graph: GraphData) -> PolicyResult:
        """Prune/reorder one ATPG report using the GNN predictions."""
        return self.apply_batch([report], [graph])[0]
