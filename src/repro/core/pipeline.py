"""End-to-end M3D fault-localization framework (paper Fig. 1).

``M3DDiagnosisFramework.fit`` trains the three GNN models and derives the
PR-curve threshold ``Tp`` from the training data; ``policy_for`` binds the
trained models to a target design (the same models transfer across design
configurations without retraining); ``diagnose`` post-processes one ATPG
report.  A :class:`BackupDictionary` records pruned candidates so the flow
is guaranteed to reach ATPG-level accuracy when the PFA falls back to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.cache import ArtifactCache

from ..diagnosis.report import Candidate, DiagnosisReport
from ..nn.backends import get_backend
from ..nn.data import GraphData
from ..obs import SpanTracer, profiled
from ..runtime.instrument import RuntimeStats
from ..tester.failure_log import FailureLog
from ..data.datagen import PreparedDesign
from ..data.datasets import SampleSet
from .backtrace import backtrace
from .classifier import PruneReorderClassifier
from .miv_pinpointer import MivPinpointer
from .policy import PolicyResult, PruneReorderPolicy
from .pr_curve import precision_recall_curve, select_threshold
from .tier_predictor import TierPredictor

__all__ = ["BackupDictionary", "M3DDiagnosisFramework"]


class BackupDictionary:
    """Pruned-candidate store keyed by chip id (paper Section VI-A).

    Whenever the pruning step removes candidates from a report they are
    recorded here; if PFA cannot find the defect in the pruned report the
    engineer falls back to this dictionary, recovering full ATPG accuracy.
    """

    def __init__(self) -> None:
        self._entries: Dict[object, List[Candidate]] = {}

    def record(self, chip_id: object, pruned: Sequence[Candidate]) -> None:
        if pruned:
            self._entries[chip_id] = list(pruned)

    def restore(self, chip_id: object, report: DiagnosisReport) -> DiagnosisReport:
        """The report with this chip's pruned candidates appended at the end."""
        extra = self._entries.get(chip_id, [])
        return DiagnosisReport(candidates=list(report.candidates) + list(extra))

    def __len__(self) -> int:
        return len(self._entries)

    def size_bytes(self) -> int:
        """Approximate memory footprint (the paper reports ~246 kB worst case)."""
        per_candidate = 48  # site ref + polarity + score + tier
        return sum(len(v) * per_candidate for v in self._entries.values())


class M3DDiagnosisFramework:
    """Trains and deploys Tier-predictor, MIV-pinpointer, and Classifier.

    Args:
        min_precision: PR-curve precision target that sets ``Tp`` (paper: 99%).
        hidden: GCN widths shared by the models.
        epochs: Training epochs per model.
        seed: Global seed for weight init and shuffling.
        use_miv_pinpointer / use_classifier: Ablation switches (Table XI).
        nn_backend: Tensor backend for all three GNN models ("numpy",
            "torch", ...); None consults ``$REPRO_NN_BACKEND`` and falls
            back to the numpy oracle.  Model weights stay backend-neutral,
            so a framework trained on one backend deploys on any other.
    """

    def __init__(
        self,
        min_precision: float = 0.99,
        hidden: Sequence[int] = (32, 32),
        epochs: int = 40,
        seed: int = 0,
        use_miv_pinpointer: bool = True,
        use_classifier: bool = True,
        n_tiers: int = 2,
        nn_backend: Optional[str] = None,
    ) -> None:
        self.min_precision = min_precision
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.seed = seed
        self.use_miv_pinpointer = use_miv_pinpointer
        self.use_classifier = use_classifier
        self.n_tiers = n_tiers
        self.nn_backend = nn_backend
        self.tier_predictor = TierPredictor(
            n_tiers=n_tiers, hidden=self.hidden, epochs=epochs, seed=seed, backend=nn_backend
        )
        self.miv_pinpointer: Optional[MivPinpointer] = (
            MivPinpointer(hidden=self.hidden, epochs=epochs, seed=seed + 1, backend=nn_backend)
            if use_miv_pinpointer
            else None
        )
        self.classifier: Optional[PruneReorderClassifier] = None
        self.tp_threshold: float = 1.0
        self._fitted = False
        # Bound-policy cache: ``policy_for`` is on the serving hot path
        # (every diagnose call), so the policy object is built once per
        # (design identity, use_tier) and reused until the models change.
        self._policy_cache: Dict[
            Tuple[int, bool], Tuple[PreparedDesign, PruneReorderPolicy]
        ] = {}

    # ------------------------------------------------------------------ fit
    def _checkpoint_key(self, training_sets: Sequence[SampleSet]) -> Dict[str, object]:
        """Content-addressed identity of one fit: data fingerprints + params."""
        from ..runtime.cache import CODE_VERSION
        from ..runtime.fingerprint import sample_set_fingerprint

        return {
            "artifact": "fit_stage",
            "version": CODE_VERSION,
            "data": [sample_set_fingerprint(s) for s in training_sets],
            "params": {
                "min_precision": self.min_precision,
                "hidden": list(self.hidden),
                "epochs": self.epochs,
                "seed": self.seed,
                "use_miv_pinpointer": self.use_miv_pinpointer,
                "use_classifier": self.use_classifier,
                "n_tiers": self.n_tiers,
                # Resolved backend spec: checkpoints trained on different
                # backends are distinct artifacts (float trajectories differ).
                "nn_backend": get_backend(self.nn_backend).spec,
            },
        }

    def fit(
        self,
        training_sets: Sequence[SampleSet],
        stats_sink: Optional[RuntimeStats] = None,
        checkpoint: Optional["ArtifactCache"] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> Dict[str, float]:
        """Train all models from (augmented) training sample sets.

        Args:
            training_sets: Injected sample sets (one per augmentation design).
            stats_sink: Optional shared :class:`RuntimeStats` receiving the
                per-stage wall-clock (``fit.tier`` / ``fit.miv`` /
                ``fit.classifier``) — the runtime and CLI pass theirs so
                training shows up next to dataset-generation timings.
            checkpoint: Optional :class:`repro.runtime.ArtifactCache`.  Each
                training stage (tier / miv / threshold / classifier) is then
                checkpointed under a key derived from the training-set
                fingerprints and the hyperparameters; an interrupted fit
                re-invoked on the same data resumes, loading completed
                stages instead of retraining them (visible as
                ``fit.<stage>.resumed`` counters with no ``fit.<stage>``
                wall-clock entry).
            tracer: Optional span tracer; each training stage records a
                ``fit.<stage>`` span (nested under the caller's active
                span) and honours the ``REPRO_PROFILE`` per-stage
                profiling hooks.  Span/checkpoint keys never mix: spans
                are excluded from checkpoint identity.

        Returns summary statistics: training accuracy of the Tier-predictor,
        the selected ``Tp``, the TP:FP imbalance seen by the Classifier, and
        per-stage training seconds.
        """
        timer = stats_sink if stats_sink is not None else RuntimeStats()
        tr = tracer if tracer is not None else SpanTracer()
        # Refitting replaces the models: every cached bound policy is stale.
        self._policy_cache.clear()
        with tr.span("fit"):
            return self._fit_impl(training_sets, timer, tr, checkpoint)

    def _fit_impl(
        self,
        training_sets: Sequence[SampleSet],
        timer: RuntimeStats,
        tr: SpanTracer,
        checkpoint: Optional["ArtifactCache"],
    ) -> Dict[str, float]:
        graphs: List[GraphData] = []
        for s in training_sets:
            graphs.extend(s.graphs)
        if not graphs:
            raise ValueError("no training graphs")

        ckpt_key = self._checkpoint_key(training_sets) if checkpoint is not None else None

        def stage_load(stage: str) -> Tuple[object, bool]:
            if checkpoint is None:
                return None, False
            payload, hit = checkpoint.get("fit_stage", {**ckpt_key, "stage": stage})
            if hit:
                timer.count(f"fit.{stage}.resumed")
            return payload, hit

        def stage_save(stage: str, payload: object) -> None:
            if checkpoint is not None:
                checkpoint.put("fit_stage", {**ckpt_key, "stage": stage}, payload)

        tier_graphs = [g for g in graphs if g.y >= 0]
        payload, hit = stage_load("tier")
        if hit:
            self.tier_predictor = payload
        else:
            with timer.timed("fit.tier"), profiled("fit-tier", tr), tr.span("tier"):
                self.tier_predictor.fit(tier_graphs)
            stage_save("tier", self.tier_predictor)

        if self.miv_pinpointer is not None:
            payload, hit = stage_load("miv")
            if hit:
                self.miv_pinpointer = payload
            else:
                miv_graphs = [
                    g for g in graphs if g.node_mask is not None and g.node_mask.any()
                ]
                if miv_graphs:
                    with timer.timed("fit.miv"), profiled("fit-miv", tr), tr.span("miv"):
                        self.miv_pinpointer.fit(miv_graphs)
                else:
                    self.miv_pinpointer = None
                stage_save("miv", self.miv_pinpointer)

        # PR curve on the training set → Tp.
        payload, hit = stage_load("threshold")
        if hit:
            self.tp_threshold, conf, correct = payload
        else:
            with timer.timed("fit.threshold"), profiled("fit-threshold", tr), \
                    tr.span("threshold"):
                proba = self.tier_predictor.predict_proba(tier_graphs)
                preds = np.argmax(proba, axis=1)
                conf = proba.max(axis=1)
                truth = np.asarray([g.y for g in tier_graphs])
                correct = preds == truth
                curve = precision_recall_curve(conf, correct)
                self.tp_threshold = select_threshold(curve, self.min_precision)
            stage_save("threshold", (self.tp_threshold, conf, correct))

        # Classifier on Predicted Positive samples.
        stats = {
            "tier_train_accuracy": float(np.mean(correct)),
            "tp_threshold": self.tp_threshold,
            "n_true_positive": 0.0,
            "n_false_positive": 0.0,
        }
        if self.use_classifier:
            payload, hit = stage_load("classifier")
            if hit:
                self.classifier, n_tp, n_fp = payload
            else:
                positive = conf > self.tp_threshold
                tp_graphs = [g for g, p, c in zip(tier_graphs, positive, correct) if p and c]
                fp_graphs = [g for g, p, c in zip(tier_graphs, positive, correct) if p and not c]
                n_tp, n_fp = len(tp_graphs), len(fp_graphs)
                if tp_graphs:
                    self.classifier = PruneReorderClassifier(
                        self.tier_predictor,
                        epochs=max(10, self.epochs // 2),
                        seed=self.seed + 2,
                        backend=self.nn_backend,
                    )
                    with timer.timed("fit.classifier"), profiled("fit-classifier", tr), \
                            tr.span("classifier"):
                        self.classifier.fit(tp_graphs, fp_graphs)
                stage_save("classifier", (self.classifier, n_tp, n_fp))
            stats["n_true_positive"] = float(n_tp)
            stats["n_false_positive"] = float(n_fp)
        for stage, seconds in timer.stage_seconds.items():
            if stage.startswith("fit."):
                stats[f"{stage.replace('.', '_')}_s"] = seconds
        self._fitted = True
        return stats

    # ------------------------------------------------------------ deployment
    def policy_for(self, design: PreparedDesign, use_tier: bool = True) -> PruneReorderPolicy:
        """Bind the trained models to a (possibly different) target design.

        The bound policy is cached per (design, use_tier): repeated
        ``diagnose`` calls against the same design — the serving hot path —
        reuse one policy object instead of rebuilding it per request.  The
        cache is invalidated by :meth:`fit` (the models it binds change) and
        keyed by object identity, so a re-prepared design gets a fresh
        binding.
        """
        if not self._fitted:
            raise RuntimeError("framework is not fitted")
        key = (id(design), use_tier)
        hit = self._policy_cache.get(key)
        if hit is not None and hit[0] is design:
            return hit[1]
        policy = PruneReorderPolicy(
            tier_predictor=self.tier_predictor,
            miv_pinpointer=self.miv_pinpointer,
            classifier=self.classifier,
            het=design.het,
            tp_threshold=self.tp_threshold,
            use_tier=use_tier,
        )
        self._policy_cache[key] = (design, policy)
        return policy

    def subgraph_for_log(
        self, design: PreparedDesign, mode: str, log: FailureLog
    ) -> Optional[GraphData]:
        """Back-trace one failure log into an unlabeled sub-graph."""
        mask = backtrace(design.het, design.obsmap(mode), log)
        if not mask.any():
            return None
        return design.extractor.subgraph(mask)

    def localize(
        self, design: PreparedDesign, mode: str, log: FailureLog
    ) -> Tuple[int, float, List[int]]:
        """Tier-level localization only (no ATPG report needed).

        Returns (predicted tier, confidence, flagged MIV ids); tier -1 when
        the back-trace is empty.
        """
        graph = self.subgraph_for_log(design, mode, log)
        if graph is None:
            return -1, 0.0, []
        proba = self.tier_predictor.predict_proba([graph])[0]
        tier = int(np.argmax(proba))
        mivs: List[int] = []
        if self.miv_pinpointer is not None:
            nodes = self.miv_pinpointer.predict_faulty_mivs(graph)
            mivs = [int(design.het.miv_id[v]) for v in nodes]
        return tier, float(proba[tier]), mivs

    def diagnose_batch(
        self,
        design: PreparedDesign,
        mode: str,
        logs: Sequence[FailureLog],
        atpg_reports: Sequence[DiagnosisReport],
        backup: Optional[BackupDictionary] = None,
        chip_ids: Optional[Sequence[object]] = None,
        graphs: Optional[Sequence[Optional[GraphData]]] = None,
        stats: Optional[RuntimeStats] = None,
    ) -> List[PolicyResult]:
        """Post-process many ATPG reports with batched GNN predictions.

        The serving entry point: every request's back-traced sub-graph is
        packed into one block-diagonal batch per model, so a full request
        batch costs three GNN forwards instead of three per request.
        :meth:`diagnose` is this with a batch of one — offline and serving
        numerics are one code path by construction.

        Args:
            design: Target design bundle (shared by the whole batch).
            mode: Observation mode of the logs.
            logs: One failure log per request.
            atpg_reports: One ATPG report per request.
            backup: Optional backup dictionary for pruned candidates.
            chip_ids: Backup-dictionary keys, one per request (None entries
                allowed); defaults to None keys when a backup is given.
            graphs: Pre-computed sub-graphs, one per request (None entries
                back-trace on demand).
            stats: Optional counter sink.  Empty back-traces — silent
                ``passthrough`` results the policy never sees — are recorded
                as ``diagnose.empty_backtrace`` so serving dashboards can
                alert on degenerate submissions.
        """
        n = len(logs)
        if len(atpg_reports) != n:
            raise ValueError(f"{n} log(s) but {len(atpg_reports)} report(s)")
        if graphs is not None and len(graphs) != n:
            raise ValueError(f"{n} log(s) but {len(graphs)} graph(s)")
        if chip_ids is not None and len(chip_ids) != n:
            raise ValueError(f"{n} log(s) but {len(chip_ids)} chip id(s)")

        resolved: List[Optional[GraphData]] = [
            (graphs[i] if graphs is not None and graphs[i] is not None
             else self.subgraph_for_log(design, mode, logs[i]))
            for i in range(n)
        ]
        results: List[Optional[PolicyResult]] = [None] * n
        for i, g in enumerate(resolved):
            if g is None:
                if stats is not None:
                    stats.count("diagnose.empty_backtrace")
                results[i] = PolicyResult(
                    report=atpg_reports[i],
                    action="passthrough",
                    pruned=[],
                    predicted_tier=-1,
                    confidence=0.0,
                )
        live = [i for i, g in enumerate(resolved) if g is not None]
        if live:
            outs = self.policy_for(design).apply_batch(
                [atpg_reports[i] for i in live], [resolved[i] for i in live]
            )
            for i, out in zip(live, outs):
                results[i] = out
        final = [r for r in results if r is not None]
        if backup is not None:
            keys: Sequence[object] = chip_ids if chip_ids is not None else [None] * n
            for key, out in zip(keys, final):
                backup.record(key, out.pruned)
        return final

    def diagnose(
        self,
        design: PreparedDesign,
        mode: str,
        log: FailureLog,
        atpg_report: DiagnosisReport,
        backup: Optional[BackupDictionary] = None,
        chip_id: object = None,
        graph: Optional[GraphData] = None,
        stats: Optional[RuntimeStats] = None,
    ) -> PolicyResult:
        """Post-process one ATPG report with the GNN predictions.

        Args:
            design: Target design bundle.
            mode: Observation mode of the log.
            log: The failure log.
            atpg_report: Report from the ATPG diagnosis tool.
            backup: Optional backup dictionary to record pruned candidates.
            chip_id: Key for the backup dictionary.
            graph: Pre-computed sub-graph (skips re-running back-trace).
            stats: Optional counter sink (``diagnose.empty_backtrace``).
        """
        return self.diagnose_batch(
            design, mode, [log], [atpg_report],
            backup=backup, chip_ids=[chip_id],
            graphs=[graph] if graph is not None else None,
            stats=stats,
        )[0]
