"""TDF automatic test pattern generation.

Random two-pattern generation with greedy pattern selection and fault
dropping — the classic simulation-based ATPG loop.  Batches of random pairs
are fault-simulated against the undetected fault list; a pattern is kept only
when it is the first detector of some still-undetected fault, so the emitted
set is compact.  Coverage is reported over the (structurally collapsed)
stem-fault universe plus any MIV sites, which is also the universe the
paper's Table III fault-coverage column describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..netlist.netlist import Netlist
from ..sim.faultsim import FaultMachine
from ..sim.logicsim import CompiledSimulator
from .faults import Fault, FaultSite, enumerate_faults
from .patterns import PatternSet, random_patterns

__all__ = ["AtpgResult", "generate_tdf_patterns"]


@dataclass
class AtpgResult:
    """Outcome of a pattern-generation run.

    Attributes:
        patterns: The selected two-pattern tests.
        fault_coverage: Detected / total over the target fault universe.
        n_target_faults: Size of the target universe.
        detected: Per-fault detection flags, aligned with ``faults``.
        faults: The target fault universe.
    """

    patterns: PatternSet
    fault_coverage: float
    n_target_faults: int
    detected: List[bool]
    faults: List[Fault]


def generate_tdf_patterns(
    nl: Netlist,
    seed: int = 0,
    mivs: Sequence[FaultSite] = (),
    batch_size: int = 32,
    max_patterns: int = 512,
    target_coverage: float = 0.95,
    sim: Optional[CompiledSimulator] = None,
    deterministic_topoff: bool = False,
    packed: bool = True,
) -> AtpgResult:
    """Generate a compact TDF pattern set for ``nl``.

    Args:
        nl: Design under test.
        seed: RNG seed (deterministic output).
        mivs: MIV fault sites to include in the target universe.
        batch_size: Random patterns fault-simulated per iteration.
        max_patterns: Budget on selected patterns.
        target_coverage: Stop once this fraction of faults is detected.
        sim: Optional pre-compiled simulator to reuse.
        deterministic_topoff: After the random loop, run PODEM on the
            remaining undetected stem faults and append its targeted pattern
            pairs (the commercial random-then-deterministic flow).
        packed: Engine for the fallback simulator when ``sim`` is not given
            (bit-packed by default; ``False`` selects the uint8 reference).

    Returns:
        An :class:`AtpgResult` with the selected patterns and coverage.
    """
    rng = np.random.default_rng(seed)
    sim = sim or CompiledSimulator(nl, packed=packed)
    machine = FaultMachine(sim)
    faults = enumerate_faults(nl, mivs=mivs, include_branches=False)
    n_faults = len(faults)
    detected = [False] * n_faults

    selected: Optional[PatternSet] = None
    stall_rounds = 0
    while (selected is None or selected.n_patterns < max_patterns) and stall_rounds < 6:
        batch = random_patterns(nl, batch_size, rng)
        good = sim.simulate_pair(batch.v1, batch.v2)
        keep = np.zeros(batch_size, dtype=bool)
        newly = 0
        for idx, fault in enumerate(faults):
            if detected[idx]:
                continue
            det = machine.detects(fault, good)
            if det.any():
                detected[idx] = True
                newly += 1
                keep[int(np.argmax(det))] = True
        if newly == 0:
            stall_rounds += 1
        else:
            stall_rounds = 0
            chosen = batch.select(np.nonzero(keep)[0])
            selected = chosen if selected is None else selected.concat(chosen)
        if sum(detected) / n_faults >= target_coverage:
            break

    if selected is None:
        selected = random_patterns(nl, 1, rng)

    if deterministic_topoff and selected.n_patterns < max_patterns:
        from .podem import Podem

        podem = Podem(nl)
        extra_v1: List[np.ndarray] = []
        extra_v2: List[np.ndarray] = []
        for idx, fault in enumerate(faults):
            if detected[idx] or fault.site.kind != "stem":
                continue
            if selected.n_patterns + len(extra_v1) >= max_patterns:
                break
            pair = podem.generate_tdf_pair(fault, seed=seed + idx)
            if pair is None:
                continue
            extra_v1.append(pair[0])
            extra_v2.append(pair[1])
        if extra_v1:
            extra = PatternSet(np.stack(extra_v1, axis=1), np.stack(extra_v2, axis=1))
            good = sim.simulate_pair(extra.v1, extra.v2)
            for idx, fault in enumerate(faults):
                if not detected[idx] and machine.detects(fault, good).any():
                    detected[idx] = True
            selected = selected.concat(extra)

    if selected.n_patterns > max_patterns:
        selected = selected.select(range(max_patterns))
    coverage = sum(detected) / n_faults if n_faults else 1.0
    return AtpgResult(
        patterns=selected,
        fault_coverage=coverage,
        n_target_faults=n_faults,
        detected=detected,
        faults=faults,
    )
