"""Transition-delay-fault (TDF) universe: fault sites and polarities.

Fault sites follow the paper's granularity — "every pin of a gate" plus MIV
nodes:

* ``stem``   — the driver output pin of a net; a fault here disturbs every
  sink and any direct observation of the net.
* ``branch`` — one gate input pin; the fault disturbs only that pin.
* ``miv``    — the inter-tier segment of a net that crosses tiers; the fault
  disturbs only the sinks (and observations) located on the far tier.

A :class:`Fault` pairs a site with a polarity (slow-to-rise / slow-to-fall).
Detection uses the standard TDF approximation: a slow-to-rise fault at site
*s* is detected by pattern pair (V1, V2) iff V1(s)=0, V2(s)=1 and the
resulting stuck-low effect under V2 propagates to an observation point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..netlist.netlist import EXTERNAL_DRIVER, Netlist

__all__ = [
    "Polarity",
    "FaultSite",
    "Fault",
    "stem_site",
    "branch_site",
    "enumerate_sites",
    "enumerate_faults",
    "site_tier",
]

PinRef = Tuple[int, int]


class Polarity(enum.Enum):
    """TDF polarity."""

    SLOW_TO_RISE = "STR"
    SLOW_TO_FALL = "STF"


@dataclass(frozen=True)
class FaultSite:
    """A location where a delay defect can sit.

    Attributes:
        kind: ``"stem"``, ``"branch"``, or ``"miv"``.
        net: The net the defect lives on.
        sinks: Gate input pins that see the faulty value.
        observed_faulty: Whether a direct observation of ``net`` (PO or flop
            D pin) also sees the faulty value.
        miv_id: MIV index for ``kind == "miv"`` sites, else -1.
        label: Stable human-readable id used in diagnosis reports.
    """

    kind: str
    net: int
    sinks: Tuple[PinRef, ...]
    observed_faulty: bool
    miv_id: int = -1
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("stem", "branch", "miv"):
            raise ValueError(f"bad fault-site kind {self.kind!r}")


@dataclass(frozen=True)
class Fault:
    """A transition delay fault: a site plus a polarity."""

    site: FaultSite
    polarity: Polarity

    @property
    def label(self) -> str:
        return f"{self.site.label}/{self.polarity.value}"


def stem_site(nl: Netlist, net_id: int) -> FaultSite:
    """The stem fault site of a net (affects all sinks and observations)."""
    net = nl.nets[net_id]
    return FaultSite(
        kind="stem",
        net=net_id,
        sinks=tuple(net.sinks),
        observed_faulty=True,
        label=f"stem:{net.name}",
    )


def branch_site(nl: Netlist, gate_id: int, pin: int) -> FaultSite:
    """The branch fault site at one gate input pin."""
    g = nl.gates[gate_id]
    net_id = g.fanin[pin]
    return FaultSite(
        kind="branch",
        net=net_id,
        sinks=((gate_id, pin),),
        observed_faulty=False,
        label=f"branch:{g.name}.{pin}",
    )


def enumerate_sites(
    nl: Netlist, mivs: Sequence[FaultSite] = (), include_branches: bool = True
) -> List[FaultSite]:
    """All fault sites of a design.

    Branch sites are only emitted for nets with more than one total
    destination (sinks + observations); on single-destination nets the branch
    is equivalent to the stem (structural fault collapsing).  MIV sites, when
    provided by :func:`repro.m3d.miv.miv_fault_sites`, are appended verbatim.
    """
    sites: List[FaultSite] = []
    observed = set(nl.observed_nets)
    for net in nl.nets:
        drivable = net.driver != EXTERNAL_DRIVER or net.sinks
        if not drivable:
            continue
        sites.append(stem_site(nl, net.id))
        n_dest = len(net.sinks) + (1 if net.id in observed else 0)
        if include_branches and n_dest > 1:
            for gate_id, pin in net.sinks:
                sites.append(branch_site(nl, gate_id, pin))
    sites.extend(mivs)
    return sites


def enumerate_faults(
    nl: Netlist, mivs: Sequence[FaultSite] = (), include_branches: bool = True
) -> List[Fault]:
    """Both polarities of every fault site."""
    faults: List[Fault] = []
    for site in enumerate_sites(nl, mivs, include_branches):
        faults.append(Fault(site, Polarity.SLOW_TO_RISE))
        faults.append(Fault(site, Polarity.SLOW_TO_FALL))
    return faults


def site_tier(nl: Netlist, site: FaultSite) -> Optional[int]:
    """Tier a fault site belongs to, or None for MIVs (which span tiers).

    Stem faults sit at the driver; branch faults sit at the sink gate's end
    of the wire.
    """
    if site.kind == "miv":
        return None
    if site.kind == "branch":
        gate_id, _pin = site.sinks[0]
        return nl.gates[gate_id].tier
    return nl.net_tier(site.net)
