"""TDF fault universe, pattern containers, and ATPG."""

from .faults import (
    Fault,
    FaultSite,
    Polarity,
    branch_site,
    enumerate_faults,
    enumerate_sites,
    site_tier,
    stem_site,
)
from .patterns import PatternSet, random_patterns
from .podem import Podem, PodemResult
from .tdf import AtpgResult, generate_tdf_patterns

__all__ = [
    "Fault",
    "FaultSite",
    "Polarity",
    "branch_site",
    "enumerate_faults",
    "enumerate_sites",
    "site_tier",
    "stem_site",
    "Podem",
    "PodemResult",
    "PatternSet",
    "random_patterns",
    "AtpgResult",
    "generate_tdf_patterns",
]
