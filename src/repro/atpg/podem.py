"""PODEM — deterministic path-oriented test generation (Goel, 1981).

Random-pattern ATPG (:mod:`repro.atpg.tdf`) leaves a tail of
random-pattern-resistant faults; this module generates targeted tests for
them the way commercial tools do.  The engine works on the five-valued
D-algebra, represented as a (good, faulty) pair of three-valued planes:

========  ======  =======
symbol    good    faulty
========  ======  =======
``0``     0       0
``1``     1       1
``X``     X       X
``D``     1       0
``D'``    0       1
========  ======  =======

The classic loop: pick an objective (activate the fault, then advance the
D-frontier), backtrace it to an unassigned primary input using SCOAP
controllability guidance, imply forward, and backtrack on conflicts.

For transition-delay faults the standard two-pattern construction applies:
PODEM finds V2 detecting the fault's stuck-at equivalent, and V1 is found by
justifying the opposite value at the fault site (a pure justification run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..netlist.netlist import EXTERNAL_DRIVER, Netlist
from ..netlist.testability import Testability, compute_testability
from .faults import Fault, FaultSite, Polarity

__all__ = ["Podem", "PodemResult"]

#: Three-valued constants for the good/faulty planes.
V0, V1, VX = 0, 1, 2


def _eval3(cell, ins: List[int]) -> int:
    """Three-valued evaluation.

    Monotone-decomposable cells use controlling-value shortcuts; the rest
    fall back to completion enumeration over the X inputs (≤ 4 inputs ⇒
    ≤ 16 cases), which is exact.
    """
    name = cell.name
    if name == "BUF":
        return ins[0]
    if name == "INV":
        return VX if ins[0] == VX else 1 - ins[0]
    if name.startswith(("AND", "NAND")):
        if V0 in ins:
            out = V0
        elif VX in ins:
            out = VX
        else:
            out = V1
        if name.startswith("NAND") and out != VX:
            out = 1 - out
        return out
    if name.startswith(("OR", "NOR")):
        if V1 in ins:
            out = V1
        elif VX in ins:
            out = VX
        else:
            out = V0
        if name.startswith("NOR") and out != VX:
            out = 1 - out
        return out
    if name in ("XOR2", "XOR3", "XNOR2"):
        if VX in ins:
            return VX
        out = 0
        for v in ins:
            out ^= v
        return (1 - out) if name == "XNOR2" else out
    xs = [i for i, v in enumerate(ins) if v == VX]
    if not xs:
        arrs = [np.array([v], dtype=np.uint8) for v in ins]
        return int(cell.func(arrs)[0])
    result: Optional[int] = None
    for combo in range(1 << len(xs)):
        trial = list(ins)
        for k, idx in enumerate(xs):
            trial[idx] = (combo >> k) & 1
        arrs = [np.array([v], dtype=np.uint8) for v in trial]
        out = int(cell.func(arrs)[0])
        if result is None:
            result = out
        elif result != out:
            return VX
    return result if result is not None else VX


@dataclass
class PodemResult:
    """Outcome of one PODEM run.

    Attributes:
        success: Whether a test was found within the backtrack budget.
        assignment: Net id → 0/1 over assigned combinational inputs (others
            are don't-care).
        backtracks: Decisions undone during the search.
    """

    success: bool
    assignment: Dict[int, int]
    backtracks: int


class Podem:
    """Deterministic test generator for one compiled design.

    Args:
        nl: The design.
        max_backtracks: Abort budget per fault (random-resistant redundant
            faults terminate quickly through this bound).
    """

    def __init__(self, nl: Netlist, max_backtracks: int = 250) -> None:
        self.nl = nl
        self.max_backtracks = max_backtracks
        self.order = nl.topo_order()
        self.inputs = set(nl.comb_inputs)
        self.observed = list(nl.observed_nets)
        self.testability: Testability = compute_testability(nl)
        # Gate consumers per net for forward implication.
        self._sinks: List[List[int]] = [[] for _ in range(nl.n_nets)]
        for g in nl.gates:
            for net in g.fanin:
                if g.id not in self._sinks[net]:
                    self._sinks[net].append(g.id)

    # ----------------------------------------------------------- simulation
    def _imply(
        self,
        assignment: Dict[int, int],
        fault_net: int,
        fault_value: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forward 3-valued simulation of the good and faulty planes."""
        n = self.nl.n_nets
        good = np.full(n, VX, dtype=np.int8)
        faulty = np.full(n, VX, dtype=np.int8)
        for net, v in assignment.items():
            good[net] = v
            faulty[net] = v
        if fault_net in self.inputs:
            faulty[fault_net] = fault_value
        for gid in self.order:
            g = self.nl.gates[gid]
            good[g.out] = _eval3(g.cell, [int(good[x]) for x in g.fanin])
            faulty[g.out] = _eval3(g.cell, [int(faulty[x]) for x in g.fanin])
            if g.out == fault_net:
                faulty[g.out] = fault_value
        return good, faulty

    # ------------------------------------------------------------ backtrace
    def _backtrace(self, net: int, value: int, good: np.ndarray) -> Tuple[int, int]:
        """Map an objective (net, value) to an unassigned input assignment."""
        t = self.testability
        while net not in self.inputs:
            g = self.nl.gates[self.nl.nets[net].driver]
            name = g.cell.name
            inverting = name.startswith(("NAND", "NOR", "INV", "XNOR"))
            next_value = 1 - value if inverting else value
            # Choose among X inputs: easiest for a controlling objective,
            # hardest for a non-controlling one (classic PODEM heuristic,
            # reduced here to easiest-cost which works well at this scale).
            candidates = [x for x in g.fanin if good[x] == VX]
            if not candidates:
                candidates = list(g.fanin)
            cost = lambda x: t.cc1[x] if next_value == 1 else t.cc0[x]
            net = min(candidates, key=cost)
            value = next_value
            if name == "INV" or name == "BUF":
                pass  # value already adjusted via `inverting`
        return net, value

    # -------------------------------------------------------------- search
    def _objective(
        self,
        fault_net: int,
        activate_value: int,
        good: np.ndarray,
        faulty: np.ndarray,
    ) -> Optional[Tuple[int, int]]:
        """Next objective: activate the fault, then extend the D-frontier."""
        if good[fault_net] == VX:
            return fault_net, activate_value
        if good[fault_net] != activate_value:
            return None  # activation conflict
        # D-frontier: gates with a D/D' input and an X output.
        for gid in self.order:
            g = self.nl.gates[gid]
            if good[g.out] != VX and faulty[g.out] != VX:
                continue
            d_pins = [
                p
                for p, x in enumerate(g.fanin)
                if good[x] != VX and faulty[x] != VX and good[x] != faulty[x]
            ]
            if not d_pins:
                continue
            required = self._side_requirements(g, d_pins[0])
            for p, x in enumerate(g.fanin):
                if good[x] == VX:
                    return x, required.get(p, 0)
        return None

    @staticmethod
    def _side_requirements(gate, d_pin: int) -> Dict[int, int]:
        """Side-input values that sensitize ``d_pin`` through ``gate``."""
        name = gate.cell.name
        n = len(gate.fanin)
        others = [p for p in range(n) if p != d_pin]
        if name.startswith(("AND", "NAND")):
            return {p: 1 for p in others}
        if name.startswith(("OR", "NOR")):
            return {p: 0 for p in others}
        if name in ("XOR2", "XOR3", "XNOR2"):
            return {p: 0 for p in others}  # any binary side value sensitizes
        if name == "MUX2":  # pins (a, b, sel)
            if d_pin == 0:
                return {2: 0}
            if d_pin == 1:
                return {2: 1}
            return {0: 0, 1: 1}  # sensitizing sel needs a != b
        if name == "AOI21":  # NOT((a AND b) OR c), pins (a, b, c)
            if d_pin == 0:
                return {1: 1, 2: 0}
            if d_pin == 1:
                return {0: 1, 2: 0}
            return {0: 0}  # kill the AND term; b is then free
        if name == "OAI21":  # NOT((a OR b) AND c), pins (a, b, c)
            if d_pin == 0:
                return {1: 0, 2: 1}
            if d_pin == 1:
                return {0: 0, 2: 1}
            return {0: 1}  # force the OR term to 1
        return {p: 0 for p in others}

    def _detected(self, good: np.ndarray, faulty: np.ndarray) -> bool:
        for net in self.observed:
            if good[net] != VX and faulty[net] != VX and good[net] != faulty[net]:
                return True
        return False

    def _frontier_alive(self, fault_net: int, good, faulty) -> bool:
        """Is a D value still observable, propagating, or producible?"""
        if good[fault_net] == VX:
            return True  # fault not activated yet — still open
        diff = (good != VX) & (faulty != VX) & (good != faulty)
        if not diff.any():
            return False
        observed = set(self.observed)
        for net in np.nonzero(diff)[0]:
            if int(net) in observed:
                return True
            for gid in self._sinks[int(net)]:
                out = self.nl.gates[gid].out
                if good[out] == VX or faulty[out] == VX:
                    return True
        return False

    def generate_stuck_at(self, net: int, stuck_value: int) -> PodemResult:
        """Find an input assignment detecting ``net`` stuck-at ``stuck_value``."""
        activate = 1 - stuck_value
        assignment: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool]] = []  # (input net, value, tried_both)
        backtracks = 0
        while True:
            good, faulty = self._imply(assignment, net, stuck_value)
            if self._detected(good, faulty):
                return PodemResult(True, dict(assignment), backtracks)
            feasible = self._frontier_alive(net, good, faulty) and not (
                good[net] != VX and good[net] == stuck_value
            )
            obj = self._objective(net, activate, good, faulty) if feasible else None
            if obj is not None:
                in_net, in_val = self._backtrace(obj[0], obj[1], good)
                if in_net in assignment:
                    obj = None  # backtrace looped onto an assigned input
                else:
                    assignment[in_net] = in_val
                    decisions.append((in_net, in_val, False))
                    continue
            # Dead end: flip the most recent unflipped decision.
            while decisions:
                in_net, in_val, tried = decisions.pop()
                del assignment[in_net]
                if not tried:
                    backtracks += 1
                    if backtracks > self.max_backtracks:
                        return PodemResult(False, {}, backtracks)
                    assignment[in_net] = 1 - in_val
                    decisions.append((in_net, 1 - in_val, True))
                    break
            else:
                return PodemResult(False, {}, backtracks)

    def justify(self, net: int, value: int) -> PodemResult:
        """Find an input assignment that sets ``net`` to ``value`` (no fault)."""
        assignment: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool]] = []
        backtracks = 0
        while True:
            good, _f = self._imply(assignment, net, value)  # fault plane unused
            if good[net] == value:
                return PodemResult(True, dict(assignment), backtracks)
            if good[net] != VX:
                obj = None
            else:
                obj = (net, value)
            if obj is not None:
                in_net, in_val = self._backtrace(obj[0], obj[1], good)
                if in_net not in assignment:
                    assignment[in_net] = in_val
                    decisions.append((in_net, in_val, False))
                    continue
            while decisions:
                in_net, in_val, tried = decisions.pop()
                del assignment[in_net]
                if not tried:
                    backtracks += 1
                    if backtracks > self.max_backtracks:
                        return PodemResult(False, {}, backtracks)
                    assignment[in_net] = 1 - in_val
                    decisions.append((in_net, 1 - in_val, True))
                    break
            else:
                return PodemResult(False, {}, backtracks)

    def generate_tdf_pair(
        self, fault: Fault, seed: int = 0
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """A (V1, V2) pair detecting a TDF at the fault's stem.

        V2 comes from a stuck-at PODEM run (slow-to-rise ≈ stuck-at-0 on the
        second vector); V1 justifies the opposite initial value.  Don't-care
        inputs are filled pseudo-randomly from ``seed``.

        Returns None when either run exhausts its backtrack budget (the
        fault is then likely redundant/untestable).
        """
        stuck = 0 if fault.polarity is Polarity.SLOW_TO_RISE else 1
        initial = stuck  # V1 must put the site at the pre-transition value
        v2_res = self.generate_stuck_at(fault.site.net, stuck)
        if not v2_res.success:
            return None
        v1_res = self.justify(fault.site.net, initial)
        if not v1_res.success:
            return None
        rng = np.random.default_rng(seed)
        inputs = self.nl.comb_inputs
        v1 = rng.integers(0, 2, size=len(inputs), dtype=np.uint8)
        v2 = rng.integers(0, 2, size=len(inputs), dtype=np.uint8)
        for i, net in enumerate(inputs):
            if net in v1_res.assignment:
                v1[i] = v1_res.assignment[net]
            if net in v2_res.assignment:
                v2[i] = v2_res.assignment[net]
        return v1, v2
