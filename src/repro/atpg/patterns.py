"""Two-pattern (V1, V2) test-set containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..netlist.netlist import Netlist

__all__ = ["PatternSet", "random_patterns"]


@dataclass
class PatternSet:
    """A set of two-pattern TDF tests.

    Rows of ``v1``/``v2`` follow ``Netlist.comb_inputs`` order (PIs first,
    then flop Q nets); columns are patterns.  Patterns are fully specified
    (no X values), matching enhanced-scan two-pattern application.
    """

    v1: np.ndarray
    v2: np.ndarray

    def __post_init__(self) -> None:
        self.v1 = np.asarray(self.v1, dtype=np.uint8)
        self.v2 = np.asarray(self.v2, dtype=np.uint8)
        if self.v1.shape != self.v2.shape:
            raise ValueError(f"v1 {self.v1.shape} and v2 {self.v2.shape} differ")
        if self.v1.ndim != 2:
            raise ValueError("pattern arrays must be 2-D (inputs x patterns)")

    @property
    def n_inputs(self) -> int:
        return self.v1.shape[0]

    @property
    def n_patterns(self) -> int:
        return self.v1.shape[1]

    def select(self, columns: Iterable[int]) -> "PatternSet":
        """A new PatternSet with only the given pattern columns."""
        cols = list(columns)
        return PatternSet(self.v1[:, cols], self.v2[:, cols])

    def concat(self, other: "PatternSet") -> "PatternSet":
        """Append another pattern set's columns after this one's."""
        if other.n_inputs != self.n_inputs:
            raise ValueError("pattern sets have different input counts")
        return PatternSet(
            np.concatenate([self.v1, other.v1], axis=1),
            np.concatenate([self.v2, other.v2], axis=1),
        )


def random_patterns(nl: Netlist, n_patterns: int, rng: np.random.Generator) -> PatternSet:
    """Uniform random two-pattern tests for a netlist's combinational core."""
    n_inputs = len(nl.comb_inputs)
    v1 = rng.integers(0, 2, size=(n_inputs, n_patterns), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(n_inputs, n_patterns), dtype=np.uint8)
    return PatternSet(v1, v2)
