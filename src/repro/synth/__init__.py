"""Synthesis-style netlist transforms: re-synthesis and test points."""

from .resynth import resynthesize
from .testpoints import insert_test_points

__all__ = ["resynthesize", "insert_test_points"]
