"""Observation test-point insertion (the paper's "TPI" configuration).

Observation test points are scan flops attached to hard-to-observe internal
nets; they improve fault coverage and reduce pattern counts without changing
function.  Following the paper, the budget is capped at 1% of the gate
count, and locations are chosen by an observability heuristic: nets that are
deep (far from existing observation points) and narrow (small fan-out) rank
first — the criterion ATPG tools use for observe-point placement.
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist.builder import NetlistBuilder
from ..netlist.netlist import EXTERNAL_DRIVER, Netlist
from ..netlist.topology import bfs_distance_from_observation

__all__ = ["insert_test_points"]


def insert_test_points(
    nl: Netlist, budget_fraction: float = 0.01, method: str = "distance"
) -> Netlist:
    """A copy of ``nl`` with observation test points added.

    Args:
        nl: Source design.
        budget_fraction: Maximum test points as a fraction of gate count.
        method: Ranking criterion — ``"distance"`` (hops to the nearest
            existing observation) or ``"scoap"`` (SCOAP observability cost,
            the criterion commercial observe-point insertion uses).

    Returns:
        A new netlist with up to ``budget_fraction * n_gates`` extra scan
        flops observing the least-observable nets.
    """
    n_tp = max(1, int(budget_fraction * nl.n_gates))
    observed = set(nl.observed_nets)

    scored: List[tuple] = []
    if method == "scoap":
        from ..netlist.testability import compute_testability

        t = compute_testability(nl)
        for net in nl.nets:
            if net.id in observed or net.driver == EXTERNAL_DRIVER:
                continue
            scored.append((-int(t.co[net.id]), len(net.sinks), net.id))
    elif method == "distance":
        # Observability proxy: distance to the nearest existing observation.
        nearest: Dict[int, int] = {}
        for obs in nl.observed_nets:
            dist, _mivs = bfs_distance_from_observation(nl, obs)
            for net, d in dist.items():
                cur = nearest.get(net)
                if cur is None or d < cur:
                    nearest[net] = d
        for net in nl.nets:
            if net.id in observed or net.driver == EXTERNAL_DRIVER:
                continue
            depth = nearest.get(net.id, 10 ** 6)
            scored.append((-depth, len(net.sinks), net.id))
    else:
        raise ValueError(f"unknown test-point method {method!r}")
    scored.sort()
    picks = [net_id for _d, _f, net_id in scored[:n_tp]]

    b = NetlistBuilder.from_netlist(nl)
    for i, net_id in enumerate(picks):
        b.add_flop(d_net=net_id, name=f"tp{i}")
    out = b.finish()
    out.name = nl.name
    return out
