"""Function-preserving re-synthesis (the paper's "Syn-2" configuration).

Re-synthesizing at a different clock frequency changes gate selection,
structure, and depth without changing function.  This transform reproduces
that effect with a seeded sweep of local, provably function-preserving
rewrites over the netlist:

* polarity re-mapping      — ``AND2 → INV∘NAND2``, ``OR2 → INV∘NOR2``,
  ``NAND2 → INV∘AND2``, ``NOR2 → INV∘OR2``, ``XOR2 ↔ INV∘XNOR2``;
* tree decomposition       — ``AND3/4``, ``OR3/4``, ``NAND3/4``, ``NOR3/4``,
  ``XOR3`` into two-input trees;
* complex-cell expansion   — ``AOI21 → NOR2∘AND2``, ``OAI21 → NAND2∘OR2``,
  ``MUX2 → OR2(AND2(a, ¬s), AND2(b, s))``;
* buffering                — BUF insertion after a gate output.

Equivalence of input/output behaviour is asserted by the test suite via
random-pattern simulation of original vs. transformed netlists.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..netlist.builder import NetlistBuilder
from ..netlist.netlist import EXTERNAL_DRIVER, Netlist

__all__ = ["resynthesize"]


def resynthesize(
    nl: Netlist,
    seed: int = 0,
    rewrite_probability: float = 0.5,
    rng: Optional[random.Random] = None,
) -> Netlist:
    """A functionally equivalent netlist with different structure.

    Args:
        nl: Source design.
        seed: Rewrite-selection seed (deterministic output).
        rewrite_probability: Chance that an applicable gate is rewritten.
        rng: Pre-seeded generator used instead of ``random.Random(seed)``;
            the caller owns its state.

    Returns:
        A fresh netlist named ``{nl.name}`` whose PI→PO/flop behaviour is
        identical to the source.
    """
    rng = rng if rng is not None else random.Random(seed)
    b = NetlistBuilder(nl.name)
    net_map: Dict[int, int] = {}

    for nid in nl.primary_inputs:
        net_map[nid] = b.add_primary_input(nl.nets[nid].name)
    for f in nl.flops:
        net_map[f.q_net] = b.add_net(nl.nets[f.q_net].name)

    counter = [0]

    def g(cell: str, fanin: List[int]) -> int:
        counter[0] += 1
        return b.add_gate(cell, fanin, gate_name=f"rs{counter[0]}")

    def rewrite(cell: str, ins: List[int]) -> int:
        """Emit a function-equivalent implementation of one source gate."""
        if cell == "AND2":
            return g("INV", [g("NAND2", ins)])
        if cell == "OR2":
            return g("INV", [g("NOR2", ins)])
        if cell == "NAND2":
            return g("INV", [g("AND2", ins)])
        if cell == "NOR2":
            return g("INV", [g("OR2", ins)])
        if cell == "XOR2":
            return g("INV", [g("XNOR2", ins)])
        if cell == "XNOR2":
            return g("INV", [g("XOR2", ins)])
        if cell in ("AND3", "AND4"):
            acc = g("AND2", ins[:2])
            for x in ins[2:]:
                acc = g("AND2", [acc, x])
            return acc
        if cell in ("OR3", "OR4"):
            acc = g("OR2", ins[:2])
            for x in ins[2:]:
                acc = g("OR2", [acc, x])
            return acc
        if cell in ("NAND3", "NAND4"):
            acc = g("AND2", ins[:2])
            for x in ins[2:-1]:
                acc = g("AND2", [acc, x])
            return g("NAND2", [acc, ins[-1]])
        if cell in ("NOR3", "NOR4"):
            acc = g("OR2", ins[:2])
            for x in ins[2:-1]:
                acc = g("OR2", [acc, x])
            return g("NOR2", [acc, ins[-1]])
        if cell == "XOR3":
            return g("XOR2", [g("XOR2", ins[:2]), ins[2]])
        if cell == "AOI21":
            return g("NOR2", [g("AND2", ins[:2]), ins[2]])
        if cell == "OAI21":
            return g("NAND2", [g("OR2", ins[:2]), ins[2]])
        if cell == "MUX2":
            a, bb, sel = ins
            return g("OR2", [g("AND2", [a, g("INV", [sel])]), g("AND2", [bb, sel])])
        raise KeyError(cell)

    rewritable = {
        "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2",
        "AND3", "AND4", "OR3", "OR4", "NAND3", "NAND4", "NOR3", "NOR4",
        "XOR3", "AOI21", "OAI21", "MUX2",
    }

    for gid in nl.topo_order():
        gate = nl.gates[gid]
        ins = [net_map[n] for n in gate.fanin]
        cell = gate.cell.name
        if cell in rewritable and rng.random() < rewrite_probability:
            out = rewrite(cell, ins)
        else:
            counter[0] += 1
            out = b.add_gate(cell, ins, gate_name=f"rs{counter[0]}")
        if rng.random() < 0.03:  # occasional drive-strength buffer
            out = g("BUF", [out])
        net_map[gate.out] = out

    for f in nl.flops:
        b.add_flop_with_q(d_net=net_map[f.d_net], q_net=net_map[f.q_net], name=f.name)
    for nid in nl.primary_outputs:
        b.mark_primary_output(net_map[nid])
    return b.finish()
